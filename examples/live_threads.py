#!/usr/bin/env python
"""Domain scenario 3: the runtime on real OS threads, wall-clock time.

Everything in the other examples runs on the deterministic simulated
executor. This one drives the *same* pipeline code with the threaded
executor: real worker threads, real NumPy kernels, a feeder thread
streaming blocks at a fixed rate, live speculation, possibly a live
rollback — then verifies the committed output bit-for-bit.

(Latency figures here are GIL-bound and machine-dependent; the paper's
curves are reproduced on the simulated executor. See DESIGN.md §2.)

Usage::

    python examples/live_threads.py [workload] [n_blocks]
"""

import sys
import threading
import time

import numpy as np

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.sre.executor_threads import ThreadedExecutor
from repro.sre.runtime import Runtime
from repro.workloads import get_workload

BLOCK = 4096


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bmp"
    n_blocks = int(sys.argv[2]) if len(sys.argv) > 2 else 128
    data = get_workload(workload).generate(n_blocks * BLOCK, seed=0)
    blocks = [data[i : i + BLOCK] for i in range(0, len(data), BLOCK)]

    config = HuffmanConfig(reduce_ratio=8, offset_fanout=8, speculative=True,
                           step=1, verify_k=2, tolerance=0.01)
    runtime = Runtime()
    executor = ThreadedExecutor(runtime, policy="balanced", workers=4)
    pipeline = HuffmanPipeline(runtime, config, len(blocks))

    def feeder() -> None:
        for i, block in enumerate(blocks):
            executor.submit(pipeline.feed_block, i, block)
            time.sleep(0.001)  # ~1 ms per block arrival
        executor.close_input()

    print(f"streaming {len(blocks)} blocks of {workload} into 4 worker threads...")
    t0 = time.perf_counter()
    executor.start()
    threading.Thread(target=feeder, daemon=True).start()
    if not executor.wait_idle(timeout=120.0):
        raise SystemExit("executor did not drain")
    executor.shutdown()
    wall = time.perf_counter() - t0

    result = pipeline.result(executor.now)
    print(f"outcome      : {result.outcome}")
    print(f"wall time    : {wall:.2f} s")
    print(f"avg latency  : {result.avg_latency / 1000:.2f} ms (wall clock)")
    print(f"rollbacks    : {result.spec_stats.get('rollbacks', 0)}")
    print(f"compression  : {result.compression_ratio:.3f}x")
    print(f"round-trip   : {'ok' if pipeline.verify_roundtrip(data) else 'FAILED'}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Domain scenario 2: the paper's Fig. 1 — speculating on an iterative solver.

An FIR low-pass filter is designed by a serial chain of gradient-descent
refinements while the signal to be filtered streams in. Value speculation
takes the coefficients from an early iteration, starts filtering
optimistically, and validates against later iterates with a programmer-
defined tolerance in frequency-response space.

This example exercises the *generic* speculation framework
(:mod:`repro.core`) on a second application, with its own predictor,
validator and rollback dynamics.

Usage::

    python examples/filter_speculation.py
"""

from repro.experiments.config import RunConfig
from repro.filterapp import FilterDesignProblem
from repro.filterapp.runner import run_filter_experiment
from repro.metrics.report import ascii_chart, render_table


def main() -> None:
    problem = FilterDesignProblem(iterations=24)
    final_err = problem.response_error(problem.solve()[-1])
    print(f"solver: {problem.iterations} refinement steps, "
          f"final response error {final_err:.3f}\n")

    rows = []
    curves = {}
    configs = [
        ("non-speculative", dict(speculative=False)),
        ("speculate @ iter 2", dict(step=2, tolerance=0.05)),
        ("speculate @ iter 8", dict(step=8, tolerance=0.05)),
        ("tight tolerance (rolls back)", dict(step=1, verify_k=2, tolerance=0.005)),
    ]
    for label, kw in configs:
        report = run_filter_experiment(
            config=RunConfig.for_app("filter", n_blocks=48, seed=0, **kw))
        rows.append([
            label, report.result.outcome, f"{report.avg_latency:,.0f}",
            f"{report.completion_time:,.0f}", str(report.extras["rollbacks"]),
            f"{report.extras['response_error']:.3f}",
        ])
        curves[label] = report.latencies
    print(render_table(
        ["configuration", "outcome", "avg lat (µs)", "runtime (µs)",
         "rollbacks", "resp. error"],
        rows,
    ))
    print()
    print(ascii_chart(curves, title="per-block filtering latency (µs)"))
    print("\nNote the tolerance trade: early speculation commits slightly "
          "less-converged coefficients (higher response error) in exchange "
          "for much lower latency — the paper's accuracy-for-performance "
          "trade (§II-A).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Regenerate the paper's Figure 2: the Huffman DFGs, as Graphviz DOT.

Runs a small non-speculative and a small speculative Huffman pipeline and
writes the *executed* graphs to ``fig2_nonspec.dot`` / ``fig2_spec.dot``
(render with ``dot -Tsvg``). Speculative tasks are dashed and check tasks
are diamonds, matching the paper's visual language; also prints an ASCII
gantt of the speculative run so the early speculative encodes are visible
without Graphviz.

Usage::

    python examples/render_dfg.py [out_dir]
"""

import pathlib
import sys

from repro.experiments import fig2
from repro.experiments.runner import RunConfig, run_huffman
from repro.metrics.traceview import ascii_gantt


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    result = fig2.run()
    (out_dir / "fig2_nonspec.dot").write_text(result.dot_nonspec)
    (out_dir / "fig2_spec.dot").write_text(result.dot_spec)
    print(result.render())
    print(f"\nwrote {out_dir / 'fig2_nonspec.dot'} and {out_dir / 'fig2_spec.dot'}")
    print("render with: dot -Tsvg fig2_spec.dot -o fig2_spec.svg\n")

    report = run_huffman(config=RunConfig(
        workload="txt", n_blocks=64, policy="balanced",
        step=1, seed=0, trace=True))
    print("who ran when (speculative TXT run):")
    print(ascii_gantt(report.trace))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: one speculative Huffman run, speculative vs not.

Runs the paper's benchmark on the simulated x86 platform with the balanced
dispatch policy, compares it against the non-speculative baseline, and
prints the per-element latency curves — a miniature of Fig. 3a.

Usage::

    python examples/quickstart.py [n_blocks]
"""

import sys

from repro import RunConfig, run_huffman
from repro.metrics.report import ascii_chart, render_table
from repro.metrics.summary import RunSummary


def main() -> None:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 256

    print(f"Encoding {n_blocks} x 4 KB blocks of synthetic e-book text...\n")
    nonspec = run_huffman(config=RunConfig(
        workload="txt", n_blocks=n_blocks, policy="nonspec", seed=0))
    spec = run_huffman(config=RunConfig(
        workload="txt", n_blocks=n_blocks, policy="balanced", step=1, seed=0))

    rows = [nonspec.summary.row(), spec.summary.row()]
    print(render_table(RunSummary.HEADER, rows))
    print()

    gain = 1.0 - spec.avg_latency / nonspec.avg_latency
    speedup = 1.0 - spec.completion_time / nonspec.completion_time
    print(f"speculation cut average latency by {gain:.1%} "
          f"and total runtime by {speedup:.1%}")
    print(f"output round-trip verified: {spec.roundtrip_ok}\n")

    print(ascii_chart(
        {"non-speculative": nonspec.latencies, "balanced": spec.latencies},
        title="per-element latency (µs), x86 / disk",
    ))


if __name__ == "__main__":
    main()

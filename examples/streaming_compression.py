#!/usr/bin/env python
"""Domain scenario 1: compressing a slow network stream (paper Fig. 7).

A 4 MB synthetic PDF trickles in over a long-distance socket. Without
speculation, nothing can be encoded until the whole file has arrived and
the global tree is built. With tolerant speculation, the encoder works as
data arrives — and when the early tree turns out to be off (high-entropy
PDFs drift), the rollback re-encodes everything already on hand almost
instantly, then keeps pace with arrivals.

Usage::

    python examples/streaming_compression.py [n_blocks]
"""

import sys

from repro import RunConfig, run_huffman
from repro.iomodels import SocketModel
from repro.metrics.report import ascii_chart


def main() -> None:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    common = dict(
        n_blocks=n_blocks,
        io=SocketModel(),        # ~5.5 ms per 4 KB block
        reduce_ratio=8,          # socket configuration (§V-A)
        offset_fanout=8,
        seed=0,
    )

    for workload in ("txt", "pdf"):
        print(f"=== {workload.upper()} over a tunnelled socket ===")
        spec = run_huffman(config=RunConfig.from_kwargs(
            workload=workload, policy="balanced", step=1, **common))
        nonspec = run_huffman(config=RunConfig.from_kwargs(
            workload=workload, policy="nonspec", **common))
        transfer = spec.arrivals[-1]
        print(f"transfer time         : {transfer:,.0f} µs")
        print(f"non-spec avg latency  : {nonspec.avg_latency:,.0f} µs")
        print(f"speculative avg lat.  : {spec.avg_latency:,.0f} µs "
              f"({spec.avg_latency / transfer:.1%} of transfer)")
        print(f"rollbacks             : "
              f"{spec.result.spec_stats.get('rollbacks', 0)}")
        print(f"outcome               : {spec.result.outcome}, "
              f"round-trip {'ok' if spec.roundtrip_ok else 'FAILED'}")
        print(ascii_chart(
            {"arrival time": spec.arrivals, "latency (spec)": spec.latencies},
            title=f"{workload}: arrival vs latency",
            height=12,
        ))
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Domain scenario 4: speculative k-means over a point stream.

The paper's introduction names k-means as a prime target for coarse-grain
value speculation: the centroid fit is an iterative, serial computation,
and the massively parallel assignment pass is stuck behind it. Here the
centroids are speculated from a prefix of the stream; the tolerance is a
bound on *relative inertia excess* — clustering quality traded, within a
budget, for latency.

Usage::

    python examples/kmeans_streaming.py [n_blocks]
"""

import sys

from repro.experiments.config import RunConfig
from repro.kmeansapp import run_kmeans_experiment
from repro.metrics.report import ascii_chart, render_table


def main() -> None:
    n_blocks = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    rows = []
    curves = {}
    configs = [
        ("non-speculative", dict(speculative=False)),
        ("speculate @ block 2", dict(step=2, tolerance=0.05)),
        ("drifting clusters (rolls back)",
         dict(step=1, verify_k=2, drift_blocks=n_blocks // 3, tolerance=0.02)),
    ]
    for label, kw in configs:
        report = run_kmeans_experiment(
            config=RunConfig.for_app("kmeans", n_blocks=n_blocks, seed=0, **kw))
        rows.append([
            label, report.result.outcome, f"{report.avg_latency:,.0f}",
            f"{report.completion_time:,.0f}", str(report.extras["rollbacks"]),
            f"{report.extras['inertia']:.3f}",
        ])
        curves[label] = report.latencies
    print(render_table(
        ["configuration", "outcome", "avg lat (µs)", "runtime (µs)",
         "rollbacks", "inertia"],
        rows,
    ))
    print()
    print(ascii_chart(curves, title="per-block assignment latency (µs)"))
    print("\nSpeculative assignment labels each block as it arrives; the "
          "tolerance check guarantees the committed centroids cluster a "
          "probe sample within the configured inertia budget of the full "
          "fit's centroids.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Building a custom speculation domain on the raw framework API.

Shows the paper's four-point programmer interface (§II-A) end to end on a
deliberately tiny problem — estimating a dataset's mean from a prefix and
speculatively normalising data blocks with it:

1. *what* to speculate — the dataset mean;
2. *how* — a predictor task carrying the running mean of the blocks seen
   so far;
3. *where (not)* — normalised blocks pause in a WaitBuffer until validated;
4. *how to validate* — relative distance between predicted and refined
   means, under a 2 % tolerance.

Everything here is plain library API: Task, Runtime, SimulatedExecutor,
SpeculationSpec, SpeculationManager. No Huffman, no filter app.

Usage::

    python examples/custom_speculation.py
"""

import numpy as np

from repro.core import RelativeTolerance, SpeculationManager, SpeculationSpec, WaitBuffer
from repro.core.frequency import EveryK, SpeculationInterval
from repro.platforms import X86Platform
from repro.sre import Runtime, SimulatedExecutor, Task

N_BLOCKS = 64
BLOCK_LEN = 1000


def main() -> None:
    rng = np.random.default_rng(0)
    # A decaying mean drift early on makes the first guess slightly off.
    blocks = [
        rng.normal(loc=10.0 + 3.0 * np.exp(-i / 4.0), scale=2.0, size=BLOCK_LEN)
        for i in range(N_BLOCKS)
    ]

    runtime = Runtime()
    executor = SimulatedExecutor(runtime, X86Platform(workers=8),
                                 policy="balanced", workers=8)
    normalised: dict[int, np.ndarray] = {}
    barrier = WaitBuffer(sink=lambda key, value, now: normalised.__setitem__(key, value))
    seen: list[int] = []  # block ids whose sums have completed

    def normalise_block(version, i: int) -> None:
        """Spawn one speculative normalisation task under a version."""
        task = Task(
            f"normalise:v{version.vid}:{i}",
            lambda b=blocks[i], m=version.value: {"out": b - m},
            kind="filter",
            speculative=True,
            cost_hint={"units": float(BLOCK_LEN)},
        )
        version.register(task)
        runtime.add_task(task)
        runtime.connect_sink(
            task, "out",
            lambda v, i=i, ver=version: barrier.deposit(ver.vid, i, v, runtime.now),
        )

    def launch(version) -> None:
        """(3) build the speculative subgraph over every block seen so far;
        later arrivals are attached as they complete (see on_done)."""
        for i in list(seen):
            normalise_block(version, i)

    def recompute(final_mean) -> None:
        for i, block in enumerate(blocks):
            normalised[i] = block - final_mean

    # The fluent builder mirrors the paper's four interface points:
    # what to run under a prediction, how to predict, where results
    # wait, and how to validate.
    spec = (
        SpeculationSpec.builder("mean")
        .what(launch=launch, recompute=recompute)
        # (2) how to speculate: the running mean of the prefix.
        .how(lambda prefix_mean, name: Task(
                 name, lambda m=prefix_mean: {"out": m}, kind="predict"),
             interval=SpeculationInterval(4))
        .barrier(barrier)
        # (4) how to validate: relative mean distance under 2 % tolerance.
        .validate(lambda pred, cand, _ref: abs(pred - cand) / max(abs(cand), 1e-12),
                  tolerance=RelativeTolerance(0.02),
                  verification=EveryK(8))
        .build()
    )
    manager = SpeculationManager(runtime, spec)

    running = {"sum": 0.0, "count": 0}

    # Feed blocks; every sum completion refines the running mean and is
    # offered to the manager as an update ((1) what: the mean value).
    for i, block in enumerate(blocks):
        def on_done(_task, outs, i=i):
            running["sum"] += outs["out"]
            running["count"] += BLOCK_LEN
            seen.append(i)
            version = manager.active_version
            if version is not None and version.active and version.value is not None:
                normalise_block(version, i)
            manager.offer_update(
                i + 1, running["sum"] / running["count"],
                is_final=(i == N_BLOCKS - 1),
            )
        t = Task(f"sum:{i}", lambda b=block: {"out": float(b.sum())},
                 kind="count", cost_hint={"bytes": float(BLOCK_LEN)})
        t.on_complete.append(on_done)
        executor.sim.schedule_at(i * 10.0, lambda t=t: runtime.add_task(t))

    executor.run()

    print(f"outcome      : {manager.outcome}")
    print(f"speculations : {manager.stats.speculations}")
    print(f"checks       : {manager.stats.checks} "
          f"(failed {manager.stats.checks_failed})")
    print(f"rollbacks    : {manager.stats.rollbacks}")
    assert len(normalised) == N_BLOCKS, "every block must be normalised"
    residual = np.concatenate([normalised[i] for i in range(N_BLOCKS)]).mean()
    print(f"residual mean after normalisation: {residual:+.4f} "
          f"(0 would be exact; the tolerance allows a small bias)")
    assert abs(residual) < 0.25, "tolerance bound exceeded"
    print("done — the speculative normalisation is within tolerance.")


if __name__ == "__main__":
    main()

"""Miscellaneous kernel behaviours not covered elsewhere."""

from repro.sim.kernel import Simulator


def test_cancel_after_fire_is_harmless():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(1))
    sim.run()
    sim.cancel(ev)  # already fired: no effect, no error
    assert fired == [1]


def test_priority_orders_same_instant_callbacks():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("low"), priority=10)
    sim.schedule(1.0, lambda: order.append("high"), priority=-10)
    sim.schedule(1.0, lambda: order.append("mid"), priority=0)
    sim.run()
    assert order == ["high", "mid", "low"]


def test_pending_counts_live_events():
    sim = Simulator()
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    sim.cancel(a)
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_zero_delay_self_rescheduling_terminates_with_max_events():
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        sim.call_soon(tick)

    sim.call_soon(tick)
    sim.run(max_events=100)
    assert count[0] == 100
    assert sim.now == 0.0  # time never advanced


def test_interleaved_run_segments_preserve_order():
    sim = Simulator()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        sim.schedule(t, lambda t=t: seen.append(t))
    sim.run(until=2.0)
    sim.schedule(0.5, lambda: seen.append(2.5))  # relative to now=2.0
    sim.run()
    assert seen == [1.0, 2.0, 2.5, 3.0, 4.0]

"""Unit tests for counted resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


def test_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Simulator(), 0)


def test_immediate_grant_under_capacity():
    sim = Simulator()
    res = Resource(sim, 2)
    got = []
    res.acquire(lambda: got.append("a"))
    res.acquire(lambda: got.append("b"))
    assert res.in_use == 2
    sim.run()
    assert got == ["a", "b"]


def test_waiters_queue_fifo():
    sim = Simulator()
    res = Resource(sim, 1)
    got = []
    res.acquire(lambda: got.append("first"))
    res.acquire(lambda: got.append("second"))
    res.acquire(lambda: got.append("third"))
    sim.run()
    assert got == ["first"]
    assert res.queued == 2
    res.release()
    sim.run()
    assert got == ["first", "second"]
    res.release()
    sim.run()
    assert got == ["first", "second", "third"]


def test_release_idle_raises():
    res = Resource(Simulator(), 1)
    with pytest.raises(SimulationError):
        res.release()


def test_cancelled_request_is_skipped():
    sim = Simulator()
    res = Resource(sim, 1)
    got = []
    res.acquire(lambda: got.append("a"))
    second = res.acquire(lambda: got.append("b"))
    res.acquire(lambda: got.append("c"))
    second.cancel()
    sim.run()
    res.release()
    sim.run()
    assert got == ["a", "c"]


def test_available_tracks_in_use():
    sim = Simulator()
    res = Resource(sim, 3)
    res.acquire(lambda: None)
    assert res.available == 2
    res.release()
    assert res.available == 3

"""Unit tests for the simulator clock and run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=100.0).now == 100.0


def test_schedule_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_callbacks_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.schedule(2.0, lambda: seen.append(("second", sim.now)))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 3.0)]


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    order = []

    def outer():
        sim.call_soon(lambda: order.append("soon"))
        order.append("outer")

    sim.schedule(1.0, outer)
    sim.schedule(1.0, lambda: order.append("peer"))
    sim.run()
    # call_soon lands after already-queued same-instant events.
    assert order == ["outer", "peer", "soon"]
    assert sim.now == 1.0


def test_run_until_is_inclusive():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append("at5"))
    sim.schedule(6.0, lambda: seen.append("at6"))
    end = sim.run(until=5.0)
    assert seen == ["at5"]
    assert end == 5.0
    assert sim.pending == 1


def test_run_max_events():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: seen.append(i))
    sim.run(max_events=3)
    assert seen == [0, 1, 2]


def test_run_resumes_after_until():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(5))
    sim.schedule(10.0, lambda: seen.append(10))
    sim.run(until=7.0)
    assert sim.now == 7.0
    sim.run()
    assert seen == [5, 10]
    assert sim.now == 10.0


def test_cancel_via_simulator():
    sim = Simulator()
    seen = []
    ev = sim.schedule(1.0, lambda: seen.append("x"))
    sim.cancel(ev)
    sim.run()
    assert seen == []


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_not_reentrant():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_determinism_full_replay():
    def build():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i * 7) % 13, lambda i=i: order.append(i))
        sim.run()
        return order

    assert build() == build()

"""Unit tests for the event heap."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_empty_queue_is_falsy():
    q = EventQueue()
    assert not q
    assert len(q) == 0
    assert q.peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append("c"))
    q.push(1.0, lambda: fired.append("a"))
    q.push(2.0, lambda: fired.append("b"))
    while q:
        q.pop().fn()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_scheduling_order():
    q = EventQueue()
    fired = []
    for tag in "abcde":
        q.push(1.0, lambda t=tag: fired.append(t))
    while q:
        q.pop().fn()
    assert fired == list("abcde")


def test_priority_breaks_time_ties():
    q = EventQueue()
    fired = []
    q.push(1.0, lambda: fired.append("low"), priority=5)
    q.push(1.0, lambda: fired.append("high"), priority=-5)
    while q:
        q.pop().fn()
    assert fired == ["high", "low"]


def test_cancel_removes_event():
    q = EventQueue()
    fired = []
    ev = q.push(1.0, lambda: fired.append("x"))
    q.push(2.0, lambda: fired.append("y"))
    q.cancel(ev)
    assert len(q) == 1
    while q:
        q.pop().fn()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    q.cancel(ev)
    assert q.peek_time() == 5.0


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(SimulationError):
        q.push(float("nan"), lambda: None)


def test_drain_consumes_in_order():
    q = EventQueue()
    for t in (5.0, 1.0, 3.0):
        q.push(t, lambda: None)
    times = [ev.time for ev in q.drain()]
    assert times == [1.0, 3.0, 5.0]
    assert not q

"""Unit tests for RNG helpers."""

import numpy as np

from repro.sim.rng import make_rng, spawn_rngs


def test_make_rng_from_int_is_deterministic():
    a = make_rng(42).random(5)
    b = make_rng(42).random(5)
    assert np.array_equal(a, b)


def test_make_rng_passthrough():
    gen = np.random.default_rng(1)
    assert make_rng(gen) is gen


def test_spawn_rngs_independent_and_deterministic():
    first = [g.random(3) for g in spawn_rngs(7, 3)]
    second = [g.random(3) for g in spawn_rngs(7, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    # streams differ from each other
    assert not np.array_equal(first[0], first[1])


def test_spawn_rngs_count():
    assert len(spawn_rngs(0, 5)) == 5

"""Unit tests for trace recording."""

from repro.sim.trace import TraceRecorder


def test_records_in_order():
    tr = TraceRecorder()
    tr.record(1.0, "a", "x")
    tr.record(2.0, "b", "y", detail=1)
    assert len(tr) == 2
    recs = list(tr)
    assert recs[0].kind == "a" and recs[1].subject == "y"
    assert recs[1].detail == {"detail": 1}


def test_disabled_recorder_drops_everything():
    tr = TraceRecorder(enabled=False)
    tr.record(1.0, "a", "x")
    assert len(tr) == 0


def test_kind_filter():
    tr = TraceRecorder(kinds={"keep"})
    tr.record(1.0, "keep", "x")
    tr.record(2.0, "drop", "y")
    assert tr.kinds() == {"keep"}
    assert tr.count("drop") == 0


def test_of_kind_and_count():
    tr = TraceRecorder()
    for i in range(3):
        tr.record(float(i), "tick", f"s{i}")
    tr.record(9.0, "tock", "z")
    assert [r.subject for r in tr.of_kind("tick")] == ["s0", "s1", "s2"]
    assert tr.count("tick") == 3


def test_last():
    tr = TraceRecorder()
    assert tr.last("missing") is None
    tr.record(1.0, "k", "first")
    tr.record(2.0, "k", "second")
    assert tr.last("k").subject == "second"


def test_clear():
    tr = TraceRecorder()
    tr.record(1.0, "k", "s")
    tr.clear()
    assert len(tr) == 0

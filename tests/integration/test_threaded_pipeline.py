"""The full speculative Huffman pipeline on the *threaded* executor.

Proves the runtime is a real runtime: the same pipeline code, driven by OS
threads and wall-clock time, produces correct committed output with live
speculation and rollback. Latency figures come from the simulated executor
(see DESIGN.md §2 — GIL); here we assert correctness, not speed.
"""

import numpy as np
import pytest

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.sre.executor_threads import ThreadedExecutor
from repro.sre.runtime import Runtime

pytestmark = [pytest.mark.threaded, pytest.mark.slow]

BLOCK = 1024


def _run_threaded(data, *, workers=4, policy="balanced", feed_gap_s=0.002,
                  **config_kw):
    base = dict(block_size=BLOCK, reduce_ratio=4, offset_fanout=8,
                speculative=True, step=1, verify_k=2, tolerance=0.01)
    base.update(config_kw)
    config = HuffmanConfig(**base)
    blocks = [data[i:i + BLOCK] for i in range(0, len(data), BLOCK)]
    rt = Runtime()
    ex = ThreadedExecutor(rt, policy=policy, workers=workers)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    ex.start()
    for i, b in enumerate(blocks):
        ex.submit(pipe.feed_block, i, b)
        if feed_gap_s:
            import time
            time.sleep(feed_gap_s)  # stream, don't dump: give checks air
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    return pipe, pipe.result(ex.now)


def test_threaded_stationary_commits_and_roundtrips():
    rng = np.random.default_rng(0)
    data = bytes(rng.choice(np.arange(65, 91, dtype=np.uint8), 48 * BLOCK))
    pipe, result = _run_threaded(data)
    # Wall-clock scheduling is nondeterministic: if the final update beats
    # the prediction task, the run legitimately falls back to recompute.
    # Correctness must hold either way; commits dominate in practice.
    assert result.outcome in ("commit", "recompute")
    assert pipe.manager.stats.speculations >= 1
    assert pipe.verify_roundtrip(data)
    assert np.all(result.latencies > 0)


def test_threaded_drifting_rolls_back_and_roundtrips():
    rng = np.random.default_rng(1)
    head = b"m" * (12 * BLOCK)
    tail = bytes(rng.integers(0, 256, 36 * BLOCK, dtype=np.uint8))
    data = head + tail
    pipe, result = _run_threaded(data)
    assert result.spec_stats["rollbacks"] >= 1
    assert pipe.verify_roundtrip(data)


def test_threaded_nonspeculative():
    data = b"threaded non-speculative " * 2000
    pipe, result = _run_threaded(data, speculative=False)
    assert result.outcome == "non_speculative"
    assert pipe.verify_roundtrip(data)


def test_threaded_matches_simulated_output_bits():
    """Same data, same config: the threaded and simulated executors commit
    the same tree and therefore the same compressed size."""
    from repro.experiments.runner import RunConfig, run_huffman
    rng = np.random.default_rng(2)
    data = bytes(rng.choice(np.arange(97, 123, dtype=np.uint8), 32 * BLOCK))
    pipe_t, result_t = _run_threaded(data)
    sim = run_huffman(config=RunConfig(workload=data, block_size=BLOCK,
                                       reduce_ratio=4, offset_fanout=8,
                                       policy="balanced", step=1,
                                       verify_k=2, seed=0))
    assert sim.result.outcome == "commit"
    if result_t.outcome == "commit":
        # both committed the same (final-equivalent) tree on stationary data
        assert result_t.compressed_bits == sim.result.compressed_bits

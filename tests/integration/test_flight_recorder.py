"""End-to-end flight recorder: causal closure across executor back-ends.

The acceptance bar for the event log: on every back-end, a forced
mis-speculation produces a cascade in which **every** ``task_abort``
reaches the ``destroy_signal`` (and from there the failing check) purely
by following ``cause`` edges — no orphaned destruction. On the process
back-end, worker events must come home over the stop pipe with strictly
increasing per-worker sequence numbers, and `repro explain`'s totals must
agree with the RollbackEngine counters and the shared-memory release
metrics (double-entry: event log vs metrics surface).
"""

import pytest

from repro.experiments.runner import RunConfig, run_huffman
from repro.obs.events import index_by_seq, load_events_jsonl, walk_to_root
from repro.obs.explain import build_cascades, explain_events

pytestmark = pytest.mark.slow

# tolerance=0.0 fails every verification check, forcing a rollback
_FORCED = dict(workload="txt", n_blocks=24, seed=3, tolerance=0.0)
_LIVE = dict(workers=2, feed_gap_s=0.0005)


def _run(executor, **kw):
    cfg = dict(_FORCED, **kw)
    if executor != "sim":
        cfg.update(_LIVE, executor=executor)
    return run_huffman(config=RunConfig(**cfg))


def _assert_causal_closure(events):
    """Every task_abort walks back to a destroy_signal root."""
    by_seq = index_by_seq(events)
    aborts = [e for e in events if e["kind"] == "task_abort"]
    assert aborts, "forced mis-speculation produced no aborts"
    for abort in aborts:
        chain = walk_to_root(abort, by_seq)
        kinds = [e["kind"] for e in chain]
        assert "destroy_signal" in kinds, (
            f"orphaned abort {abort.get('task')!r}: chain {kinds}")
        # and above the signal sits the check that pulled the trigger
        assert "check_fail" in kinds, (
            f"abort {abort.get('task')!r} has no failing check in {kinds}")


@pytest.mark.parametrize("executor", ["sim", "threads", "procs"])
def test_forced_rollback_cascade_is_causally_closed(executor):
    report = _run(executor)
    assert report.roundtrip_ok  # rollback recovered, output still correct
    events = report.events.events()
    assert report.result.spec_stats["rollbacks"] >= 1
    _assert_causal_closure(events)


@pytest.mark.parametrize("executor", ["sim", "threads", "procs"])
def test_spec_lineage_reaches_the_prediction(executor):
    """check_fail chains back through spec_launch to a spec_predict."""
    report = _run(executor)
    events = report.events.events()
    by_seq = index_by_seq(events)
    fails = [e for e in events if e["kind"] == "check_fail"]
    assert fails
    for fail in fails:
        kinds = {e["kind"] for e in walk_to_root(fail, by_seq)}
        assert "spec_launch" in kinds
        assert "spec_predict" in kinds


def test_procs_worker_events_come_home_in_order():
    report = _run("procs")
    events = report.events.events()
    per_worker: dict[int, list[int]] = {}
    for e in events:
        if e.get("clock") == "worker":
            per_worker.setdefault(e["worker"], []).append(e["worker_seq"])
    assert per_worker, "no worker events were harvested over the stop pipe"
    for wid, seqs in per_worker.items():
        assert seqs == sorted(seqs), f"worker {wid} events out of order"
        assert len(set(seqs)) == len(seqs), f"worker {wid} duplicated seqs"
    execs = [e for e in events if e["kind"] == "worker_exec"]
    assert execs and all(e["run_id"] == report.events.run_id for e in execs)


def test_explain_totals_match_engine_and_shm_metrics():
    """The explain report is double-entered against the metrics surface:
    destroyed-task count == RollbackEngine.tasks_destroyed and freed shm
    bytes == shm_bytes_released{reason=rollback}."""
    report = _run("procs", transport="shm")
    reg = report.metrics
    cascades = build_cascades(report.events.events())
    assert cascades
    destroyed = sum(c.tasks_destroyed for c in cascades)
    hist = reg.get("spec_rollback_cost")
    assert destroyed == hist.labels(measure="tasks").sum()
    assert len(cascades) == hist.labels(measure="tasks").count()
    assert sum(c.freed_refs for c in cascades) == \
        reg.value("shm_refs_released", reason="rollback")
    assert sum(c.freed_bytes for c in cascades) == \
        reg.value("shm_bytes_released", reason="rollback")
    # the rendered report agrees with itself
    text = explain_events(report.events.events())
    assert f"{destroyed} tasks destroyed" in text


def test_events_jsonl_sink_round_trips(tmp_path):
    path = tmp_path / "run.events.jsonl"
    report = run_huffman(config=RunConfig(**_FORCED, events_out=str(path)))
    on_disk = load_events_jsonl(str(path))
    in_memory = report.events.events()
    assert [e["seq"] for e in on_disk] == [e["seq"] for e in in_memory]
    _assert_causal_closure(on_disk)


def test_events_disabled_keeps_run_working():
    report = run_huffman(config=RunConfig(**_FORCED, events=False))
    assert report.roundtrip_ok
    assert report.events is None
    assert report.warnings == []

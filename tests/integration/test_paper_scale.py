"""One full paper-scale run (4 MB TXT, 1024 blocks, 16 workers).

Guards against anything that only breaks at scale: task counts in the
thousands, deep reduce cascades, full-size drift calibration interacting
with the real check schedule.
"""

import pytest

from repro.experiments.runner import RunConfig, run_huffman

pytestmark = pytest.mark.slow


def _run(**kw):
    return run_huffman(config=RunConfig(**kw))


def test_paper_scale_txt_balanced():
    spec = _run(workload="txt", n_blocks=1024, policy="balanced",
                       step=1, seed=0)
    nonspec = _run(workload="txt", n_blocks=1024, policy="nonspec",
                          seed=0)
    assert spec.result.outcome == "commit"
    assert spec.result.spec_stats["rollbacks"] == 0
    assert spec.avg_latency < 0.8 * nonspec.avg_latency
    assert spec.completion_time < nonspec.completion_time
    assert spec.roundtrip_ok
    # graph scale sanity: ~1024 counts + 64 reduces + offsets + 2x tasks
    assert spec.result.runtime_stats["tasks_completed"] > 2000


def test_paper_scale_pdf_rolls_back_and_recovers():
    report = _run(workload="pdf", n_blocks=1024, policy="balanced",
                         step=1, seed=0)
    assert report.result.spec_stats["rollbacks"] >= 1
    assert report.result.outcome == "commit"  # calibrated drift converges
    assert report.roundtrip_ok

"""End-to-end observability: metrics and traces across executor back-ends.

The acceptance bar for the observability layer: every executor back-end
produces (a) a Chrome trace that round-trips through the traceview
exporters and (b) a metrics snapshot whose speculation counters agree with
the SpeculationManager's own SpeculationStats (double-entry accounting —
both are incremented at the same sites, so any divergence is a bug).
"""

import json

import pytest

from repro.experiments.runner import RunConfig, run_huffman
from repro.metrics.traceview import ascii_gantt, to_chrome_trace
from repro.obs.exporters import load_json_snapshot

pytestmark = pytest.mark.slow


def _run(metrics=None, **kw):
    return run_huffman(config=RunConfig(**kw), metrics=metrics)

_LIVE = dict(workload="txt", n_blocks=24, seed=3, workers=2,
             feed_gap_s=0.0005, trace=True)


def _assert_spec_counters_match(report):
    """Registry speculation counters == the manager's final SpecStats."""
    stats = report.result.spec_stats
    reg = report.metrics
    assert reg.value("spec_speculations") == stats["speculations"]
    assert reg.value("spec_commits") == stats["commits"]
    assert reg.value("spec_rollbacks") == stats["rollbacks"]
    assert reg.value("spec_checks", verdict="pass") == stats["checks_passed"]
    assert reg.value("spec_checks", verdict="fail") == stats["checks_failed"]
    assert reg.value("spec_recomputes") == stats["recomputes"]


def _assert_trace_roundtrips(report):
    doc = json.loads(to_chrome_trace(report.trace))
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "live run produced no task spans"
    kinds = {e["tid"] for e in spans}
    assert "encode" in kinds and "count" in kinds
    assert "encode" in ascii_gantt(report.trace)


@pytest.mark.parametrize("executor", ["sim", "threads", "procs"])
def test_metrics_match_spec_stats_per_executor(executor):
    if executor == "sim":
        report = _run(workload="txt", n_blocks=24, seed=3, trace=True)
    else:
        report = _run(executor=executor, **_LIVE)
    assert report.roundtrip_ok
    _assert_spec_counters_match(report)
    _assert_trace_roundtrips(report)


@pytest.mark.parametrize("executor", ["sim", "threads", "procs"])
def test_task_accounting_per_executor(executor):
    """Completed-task counters and latency histograms populate everywhere."""
    kwargs = dict(_LIVE, executor=executor) if executor != "sim" else dict(
        workload="txt", n_blocks=24, seed=3, trace=True)
    report = _run(**kwargs)
    reg = report.metrics
    completed = (reg.value("sre_tasks_completed", speculative="yes")
                 + reg.value("sre_tasks_completed", speculative="no"))
    assert completed > 0
    # every completed task contributed one latency observation
    hist = reg.get("sre_task_us")
    total_obs = sum(s["count"] for s in hist.snapshot_series())
    assert total_obs == completed
    # encode tasks are part of every pipeline run
    assert hist.labels(kind="encode").count() > 0


def test_procs_nonspec_counters_equal_sim():
    """Cross-process aggregation: the procs coordinator's merged registry
    counts exactly the tasks a sim run counts (nonspec runs are
    deterministic in task population across back-ends)."""
    sim = _run(workload="txt", n_blocks=24, seed=3, speculative=False)
    procs = _run(workload="txt", n_blocks=24, seed=3,
                        speculative=False, executor="procs", workers=2,
                        feed_gap_s=0.0005)
    for name, labels in (
        ("sre_tasks_completed", {"speculative": "no"}),
        ("sre_tasks_completed", {"speculative": "yes"}),
        ("sre_tasks_ready", {}),
    ):
        assert sim.metrics.value(name, **labels) == \
            procs.metrics.value(name, **labels), name


def test_procs_worker_counters_are_harvested():
    """Worker-process registries come home over the pipe on shutdown:
    the per-worker task counters must sum to the payloads shipped."""
    report = _run(workload="txt", n_blocks=24, seed=3,
                         executor="procs", workers=2, feed_gap_s=0.0005)
    reg = report.metrics
    shipped = reg.value("procs_tasks_shipped")
    assert shipped > 0
    worker_counts = reg.get("procs_worker_tasks")
    assert worker_counts is not None, "worker snapshots were not merged"
    executed = sum(s["value"] for s in worker_counts.snapshot_series())
    skips = reg.get("procs_worker_abort_skips")
    skipped = (sum(s["value"] for s in skips.snapshot_series())
               if skips is not None else 0)
    assert executed + skipped == shipped
    # worker-side body timings came home too
    body = reg.get("procs_worker_body_us")
    assert body is not None
    assert sum(s["count"] for s in body.snapshot_series()) == executed


def test_metrics_out_writes_final_snapshot(tmp_path):
    """A metrics_out run leaves a loadable snapshot on disk that
    agrees with the in-memory registry's final state."""
    path = tmp_path / "run.metrics.json"
    report = _run(workload="txt", n_blocks=16, seed=0,
                         metrics_out=str(path))
    on_disk = load_json_snapshot(path.read_text())
    # self-describing export: the run's parameters ride along
    assert on_disk.pop("meta") == report.run_config.to_dict()
    # the final flush happens after the run drains, so disk == memory
    assert on_disk == report.metrics.snapshot()


def test_shared_registry_aggregates_runs():
    """Passing one registry to several runs accumulates their counters."""
    from repro.obs.metrics import MetricsRegistry
    reg = MetricsRegistry()
    _run(workload="txt", n_blocks=16, seed=0, metrics=reg)
    once = reg.value("blocks_committed")
    _run(workload="txt", n_blocks=16, seed=1, metrics=reg)
    assert reg.value("blocks_committed") == 2 * once == 32

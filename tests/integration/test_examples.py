"""Smoke-run every example script (small arguments, captured output)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.slow


def _run(name: str, argv: list[str]) -> None:
    old = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old


def test_quickstart(capsys):
    _run("quickstart.py", ["64"])
    out = capsys.readouterr().out
    assert "speculation cut average latency" in out
    assert "round-trip verified: True" in out


def test_custom_speculation(capsys):
    _run("custom_speculation.py", [])
    out = capsys.readouterr().out
    assert "within tolerance" in out


def test_filter_speculation(capsys):
    _run("filter_speculation.py", [])
    out = capsys.readouterr().out
    assert "resp. error" in out


def test_streaming_compression(capsys):
    _run("streaming_compression.py", ["64"])
    out = capsys.readouterr().out
    assert "transfer time" in out
    assert "FAILED" not in out


@pytest.mark.threaded
def test_live_threads(capsys):
    _run("live_threads.py", ["txt", "32"])
    out = capsys.readouterr().out
    assert "round-trip   : ok" in out


def test_kmeans_streaming(capsys):
    _run("kmeans_streaming.py", ["24"])
    out = capsys.readouterr().out
    assert "inertia" in out

"""End-to-end deterministic replay: record → replay → byte identity.

The acceptance bar (ROADMAP item 4 / the replay PR): replaying a
recorded speculative run on any back-end reproduces the identical
commit stream (output sha256) and the identical decision schedule,
including the rollback cascade of a chaos run that killed a worker; a
tampered recording diverges loudly at the right event seq; and the
counterfactual mode re-runs the recorded input under different knobs.
"""

import json

import pytest

from repro.errors import ReplayDivergence
from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman
from repro.sre.replay import decision_signature, replay_path

# tolerance=0.0 fails every check → at least one rollback to reproduce
_FORCED = dict(workload="txt", n_blocks=24, seed=3, tolerance=0.0)
_LIVE = dict(workers=2, feed_gap_s=0.0005)


def _record(tmp_path, name="run.events.jsonl", **kw):
    path = tmp_path / name
    cfg = dict(_FORCED, **kw)
    if cfg.get("executor", "sim") != "sim":
        cfg = dict(_LIVE, **cfg)
    report = run_huffman(config=RunConfig.from_kwargs(
        events_out=str(path), **cfg))
    return path, report


def _assert_faithful(res, report):
    assert res.counterfactual is False
    assert res.schedule_match is True
    assert res.report.output_sha256 == report.output_sha256
    assert res.report.result.outcome == report.result.outcome
    assert res.replayed.rollbacks == res.recorded.rollbacks


def test_replay_sim_reproduces_run_byte_identically(tmp_path):
    path, report = _record(tmp_path)
    assert report.summary.rollbacks >= 1
    res = replay_path(str(path))
    _assert_faithful(res, report)


def test_replay_matches_decision_signature_event_for_event(tmp_path):
    path, report = _record(tmp_path)
    res = replay_path(str(path))
    rec = decision_signature(report.events.events())
    rep = decision_signature(res.report.events.events())
    assert rec == rep and rec  # equal and non-trivial


def test_replay_respeculation_heavy_run(tmp_path):
    # full verification + zero tolerance on markov: every check fails,
    # every failure re-speculates — the densest schedule to force
    path, report = _record(tmp_path, workload="markov", n_blocks=64,
                           verification="full", step=1)
    res = replay_path(str(path))
    _assert_faithful(res, report)
    assert res.recorded.speculations >= 2  # respec actually happened


def test_replay_can_rerecord_its_own_run(tmp_path):
    path, report = _record(tmp_path)
    out = tmp_path / "replayed.events.jsonl"
    res = replay_path(str(path), events_out=str(out))
    _assert_faithful(res, report)
    # the re-recorded log replays too (replay is a fixed point)
    res2 = replay_path(str(out))
    assert res2.schedule_match is True
    assert res2.report.output_sha256 == report.output_sha256


@pytest.mark.threaded
@pytest.mark.slow
def test_replay_threads_pins_live_interleaving(tmp_path):
    path, report = _record(tmp_path, executor="threads")
    res = replay_path(str(path))
    _assert_faithful(res, report)


@pytest.mark.procs
@pytest.mark.slow
def test_replay_procs_shm(tmp_path):
    path, report = _record(tmp_path, executor="procs", transport="shm")
    res = replay_path(str(path))
    _assert_faithful(res, report)


@pytest.mark.procs
@pytest.mark.slow
def test_replay_chaos_kill_reproduces_crash_cascade(tmp_path):
    path, report = _record(tmp_path, name="chaos.events.jsonl",
                           executor="procs", transport="shm",
                           fault_plan="kill@3")
    res = replay_path(str(path))
    _assert_faithful(res, report)
    # the fault plan rode in on the header, so the replayed run saw the
    # same deterministic SIGKILL and recovered the same way
    assert res.recorded.worker_crashes >= 1
    assert res.replayed.worker_crashes == res.recorded.worker_crashes


def test_tampered_check_error_diverges_at_that_seq(tmp_path):
    path, _ = _record(tmp_path)
    lines = path.read_text().splitlines()
    tampered_seq = None
    for i, line in enumerate(lines):
        e = json.loads(line)
        if e.get("kind") in ("check_pass", "check_fail") \
                and e.get("error") is not None:
            e["error"] = e["error"] + 123.456
            tampered_seq = e["seq"]
            lines[i] = json.dumps(e)
            break
    assert tampered_seq is not None
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ReplayDivergence) as exc:
        replay_path(str(path))
    assert exc.value.seq == tampered_seq
    assert "error" in str(exc.value)


def test_tampered_verdict_outcome_diverges(tmp_path):
    # flip a failed check into a pass: the replayed run then takes a
    # different path and the schedule cannot be consumed faithfully
    path, _ = _record(tmp_path)
    lines = path.read_text().splitlines()
    flipped = False
    out = []
    for line in lines:
        e = json.loads(line)
        if not flipped and e.get("kind") == "check_fail":
            e["kind"] = "check_pass"
            flipped = True
        out.append(json.dumps(e))
    assert flipped
    path.write_text("\n".join(out) + "\n")
    with pytest.raises(ReplayDivergence):
        replay_path(str(path))


def test_counterfactual_force_policy(tmp_path):
    path, report = _record(tmp_path)
    res = replay_path(str(path), force={"policy": "aggressive"})
    assert res.counterfactual is True
    assert res.schedule_match is None
    assert res.report.run_config.policy == "aggressive"
    # same deterministic input data → same committed bytes even under a
    # different policy (scheduling changes cost, not the final output)
    assert res.replayed.output_sha256 == res.recorded.output_sha256


def test_counterfactual_force_tolerance_changes_cascade(tmp_path):
    path, _ = _record(tmp_path)  # tolerance 0 → rollback recorded
    res = replay_path(str(path), force={"tolerance": 10.0})
    assert res.counterfactual is True
    assert res.recorded.rollbacks >= 1
    assert res.replayed.rollbacks == 0  # everything tolerated now
    assert res.replayed.outcome == "commit"

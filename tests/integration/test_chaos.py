"""Chaos integration: the pipeline under injected worker faults.

Acceptance bar for the worker supervisor (docs/fault-tolerance.md): under
every fault class — kill, hang, dropped reply, slow worker — a procs+shm
run completes with output byte-identical to the simulated back-end, leaks
no shared-memory segment, and leaves a walkable crash cascade in the
flight recorder. Quarantine composes with the shm transport: a payload
that keeps killing workers force-releases the blocks it pinned.
"""

import glob
from functools import partial

import pytest

from repro.errors import TaskExecutionError, TransportError
from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman, split_blocks
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.obs.events import EventLog
from repro.obs.explain import build_crash_cascades, explain_events
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import make_rng
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.registry import make_executor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore
from repro.sre.task import Task
from repro.workloads import get_workload

pytestmark = pytest.mark.slow

_N_BLOCKS = 16
_BLOCK = 4096


def _my_shm_names():
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro-*")}


def _encoded_stream(executor: str, fault_plan=None, **procs_opts):
    """Manual nonspec pipeline run; returns the assembled packed stream.

    Non-speculative so the task population — and therefore the output —
    is deterministic across back-ends and fault plans.
    """
    data = get_workload("txt").generate(_N_BLOCKS * _BLOCK, make_rng(3))
    blocks = split_blocks(data, _BLOCK)
    registry = MetricsRegistry()
    runtime = Runtime(metrics=registry)
    store = BlockStore(metrics=registry) if executor == "procs" else None
    hconfig = HuffmanConfig(block_size=_BLOCK, speculative=False)
    try:
        if executor == "sim":
            engine = make_executor("sim", runtime, platform="x86")
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks))
            for index, block in enumerate(blocks):
                engine.sim.schedule_at(
                    float(index), lambda i=index, b=block: pipeline.feed_block(i, b)
                )
            engine.run()
        else:
            engine = make_executor("procs", runtime, workers=2, store=store,
                                   fault_plan=fault_plan, **procs_opts)
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks),
                                       store=store)
            engine.start()
            for index, block in enumerate(blocks):
                engine.submit(pipeline.feed_block, index, block)
            engine.close_input()
            assert engine.wait_idle(timeout=600.0)
            engine.shutdown()
            engine.raise_errors()
        packed, total_bits = pipeline.assemble()
        assert pipeline.verify_roundtrip(data)
        return packed.tobytes(), total_bits, registry
    finally:
        if store is not None:
            store.close()


@pytest.mark.parametrize("fault,opts", [
    ("kill@2", {}),
    ("kill@1,kill@1:w1", {}),
    ("hang@1", {"dispatch_timeout_s": 0.5}),
    ("drop@1:w1", {"dispatch_timeout_s": 0.5}),
    ("delay@1:0.2", {}),
    # A straggling seat with a small pipe window parks most of its claimed
    # backlog in its deque, where the healthy seat steals it — and the
    # same chaos with stealing disabled must *also* converge, just slower.
    ("delay@1:0.6", {"batch_max": 2}),
    ("delay@1:0.6", {"batch_max": 2, "steal": False}),
])
def test_chaos_output_byte_identical_and_leak_free(fault, opts):
    reference = _encoded_stream("sim")[:2]
    before = _my_shm_names()
    packed, bits, registry = _encoded_stream("procs", fault_plan=fault, **opts)
    assert (packed, bits) == reference, f"{fault}: output diverged from sim"
    leaked = _my_shm_names() - before
    assert not leaked, f"{fault}: leaked segments {sorted(leaked)}"
    assert registry.gauge("shm_segments").value() == 0
    if fault.startswith(("kill", "hang", "drop")):
        crashes = registry.counter("procs_worker_crashes",
                                   labelnames=("cause",))
        assert sum(s["value"] for s in crashes.snapshot_series()) >= 1


def test_full_speculative_run_survives_worker_kill():
    """The end-to-end acceptance run: procs+shm, speculation on, a worker
    SIGKILLed mid-run — commit, clean round-trip, zero leaks, and the
    churn warning tells the user what happened."""
    before = _my_shm_names()
    report = run_huffman(config=RunConfig(
        workload="txt", n_blocks=24, seed=3, executor="procs",
        transport="shm", workers=2, feed_gap_s=0.0005, fault_plan="kill@3",
    ))
    assert not (_my_shm_names() - before)
    assert report.roundtrip_ok
    assert report.metrics.gauge("shm_segments").value() == 0
    assert report.metrics.value("procs_worker_crashes", cause="crash") == 1
    assert report.metrics.value("procs_worker_respawns") == 1
    assert any("worker_churn" in w for w in report.warnings)


def test_explain_renders_the_crash_cascade():
    report = run_huffman(config=RunConfig(
        workload="txt", n_blocks=24, seed=3, executor="procs",
        transport="shm", workers=2, feed_gap_s=0.0005, fault_plan="kill@3",
    ))
    events = report.events.events()
    cascades = build_crash_cascades(events)
    assert len(cascades) == 1
    assert cascades[0].reason == "crash"
    assert cascades[0].respawns, "respawn not linked to the crash"
    text = explain_events(events)
    assert "worker-crash cascade" in text
    assert "respawn" in text


def _identity(i):
    return {"out": i}


def _use_block(x):
    return {"out": len(x) if hasattr(x, "__len__") else x}


def test_quarantine_force_releases_pinned_shm_blocks():
    """A quarantined payload's shared blocks are released with
    reason="crash"; later releases by the version machinery are tolerated
    no-ops; nothing leaks."""
    before = _my_shm_names()
    registry = MetricsRegistry()
    events = EventLog()
    rt = Runtime(metrics=registry, events=events)
    store = BlockStore(metrics=registry, events=events)
    ref = store.put(b"x" * 8192, refs=2)  # payload pin + a version's pin
    assert ref is not None
    ex = ProcessExecutor(rt, workers=1, fault_plan="kill@1!",
                         max_task_retries=1, max_worker_respawns=5,
                         store=store)
    t = rt.add_task(Task("pinned", _use_block, inputs=("x",)))
    ex.start()
    ex.deliver(t, "x", ref)
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    with pytest.raises(TaskExecutionError, match="quarantined"):
        ex.raise_errors()
    assert registry.value("shm_refs_released", reason="crash") == 2
    assert registry.value("procs_tasks_quarantined") == 1
    assert store.refcount(ref) == 0
    # The version machinery's own late release/acquire must not blow up.
    store.release(ref, reason="rollback")
    store.acquire(ref)
    # But a genuinely unknown ref still trips the double-release guard.
    bogus_events = [e for e in events.events()
                    if e["kind"] == "shm_release" and e.get("reason") == "crash"]
    assert bogus_events and all(e.get("freed") for e in bogus_events)
    store.close()
    assert not (_my_shm_names() - before)
    assert registry.gauge("shm_segments").value() == 0


def test_unknown_ref_release_still_raises():
    store = BlockStore()
    ref = store.put(b"y" * 4096)
    assert ref is not None
    store.release(ref)
    with pytest.raises(TransportError):
        store.release(ref)  # fully released, never forfeited
    store.close()

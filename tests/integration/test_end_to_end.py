"""End-to-end integration tests reproducing the paper's headline behaviours.

These run real (quick-scale) experiments through the public API and assert
the *qualitative* findings of §V — the same statements EXPERIMENTS.md
records quantitatively.
"""

import numpy as np
import pytest

from repro.experiments.runner import RunConfig, run_huffman


def _run(**kw):
    return run_huffman(config=RunConfig(**kw))

pytestmark = pytest.mark.slow

N_TXT = 256
N_BMP = 256
N_PDF = 512


@pytest.fixture(scope="module")
def txt_nonspec():
    return _run(workload="txt", n_blocks=N_TXT, policy="nonspec", seed=0)


@pytest.fixture(scope="module")
def txt_balanced():
    return _run(workload="txt", n_blocks=N_TXT, policy="balanced",
                       step=1, seed=0)


def test_txt_speculation_reduces_latency_and_runtime(txt_nonspec, txt_balanced):
    """The headline: speculation bypasses the serial bottleneck on TXT."""
    assert txt_balanced.avg_latency < 0.85 * txt_nonspec.avg_latency
    assert txt_balanced.completion_time < txt_nonspec.completion_time
    assert txt_balanced.result.outcome == "commit"
    assert txt_balanced.result.spec_stats["rollbacks"] == 0


def test_txt_optimistic_has_minimal_check_overhead(txt_balanced):
    opt = _run(workload="txt", n_blocks=N_TXT, policy="balanced",
                      verification="optimistic", step=1, seed=0)
    full = _run(workload="txt", n_blocks=N_TXT, policy="balanced",
                       verification="full", step=1, seed=0)
    # "The small difference ... indicates that checking has a relatively low
    # impact on performance" (§V-B).
    assert abs(full.avg_latency - opt.avg_latency) < 0.1 * opt.avg_latency
    assert full.result.spec_stats["checks"] > opt.result.spec_stats["checks"]


def test_bmp_small_step_rolls_back_large_step_does_not():
    small = _run(workload="bmp", n_blocks=N_BMP, policy="balanced",
                        step=1, seed=0)
    # quick scale halves the file, so the knee sits at ~half the paper's 8
    large = _run(workload="bmp", n_blocks=N_BMP, policy="balanced",
                        step=8, seed=0)
    assert small.result.spec_stats["rollbacks"] >= 1
    assert large.result.spec_stats["rollbacks"] == 0
    assert large.avg_latency < small.avg_latency


def test_pdf_rollbacks_hurt_aggressive_most():
    nonspec = _run(workload="pdf", n_blocks=N_PDF, policy="nonspec", seed=0)
    aggressive = _run(workload="pdf", n_blocks=N_PDF, policy="aggressive",
                             step=1, seed=0)
    conservative = _run(workload="pdf", n_blocks=N_PDF,
                               policy="conservative", step=1, seed=0)
    assert aggressive.result.spec_stats["rollbacks"] >= 1
    # conservative only burns idle resources: stays close to non-spec
    assert conservative.avg_latency < 1.15 * nonspec.avg_latency
    assert aggressive.avg_latency > conservative.avg_latency


def test_pdf_optimistic_catastrophic_on_rollback():
    opt = _run(workload="pdf", n_blocks=N_PDF, policy="balanced",
                      verification="optimistic", step=1, seed=0)
    baseline = _run(workload="pdf", n_blocks=N_PDF, policy="balanced",
                           verification="every_k", step=1, seed=0)
    assert opt.result.outcome == "recompute"
    assert opt.avg_latency > baseline.avg_latency


def test_pdf_tolerance_ordering():
    """Fig. 9: 2% detects the drift late and loses; 5% never rolls back and
    wins, at a small compression cost."""
    runs = {
        tol: _run(workload="pdf", n_blocks=N_PDF, policy="balanced",
                         step=1, tolerance=tol, seed=0)
        for tol in (0.01, 0.02, 0.05)
    }
    assert runs[0.05].result.spec_stats["rollbacks"] == 0
    assert runs[0.01].result.spec_stats["rollbacks"] >= 1
    assert runs[0.05].avg_latency < runs[0.01].avg_latency < runs[0.02].avg_latency
    assert runs[0.05].result.compression_ratio < runs[0.01].result.compression_ratio


def test_cell_conservative_starves_speculation():
    """Fig. 4's Cell-specific finding: multiple buffering keeps conservative
    workers fed with natural (count) tasks, so speculative work is
    dispatched much later than under balanced — while on x86 (depth-1
    dispatch) both policies start speculating at the same instant."""

    def first_spec_start(report):
        starts = [r for r in report.trace.of_kind("task_start")
                  if r.detail.get("speculative")
                  and r.detail.get("task_kind") == "encode"]
        return starts[0].time

    runs = {
        (plat, pol): _run(workload="txt", n_blocks=N_TXT, platform=plat,
                                 policy=pol, step=1, seed=0, trace=True)
        for plat in ("x86", "cell") for pol in ("balanced", "conservative")
    }
    x86_ratio = (first_spec_start(runs[("x86", "conservative")])
                 / first_spec_start(runs[("x86", "balanced")]))
    cell_ratio = (first_spec_start(runs[("cell", "conservative")])
                  / first_spec_start(runs[("cell", "balanced")]))
    assert x86_ratio < 1.1
    assert cell_ratio > 1.3
    # and the latency cost follows: conservative is the worst speculative
    # policy on Cell
    assert (runs[("cell", "conservative")].avg_latency
            > runs[("cell", "balanced")].avg_latency)


def test_socket_latency_negligible_vs_transfer_txt():
    r = _run(workload="txt", n_blocks=128, io="socket",
                    policy="balanced", step=1, reduce_ratio=8,
                    offset_fanout=8, seed=0)
    transfer = r.arrivals[-1]
    assert r.avg_latency < 0.05 * transfer


def test_more_cpus_reduce_latency_under_slow_io():
    from repro.iomodels import SocketModel
    lat = {}
    for cpus in (2, 4, 8):
        r = _run(workload="txt", n_blocks=128,
                        io=SocketModel(per_block_us=300.0, jitter=0.0),
                        policy="balanced", step=1, reduce_ratio=8,
                        offset_fanout=8, workers=cpus, seed=0)
        lat[cpus] = r.avg_latency
    assert lat[2] > lat[4] >= lat[8]


def test_compression_output_identical_to_reference_when_recomputed():
    """A recompute outcome uses the true tree: byte-identical to the
    sequential reference encoder."""
    from repro.huffman.reference import reference_compress
    from repro.workloads import get_workload
    data = get_workload("pdf").generate(64 * 4096, seed=3)
    r = _run(workload=data, policy="balanced", step=1,
                    verification="optimistic", seed=3)
    if r.result.outcome == "recompute":
        _, ref_bits, _ = reference_compress(data)
        assert r.result.compressed_bits == ref_bits


def test_socket_pdf_rollback_plateau():
    """Fig. 7b's signature: after the rollback, every block already on hand
    is re-encoded almost instantly — a flat plateau in completion times —
    and later blocks track their arrivals again."""
    r = _run(workload="pdf", n_blocks=256, io="socket",
                    policy="balanced", step=1, reduce_ratio=8,
                    offset_fanout=8, seed=0)
    if r.result.spec_stats.get("rollbacks", 0) == 0:
        pytest.skip("no rollback at this geometry/seed")
    completions = r.result.completions
    arrivals = r.arrivals
    # find the largest group of blocks completing within a tight window
    order = np.sort(completions)
    window = (arrivals[-1] - arrivals[0]) * 0.02  # 2% of the transfer
    best = max(
        np.searchsorted(order, t + window) - i
        for i, t in enumerate(order)
    )
    assert best >= 32, "expected a re-encode burst (plateau) after rollback"
    # the last blocks complete shortly after they arrive (tracking arrivals)
    tail_latency = (completions - arrivals)[-16:]
    assert tail_latency.max() < 0.1 * (arrivals[-1] - arrivals[0])

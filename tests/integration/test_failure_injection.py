"""Failure injection: force mis-speculation and awkward timings.

The rollback machinery must stay consistent when speculation fails at the
worst moments — while encodes are running, while the prediction is still in
flight, or repeatedly.
"""

import numpy as np
import pytest

from repro.core.frequency import FullVerification
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import TaskState

BLOCK = 256


def _setup(n_blocks, **config_kw):
    base = dict(block_size=BLOCK, reduce_ratio=2, offset_fanout=4,
                speculative=True, step=1, verify_k=2, tolerance=0.01)
    base.update(config_kw)
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=2), policy="balanced", workers=2)
    pipe = HuffmanPipeline(rt, HuffmanConfig(**base), n_blocks)
    return rt, ex, pipe


def _sectioned_data(n_blocks, sections):
    """Data whose distribution changes at every section boundary."""
    rng = np.random.default_rng(0)
    out = bytearray()
    per = n_blocks * BLOCK // sections
    for s in range(sections):
        lo, hi = 10 * s, 10 * s + 40
        out += bytes(rng.integers(lo, hi, per, dtype=np.uint8))
    out += bytes(n_blocks * BLOCK - len(out))
    return bytes(out)


def test_repeated_rollbacks_under_full_verification():
    """Constantly shifting data under full verification: many rollbacks,
    output still correct."""
    n = 16
    data = _sectioned_data(n, sections=8)
    rt, ex, pipe = _setup(n, verification=FullVerification())
    for i in range(n):
        ex.sim.schedule_at(i * 10.0, lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.manager.stats.rollbacks >= 2
    assert pipe.verify_roundtrip(data)
    assert result.outcome in ("commit", "recompute")


def test_forced_rollback_via_manual_abort():
    """Abort the active speculative subgraph mid-run by hand (simulating an
    external destroy signal); the run must still finish and verify."""
    n = 16
    rng = np.random.default_rng(3)
    data = bytes(rng.choice(np.arange(48, 58, dtype=np.uint8), n * BLOCK))
    rt, ex, pipe = _setup(n)
    for i in range(n):
        ex.sim.schedule_at(i * 5.0, lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))

    def sabotage():
        manager = pipe.manager
        if manager.active_version is not None:
            manager._rollback(manager.active_version)

    ex.sim.schedule_at(120.0, sabotage)
    end = ex.run()
    result = pipe.result(end)
    assert pipe.verify_roundtrip(data)
    assert result.outcome in ("commit", "recompute")
    assert pipe.manager.stats.rollbacks >= 1


def test_zero_tolerance_forces_exact_speculation():
    """With an exact (zero) tolerance, almost any drift recomputes —
    classical value prediction without the paper's tolerance relaxation."""
    n = 12
    data = _sectioned_data(n, sections=4)
    rt, ex, pipe = _setup(n, tolerance=0.0)
    for i in range(n):
        ex.sim.schedule_at(i * 10.0, lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.verify_roundtrip(data)
    assert result.outcome == "recompute" or result.spec_stats["rollbacks"] >= 1


def test_all_versions_terminal_after_run():
    n = 16
    data = _sectioned_data(n, sections=8)
    rt, ex, pipe = _setup(n, verification=FullVerification())
    for i in range(n):
        ex.sim.schedule_at(i * 8.0, lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    ex.run()
    pipe.result()
    for version in pipe.manager.versions:
        for task in version.tasks:
            assert task.state in (TaskState.DONE, TaskState.ABORTED), task
    # no task left mid-flight anywhere
    assert rt.pending_tasks() == []

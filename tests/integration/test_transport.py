"""End-to-end shared-memory transport: identity, reclamation, no leaks.

The acceptance bar for the shm transport: (a) the encoded stream is
byte-identical whichever executor/transport combination produced it,
(b) every shared-memory segment is reclaimed after a clean commit run
*and* after a forced-rollback run, (c) the process back-end actually
ships fewer payload bytes with refs than with pickled blocks.
"""

import glob

import pytest

from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman, split_blocks
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.obs.metrics import MetricsRegistry
from repro.sre.registry import make_executor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore
from repro.workloads import get_workload

pytestmark = pytest.mark.slow

_N_BLOCKS = 24
_BLOCK = 4096


def _my_shm_names():
    """Names under /dev/shm created by this repo's stores (this process)."""
    return {p.rsplit("/", 1)[-1] for p in glob.glob("/dev/shm/repro-*")}


def _encoded_stream(executor: str, transport: str) -> tuple[bytes, int]:
    """Run the pipeline manually and return the assembled packed stream.

    Non-speculative: live back-ends time speculation off the wall clock,
    so only the nonspec task population is deterministic across them.
    """
    from repro.sim.rng import make_rng

    data = get_workload("txt").generate(_N_BLOCKS * _BLOCK, make_rng(3))
    blocks = split_blocks(data, _BLOCK)
    registry = MetricsRegistry()
    runtime = Runtime(metrics=registry)
    store = BlockStore(metrics=registry) if transport == "shm" else None
    hconfig = HuffmanConfig(block_size=_BLOCK, speculative=False)
    try:
        if executor == "sim":
            engine = make_executor("sim", runtime, platform="x86")
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks), store=store)
            for index, block in enumerate(blocks):
                engine.sim.schedule_at(
                    float(index), lambda i=index, b=block: pipeline.feed_block(i, b)
                )
            engine.run()
        else:
            engine = make_executor(executor, runtime, workers=2)
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks), store=store)
            engine.start()
            for index, block in enumerate(blocks):
                engine.submit(pipeline.feed_block, index, block)
            engine.close_input()
            assert engine.wait_idle(timeout=600.0)
            engine.shutdown()
            engine.raise_errors()
        packed, total_bits = pipeline.assemble()
        assert pipeline.verify_roundtrip(data)
        return packed.tobytes(), total_bits
    finally:
        if store is not None:
            store.close()


def test_encoded_stream_byte_identical_across_executors_and_transports():
    reference = _encoded_stream("sim", "pickle")
    for executor in ("sim", "threads", "procs"):
        for transport in ("pickle", "shm"):
            if (executor, transport) == ("sim", "pickle"):
                continue
            assert _encoded_stream(executor, transport) == reference, (
                f"{executor}/{transport} diverged from sim/pickle"
            )


def _leak_checked_run(cfg: RunConfig):
    before = _my_shm_names()
    report = run_huffman(config=cfg)
    leaked = _my_shm_names() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    return report


def test_speculative_shm_run_commits_without_leaks():
    report = _leak_checked_run(RunConfig(
        workload="txt", n_blocks=_N_BLOCKS, seed=3, executor="procs",
        transport="shm", workers=2, feed_gap_s=0.0005,
    ))
    assert report.roundtrip_ok
    reg = report.metrics
    assert reg.gauge("shm_segments").value() == 0
    released = reg.counter("shm_refs_released", labelnames=("reason",))
    # one base ref per block commits through the sink
    assert released.labels(reason="commit").value() >= _N_BLOCKS


def test_forced_rollback_releases_refs_and_segments():
    """tolerance=0.0 fails every check: all speculated versions roll back
    or the run degrades to recompute — either way no segment survives."""
    report = _leak_checked_run(RunConfig(
        workload="txt", n_blocks=_N_BLOCKS, seed=3, executor="procs",
        transport="shm", workers=2, feed_gap_s=0.0005, tolerance=0.0,
    ))
    assert report.roundtrip_ok
    assert report.result.outcome in ("recompute", "commit")
    reg = report.metrics
    assert reg.gauge("shm_segments").value() == 0
    released = reg.counter("shm_refs_released", labelnames=("reason",))
    by_reason = {s["labels"]["reason"]: s["value"]
                 for s in released.snapshot_series()}
    assert by_reason.get("commit", 0) >= _N_BLOCKS  # base refs still commit
    if report.result.spec_stats.get("rollbacks", 0) > 0:
        assert by_reason.get("rollback", 0) > 0


def test_shm_ships_fewer_payload_bytes_than_pickle():
    common = dict(workload="txt", n_blocks=_N_BLOCKS, seed=3,
                  executor="procs", workers=2, feed_gap_s=0.0005,
                  speculative=False)
    pickle_run = run_huffman(config=RunConfig.from_kwargs(
        transport="pickle", **common))
    shm_run = run_huffman(config=RunConfig.from_kwargs(
        transport="shm", **common))
    sent_pickle = pickle_run.metrics.value("procs_payload_bytes")
    sent_shm = shm_run.metrics.value("procs_payload_bytes")
    avoided = shm_run.metrics.value("procs_payload_bytes_avoided")
    assert sent_shm * 10 <= sent_pickle, (
        f"shm shipped {sent_shm:.0f} B vs pickle {sent_pickle:.0f} B"
    )
    assert avoided > 0

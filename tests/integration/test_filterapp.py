"""Integration tests for the Fig. 1 filter application."""

import numpy as np
import pytest

from repro.experiments.config import RunConfig
from repro.filterapp import FilterDesignProblem, frequency_response
from repro.filterapp.runner import run_filter_experiment


def _run(**kw):
    return run_filter_experiment(config=RunConfig.for_app("filter", **kw))


# ----------------------------------------------------------------- solver
def test_solver_converges():
    problem = FilterDesignProblem(iterations=30)
    iterates = problem.solve()
    errs = [problem.response_error(c) for c in iterates]
    assert errs[-1] < errs[0]
    assert errs[-1] < 0.5


def test_iterates_approach_final():
    problem = FilterDesignProblem(iterations=30)
    iterates = problem.solve()
    final = iterates[-1]
    dist = [FilterDesignProblem.coefficient_error(c, final) for c in iterates]
    # distances to the final iterate shrink (eventually monotone)
    assert dist[5] > dist[15] > dist[25]
    assert dist[-1] == 0.0


def test_frequency_response_shape():
    coeffs = FilterDesignProblem().initial_coefficients()
    resp = frequency_response(coeffs, n_points=128)
    assert resp.shape == (128,)
    assert np.all(resp >= 0)


def test_problem_validation():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError):
        FilterDesignProblem(cutoff=0.7)
    with pytest.raises(ExperimentError):
        FilterDesignProblem(n_taps=1)


# ----------------------------------------------------------------- pipeline
def test_speculative_filter_run_commits():
    report = _run(n_blocks=24, iterations=24, step=4,
                                   tolerance=0.05, seed=0)
    assert report.result.outcome == "commit"
    assert report.extras["output_ok"]
    assert report.extras["speculations"] >= 1


def test_speculation_beats_nonspec_latency():
    spec = _run(n_blocks=24, step=4, tolerance=0.05, seed=0)
    nonspec = _run(n_blocks=24, speculative=False, seed=0)
    assert nonspec.result.outcome == "non_speculative"
    assert spec.avg_latency < nonspec.avg_latency
    assert nonspec.extras["output_ok"]


def test_too_early_speculation_rolls_back():
    """Speculating on iteration 1 with a tight tolerance: the coefficients
    are still moving, so checks fail and the run recovers."""
    report = _run(n_blocks=24, step=1, verify_k=2,
                                   tolerance=0.005, seed=0)
    assert report.extras["rollbacks"] >= 1
    assert report.extras["output_ok"]
    assert report.result.outcome in ("commit", "recompute")


def test_committed_quality_within_tolerance_of_final():
    problem_final = FilterDesignProblem(iterations=24)
    final_err = problem_final.response_error(problem_final.solve()[-1])
    report = _run(n_blocks=16, step=8, tolerance=0.05, seed=0)
    if report.result.outcome == "commit":
        # committed (possibly early) coefficients are close to final quality
        assert report.extras["response_error"] < final_err + 0.10


def test_ordered_arrival_enforced():
    from repro.errors import ExperimentError
    from repro.filterapp.pipeline import FilterConfig, FilterPipeline
    from repro.sre.runtime import Runtime
    rt = Runtime()
    pipe = FilterPipeline(rt, FilterDesignProblem(), FilterConfig(), 4)
    with pytest.raises(ExperimentError):
        pipe.feed_block(2, np.zeros(8))

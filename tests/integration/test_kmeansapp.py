"""Tests for the speculative k-means application."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.kmeansapp import KMeansModel, gaussian_mixture_stream, run_kmeans_experiment


def _run(**kw):
    return run_kmeans_experiment(config=RunConfig.for_app("kmeans", **kw))


# ----------------------------------------------------------------- kernels
def test_assign_picks_nearest():
    model = KMeansModel(n_clusters=2, dim=1)
    centroids = np.array([[0.0], [10.0]])
    points = np.array([[1.0], [9.0], [4.9], [5.1]])
    labels = model.assign(points, centroids)
    assert list(labels) == [0, 1, 0, 1]


def test_inertia_zero_at_centroids():
    model = KMeansModel(n_clusters=3, dim=2)
    centroids = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 1.0]])
    assert model.inertia(centroids, centroids) == 0.0


def test_minibatch_step_moves_toward_data():
    model = KMeansModel(n_clusters=1, dim=1)
    centroids = np.array([[0.0]])
    counts = np.zeros(1, dtype=np.int64)
    block = np.full((100, 1), 8.0)
    new_c, new_n = model.minibatch_step(centroids, counts, block)
    assert new_n[0] == 100
    assert 7.0 < new_c[0, 0] <= 8.0
    # inputs untouched (kernels must stay pure for the runtime)
    assert centroids[0, 0] == 0.0 and counts[0] == 0


def test_centroid_error_zero_for_identical():
    model = KMeansModel(n_clusters=2, dim=2)
    rng = np.random.default_rng(0)
    probe = rng.normal(size=(100, 2))
    c = rng.normal(size=(2, 2))
    assert model.centroid_error(c, c, probe) == 0.0


def test_centroid_error_positive_for_worse_prediction():
    model = KMeansModel(n_clusters=2, dim=2)
    rng = np.random.default_rng(0)
    probe = np.concatenate([
        rng.normal([0, 0], 0.5, size=(50, 2)),
        rng.normal([10, 10], 0.5, size=(50, 2)),
    ])
    good = np.array([[0.0, 0.0], [10.0, 10.0]])
    bad = np.array([[5.0, 5.0], [6.0, 6.0]])
    assert model.centroid_error(bad, good, probe) > 0.5


def test_stream_shapes_and_determinism():
    a = gaussian_mixture_stream(4, 64, n_clusters=3, dim=2, seed=7)
    b = gaussian_mixture_stream(4, 64, n_clusters=3, dim=2, seed=7)
    assert a.shape == (4, 64, 2)
    assert np.array_equal(a, b)


def test_stream_drift_settles():
    s = gaussian_mixture_stream(20, 256, n_clusters=4, dim=2,
                                drift_blocks=8, seed=1)
    early = s[0].mean(axis=0)
    late_a, late_b = s[15].mean(axis=0), s[19].mean(axis=0)
    # post-drift blocks agree with each other more than with the first
    assert np.linalg.norm(late_a - late_b) < np.linalg.norm(early - late_a)


def test_model_validation():
    with pytest.raises(ExperimentError):
        KMeansModel(n_clusters=0)


# ----------------------------------------------------------------- pipeline
def test_speculative_run_commits_and_labels_verified():
    report = _run(n_blocks=24, step=2, seed=0)
    assert report.result.outcome == "commit"
    assert report.extras["labels_ok"]
    assert report.extras["speculations"] >= 1


def test_speculation_slashes_latency():
    spec = _run(n_blocks=24, step=2, seed=0)
    nonspec = _run(n_blocks=24, speculative=False, seed=0)
    assert spec.avg_latency < 0.3 * nonspec.avg_latency


def test_tolerance_bounds_inertia_excess():
    spec = _run(n_blocks=24, step=2, tolerance=0.05, seed=0)
    nonspec = _run(n_blocks=24, speculative=False, seed=0)
    if spec.result.outcome == "commit":
        # clustering quality within ~the tolerance band of the full fit
        assert spec.extras["inertia"] <= nonspec.extras["inertia"] * 1.15


def test_drifting_stream_rolls_back():
    report = _run(n_blocks=24, step=1, verify_k=2,
                                   drift_blocks=10, tolerance=0.02, seed=0)
    assert report.extras["rollbacks"] >= 1
    assert report.extras["labels_ok"]
    assert report.result.outcome in ("commit", "recompute")


def test_tight_tolerance_recomputes_or_rolls_back():
    report = _run(n_blocks=24, step=1, verify_k=2,
                                   drift_blocks=10, tolerance=1e-6, seed=0)
    assert report.extras["rollbacks"] >= 1 or report.result.outcome == "recompute"
    assert report.extras["labels_ok"]

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.platforms import X86Platform
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import Task


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def runtime() -> Runtime:
    return Runtime(trace=TraceRecorder(enabled=True))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


class Harness:
    """A runtime + simulated executor pair with helpers for graph tests."""

    def __init__(self, workers: int = 4, policy: str = "conservative") -> None:
        self.runtime = Runtime(trace=TraceRecorder(enabled=True))
        self.platform = X86Platform(workers=workers)
        self.executor = SimulatedExecutor(
            self.runtime, self.platform, policy=policy, workers=workers
        )
        self.sim = self.executor.sim
        self.log: list[tuple[str, object]] = []

    def task(self, name: str, fn=None, inputs=(), **kw) -> Task:
        if fn is None:
            fn = lambda **kws: {"out": sum(v for v in kws.values())} if kws else {"out": 1}
        t = Task(name, fn, inputs=inputs, **kw)
        self.runtime.add_task(t)
        return t

    def record_sink(self, task: Task, port: str = "out") -> None:
        self.runtime.connect_sink(
            task, port, lambda v, n=task.name: self.log.append((n, v))
        )

    def run(self, **kw) -> float:
        return self.executor.run(**kw)


@pytest.fixture
def harness() -> Harness:
    return Harness()


def make_harness(**kw) -> Harness:
    return Harness(**kw)

"""Property-based tests over random task DAGs.

Whatever DAG shape, worker count, policy and platform: the simulated
executor must complete every task exactly once, respect dataflow order, and
end quiescent with deterministic replay.
"""

from hypothesis import given, settings, strategies as st

from repro.platforms import CellPlatform, X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState


dag_spec = st.fixed_dictionaries({
    # edges[i] = set of predecessor indices (all < i): guarantees a DAG
    "edge_seed": st.lists(st.integers(min_value=0, max_value=10 ** 6),
                          min_size=2, max_size=40),
    "workers": st.integers(min_value=1, max_value=8),
    "policy": st.sampled_from(["conservative", "aggressive", "balanced", "fcfs"]),
    "cell": st.booleans(),
    "spec_mask": st.integers(min_value=0, max_value=2 ** 30),
})


def _build(spec):
    n = len(spec["edge_seed"])
    rt = Runtime()
    plat = CellPlatform(workers=spec["workers"]) if spec["cell"] \
        else X86Platform(workers=spec["workers"])
    ex = SimulatedExecutor(rt, plat, policy=spec["policy"],
                           workers=spec["workers"])
    finish_order: list[int] = []
    tasks: list[Task] = []
    preds: list[list[int]] = []
    for i, seed in enumerate(spec["edge_seed"]):
        # up to 3 predecessors, derived deterministically from the seed
        p = sorted({seed % (i + 1) % max(i, 1), (seed // 7) % max(i, 1),
                    (seed // 49) % max(i, 1)} - {i}) if i else []
        p = [x for x in p if x < i][:3]
        ports = tuple(f"in{k}" for k in range(len(p)))
        speculative = bool((spec["spec_mask"] >> i) & 1)

        def fn(_i=i, **kwargs):
            finish_order.append(_i)
            return {"out": _i}

        t = Task(f"t{i}", fn, inputs=ports, speculative=speculative,
                 depth=i % 5, cost_hint={"bytes": float(seed % 1000)})
        tasks.append(t)
        preds.append(p)
        rt.add_task(t)
    for i, p in enumerate(preds):
        for k, j in enumerate(p):
            rt.connect(tasks[j], "out", tasks[i], f"in{k}")
    return rt, ex, tasks, preds, finish_order


@given(dag_spec)
@settings(max_examples=40, deadline=None)
def test_every_task_completes_exactly_once(spec):
    rt, ex, tasks, preds, finish_order = _build(spec)
    ex.run()
    assert sorted(finish_order) == sorted(set(finish_order))
    assert len(finish_order) == len(tasks)
    assert all(t.state is TaskState.DONE for t in tasks)
    assert rt.pending_tasks() == []


@given(dag_spec)
@settings(max_examples=40, deadline=None)
def test_dataflow_order_respected(spec):
    _, ex, tasks, preds, finish_order = _build(spec)
    ex.run()
    position = {i: k for k, i in enumerate(finish_order)}
    for i, p in enumerate(preds):
        for j in p:
            assert position[j] < position[i], f"t{j} must finish before t{i}"


@given(dag_spec)
@settings(max_examples=15, deadline=None)
def test_replay_determinism(spec):
    def run_once():
        _, ex, _, _, order = _build(spec)
        ex.run()
        return order

    assert run_once() == run_once()

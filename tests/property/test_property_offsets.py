"""Property-based tests for the offset chain."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.huffman.codec import encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.offsets import block_bits, group_offsets
from repro.huffman.tree import HuffmanTree


blocks_strategy = st.lists(st.binary(min_size=1, max_size=200), min_size=1,
                           max_size=16)


@given(blocks_strategy)
@settings(max_examples=50, deadline=None)
def test_offsets_are_exact_encode_positions(blocks):
    whole = b"".join(blocks)
    tree = HuffmanTree.from_histogram(byte_histogram(whole))
    hists = [byte_histogram(b) for b in blocks]
    offsets, end = group_offsets(hists, tree, 0)
    running = 0
    for b, off in zip(blocks, offsets):
        assert off == running
        _, nbits = encode_block(b, tree)
        running += nbits
    assert end == running


@given(blocks_strategy, st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_any_group_partition_gives_same_offsets(blocks, group_size):
    """Splitting the offset computation into chained groups of any size
    yields identical per-block offsets — the invariant that makes the
    offset fan-out a free parameter."""
    whole = b"".join(blocks)
    tree = HuffmanTree.from_histogram(byte_histogram(whole))
    hists = [byte_histogram(b) for b in blocks]
    ref, ref_end = group_offsets(hists, tree, 0)
    got = []
    start = 0
    for g in range(0, len(hists), group_size):
        offs, start = group_offsets(hists[g : g + group_size], tree, start)
        got.append(offs)
    assert np.array_equal(ref, np.concatenate(got))
    assert start == ref_end


@given(st.binary(min_size=1, max_size=400))
@settings(max_examples=50, deadline=None)
def test_block_bits_nonnegative_and_bounded(data):
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    bits = block_bits(byte_histogram(data), tree)
    assert bits >= len(data)  # every code is at least 1 bit
    assert bits <= len(data) * 63

"""Property-based tests for end-to-end speculation invariants.

Whatever the scheduling policy, step size, verification policy, tolerance
or data drift: the pipeline's committed output must decode to the input,
every block must have exactly one authoritative encode, and the wait buffer
must never leak rolled-back entries.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

BLOCK = 256


def _run_pipeline(data, *, policy, step, verification, tolerance, gap):
    blocks = [data[i:i + BLOCK] for i in range(0, len(data), BLOCK)]
    config = HuffmanConfig(
        block_size=BLOCK, reduce_ratio=2, offset_fanout=4, speculative=True,
        step=step, verification=verification, verify_k=2, tolerance=tolerance,
    )
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=3), policy=policy, workers=3)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(i * gap, lambda i=i, b=b: pipe.feed_block(i, b))
    end = ex.run()
    return pipe, pipe.result(end), data


def _payload(draw_bytes: bytes, n_blocks: int) -> bytes:
    reps = (n_blocks * BLOCK) // max(len(draw_bytes), 1) + 1
    return (draw_bytes * reps)[: n_blocks * BLOCK]


spec_runs = st.fixed_dictionaries({
    "seed_bytes": st.binary(min_size=4, max_size=64),
    "drift": st.booleans(),
    "n_blocks": st.integers(min_value=2, max_value=12),
    "policy": st.sampled_from(["conservative", "aggressive", "balanced", "fcfs"]),
    "step": st.integers(min_value=0, max_value=4),
    "verification": st.sampled_from(["every_k", "optimistic", "full"]),
    "tolerance": st.sampled_from([0.0, 0.01, 0.1, 5.0]),
    "gap": st.sampled_from([0.0, 5.0, 200.0]),
})


@given(spec_runs)
@settings(max_examples=40, deadline=None)
def test_speculation_never_corrupts_output(cfg):
    data = _payload(cfg["seed_bytes"], cfg["n_blocks"])
    if cfg["drift"]:
        # Append a differently-distributed tail to provoke rollbacks.
        rng = np.random.default_rng(len(data))
        tail = bytes(rng.integers(0, 256, len(data) // 2, dtype=np.uint8))
        data = (data + tail)[: cfg["n_blocks"] * BLOCK]
    pipe, result, original = _run_pipeline(
        data, policy=cfg["policy"], step=cfg["step"],
        verification=cfg["verification"], tolerance=cfg["tolerance"],
        gap=cfg["gap"],
    )
    # 1. output decodes to the input, whatever happened along the way
    assert pipe.verify_roundtrip(original)
    # 2. exactly one authoritative encode per block
    valid = pipe.valid_versions()
    for block in range(result.n_blocks):
        hits = [a for a in pipe.collector.encode_attempts(block) if a[1] in valid]
        assert len(hits) == 1
    # 3. a decision was reached
    assert result.outcome in ("commit", "recompute")
    # 4. committed outcome implies no pending wait-buffer entries
    if result.outcome == "commit" and pipe.barrier is not None:
        committed = pipe.barrier.committed_version
        assert committed is not None
        for v in pipe.manager.versions:
            assert pipe.barrier.pending(v.vid) == 0
    # 5. latencies are positive and finite
    assert np.all(result.latencies > 0)
    assert np.all(np.isfinite(result.latencies))


@given(spec_runs)
@settings(max_examples=20, deadline=None)
def test_rollback_leaves_no_speculative_residue(cfg):
    """After a run that recomputed, every speculative version's tasks are
    terminal and its buffer entries discarded."""
    data = _payload(cfg["seed_bytes"], cfg["n_blocks"])
    rng = np.random.default_rng(1)
    tail = bytes(rng.integers(0, 256, len(data), dtype=np.uint8))
    data = (data[: len(data) // 2] + tail)[: cfg["n_blocks"] * BLOCK]
    pipe, result, _ = _run_pipeline(
        data, policy=cfg["policy"], step=cfg["step"],
        verification=cfg["verification"], tolerance=cfg["tolerance"],
        gap=cfg["gap"],
    )
    from repro.sre.task import TaskState
    for version in (pipe.manager.versions if pipe.manager else []):
        if version.committed or version.active:
            continue
        for task in version.tasks:
            assert task.state in (TaskState.ABORTED, TaskState.DONE)
        assert pipe.barrier.pending(version.vid) == 0

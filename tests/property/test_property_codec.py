"""Property-based tests for the Huffman codec (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.huffman.codec import assemble_stream, decode_stream, encode_block
from repro.huffman.histogram import byte_histogram, merge_histograms
from repro.huffman.tree import HuffmanTree

payloads = st.binary(min_size=1, max_size=2048)


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_roundtrip_any_bytes(data):
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


@given(payloads, payloads)
@settings(max_examples=40, deadline=None)
def test_roundtrip_under_foreign_tree(train, data):
    """Any total tree decodes anything it encoded — the invariant that makes
    tolerant (inexact) speculation safe."""
    tree = HuffmanTree.from_histogram(byte_histogram(train))
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_optimal_tree_never_beaten_by_foreign_tree(data):
    """The tree built from the data's own histogram minimises encoded size
    (optimality of Huffman coding over prefix codes)."""
    hist = byte_histogram(data)
    own = HuffmanTree.from_histogram(hist)
    foreign = HuffmanTree.from_histogram(byte_histogram(data[::2] or b"\x00"))
    assert own.encoded_bits(hist) <= foreign.encoded_bits(hist)


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_size_formula_matches_encoding(data):
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    _, nbits = encode_block(data, tree)
    assert nbits == tree.encoded_bits(byte_histogram(data))


@given(st.lists(st.binary(min_size=1, max_size=256), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_blockwise_assembly_equals_whole(blocks):
    """Encoding block-by-block at chained offsets and assembling equals
    encoding the concatenation in one shot."""
    whole = b"".join(blocks)
    tree = HuffmanTree.from_histogram(byte_histogram(whole))
    pieces = []
    offset = 0
    for b in blocks:
        packed, nbits = encode_block(b, tree)
        pieces.append((offset, packed, nbits))
        offset += nbits
    stream = assemble_stream(pieces, offset)
    whole_packed, whole_bits = encode_block(whole, tree)
    assert whole_bits == offset
    assert np.array_equal(stream, whole_packed)


@given(st.lists(st.binary(min_size=0, max_size=512), min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_histogram_merge_associativity(blocks):
    whole = b"".join(blocks)
    merged = merge_histograms(byte_histogram(b) for b in blocks)
    assert np.array_equal(merged, byte_histogram(whole))


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_kraft_equality_always(data):
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    kraft = np.sum(2.0 ** -tree.lengths.astype(np.float64))
    assert abs(kraft - 1.0) < 1e-9


@given(payloads)
@settings(max_examples=60, deadline=None)
def test_lengths_ordered_by_frequency(data):
    """More frequent symbols never get strictly longer codes."""
    hist = byte_histogram(data)
    tree = HuffmanTree.from_histogram(hist)
    present = np.nonzero(hist)[0]
    for a in present:
        for b in present:
            if hist[a] > hist[b]:
                assert tree.lengths[a] <= tree.lengths[b]

"""Property-based tests of the speculation manager's state machine.

Random update streams (drifting scalar values), random knobs: whatever the
sequence, the protocol invariants must hold — at most one commit, a final
decision exactly once, stale verdicts never resurrect rolled-back versions,
and every version ends in a consistent terminal state.
"""

from hypothesis import given, settings, strategies as st

from repro.core.frequency import EveryK, FullVerification, Optimistic, SpeculationInterval
from repro.core.manager import SpeculationManager
from repro.core.spec import SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.sre.task import Task

from tests.conftest import make_harness


manager_runs = st.fixed_dictionaries({
    "values": st.lists(
        st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
        min_size=2, max_size=30),
    "step": st.integers(min_value=0, max_value=5),
    "verification": st.sampled_from(["every1", "every2", "optimistic", "full"]),
    "tolerance": st.sampled_from([0.001, 0.05, 0.5, 10.0]),
})

_VERIFICATIONS = {
    "every1": lambda: EveryK(1),
    "every2": lambda: EveryK(2),
    "optimistic": Optimistic,
    "full": FullVerification,
}


def _drive(cfg):
    h = make_harness()
    flushed = []
    barrier = WaitBuffer(sink=lambda k, v, t: flushed.append((k, v)))
    launched = []

    def launch(version):
        launched.append(version)
        work = Task(f"w:v{version.vid}", lambda v=version.value: {"out": v},
                    kind="encode", speculative=True)
        version.register(work)
        h.runtime.add_task(work)
        h.runtime.connect_sink(
            work, "out",
            lambda v, ver=version: barrier.deposit(ver.vid, "k", v, 0.0))

    spec = SpeculationSpec(
        name="prop",
        predictor=lambda v, n: Task(n, lambda x=v: {"out": x}, kind="predict"),
        validator=lambda p, c, r: abs(p - c) / max(abs(c), 1e-9),
        launch=launch,
        recompute=lambda v: None,
        barrier=barrier,
        tolerance=RelativeTolerance(cfg["tolerance"]),
        interval=SpeculationInterval(cfg["step"]),
        verification=_VERIFICATIONS[cfg["verification"]](),
    )
    manager = SpeculationManager(h.runtime, spec)
    values = cfg["values"]
    for i, v in enumerate(values[:-1]):
        manager.offer_update(i, v)
        h.run()
    manager.offer_update(len(values) - 1, values[-1], is_final=True)
    h.run()
    return manager, barrier, flushed


@given(manager_runs)
@settings(max_examples=60, deadline=None)
def test_exactly_one_final_decision(cfg):
    manager, _, _ = _drive(cfg)
    assert manager.finalized
    assert manager.outcome in ("commit", "recompute")
    assert manager.stats.commits + manager.stats.recomputes == 1


@given(manager_runs)
@settings(max_examples=60, deadline=None)
def test_version_states_consistent(cfg):
    manager, barrier, flushed = _drive(cfg)
    committed = [v for v in manager.versions if v.committed]
    assert len(committed) <= 1
    if manager.outcome == "commit":
        assert len(committed) == 1
        assert committed[0].active
        assert flushed, "commit must flush the buffered result"
    else:
        assert not committed
        assert flushed == []
    # all non-committed versions were rolled back and hold no buffer entries
    for v in manager.versions:
        if not v.committed:
            assert not v.active
            assert barrier.pending(v.vid) == 0


@given(manager_runs)
@settings(max_examples=60, deadline=None)
def test_counter_bookkeeping(cfg):
    manager, _, _ = _drive(cfg)
    s = manager.stats
    assert s.checks == s.checks_passed + s.checks_failed + s.stale_verdicts
    assert s.rollbacks <= s.speculations
    assert len(s.check_errors) == s.checks
    assert s.speculations == len(manager.versions)

"""Property tests: BlockRef swap-in/out over arbitrary payload shapes.

The process back-end relies on three invariants of the payload walkers in
:mod:`repro.sre.shm`:

* ``swap_in`` resolves every ref (and only refs) back to equal data, in
  place, whatever container/partial nesting the task builders produced;
* ``referenced_bytes`` equals the sum over ``iter_refs`` — the budget
  check and the ref walk must never disagree;
* a payload that crossed ``pickle`` (the wire) still resolves to the same
  data on the other side, since the coordinator and workers share the
  segment cache protocol.
"""

from functools import partial

import numpy as np
from hypothesis import given, settings, strategies as st

import pickle

from repro.sre import shm
from repro.sre.shm import BlockRef, BlockStore

#: Small deadline headroom: shared-memory creation can stall under CI io.
_SETTINGS = settings(max_examples=40, deadline=None)


def _payloads(refs):
    """Nested payload structures mixing plain values and stored refs."""
    leaves = st.one_of(
        st.integers(-100, 100),
        st.text(max_size=5),
        st.none(),
        st.sampled_from(refs) if refs else st.none(),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.tuples(children, children),
            st.dictionaries(st.text(max_size=3), children, max_size=4),
            children.map(lambda v: partial(_kernel, v)),
        ),
        max_leaves=12,
    )


def _kernel(value):  # must be module-level: partials pickle by reference
    return value


@st.composite
def payload_cases(draw):
    arrays = draw(st.lists(
        st.integers(2, 64).map(
            lambda n: np.arange(n, dtype=np.uint8) % 251),
        min_size=1, max_size=3,
    ))
    store = BlockStore(min_bytes=1)
    refs = [store.put(a) for a in arrays]
    payload = draw(_payloads(refs))
    return store, dict(zip(map(id, refs), arrays)), payload


def _check_resolved(original, swapped, arrays_by_ref_id):
    """swapped must equal original with every ref replaced by its array."""
    if isinstance(original, BlockRef):
        assert isinstance(swapped, np.ndarray)
        np.testing.assert_array_equal(
            swapped, shm.resolve(original))
    elif isinstance(original, dict):
        assert set(swapped) == set(original)
        for k in original:
            _check_resolved(original[k], swapped[k], arrays_by_ref_id)
    elif isinstance(original, (list, tuple)):
        assert len(swapped) == len(original)
        for o, s in zip(original, swapped):
            _check_resolved(o, s, arrays_by_ref_id)
    elif isinstance(original, partial):
        _check_resolved(original.args, swapped.args, arrays_by_ref_id)
    else:
        assert swapped == original or swapped is original


@_SETTINGS
@given(payload_cases())
def test_swap_in_round_trip(case):
    store, arrays, payload = case
    try:
        n_refs = len(list(shm.iter_refs(payload)))
        assert shm.referenced_bytes(payload) == sum(
            r.length for r in shm.iter_refs(payload))

        swapped = shm.swap_in(payload)
        _check_resolved(payload, swapped, arrays)
        if n_refs == 0:
            # Ref-free payloads pass through without a rebuild.
            assert swapped is payload
        assert list(shm.iter_refs(swapped)) == []
    finally:
        store.close()


@_SETTINGS
@given(payload_cases())
def test_swap_in_after_wire_round_trip(case):
    store, arrays, payload = case
    try:
        clone = pickle.loads(pickle.dumps(payload))
        swapped = shm.swap_in(clone)
        _check_resolved(clone, swapped, arrays)
    finally:
        store.close()

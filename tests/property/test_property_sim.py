"""Property-based tests for the DES kernel and ready queues."""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator
from repro.sre.queues import ReadyQueue
from repro.sre.task import Task


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(times):
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(st.lists(st.floats(min_value=0, max_value=100, allow_nan=False),
                min_size=1, max_size=50),
       st.integers(min_value=1, max_value=49))
@settings(max_examples=50, deadline=None)
def test_run_until_partitions_cleanly(times, split):
    """Events at or before `until` fire; the rest stay pending and fire on
    resume — no event is lost or duplicated."""
    until = sorted(times)[min(split, len(times) - 1)]
    sim = Simulator()
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(t))
    sim.run(until=until)
    early = len(fired)
    assert all(t <= until for t in fired)
    sim.run()
    assert len(fired) == len(times)
    assert sorted(fired) == sorted(times)
    assert early == sum(1 for t in times if t <= until)


@given(st.lists(st.tuples(st.integers(0, 10), st.booleans()), min_size=1,
                max_size=60))
@settings(max_examples=50, deadline=None)
def test_ready_queue_pop_order_invariants(entries):
    """Control tasks always come first; among non-control, deeper first;
    FCFS inside a (control, depth) class."""
    q = ReadyQueue()
    tasks = []
    for i, (depth, control) in enumerate(entries):
        t = Task(f"t{i}", lambda: 1, depth=depth, control=control)
        t.mark_ready(0.0)
        q.push(t)
        tasks.append(t)
    popped = []
    while True:
        t = q.pop()
        if t is None:
            break
        popped.append(t)
    assert len(popped) == len(tasks)
    keys = [(0 if t.control else 1, -t.depth) for t in popped]
    assert keys == sorted(keys)
    # FCFS within a class: seq increases within equal keys
    for a, b in zip(popped, popped[1:]):
        ka = (0 if a.control else 1, -a.depth)
        kb = (0 if b.control else 1, -b.depth)
        if ka == kb:
            assert a.seq < b.seq

"""Property-based tests for dispatch policies (hypothesis).

Focus: :class:`RatioPolicy`'s deficit counter. The §II-B contract is a
long-run speculative share; the counter must stay bounded under *any*
queue-availability pattern — in particular the natural-empty fallback,
where speculative tasks are dispatched without the policy asking for them
(that path used to drive the credit unboundedly negative, starving
speculation long after natural work returned).
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sre.policies import RatioPolicy
from repro.sre.queues import ReadyQueue
from repro.sre.task import Task


def _queue_with(n, speculative):
    q = ReadyQueue()
    for i in range(n):
        t = Task(f"{'s' if speculative else 'n'}{i}", None, speculative=speculative)
        t.mark_ready(0.0)
        q.push(t)
    return q


# availability pattern per step: which classes have ready work
AVAILABILITY = st.sampled_from(["both", "natural", "speculative", "neither"])


@given(
    share=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    pattern=st.lists(AVAILABILITY, min_size=1, max_size=200),
)
@settings(max_examples=80, deadline=None)
def test_credit_stays_symmetrically_bounded(share, pattern):
    policy = RatioPolicy(share)
    policy.reset()
    for avail in pattern:
        natural = _queue_with(1 if avail in ("both", "natural") else 0, False)
        speculative = _queue_with(1 if avail in ("both", "speculative") else 0, True)
        policy.select(natural, speculative)
        assert -2.0 <= policy._credit <= 2.0


@given(share=st.floats(min_value=0.05, max_value=0.95))
@settings(max_examples=40, deadline=None)
def test_long_run_ratio_matches_share_when_both_available(share):
    policy = RatioPolicy(share)
    policy.reset()
    n = 600
    natural = _queue_with(n, False)
    speculative = _queue_with(n, True)
    spec_count = 0
    for _ in range(n):
        task = policy.select(natural, speculative)
        assert task is not None
        spec_count += task.speculative
    # the deficit counter keeps the long-run ratio exact up to clamp slack
    assert abs(spec_count / n - share) < 0.02


@given(
    share=st.floats(min_value=0.1, max_value=0.9),
    starve_len=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=40, deadline=None)
def test_speculation_recovers_after_natural_empty_stretch(share, starve_len):
    """Regression: a stretch of fallback speculative dispatches (natural
    queue empty) must not starve speculation once natural work returns."""
    policy = RatioPolicy(share)
    policy.reset()
    for _ in range(starve_len):
        # natural empty: the fallback dispatches speculative work anyway
        task = policy.select(_queue_with(0, False), _queue_with(1, True))
        assert task is not None and task.speculative
    # with the clamp, credit >= -2, so speculation must be *asked for*
    # within ceil(3 / share) both-available dispatches
    bound = math.ceil(3.0 / share) + 1
    for step in range(bound):
        task = policy.select(_queue_with(1, False), _queue_with(1, True))
        if task.speculative:
            break
    else:  # pragma: no cover - fails the property
        raise AssertionError(
            f"speculation starved for {bound} dispatches after fallback stretch"
        )

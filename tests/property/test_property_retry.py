"""Property-based tests for the supervisor's retry/backoff/quarantine policy.

The :class:`~repro.sre.executor_procs.RetryPolicy` is deliberately pure
bookkeeping so these invariants are checkable over arbitrary failure
interleavings:

* **bounded retries** — a key is offered at most ``max_retries`` retry
  verdicts, ever, however failures interleave across keys;
* **monotone capped backoff** — backoff never decreases with the attempt
  number and never exceeds the cap;
* **sticky quarantine** — once quarantined, a key stays quarantined and
  every later verdict says so.
"""

from hypothesis import given, settings, strategies as st

from repro.sre.executor_procs import RetryPolicy

keys = st.sampled_from(["a", "b", "c", "d"])
failure_seqs = st.lists(keys, min_size=1, max_size=60)
retry_caps = st.integers(min_value=0, max_value=5)


@given(failure_seqs, retry_caps)
@settings(max_examples=80, deadline=None)
def test_retry_verdicts_are_bounded(seq, max_retries):
    policy = RetryPolicy(max_retries=max_retries, backoff_s=0.0)
    retries = {}
    for key in seq:
        verdict = policy.record_failure(key)
        if verdict == "retry":
            retries[key] = retries.get(key, 0) + 1
    for key, n in retries.items():
        assert n <= max_retries


@given(failure_seqs, retry_caps)
@settings(max_examples=80, deadline=None)
def test_quarantine_is_sticky_and_consistent(seq, max_retries):
    policy = RetryPolicy(max_retries=max_retries, backoff_s=0.0)
    quarantined = set()
    for key in seq:
        verdict = policy.record_failure(key)
        if key in quarantined:
            assert verdict == "quarantine", "quarantine must be sticky"
        if verdict == "quarantine":
            quarantined.add(key)
            assert policy.quarantined(key)
        else:
            assert not policy.quarantined(key)
    # Exactly the keys that failed more than max_retries times are
    # quarantined.
    counts = {k: seq.count(k) for k in set(seq)}
    for key, n in counts.items():
        assert policy.quarantined(key) == (n > max_retries)


@given(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.integers(min_value=1, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_backoff_is_monotone_and_capped(base, cap, attempts):
    policy = RetryPolicy(backoff_s=base, backoff_cap_s=cap)
    series = [policy.backoff(a) for a in range(1, attempts + 1)]
    assert all(b >= 0.0 for b in series)
    assert all(b <= cap for b in series)
    assert all(later >= earlier
               for earlier, later in zip(series, series[1:]))
    if base > 0:
        assert series[0] == min(cap, base)


def test_attempts_accumulate_per_key():
    policy = RetryPolicy(max_retries=2)
    assert policy.attempts("k") == 0
    policy.record_failure("k")
    policy.record_failure("k")
    assert policy.attempts("k") == 2
    assert policy.attempts("other") == 0

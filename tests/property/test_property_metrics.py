"""Property tests: snapshot merge algebra is associative and commutative.

Cross-process aggregation folds worker snapshots into the coordinator in
whatever order the pipes drain, so `merge_snapshots` must not care about
grouping or order. Observations are integer-valued so floating-point sums
are exact and equality is meaningful.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, merge_snapshots

_BOUNDS = (10.0, 100.0, 1000.0)
_KINDS = ("encode", "count", "reduce")


@st.composite
def snapshots(draw):
    """A registry snapshot with a shared schema and arbitrary values."""
    reg = MetricsRegistry("prop")
    c = reg.counter("done", "tasks done", labelnames=("kind",))
    for kind in draw(st.lists(st.sampled_from(_KINDS), max_size=6)):
        c.labels(kind=kind).inc(draw(st.integers(0, 1000)))
    reg.gauge("depth").set(draw(st.integers(0, 100)))
    h = reg.histogram("lat", "latency", buckets=_BOUNDS)
    for v in draw(st.lists(st.integers(0, 2000), max_size=20)):
        h.observe(v)
    return reg.snapshot()


def _canon(snap):
    """Order-independent view: series keyed by (metric, sorted labels)."""
    out = {}
    for m in snap["metrics"]:
        for s in m["series"]:
            key = (m["name"], tuple(sorted(s["labels"].items())))
            out[key] = {k: v for k, v in s.items() if k != "labels"}
    return out


@given(snapshots(), snapshots())
@settings(max_examples=50, deadline=None)
def test_merge_is_commutative(a, b):
    assert _canon(merge_snapshots(a, b)) == _canon(merge_snapshots(b, a))


@given(snapshots(), snapshots(), snapshots())
@settings(max_examples=50, deadline=None)
def test_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert _canon(left) == _canon(right)


@given(snapshots())
@settings(max_examples=25, deadline=None)
def test_empty_registry_is_identity_for_counters_and_histograms(a):
    empty = MetricsRegistry("prop").snapshot()
    merged = _canon(merge_snapshots(a, empty))
    assert merged == _canon(a)


@given(snapshots(), snapshots())
@settings(max_examples=50, deadline=None)
def test_merge_snapshot_method_agrees_with_pure_merge(a, b):
    """Folding b into a registry seeded with a == the pure merge."""
    reg = MetricsRegistry("prop")
    reg.merge_snapshot(a)
    reg.merge_snapshot(b)
    assert _canon(reg.snapshot()) == _canon(merge_snapshots(a, b))

"""Property-based tests for the filter app's overlap-save block filtering."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.filterapp.pipeline import _filter_block


@st.composite
def filtering_case(draw):
    n_taps = draw(st.integers(min_value=1, max_value=12))
    n_blocks = draw(st.integers(min_value=1, max_value=6))
    block_len = draw(st.integers(min_value=max(n_taps - 1, 1), max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2 ** 31))
    rng = np.random.default_rng(seed)
    coeffs = rng.normal(size=n_taps)
    signal = rng.normal(size=n_blocks * block_len)
    return coeffs, signal, block_len


@given(filtering_case())
@settings(max_examples=80, deadline=None)
def test_blockwise_equals_sequential(case):
    """Filtering block by block with overlap-save equals filtering the whole
    signal in one convolution — for any tap count, block size and split."""
    coeffs, signal, block_len = case
    reference = np.convolve(signal, coeffs, mode="full")[: len(signal)]
    out = []
    n_tail = len(coeffs) - 1
    for start in range(0, len(signal), block_len):
        block = signal[start : start + block_len]
        tail = signal[max(0, start - n_tail) : start]
        out.append(_filter_block(block, tail, coeffs))
    got = np.concatenate(out)
    assert np.allclose(got, reference)


@given(filtering_case())
@settings(max_examples=40, deadline=None)
def test_block_output_length(case):
    coeffs, signal, block_len = case
    block = signal[:block_len]
    y = _filter_block(block, np.zeros(0), coeffs)
    assert len(y) == len(block)

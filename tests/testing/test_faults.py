"""The deterministic fault-plan grammar and its worker-side arming rules."""

import pickle

import pytest

from repro.errors import ExperimentError
from repro.testing.faults import DELAY, DROP, HANG, KILL, Fault, FaultPlan


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------

def test_parse_single_kill():
    plan = FaultPlan.parse("kill@3")
    assert plan.faults == (Fault(KILL, 3),)


def test_parse_worker_selector_and_seconds():
    plan = FaultPlan.parse("hang@2:w1,delay@1:0.25,drop@4")
    assert plan.faults == (
        Fault(HANG, 2, worker=1),
        Fault(DELAY, 1, seconds=0.25),
        Fault(DROP, 4),
    )


def test_parse_persistent_suffix():
    (fault,) = FaultPlan.parse("kill@1!").faults
    assert fault.persistent
    assert fault == Fault(KILL, 1, persistent=True)


def test_parse_passes_through_none_and_plans():
    assert FaultPlan.parse(None) is None
    plan = FaultPlan.parse("kill@1")
    assert FaultPlan.parse(plan) is plan


@pytest.mark.parametrize("bad", [
    "", "   ", ",", "explode@1", "kill", "kill@", "kill@x", "kill@0",
    "delay@1", "delay@1:nope", "kill@1:w-2",
])
def test_parse_rejects_bad_specs(bad):
    with pytest.raises(ExperimentError):
        FaultPlan.parse(bad)


def test_fault_validation():
    with pytest.raises(ExperimentError):
        Fault("explode", 1)
    with pytest.raises(ExperimentError):
        Fault(KILL, 0)
    with pytest.raises(ExperimentError):
        Fault(KILL, 1, worker=-1)
    with pytest.raises(ExperimentError):
        Fault(DELAY, 1)  # delay needs a duration


# ---------------------------------------------------------------------------
# spec round-trip and value semantics
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", [
    "kill@3", "hang@2:w1", "drop@4", "delay@1:0.25", "kill@1!",
    "kill@3,hang@2:w1,delay@5:w2:1.5!",
])
def test_spec_round_trips(spec):
    plan = FaultPlan.parse(spec)
    assert FaultPlan.parse(plan.spec()) == plan


def test_plan_is_picklable_and_hashable():
    plan = FaultPlan.parse("kill@3,delay@1:w1:0.5!")
    assert pickle.loads(pickle.dumps(plan)) == plan
    assert hash(plan) == hash(FaultPlan.parse(plan.spec()))


# ---------------------------------------------------------------------------
# arming: worker slots and incarnations
# ---------------------------------------------------------------------------

def test_for_worker_filters_by_slot():
    plan = FaultPlan.parse("kill@3,hang@2:w1")
    assert plan.for_worker(0, 0) == (Fault(KILL, 3),)
    assert plan.for_worker(1, 0) == (Fault(HANG, 2, worker=1),)
    assert plan.for_worker(2, 0) == ()


def test_one_shot_faults_arm_only_first_incarnation():
    plan = FaultPlan.parse("kill@1")
    assert plan.for_worker(0, 0) == (Fault(KILL, 1),)
    assert plan.for_worker(0, 1) == ()  # the respawned worker is healthy


def test_persistent_faults_arm_every_incarnation():
    plan = FaultPlan.parse("kill@1!")
    for incarnation in range(4):
        assert plan.for_worker(0, incarnation) == (
            Fault(KILL, 1, persistent=True),)

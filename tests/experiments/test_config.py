"""Tests for experiment scale configuration and RunConfig."""

import json
import os
from unittest import mock

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import PAPER, QUICK, RunConfig, active_scale


def test_paper_scale_matches_paper_geometry():
    assert PAPER.blocks == {"txt": 1024, "bmp": 512, "pdf": 1024}
    assert PAPER.block_size == 4096
    assert PAPER.reduce_ratio == 16
    assert PAPER.offset_fanout == 64
    assert PAPER.socket_reduce_ratio == 8  # §V-A socket configuration


def test_quick_scale_preserves_geometry():
    assert QUICK.block_size == PAPER.block_size
    assert QUICK.reduce_ratio == PAPER.reduce_ratio
    for wl in ("txt", "bmp", "pdf"):
        assert QUICK.n_blocks(wl) < PAPER.n_blocks(wl)


def test_active_scale_env_switch():
    with mock.patch.dict(os.environ, {"REPRO_SCALE": "paper"}):
        assert active_scale() is PAPER
    with mock.patch.dict(os.environ, {}, clear=True):
        assert active_scale() is QUICK
    with mock.patch.dict(os.environ, {"REPRO_SCALE": "quick"}):
        assert active_scale() is QUICK


# ---------------------------------------------------------------------------
# RunConfig
# ---------------------------------------------------------------------------

def test_runconfig_is_frozen_and_comparable():
    a = RunConfig(workload="txt", n_blocks=64)
    b = RunConfig(workload="txt", n_blocks=64)
    assert a == b
    with pytest.raises(Exception):
        a.n_blocks = 32


def test_runconfig_rejects_unknown_transport():
    with pytest.raises(ExperimentError, match="transport"):
        RunConfig(transport="carrier-pigeon")


def test_runconfig_rejects_bad_executor_and_interval():
    with pytest.raises(ExperimentError):
        RunConfig(executor="")
    with pytest.raises(ExperimentError):
        RunConfig(metrics_interval_s=0)


def test_runconfig_validates_fault_plan():
    cfg = RunConfig(executor="procs", fault_plan="kill@3,hang@2:w1")
    assert cfg.fault_plan == "kill@3,hang@2:w1"
    with pytest.raises(ExperimentError, match="procs"):
        RunConfig(fault_plan="kill@3")  # faults need worker processes
    with pytest.raises(ExperimentError):
        RunConfig(executor="procs", fault_plan="explode@1")


def test_runconfig_validates_supervisor_knobs():
    with pytest.raises(ExperimentError):
        RunConfig(dispatch_timeout_s=0)
    with pytest.raises(ExperimentError):
        RunConfig(harvest_timeout_s=0)
    with pytest.raises(ExperimentError):
        RunConfig(max_task_retries=-1)
    with pytest.raises(ExperimentError):
        RunConfig(max_worker_respawns=-1)
    with pytest.raises(ExperimentError):
        RunConfig(retry_backoff_s=-0.1)


def test_from_kwargs_lists_unknown_and_valid_names():
    with pytest.raises(ExperimentError) as err:
        RunConfig.from_kwargs(workload="txt", n_blockz=64)
    msg = str(err.value)
    assert "n_blockz" in msg and "n_blocks" in msg


def test_to_dict_is_json_safe_with_instances():
    from repro.iomodels import SocketModel
    from repro.sre.policies import RatioPolicy

    cfg = RunConfig(workload=b"\x00" * 8192, io=SocketModel(),
                    policy=RatioPolicy(0.5), n_blocks=2)
    doc = cfg.to_dict()
    json.dumps(doc)  # must not raise
    assert doc["workload"] == "custom"
    assert isinstance(doc["io"], str) and isinstance(doc["policy"], str)
    assert doc["transport"] == "pickle"

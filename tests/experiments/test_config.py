"""Tests for experiment scale configuration."""

import os
from unittest import mock

from repro.experiments.config import PAPER, QUICK, active_scale


def test_paper_scale_matches_paper_geometry():
    assert PAPER.blocks == {"txt": 1024, "bmp": 512, "pdf": 1024}
    assert PAPER.block_size == 4096
    assert PAPER.reduce_ratio == 16
    assert PAPER.offset_fanout == 64
    assert PAPER.socket_reduce_ratio == 8  # §V-A socket configuration


def test_quick_scale_preserves_geometry():
    assert QUICK.block_size == PAPER.block_size
    assert QUICK.reduce_ratio == PAPER.reduce_ratio
    for wl in ("txt", "bmp", "pdf"):
        assert QUICK.n_blocks(wl) < PAPER.n_blocks(wl)


def test_active_scale_env_switch():
    with mock.patch.dict(os.environ, {"REPRO_SCALE": "paper"}):
        assert active_scale() is PAPER
    with mock.patch.dict(os.environ, {}, clear=True):
        assert active_scale() is QUICK
    with mock.patch.dict(os.environ, {"REPRO_SCALE": "quick"}):
        assert active_scale() is QUICK

"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman, split_blocks
from repro.iomodels import TraceArrivals


def _run(metrics=None, **kw):
    return run_huffman(config=RunConfig(**kw), metrics=metrics)


def test_split_blocks():
    blocks = split_blocks(b"x" * 10, 4)
    assert [len(b) for b in blocks] == [4, 4, 2]


def test_split_blocks_validation():
    with pytest.raises(ExperimentError):
        split_blocks(b"", 4)
    with pytest.raises(ExperimentError):
        split_blocks(b"x", 0)


def test_named_workload_requires_n_blocks():
    with pytest.raises(ExperimentError):
        _run(workload="txt")


def test_run_report_fields():
    r = _run(workload="txt", n_blocks=32, policy="balanced", seed=0)
    assert r.result.n_blocks == 32
    assert r.latencies.shape == (32,)
    assert r.arrivals.shape == (32,)
    assert r.roundtrip_ok is True
    assert 0.0 < r.utilisation <= 1.0
    assert r.platform_name == "x86"
    assert r.workers == 16
    assert r.app == "huffman"
    assert r.summary.avg_latency_us == pytest.approx(r.avg_latency)


def test_nonspec_policy_shorthand():
    r = _run(workload="txt", n_blocks=32, policy="nonspec", seed=0)
    assert r.result.outcome == "non_speculative"
    assert r.result.spec_stats == {}


def test_same_seed_reproduces_exactly():
    a = _run(workload="bmp", n_blocks=48, policy="balanced", seed=7)
    b = _run(workload="bmp", n_blocks=48, policy="balanced", seed=7)
    assert np.array_equal(a.latencies, b.latencies)
    assert a.completion_time == b.completion_time
    assert a.result.spec_stats == b.result.spec_stats


def test_different_seed_changes_data_not_schedule():
    """Service times depend on block *sizes*, not byte values, so two TXT
    seeds produce identical deterministic schedules — but different bytes,
    hence different compressed output."""
    a = _run(workload="txt", n_blocks=32, seed=1)
    b = _run(workload="txt", n_blocks=32, seed=2)
    assert a.result.compressed_bits != b.result.compressed_bits
    assert np.array_equal(a.latencies, b.latencies)


def test_raw_bytes_workload():
    data = b"raw bytes workload " * 800
    r = _run(workload=data, block_size=1024, policy="balanced", seed=0)
    assert r.result.n_blocks == len(data) // 1024 + 1
    assert r.roundtrip_ok


def test_custom_arrival_model():
    times = [float(i * 100) for i in range(16)]
    r = _run(workload="txt", n_blocks=16, io=TraceArrivals(times), seed=0)
    assert np.array_equal(r.arrivals, np.array(times))


def test_unknown_io_rejected():
    with pytest.raises(ExperimentError):
        _run(workload="txt", n_blocks=8, io="carrier-pigeon")


def test_cell_platform_runs():
    r = _run(workload="txt", n_blocks=32, platform="cell", seed=0)
    assert r.platform_name == "cell"
    assert r.roundtrip_ok


def test_workers_override():
    r = _run(workload="txt", n_blocks=32, workers=2, seed=0)
    assert r.workers == 2


def test_block_size_validated_against_cell_cap():
    from repro.errors import PlatformError
    with pytest.raises(PlatformError):
        _run(workload="txt", n_blocks=4, block_size=64 * 1024,
             platform="cell", seed=0)


def test_label_override():
    r = _run(workload="txt", n_blocks=8, label="custom-label", seed=0)
    assert r.label == "custom-label"
    assert r.summary.label == "custom-label"


# ---------------------------------------------------------------------------
# RunConfig is the only calling convention (bare-keyword shim removed)
# ---------------------------------------------------------------------------

def test_config_object_is_the_convention():
    cfg = RunConfig(workload="txt", n_blocks=8, seed=0)
    r = run_huffman(config=cfg)
    assert r.roundtrip_ok
    assert r.run_config == cfg
    assert r.run_config.to_dict()["workload"] == "txt"


def test_bare_kwargs_rejected():
    with pytest.raises(TypeError):
        run_huffman(workload="txt", n_blocks=8)


def test_config_must_be_runconfig():
    with pytest.raises(ExperimentError, match="RunConfig"):
        run_huffman(config={"workload": "txt", "n_blocks": 8})


def test_from_kwargs_typo_rejected_with_vocabulary():
    with pytest.raises(ExperimentError, match="n_blocks"):
        RunConfig.from_kwargs(workload="txt", n_blockz=8)


def test_wrong_app_rejected():
    with pytest.raises(ExperimentError, match="run_job"):
        run_huffman(config=RunConfig(app="kmeans", n_blocks=8))

"""Unit tests for tools/bench_gate.py (the CI bench regression gate).

The CLI round-trip (a fresh doc gates against itself) lives in
test_cli.py; these tests exercise ``compare()`` directly, in particular
the zero-baseline rule: a relative change against 0 is undefined, and a
naive ``(cur - base) / base`` guard of 0.0% would wave through any
regression from a zero baseline (0 rollbacks -> 12 must FAIL a
zero-tolerance, lower-is-better gate).
"""

import importlib.util
import json
import pathlib

_GATE = pathlib.Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py"
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)

LOWER = {"max_regression": 0.0, "higher_is_better": False}
HIGHER = {"max_regression": 0.2, "higher_is_better": True}


def _doc(metrics, gate=None):
    return {"metrics": metrics, "gate": gate or {}}


def test_zero_baseline_regression_fails_lower_is_better():
    base = _doc({"rollbacks": 0.0}, {"rollbacks": LOWER})
    (line,) = bench_gate.compare(base, _doc({"rollbacks": 12.0}))
    assert line.startswith("FAIL rollbacks")


def test_zero_baseline_unchanged_passes():
    base = _doc({"rollbacks": 0.0}, {"rollbacks": LOWER})
    (line,) = bench_gate.compare(base, base)
    assert line.startswith("ok rollbacks")


def test_zero_baseline_improvement_passes_higher_is_better():
    base = _doc({"throughput": 0.0}, {"throughput": HIGHER})
    (line,) = bench_gate.compare(base, _doc({"throughput": 5.0}))
    assert line.startswith("ok throughput")


def test_zero_baseline_drop_fails_higher_is_better():
    base = _doc({"throughput": 0.0}, {"throughput": HIGHER})
    (line,) = bench_gate.compare(base, _doc({"throughput": -1.0}))
    assert line.startswith("FAIL throughput")


def test_nonzero_regression_gates_on_the_threshold():
    base = _doc({"throughput": 100.0}, {"throughput": HIGHER})
    (fail,) = bench_gate.compare(base, _doc({"throughput": 75.0}))
    (ok,) = bench_gate.compare(base, _doc({"throughput": 85.0}))
    assert fail.startswith("FAIL") and ok.startswith("ok")


def test_improvements_always_pass():
    base = _doc({"rollbacks": 3.0}, {"rollbacks": LOWER})
    (line,) = bench_gate.compare(base, _doc({"rollbacks": 0.0}))
    assert line.startswith("ok")


def test_missing_metric_fails():
    base = _doc({"throughput": 1.0}, {"throughput": HIGHER})
    (line,) = bench_gate.compare(base, _doc({}))
    assert line.startswith("FAIL throughput: missing")


def test_main_exit_codes(tmp_path, capsys):
    base = tmp_path / "base.json"
    cur = tmp_path / "cur.json"
    base.write_text(json.dumps(_doc({"rollbacks": 0.0},
                                    {"rollbacks": LOWER})))
    cur.write_text(json.dumps(_doc({"rollbacks": 3.0})))
    assert bench_gate.main(["--baseline", str(base),
                            "--current", str(cur)]) == 1
    assert "bench gate: FAILED" in capsys.readouterr().out
    assert bench_gate.main(["--baseline", str(base),
                            "--current", str(base)]) == 0
    assert "bench gate: passed" in capsys.readouterr().out

"""Smoke tests for the figure modules at a tiny scale.

These verify the experiment harness plumbing (series shapes, tables,
rendering) quickly; the *findings* are asserted at realistic scale by the
slow integration tests and the benchmark suite.
"""

import numpy as np
import pytest

from repro.experiments import fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments.config import ExperimentScale

TINY = ExperimentScale(
    name="tiny",
    blocks={"txt": 64, "bmp": 64, "pdf": 64},
    reduce_ratio=8,
    offset_fanout=16,
    socket_reduce_ratio=4,
    socket_offset_fanout=4,
)


def _check_render(result):
    text = result.render()
    assert result.figure in text
    assert len(text) > 100


@pytest.mark.slow
def test_fig3_smoke():
    result = fig3.run(scale=TINY)
    assert set(result.series) == {"txt (x86)", "bmp (x86)", "pdf (x86)"}
    for series in result.series.values():
        assert set(series) == {"nonspec", "balanced", "aggressive", "conservative"}
        for curve in series.values():
            assert curve.shape == (64,)
    assert len(result.table_rows) == 12
    _check_render(result)


@pytest.mark.slow
def test_fig4_smoke():
    result = fig4.run(scale=TINY)
    assert "txt (cell)" in result.series
    assert any("speculative encode" in n for n in result.notes)
    _check_render(result)


@pytest.mark.slow
def test_fig5_smoke():
    result = fig5.run(scale=TINY, workloads=("txt",), steps=(0, 1, 2, 4))
    series = result.series["txt avg latency vs step"]
    assert set(series) == {"nonspec", "balanced", "aggressive", "conservative"}
    assert all(len(v) == 4 for v in series.values())
    # nonspec line is flat by construction
    assert np.allclose(series["nonspec"], series["nonspec"][0])
    _check_render(result)


@pytest.mark.slow
def test_fig6_smoke():
    result = fig6.run(scale=TINY, workloads=("txt",))
    series = result.series["txt (x86)"]
    assert set(series) == {"nonspec", "balanced", "optimistic", "full"}
    _check_render(result)


@pytest.mark.slow
def test_fig7_smoke():
    result = fig7.run(scale=TINY)
    for panel in ("txt over socket", "pdf over socket"):
        assert set(result.series[panel]) == {"arrival time", "latency"}
        # arrivals dominate latency under socket I/O
        assert result.series[panel]["arrival time"][-1] > 0
    _check_render(result)


@pytest.mark.slow
def test_fig8_smoke():
    result = fig8.run(scale=TINY, cpus=(2, 4))
    panel = next(iter(result.series))
    assert set(result.series[panel]) == {"2 cpu", "4 cpu"}
    _check_render(result)


@pytest.mark.slow
def test_fig9_smoke():
    result = fig9.run(scale=TINY, workloads=("txt",), tolerances=(0.01, 0.05))
    series = result.series["txt tolerance sweep"]
    assert set(series) == {"1%", "5%"}
    _check_render(result)


@pytest.mark.slow
def test_reports_reachable_for_deep_inspection():
    result = fig3.run(scale=TINY)
    report = result.reports[("txt (x86)", "balanced")]
    assert report.result.n_blocks == 64
    assert report.roundtrip_ok


@pytest.mark.slow
def test_resources_smoke():
    from repro.experiments import resources
    result = resources.run(scale=TINY, workloads=("txt",))
    assert "txt avg latency vs spec share" in result.series
    assert "txt avg latency vs speculation cap" in result.series
    assert len(result.table_rows) == len(resources.RATIO_STEPS) + len(
        resources.THROTTLE_STEPS)
    _check_render(result)


@pytest.mark.slow
def test_fig2_dfg_export():
    from repro.experiments import fig2
    result = fig2.run(n_blocks=8)
    assert result.dot_spec.startswith("digraph dfg {")
    assert "style=dashed" in result.dot_spec       # speculative tasks
    assert "style=dashed" not in result.dot_nonspec
    assert "shape=diamond" in result.dot_spec      # check tasks
    # censuses reflect the pipeline structure
    assert result.census_nonspec["count"] == 8
    assert result.census_nonspec["reduce"] == 4
    assert result.census_spec["check"] >= 1
    assert "fig2" in result.render()

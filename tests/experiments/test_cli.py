"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "fig9" in out
    assert "balanced" in out


def test_run_small(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "32",
               "--policy", "balanced", "--step", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avg latency" in out
    assert "round-trip : ok" in out


def test_run_nonspec_flag(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "16", "--nonspec"])
    assert rc == 0
    assert "non_speculative" in capsys.readouterr().out


def test_run_rejects_bad_workload():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "exe"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_run_with_gantt(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "16", "--gantt"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "encode |" in out


def test_run_trace_export(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    rc = main(["run", "--workload", "txt", "--blocks", "16",
               "--trace-out", str(out_file)])
    assert rc == 0
    import json
    doc = json.loads(out_file.read_text())
    assert doc["traceEvents"]


def test_filter_command(capsys):
    rc = main(["filter", "--blocks", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "response error" in out


def test_compress_decompress_roundtrip(tmp_path, capsys):
    src = tmp_path / "data.txt"
    src.write_bytes(b"cli compression round trip " * 200)
    assert main(["compress", str(src)]) == 0
    blob = tmp_path / "data.txt.rhuf"
    assert blob.exists()
    out = tmp_path / "back.txt"
    assert main(["decompress", str(blob), "-o", str(out)]) == 0
    assert out.read_bytes() == src.read_bytes()


def test_fig2_subcommand(capsys):
    rc = main(["fig2", "--no-charts"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "speculative" in out


def test_kmeans_command(capsys):
    rc = main(["kmeans", "--blocks", "12"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inertia" in out and "labels      : ok" in out

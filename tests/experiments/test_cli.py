"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig3" in out and "fig9" in out
    assert "balanced" in out


def test_run_small(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "32",
               "--policy", "balanced", "--step", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "avg latency" in out
    assert "round-trip : ok" in out


def test_run_nonspec_flag(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "16", "--nonspec"])
    assert rc == 0
    assert "non_speculative" in capsys.readouterr().out


def test_run_rejects_bad_workload():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "exe"])


def test_run_fault_requires_procs():
    from repro.errors import ExperimentError
    with pytest.raises(ExperimentError, match="procs"):
        main(["run", "--blocks", "16", "--fault", "kill@1"])


@pytest.mark.procs
def test_run_fault_injects_and_reports(capsys):
    rc = main(["run", "--blocks", "16", "--executor", "procs",
               "--fault", "kill@1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "worker_churn" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_run_with_gantt(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "16", "--gantt"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "encode |" in out


def test_run_trace_export(tmp_path, capsys):
    out_file = tmp_path / "trace.json"
    rc = main(["run", "--workload", "txt", "--blocks", "16",
               "--trace-out", str(out_file)])
    assert rc == 0
    import json
    doc = json.loads(out_file.read_text())
    assert doc["traceEvents"]


def test_filter_command(capsys):
    rc = main(["filter", "--blocks", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "response error" in out


def test_compress_decompress_roundtrip(tmp_path, capsys):
    src = tmp_path / "data.txt"
    src.write_bytes(b"cli compression round trip " * 200)
    assert main(["compress", str(src)]) == 0
    blob = tmp_path / "data.txt.rhuf"
    assert blob.exists()
    out = tmp_path / "back.txt"
    assert main(["decompress", str(blob), "-o", str(out)]) == 0
    assert out.read_bytes() == src.read_bytes()


def test_fig2_subcommand(capsys):
    rc = main(["fig2", "--no-charts"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fig2" in out and "speculative" in out


def test_kmeans_command(capsys):
    rc = main(["kmeans", "--blocks", "12"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "inertia" in out and "labels      : ok" in out


def test_run_metrics_out(tmp_path, capsys):
    path = tmp_path / "m.prom"
    rc = main(["run", "--blocks", "16", "--metrics-out", str(path)])
    assert rc == 0
    assert "metrics snapshot (prom)" in capsys.readouterr().out
    text = path.read_text()
    assert "# TYPE repro_spec_commits_total counter" in text
    assert "repro_sre_tasks_ready_total" in text


def test_run_metrics_out_format_override(tmp_path):
    from repro.obs.exporters import load_json_snapshot
    path = tmp_path / "metrics.txt"
    rc = main(["run", "--blocks", "16", "--metrics-out", str(path),
               "--metrics-format", "json"])
    assert rc == 0
    snap = load_json_snapshot(path.read_text())
    assert any(m["name"] == "spec_commits" for m in snap["metrics"])


def test_stats_prints_prometheus(capsys):
    rc = main(["stats", "--blocks", "16"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "# TYPE repro_sre_tasks_completed_total counter" in out
    assert out.endswith("\n")


def test_stats_json_to_file(tmp_path, capsys):
    from repro.obs.exporters import load_json_snapshot
    path = tmp_path / "s.json"
    rc = main(["stats", "--blocks", "16", "--json", "--out", str(path)])
    assert rc == 0
    snap = load_json_snapshot(path.read_text())
    names = {m["name"] for m in snap["metrics"]}
    assert {"spec_commits", "sre_tasks_completed", "block_latency_us"} <= names


def test_trace_writes_chrome_json(tmp_path, capsys):
    import json as _json
    path = tmp_path / "t.json"
    rc = main(["trace", "--blocks", "16", "-o", str(path)])
    assert rc == 0
    doc = _json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in doc["traceEvents"])
    # no file -> the gantt is printed instead
    rc = main(["trace", "--blocks", "16"])
    assert rc == 0
    assert "encode" in capsys.readouterr().out


def test_list_shows_executors_and_transports(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "procs" in out and "sim" in out and "threads" in out
    assert "pickle, shm" in out


def test_run_with_shm_transport(capsys):
    rc = main(["run", "--workload", "txt", "--blocks", "16",
               "--transport", "shm"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "round-trip : ok" in out


def test_run_rejects_unknown_transport():
    with pytest.raises(SystemExit):
        main(["run", "--workload", "txt", "--blocks", "16",
              "--transport", "fax"])


def test_transport_command(capsys):
    rc = main(["transport", "--blocks", "8", "--workers", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pickle" in out and "shm" in out
    assert "payload-byte ratio" in out


def test_run_events_out_then_explain(tmp_path, capsys):
    path = tmp_path / "run.events.jsonl"
    rc = main(["run", "--blocks", "24", "--tolerance", "0",
               "--events-out", str(path)])
    assert rc == 0
    assert "event log written" in capsys.readouterr().out
    rc = main(["explain", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rollback cascade(s)" in out
    assert "root cause" in out and "destroyed:" in out


def test_explain_version_filter(tmp_path, capsys):
    path = tmp_path / "run.events.jsonl"
    main(["run", "--blocks", "24", "--tolerance", "0",
          "--events-out", str(path)])
    capsys.readouterr()
    assert main(["explain", str(path), "--version", "999"]) == 0
    assert "0 rollback cascade(s)" in capsys.readouterr().out


def test_top_once_renders_snapshot(tmp_path, capsys):
    path = tmp_path / "run.metrics.json"
    main(["run", "--blocks", "16", "--metrics-out", str(path)])
    capsys.readouterr()
    assert main(["top", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "blocks committed" in out


def test_bench_emits_gateable_doc(tmp_path, capsys):
    import json as _json
    path = tmp_path / "bench.json"
    rc = main(["bench", "--blocks", "16", "--emit-bench-json", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "blocks_per_virtual_s" in out and "[gated" in out
    doc = _json.loads(path.read_text())
    assert doc["metrics"]["blocks_per_virtual_s"] > 0
    assert "blocks_per_virtual_s" in doc["gate"]
    # the emitted doc always passes the gate against itself
    import subprocess, sys, pathlib as _pl
    gate = _pl.Path(__file__).resolve().parents[2] / "tools" / "bench_gate.py"
    proc = subprocess.run(
        [sys.executable, str(gate), "--baseline", str(path),
         "--current", str(path)], capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bench gate: passed" in proc.stdout


def test_replay_faithful_roundtrip(tmp_path, capsys):
    path = tmp_path / "run.events.jsonl"
    main(["run", "--blocks", "24", "--tolerance", "0",
          "--events-out", str(path)])
    capsys.readouterr()
    assert main(["replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert "replay_ok" in out
    assert "schedule_match=True" in out
    assert "output sha" in out


def test_replay_counterfactual_prints_diff(tmp_path, capsys):
    path = tmp_path / "run.events.jsonl"
    main(["run", "--blocks", "24", "--tolerance", "0",
          "--events-out", str(path)])
    capsys.readouterr()
    assert main(["replay", str(path), "--force-policy", "aggressive",
                 "--diff"]) == 0
    out = capsys.readouterr().out
    assert "counterfactual" in out and "policy=aggressive" in out
    assert "rollbacks" in out and "wasted us" in out
    assert "replay_ok" not in out  # counterfactuals don't claim fidelity


def test_replay_rejects_headerless_log(tmp_path, capsys):
    path = tmp_path / "old.jsonl"
    path.write_text('{"kind": "task_spawn", "seq": 1}\n')
    assert main(["replay", str(path)]) == 1
    assert "no log_header" in capsys.readouterr().out


def test_replay_reports_divergence_with_seq(tmp_path, capsys):
    import json as _json
    path = tmp_path / "run.events.jsonl"
    main(["run", "--blocks", "24", "--tolerance", "0",
          "--events-out", str(path)])
    capsys.readouterr()
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        e = _json.loads(line)
        if e.get("kind") in ("check_pass", "check_fail") \
                and e.get("error") is not None:
            e["error"] += 1.0
            lines[i] = _json.dumps(e)
            break
    path.write_text("\n".join(lines) + "\n")
    assert main(["replay", str(path)]) == 1
    out = capsys.readouterr().out
    assert "DIVERGED" in out and "seq" in out


def test_replay_events_out_rerecords(tmp_path, capsys):
    src = tmp_path / "run.events.jsonl"
    dst = tmp_path / "replayed.events.jsonl"
    main(["run", "--blocks", "24", "--tolerance", "0",
          "--events-out", str(src)])
    capsys.readouterr()
    assert main(["replay", str(src), "--events-out", str(dst)]) == 0
    assert dst.exists()
    assert main(["replay", str(dst)]) == 0  # the re-recording replays too


def test_docstring_subcommands_exist():
    """Every `repro <sub>` the CLI docstring advertises is registered."""
    import re
    import repro.cli as cli
    parser = cli.build_parser()
    sub = next(a for a in parser._actions
               if isinstance(a.choices, dict) and "run" in a.choices)
    known = set(sub.choices)
    advertised = set(re.findall(r"^\s*repro ([a-z][a-z0-9_]*)", cli.__doc__,
                                re.MULTILINE))
    assert advertised, "CLI docstring lists no subcommands?"
    missing = advertised - known
    assert not missing, f"docstring advertises unknown subcommands: {missing}"

"""Unit tests for tools/check_doc_links.py — in particular the
``repro <subcommand>`` verification added with the replay PR: docs must
not advertise CLI commands that ``repro.cli.build_parser()`` does not
register, and the scan must only look inside code spans and fenced
blocks (prose mentioning "repro reproduces X" is not a CLI example).
"""

import importlib.util
import pathlib

_TOOL = (pathlib.Path(__file__).resolve().parents[2]
         / "tools" / "check_doc_links.py")
_spec = importlib.util.spec_from_file_location("check_doc_links", _TOOL)
check_doc_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_doc_links)

_ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_known_subcommands_match_cli():
    known = check_doc_links.known_subcommands(_ROOT)
    for name in ("run", "explain", "replay", "top", "bench", "list",
                 "serve", "submit", "jobs"):
        assert name in known


def _check(tmp_path, text, known=frozenset({"run", "replay"})):
    md = tmp_path / "doc.md"
    md.write_text(text)
    return check_doc_links.check_subcommands(md, set(known))


def test_fenced_block_subcommands_checked(tmp_path):
    errors = _check(tmp_path, "```bash\nrepro run --blocks 4\n"
                              "repro replai x.jsonl\n```\n")
    assert len(errors) == 1
    assert "replai" in errors[0] and ":3:" in errors[0]


def test_inline_code_spans_checked(tmp_path):
    assert _check(tmp_path, "Use `repro run` here.\n") == []
    errors = _check(tmp_path, "Use `repro explian` here.\n")
    assert len(errors) == 1 and "explian" in errors[0]


def test_prose_outside_code_is_ignored(tmp_path):
    # not a CLI example: no backticks, no fence
    assert _check(tmp_path, "The repro project reproduces a paper.\n") == []


def test_python_m_and_module_spellings(tmp_path):
    text = ("```bash\npython -m repro run --blocks 4\n"
            "python -m repro.cli replay x.jsonl\n```\n")
    assert _check(tmp_path, text) == []
    errors = _check(tmp_path, "```bash\npython -m repro.cli frobnicate\n```\n")
    assert len(errors) == 1


def test_python_imports_in_code_not_flagged(tmp_path):
    text = ("```python\nfrom repro import RunConfig\n"
            "from repro import run_huffman\nimport repro\n```\n")
    assert _check(tmp_path, text) == []


def test_repo_docs_are_currently_clean():
    known = check_doc_links.known_subcommands(_ROOT)
    errors = []
    for md in check_doc_links.iter_markdown(_ROOT):
        errors.extend(check_doc_links.check_subcommands(md, known))
        errors.extend(check_doc_links.check_file(md))
    assert errors == []

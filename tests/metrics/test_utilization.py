"""Tests for worker-time breakdown and queue-depth analysis."""

import numpy as np

from repro.metrics.utilization import ready_depth_series, worker_time_breakdown
from repro.sim.trace import TraceRecorder


def _trace():
    tr = TraceRecorder()
    # natural count: ready 0, start 1, done 5
    tr.record(0.0, "task_ready", "c0", task_kind="count", speculative=False)
    tr.record(1.0, "task_start", "c0", task_kind="count", speculative=False)
    tr.record(5.0, "task_done", "c0", task_kind="count", speculative=False)
    # speculative encode aborted mid-flight
    tr.record(2.0, "task_ready", "e0", task_kind="encode", speculative=True)
    tr.record(3.0, "task_start", "e0", task_kind="encode", speculative=True)
    tr.record(9.0, "task_abort", "e0", task_kind="encode", speculative=True)
    # speculative encode aborted while still queued
    tr.record(4.0, "task_ready", "e1", task_kind="encode", speculative=True)
    tr.record(6.0, "task_abort", "e1", task_kind="encode", speculative=True)
    return tr


def test_worker_time_breakdown():
    usage = worker_time_breakdown(_trace())
    assert usage["count"].busy_us == 4.0
    assert usage["count"].speculative_us == 0.0
    assert usage["count"].wasted_us == 0.0
    assert usage["encode"].busy_us == 6.0
    assert usage["encode"].speculative_us == 6.0
    assert usage["encode"].wasted_us == 6.0
    assert usage["encode"].tasks == 1  # e1 never ran


def test_ready_depth_series_all():
    times, depths = ready_depth_series(_trace())
    # events: +1@0, -1@1, +1@2, -1@3, +1@4, -1@6(e1 reaped from queue)
    assert list(times) == [0.0, 1.0, 2.0, 3.0, 4.0, 6.0]
    assert list(depths) == [1, 0, 1, 0, 1, 0]
    assert depths.min() >= 0


def test_ready_depth_series_filtered():
    times, depths = ready_depth_series(_trace(), speculative=True)
    assert list(times) == [2.0, 3.0, 4.0, 6.0]
    assert list(depths) == [1, 0, 1, 0]


def test_empty_trace():
    times, depths = ready_depth_series(TraceRecorder())
    assert times.size == 0 and depths.size == 0
    assert worker_time_breakdown(TraceRecorder()) == {}


def test_from_real_run_depth_never_negative():
    from repro.experiments.runner import RunConfig, run_huffman
    r = run_huffman(config=RunConfig(workload="bmp", n_blocks=48,
                                     policy="balanced", step=1,
                                     seed=0, trace=True))
    times, depths = ready_depth_series(r.trace)
    assert np.all(depths >= 0)
    usage = worker_time_breakdown(r.trace)
    assert usage["encode"].busy_us > usage["check"].busy_us
    # a rollback happened: some worker time was wasted
    if r.result.spec_stats.get("rollbacks", 0) > 0:
        assert sum(u.wasted_us for u in usage.values()) > 0

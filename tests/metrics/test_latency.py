"""Unit tests for the latency collector."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics.latency import LatencyCollector


def test_basic_latency():
    c = LatencyCollector()
    c.record_arrival(0, 10.0)
    c.record_arrival(1, 20.0)
    c.record_encode(0, 50.0, None)
    c.record_encode(1, 45.0, None)
    lat = c.latencies({None})
    assert list(lat) == [40.0, 25.0]


def test_double_arrival_rejected():
    c = LatencyCollector()
    c.record_arrival(0, 1.0)
    with pytest.raises(ExperimentError):
        c.record_arrival(0, 2.0)


def test_rolled_back_encodes_excluded():
    c = LatencyCollector()
    c.record_arrival(0, 0.0)
    c.record_encode(0, 10.0, version=1)   # rolled back later
    c.record_encode(0, 30.0, version=2)   # committed
    lat = c.latencies({2})
    assert list(lat) == [30.0]
    assert c.wasted_encodes({2}) == 1


def test_missing_valid_encode_raises():
    c = LatencyCollector()
    c.record_arrival(0, 0.0)
    c.record_encode(0, 10.0, version=1)
    with pytest.raises(ExperimentError):
        c.latencies({None})


def test_two_valid_encodes_raises():
    c = LatencyCollector()
    c.record_arrival(0, 0.0)
    c.record_encode(0, 10.0, None)
    c.record_encode(0, 20.0, None)
    with pytest.raises(ExperimentError):
        c.latencies({None})


def test_series_ordered_by_block_id():
    c = LatencyCollector()
    for block, t in ((2, 3.0), (0, 1.0), (1, 2.0)):
        c.record_arrival(block, t)
        c.record_encode(block, t + 10.0, None)
    assert list(c.arrivals()) == [1.0, 2.0, 3.0]
    assert list(c.completions({None})) == [11.0, 12.0, 13.0]


def test_commit_latencies():
    c = LatencyCollector()
    c.record_arrival(0, 5.0)
    c.record_encode(0, 10.0, None)
    c.record_commit(0, 25.0)
    assert list(c.commit_latencies()) == [20.0]


def test_commit_missing_raises():
    c = LatencyCollector()
    c.record_arrival(0, 5.0)
    with pytest.raises(ExperimentError):
        c.commit_latencies()


def test_encode_attempts_history():
    c = LatencyCollector()
    c.record_arrival(0, 0.0)
    c.record_encode(0, 1.0, 1)
    c.record_encode(0, 2.0, 2)
    assert c.encode_attempts(0) == [(1.0, 1), (2.0, 2)]
    assert c.encode_attempts(5) == []


def test_n_blocks():
    c = LatencyCollector()
    assert c.n_blocks == 0
    c.record_arrival(0, 0.0)
    assert c.n_blocks == 1

"""Unit tests for table and chart rendering."""

import numpy as np
import pytest

from repro.metrics.report import ascii_chart, render_table


def test_render_table_alignment():
    out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4
    # all rows same width
    assert len({len(l) for l in lines}) == 1
    assert "333" in lines[3]


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only-one"]])


def test_render_table_empty_rows():
    out = render_table(["x"], [])
    assert "x" in out


def test_ascii_chart_contains_series_glyphs_and_legend():
    chart = ascii_chart(
        {"up": np.arange(100.0), "flat": np.full(100, 50.0)},
        width=40, height=8, title="demo",
    )
    assert "demo" in chart
    assert "* up" in chart
    assert "o flat" in chart
    lines = chart.splitlines()
    plot = [l for l in lines if l.startswith("|")]
    assert len(plot) == 8
    # increasing series: '*' appears in the top row at the right edge
    assert "*" in plot[0]


def test_ascii_chart_empty():
    assert ascii_chart({}) == "(no data)"


def test_ascii_chart_constant_zero_series():
    chart = ascii_chart({"z": np.zeros(10)})
    assert "z" in chart


def test_summary_row_shapes():
    from repro.metrics.summary import RunSummary
    s = RunSummary(
        label="l", n_blocks=4, outcome="commit", avg_latency_us=1.0,
        max_latency_us=2.0, p95_latency_us=1.5, completion_time_us=10.0,
        compression_ratio=1.5, rollbacks=0, wasted_encodes=0,
    )
    assert len(s.row()) == len(RunSummary.HEADER)

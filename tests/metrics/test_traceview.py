"""Unit tests for trace export (chrome JSON + ASCII gantt)."""

import json

from repro.metrics.traceview import ascii_gantt, to_chrome_trace
from repro.sim.trace import TraceRecorder


def _trace_with_tasks() -> TraceRecorder:
    tr = TraceRecorder()
    tr.record(0.0, "task_start", "count:0", task_kind="count", speculative=False)
    tr.record(10.0, "task_done", "count:0", task_kind="count", speculative=False)
    tr.record(5.0, "task_start", "encode:0", task_kind="encode", speculative=True)
    tr.record(50.0, "task_abort", "encode:0", task_kind="encode", speculative=True)
    tr.record(20.0, "speculate", "version:1", index=1)
    tr.record(45.0, "rollback", "version:1", tasks_destroyed=3)
    return tr


def test_chrome_trace_is_valid_json_with_spans():
    doc = json.loads(to_chrome_trace(_trace_with_tasks()))
    events = doc["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert len(spans) == 2
    assert len(instants) == 2
    enc = next(e for e in spans if e["name"] == "encode:0")
    assert enc["args"]["aborted"] is True
    assert enc["args"]["speculative"] is True
    assert enc["ts"] == 5.0 and enc["dur"] == 45.0


def test_chrome_trace_lanes_by_kind():
    doc = json.loads(to_chrome_trace(_trace_with_tasks()))
    tids = {e["tid"] for e in doc["traceEvents"]}
    assert {"count", "encode", "speculation"} <= tids


def test_ascii_gantt_lanes_and_marks():
    out = ascii_gantt(_trace_with_tasks(), width=40)
    lines = out.splitlines()
    assert any(l.strip().startswith("count") for l in lines)
    assert any(l.strip().startswith("encode") for l in lines)
    encode_line = next(l for l in lines if "encode" in l)
    assert "!" in encode_line  # aborted work marked


def test_ascii_gantt_kind_filter():
    out = ascii_gantt(_trace_with_tasks(), kinds=["count"])
    assert "encode" not in out


def test_ascii_gantt_empty():
    assert ascii_gantt(TraceRecorder()) == "(empty trace)"


def test_export_from_real_run():
    from repro.experiments.runner import RunConfig, run_huffman
    report = run_huffman(config=RunConfig(workload="txt", n_blocks=32,
                                          policy="balanced", step=1, seed=0,
                                          trace=True))
    doc = json.loads(to_chrome_trace(report.trace))
    kinds = {e["tid"] for e in doc["traceEvents"]}
    assert {"count", "reduce", "tree", "offset", "encode"} <= kinds
    gantt = ascii_gantt(report.trace)
    assert "encode" in gantt


def test_startless_abort_yields_zero_width_span():
    """Regression: a task_abort with no task_start must not vanish.

    The process back-end reaps abort-flagged tasks whose payloads the
    worker skipped — those tasks never emit task_start. They should show
    up as zero-width aborted spans, not silently disappear.
    """
    tr = TraceRecorder()
    tr.record(30.0, "task_abort", "encode:7", task_kind="encode",
              speculative=True)
    doc = json.loads(to_chrome_trace(tr))
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    span = spans[0]
    assert span["name"] == "encode:7"
    assert span["tid"] == "encode"
    assert span["ts"] == 30.0
    assert span["dur"] == 0.001  # clamped minimum width
    assert span["args"]["aborted"] is True
    assert span["args"]["speculative"] is True


def test_startless_done_yields_zero_width_span():
    """A narrowed trace (kinds=...) without starts still shows completions."""
    tr = TraceRecorder(kinds=["task_done"])
    tr.record(1.0, "task_start", "count:0", task_kind="count")   # filtered out
    tr.record(9.0, "task_done", "count:0", task_kind="count")
    doc = json.loads(to_chrome_trace(tr))
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [s["name"] for s in spans] == ["count:0"]
    assert spans[0]["ts"] == 9.0
    assert spans[0]["args"]["aborted"] is False


def test_startless_spans_reach_ascii_gantt():
    tr = TraceRecorder()
    tr.record(10.0, "task_done", "count:0", task_kind="count")
    out = ascii_gantt(tr, width=20)
    assert "count" in out


# ----------------------------------------------------------------------
# served-job span export (spans_to_chrome_trace)
# ----------------------------------------------------------------------
def _served_spans():
    return [
        {"name": "job", "trace_id": "t" * 32, "span_id": "j",
         "parent_id": None, "t0_us": 0.0, "t1_us": 100.0, "dur_us": 100.0,
         "tenant": "alice", "state": "done"},
        {"name": "execute", "trace_id": "t" * 32, "span_id": "e",
         "parent_id": "j", "t0_us": 10.0, "t1_us": 90.0, "dur_us": 80.0},
        {"name": "worker_exec", "trace_id": "t" * 32, "span_id": "w-1-5",
         "parent_id": "e", "t0_us": 3.0, "t1_us": 8.0, "dur_us": 5.0,
         "clock": "worker", "worker": 1, "status": "ok"},
        {"name": "queue", "trace_id": "t" * 32, "span_id": "q",
         "parent_id": "j", "t0_us": 1.0, "t1_us": None, "dur_us": 0.0},
    ]


def test_spans_to_chrome_trace_splits_daemon_and_worker_clocks():
    from repro.metrics.traceview import spans_to_chrome_trace
    doc = json.loads(spans_to_chrome_trace(_served_spans()))
    events = {e["name"]: e for e in doc["traceEvents"]}
    assert events["job"]["pid"] == 1 and events["job"]["tid"] == "job"
    assert events["job"]["cat"] == "serve"
    assert events["job"]["args"]["tenant"] == "alice"
    # worker-clock leaves get their own process group, one lane per worker
    leaf = events["worker_exec"]
    assert leaf["pid"] == 2 and leaf["tid"] == "worker-1"
    assert leaf["cat"] == "worker"
    assert leaf["dur"] == 5.0


def test_spans_to_chrome_trace_marks_open_spans():
    from repro.metrics.traceview import spans_to_chrome_trace
    doc = json.loads(spans_to_chrome_trace(_served_spans()))
    queue = next(e for e in doc["traceEvents"] if e["name"] == "queue")
    assert queue["dur"] == 0.001
    assert queue["args"]["open"] is True

"""Unit tests for the offset chain."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.huffman.codec import encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.offsets import block_bits, group_offsets
from repro.huffman.tree import HuffmanTree


def _tree(data: bytes) -> HuffmanTree:
    return HuffmanTree.from_histogram(byte_histogram(data))


def test_block_bits_matches_actual_encode():
    data = b"offset check " * 33
    tree = _tree(data)
    block = data[:100]
    _, nbits = encode_block(block, tree)
    assert block_bits(byte_histogram(block), tree) == nbits


def test_group_offsets_exclusive_prefix_sum():
    data = b"abcabcabc" * 50
    tree = _tree(data)
    blocks = [data[i : i + 30] for i in range(0, 90, 30)]
    hists = [byte_histogram(b) for b in blocks]
    offsets, end = group_offsets(hists, tree, start=0)
    sizes = [block_bits(h, tree) for h in hists]
    assert offsets[0] == 0
    assert offsets[1] == sizes[0]
    assert offsets[2] == sizes[0] + sizes[1]
    assert end == sum(sizes)


def test_group_offsets_chains_from_start():
    data = b"chain" * 100
    tree = _tree(data)
    hists = [byte_histogram(data[:50])]
    offsets, end = group_offsets(hists, tree, start=777)
    assert offsets[0] == 777
    assert end == 777 + block_bits(hists[0], tree)


def test_empty_group():
    tree = _tree(b"x")
    offsets, end = group_offsets([], tree, start=10)
    assert len(offsets) == 0
    assert end == 10


def test_negative_start_rejected():
    tree = _tree(b"x")
    with pytest.raises(CodecError):
        group_offsets([byte_histogram(b"a")], tree, start=-1)


def test_chained_groups_equal_single_group():
    data = bytes(np.random.default_rng(0).integers(0, 64, 600, dtype=np.uint8))
    tree = _tree(data)
    blocks = [data[i : i + 60] for i in range(0, 600, 60)]
    hists = [byte_histogram(b) for b in blocks]
    all_offsets, all_end = group_offsets(hists, tree, 0)
    o1, e1 = group_offsets(hists[:5], tree, 0)
    o2, e2 = group_offsets(hists[5:], tree, e1)
    assert np.array_equal(all_offsets, np.concatenate([o1, o2]))
    assert all_end == e2

"""Unit tests for the compression-size tolerance check."""

import numpy as np
import pytest

from repro.errors import ToleranceError
from repro.huffman.checkers import compression_size_error
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree


def _tree(data: bytes) -> HuffmanTree:
    return HuffmanTree.from_histogram(byte_histogram(data))


def test_identical_trees_zero_error():
    data = b"same same " * 50
    t = _tree(data)
    assert compression_size_error(t, t, byte_histogram(data)) == 0.0


def test_equivalent_trees_zero_error():
    data = b"equivalent" * 80
    assert compression_size_error(_tree(data), _tree(data), byte_histogram(data)) == 0.0


def test_mismatched_tree_positive_error():
    text = b"english text with letters " * 100
    binary = bytes(np.random.default_rng(0).integers(0, 256, 2000, dtype=np.uint8))
    err = compression_size_error(_tree(binary), _tree(text), byte_histogram(text))
    assert err > 0.05


def test_error_is_relative_to_candidate_size():
    text = b"abababab" * 200
    hist = byte_histogram(text)
    pred, cand = _tree(bytes(range(256)) * 4), _tree(text)
    size_pred = pred.encoded_bits(hist)
    size_cand = cand.encoded_bits(hist)
    err = compression_size_error(pred, cand, hist)
    assert err == pytest.approx(abs(size_pred - size_cand) / size_cand)


def test_candidate_is_never_worse_than_prediction_on_its_own_hist():
    """The candidate tree is optimal for the reference histogram, so the
    error is exactly the prediction's excess — always >= 0."""
    a = b"first distribution aaaa" * 60
    b = b"second distribution zzz" * 60
    err = compression_size_error(_tree(a), _tree(b), byte_histogram(b))
    assert err >= 0.0


def test_empty_reference_histogram_is_zero_error():
    t = _tree(b"x")
    assert compression_size_error(t, t, np.zeros(256, dtype=np.int64)) == 0.0


def test_missing_tree_raises():
    t = _tree(b"x")
    with pytest.raises(ToleranceError):
        compression_size_error(None, t, byte_histogram(b"x"))
    with pytest.raises(ToleranceError):
        compression_size_error(t, None, byte_histogram(b"x"))


def test_error_monotone_in_distribution_distance():
    """Trees from increasingly different mixtures price increasingly badly."""
    base = np.zeros(256, dtype=np.int64)
    base[:8] = 1000  # concentrated
    flat = np.ones(256, dtype=np.int64) * 32
    cand = HuffmanTree.from_histogram(base)
    errs = []
    for w in (0.1, 0.4, 0.8):
        mixed = ((1 - w) * base + w * flat).astype(np.int64)
        pred = HuffmanTree.from_histogram(mixed)
        errs.append(compression_size_error(pred, cand, base))
    assert errs[0] <= errs[1] <= errs[2]

"""Tests for length-limited (package-merge) Huffman codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CodecError
from repro.huffman.codec import decode_stream, encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.lengthlimit import limited_code_lengths, limited_tree
from repro.huffman.tree import HuffmanTree


def _skewed_hist(n=40):
    hist = np.zeros(256, dtype=np.int64)
    for i in range(n):
        hist[i] = 2 ** min(i, 40)
    return hist


def test_respects_length_bound():
    hist = _skewed_hist()
    assert HuffmanTree.from_histogram(hist).max_length > 16
    tree = limited_tree(hist, max_length=16)
    assert tree.max_length <= 16


def test_matches_huffman_when_unconstrained():
    """With a generous bound the optimal code is unrestricted Huffman —
    package-merge must price identically."""
    hist = byte_histogram(b"package merge equals huffman " * 200)
    unl = HuffmanTree.from_histogram(hist)
    lim = limited_tree(hist, max_length=32)
    assert lim.encoded_bits(hist) == unl.encoded_bits(hist)


def test_cost_of_limiting_is_small_and_nonnegative():
    hist = _skewed_hist()
    unl = HuffmanTree.from_histogram(hist)
    lim = limited_tree(hist, max_length=16)
    assert lim.encoded_bits(hist) >= unl.encoded_bits(hist)
    assert lim.encoded_bits(hist) <= unl.encoded_bits(hist) * 1.01


def test_roundtrip_with_limited_tree():
    rng = np.random.default_rng(0)
    data = bytes(rng.integers(0, 40, 600, dtype=np.uint8))
    tree = limited_tree(_skewed_hist(), max_length=12)
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


def test_validation():
    hist = byte_histogram(b"x")
    with pytest.raises(CodecError):
        limited_code_lengths(hist, max_length=0)
    with pytest.raises(CodecError):
        limited_code_lengths(hist, max_length=7)  # 2^7 < 256 symbols
    with pytest.raises(CodecError):
        limited_code_lengths(np.zeros(10, dtype=np.int64))


@given(st.binary(min_size=1, max_size=1024),
       st.integers(min_value=8, max_value=20))
@settings(max_examples=40, deadline=None)
def test_property_kraft_and_bound(data, max_length):
    lengths = limited_code_lengths(byte_histogram(data), max_length)
    assert int(lengths.max()) <= max_length
    assert int(lengths.min()) >= 1
    kraft = np.sum(2.0 ** -lengths.astype(np.float64))
    assert kraft == pytest.approx(1.0)


@given(st.binary(min_size=1, max_size=512))
@settings(max_examples=30, deadline=None)
def test_property_never_better_than_optimal(data):
    hist = byte_histogram(data)
    optimal = HuffmanTree.from_histogram(hist)
    limited = limited_tree(hist, max_length=16)
    assert limited.encoded_bits(hist) >= optimal.encoded_bits(hist)


def test_pipeline_with_length_limited_trees():
    """The full speculative pipeline runs with package-merge trees."""
    from repro.experiments.runner import RunConfig, run_huffman
    r = run_huffman(config=RunConfig(workload="txt", n_blocks=32,
                                     policy="balanced", step=1, seed=0))
    # rebuild the config with a limit via raw pipeline machinery
    import numpy as np
    from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
    from repro.platforms import X86Platform
    from repro.sre.executor_sim import SimulatedExecutor
    from repro.sre.runtime import Runtime
    from repro.workloads import get_workload
    data = get_workload("txt").generate(32 * 4096, seed=0)
    blocks = [data[i:i + 4096] for i in range(0, len(data), 4096)]
    config = HuffmanConfig(reduce_ratio=4, offset_fanout=8, step=1,
                           verify_k=2, max_code_length=12)
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced",
                           workers=4)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(float(i * 5), lambda i=i, b=b: pipe.feed_block(i, b))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.committed_tree.max_length <= 12
    assert pipe.verify_roundtrip(data)
    # slightly larger output than the unrestricted run, never smaller
    assert result.compressed_bits >= r.result.compressed_bits


def test_config_validates_limit():
    from repro.errors import ExperimentError
    from repro.huffman.pipeline import HuffmanConfig
    with pytest.raises(ExperimentError):
        HuffmanConfig(max_code_length=4)

"""Unit tests for the Huffman task factories."""

import numpy as np

from repro.huffman.histogram import byte_histogram, zero_histogram
from repro.huffman.tasks import (
    DEPTH_COUNT,
    DEPTH_ENCODE,
    make_count_task,
    make_encode_task,
    make_offset_task,
    make_reduce_task,
    make_tree_task,
)
from repro.huffman.codec import decode_stream
from repro.huffman.tree import HuffmanTree


def _arr(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8)


def test_count_task_produces_histogram():
    t = make_count_task(3, _arr(b"aab"))
    out = t.run()["out"]
    assert out[ord("a")] == 2
    assert t.kind == "count"
    assert t.depth == DEPTH_COUNT
    assert t.cost_hint == {"bytes": 3.0}
    assert t.tags["block"] == 3


def test_reduce_task_accumulates_prefix():
    hists = [byte_histogram(b"aa"), byte_histogram(b"ab")]
    t = make_reduce_task(0, hists)
    t.deliver("prev", zero_histogram())
    out = t.run()["out"]
    assert out[ord("a")] == 3
    assert t.tags["spec_base"] is True
    assert t.cost_hint["entries"] == 256.0 * 3


def test_reduce_chains_prev():
    prev = byte_histogram(b"zzz")
    t = make_reduce_task(1, [byte_histogram(b"z")])
    t.deliver("prev", prev)
    assert t.run()["out"][ord("z")] == 4


def test_tree_task_builds_tree():
    t = make_tree_task(byte_histogram(b"aaabbc"), "tree:test")
    tree = t.run()["out"]
    assert isinstance(tree, HuffmanTree)
    assert t.kind == "tree"


def test_offset_task_chains_and_is_speculative_flagged():
    data = b"offsets here" * 10
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    hists = [byte_histogram(data[i : i + 40]) for i in range(0, 120, 40)]
    t = make_offset_task("o", hists, tree, speculative=True)
    assert t.speculative
    t.deliver("prev", 100)
    out = t.run()
    assert out["offsets"][0] == 100
    assert out["cum"] == 100 + sum(tree.encoded_bits(h) for h in hists)


def test_encode_task_roundtrips():
    data = b"encode me " * 20
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    t = make_encode_task("e", 7, _arr(data), tree, offset=64, speculative=False)
    out = t.run()
    assert out["block"] == 7
    assert out["offset"] == 64
    assert decode_stream(out["payload"], out["nbits"], tree) == data
    assert t.depth == DEPTH_ENCODE
    assert not t.speculative

"""Unit tests for the self-contained container format."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.huffman.container import (
    HEADER_LEN,
    compress,
    decompress,
    pack_container,
    unpack_container,
)
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree
from repro.workloads import get_workload


def test_roundtrip_simple():
    data = b"container round trip " * 40
    assert decompress(compress(data)) == data


def test_roundtrip_all_workloads():
    for name in ("txt", "bmp", "pdf"):
        data = get_workload(name).generate(16 * 1024, seed=1)
        assert decompress(compress(data)) == data


def test_foreign_tree_container_valid_but_larger():
    data = get_workload("txt").generate(32 * 1024, seed=2)
    foreign = HuffmanTree.from_histogram(
        byte_histogram(get_workload("pdf").generate(32 * 1024, seed=2))
    )
    own_blob = compress(data)
    foreign_blob = compress(data, tree=foreign)
    assert decompress(foreign_blob) == data
    assert len(foreign_blob) >= len(own_blob)


def test_container_overhead_is_header_only():
    data = b"x" * 1000
    blob = compress(data)
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    _, nbits = __import__("repro.huffman.codec", fromlist=["encode_block"]).encode_block(data, tree)
    assert len(blob) == HEADER_LEN + (nbits + 7) // 8


def test_bad_magic_rejected():
    blob = bytearray(compress(b"hello world"))
    blob[0] = ord("X")
    with pytest.raises(CodecError):
        decompress(bytes(blob))


def test_bad_version_rejected():
    blob = bytearray(compress(b"hello world"))
    blob[4] = 99
    with pytest.raises(CodecError):
        decompress(bytes(blob))


def test_truncated_payload_rejected():
    blob = compress(b"hello world, truncate me" * 10)
    with pytest.raises(CodecError):
        decompress(blob[:-4])


def test_too_short_rejected():
    with pytest.raises(CodecError):
        unpack_container(b"RHUF")


def test_unpack_preserves_tree():
    data = b"preserve the tree " * 30
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    blob = compress(data, tree=tree)
    _, _, unpacked = unpack_container(blob)
    assert unpacked == tree


def test_corrupt_lengths_rejected():
    blob = bytearray(compress(b"corrupt lengths " * 10))
    blob[13:269] = bytes(256)  # all-zero lengths violate Kraft
    with pytest.raises(CodecError):
        decompress(bytes(blob))

"""Integration-grade unit tests for the Huffman pipeline on the SRE."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sim.trace import TraceRecorder
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime


BLOCK = 512


def _config(**kw):
    base = dict(block_size=BLOCK, reduce_ratio=4, offset_fanout=8,
                speculative=True, step=1, verify_k=2, tolerance=0.01)
    base.update(kw)
    return HuffmanConfig(**base)


def _run(data: bytes, config: HuffmanConfig, policy="balanced", workers=4,
         arrival_gap=1.0):
    blocks = [data[i:i + BLOCK] for i in range(0, len(data), BLOCK)]
    rt = Runtime(trace=TraceRecorder(enabled=True))
    ex = SimulatedExecutor(rt, X86Platform(workers=workers), policy=policy,
                           workers=workers)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(i * arrival_gap, lambda i=i, b=b: pipe.feed_block(i, b))
    end = ex.run()
    return pipe, pipe.result(end)


def _stationary(n_blocks=32, seed=0):
    """Low-drift data: speculation should always commit."""
    rng = np.random.default_rng(seed)
    return bytes(rng.choice(np.arange(32, 64, dtype=np.uint8), n_blocks * BLOCK,
                            p=np.ones(32) / 32))


def _drifting(n_blocks=32):
    """First quarter is one distribution, the rest another: the early tree
    fails its checks."""
    quarter = n_blocks // 4 * BLOCK
    head = b"a" * quarter
    rng = np.random.default_rng(1)
    tail = bytes(rng.integers(0, 256, n_blocks * BLOCK - quarter, dtype=np.uint8))
    return head + tail


def test_nonspeculative_run_roundtrips():
    data = _stationary()
    pipe, result = _run(data, _config(speculative=False))
    assert result.outcome == "non_speculative"
    assert pipe.verify_roundtrip(data)
    assert result.n_blocks == 32
    assert np.all(result.latencies > 0)
    assert result.spec_stats == {}


def test_speculative_commit_run():
    data = _stationary()
    pipe, result = _run(data, _config())
    assert result.outcome == "commit"
    assert result.spec_stats["rollbacks"] == 0
    assert pipe.verify_roundtrip(data)


def test_speculation_reduces_latency_on_stationary_data():
    data = _stationary()
    _, spec = _run(data, _config())
    _, nonspec = _run(data, _config(speculative=False))
    assert spec.avg_latency < nonspec.avg_latency


def test_drifting_data_rolls_back_and_still_roundtrips():
    data = _drifting()
    pipe, result = _run(data, _config())
    assert result.spec_stats["rollbacks"] >= 1
    assert result.outcome in ("commit", "recompute")
    assert pipe.verify_roundtrip(data)
    assert result.wasted_encodes > 0


def test_step_beyond_updates_never_speculates():
    data = _stationary()
    pipe, result = _run(data, _config(step=100))
    assert result.outcome == "recompute"
    assert result.spec_stats["speculations"] == 0
    assert pipe.verify_roundtrip(data)


def test_optimistic_on_drifting_data_recomputes():
    data = _drifting()
    pipe, result = _run(data, _config(verification="optimistic"))
    assert result.outcome == "recompute"
    assert result.spec_stats["checks"] == 1  # only the final comparison
    assert pipe.verify_roundtrip(data)


def test_loose_tolerance_commits_despite_drift():
    data = _drifting()
    pipe, result = _run(data, _config(tolerance=10.0))
    assert result.outcome == "commit"
    assert result.spec_stats["rollbacks"] == 0
    assert pipe.verify_roundtrip(data)


def test_tolerance_trades_compression_for_latency():
    """The committed speculative tree compresses worse than the recompute
    tree, but the run finishes earlier — the paper's §IV tradeoff."""
    data = _drifting()
    _, loose = _run(data, _config(tolerance=10.0))
    _, strict = _run(data, _config(tolerance=0.0001))
    assert loose.compressed_bits >= strict.compressed_bits
    assert loose.avg_latency <= strict.avg_latency


def test_partial_last_block():
    data = _stationary() + b"tail"
    blocks = 33
    pipe, result = _run(data, _config())
    assert result.n_blocks == blocks
    assert pipe.verify_roundtrip(data)


def test_single_block_input():
    data = b"tiny" * 64
    pipe, result = _run(data, _config())
    assert result.n_blocks == 1
    # single reduce is final: nothing to speculate on
    assert result.outcome == "recompute"
    assert pipe.verify_roundtrip(data)


def test_compressed_bits_consistency():
    data = _stationary()
    pipe, result = _run(data, _config())
    packed, total_bits = pipe.assemble()
    assert total_bits == result.compressed_bits
    assert result.input_bytes == len(data)
    assert result.compression_ratio > 1.0


def test_latency_accounting_excludes_rolled_back_encodes():
    data = _drifting()
    pipe, result = _run(data, _config())
    valid = pipe.valid_versions()
    for block in range(result.n_blocks):
        attempts = pipe.collector.encode_attempts(block)
        valid_attempts = [a for a in attempts if a[1] in valid]
        assert len(valid_attempts) == 1


def test_commit_latency_not_before_encode_latency():
    data = _stationary()
    _, result = _run(data, _config())
    assert np.all(result.commit_latencies >= result.latencies - 1e-9)


def test_feed_block_validation():
    rt = Runtime()
    SimulatedExecutor(rt, X86Platform(workers=1), workers=1)
    pipe = HuffmanPipeline(rt, _config(), 4)
    pipe.feed_block(0, b"x" * BLOCK)
    with pytest.raises(ExperimentError):
        pipe.feed_block(0, b"x" * BLOCK)
    with pytest.raises(ExperimentError):
        pipe.feed_block(99, b"x" * BLOCK)


def test_result_requires_all_blocks_fed():
    rt = Runtime()
    SimulatedExecutor(rt, X86Platform(workers=1), workers=1)
    pipe = HuffmanPipeline(rt, _config(), 4)
    pipe.feed_block(0, b"x" * BLOCK)
    with pytest.raises(ExperimentError):
        pipe.result()


def test_zero_blocks_rejected():
    rt = Runtime()
    with pytest.raises(ExperimentError):
        HuffmanPipeline(rt, _config(), 0)


def test_config_validation():
    with pytest.raises(ExperimentError):
        HuffmanConfig(block_size=0)
    with pytest.raises(ExperimentError):
        HuffmanConfig(step=-1)
    with pytest.raises(ExperimentError):
        HuffmanConfig(tolerance=-0.5)


def test_trace_contains_speculation_events():
    data = _drifting()
    blocks = [data[i:i + BLOCK] for i in range(0, len(data), BLOCK)]
    rt = Runtime(trace=TraceRecorder(enabled=True))
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced", workers=4)
    pipe = HuffmanPipeline(rt, _config(), len(blocks))
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(float(i), lambda i=i, b=b: pipe.feed_block(i, b))
    ex.run()
    kinds = rt.trace.kinds()
    assert "speculate" in kinds
    assert "rollback" in kinds or "commit" in kinds

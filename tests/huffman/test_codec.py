"""Unit tests for the bit-level encoder/decoder and stream assembly."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.huffman.codec import (
    assemble_stream,
    decode_stream,
    encode_block,
    encoded_size_bits,
)
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree


def _tree(data: bytes) -> HuffmanTree:
    return HuffmanTree.from_histogram(byte_histogram(data))


def test_roundtrip_simple():
    data = b"hello huffman"
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


def test_roundtrip_all_byte_values():
    data = bytes(range(256)) * 7
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


def test_roundtrip_single_symbol_input():
    data = b"\x00" * 500
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    assert nbits == 500  # dominant symbol gets a 1-bit code
    assert decode_stream(packed, nbits, tree) == data


def test_empty_block():
    tree = _tree(b"seed")
    packed, nbits = encode_block(b"", tree)
    assert nbits == 0
    assert decode_stream(packed, 0, tree) == b""


def test_encode_with_foreign_tree_still_decodes():
    """A (speculative) tree built from different data must still round-trip —
    the basis of tolerant speculation on Huffman (§IV)."""
    tree = _tree(b"completely different training text " * 10)
    data = bytes(np.random.default_rng(0).integers(0, 256, 400, dtype=np.uint8))
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data


def test_nbits_matches_size_formula():
    data = b"formula check " * 37
    tree = _tree(data)
    _, nbits = encode_block(data, tree)
    assert nbits == encoded_size_bits(byte_histogram(data), tree)


def test_optimal_tree_compresses_biased_data():
    data = b"a" * 3000 + b"bcd" * 40
    tree = _tree(data)
    _, nbits = encode_block(data, tree)
    assert nbits < len(data) * 8 / 3


def test_encode_rejects_non_uint8():
    tree = _tree(b"x")
    with pytest.raises(CodecError):
        encode_block(np.array([1, 2], dtype=np.int64), tree)


def test_decode_detects_truncation():
    data = b"truncate me please" * 4
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    with pytest.raises(CodecError):
        decode_stream(packed, nbits + 64, tree)


def test_assemble_tiles_pieces():
    data = b"assembly line " * 11
    tree = _tree(data)
    blocks = [data[i : i + 16] for i in range(0, len(data), 16)]
    pieces = []
    offset = 0
    for b in blocks:
        packed, nbits = encode_block(b, tree)
        pieces.append((offset, packed, nbits))
        offset += nbits
    stream = assemble_stream(pieces, offset)
    assert decode_stream(stream, offset, tree) == data


def test_assemble_rejects_overlap():
    data = b"overlap"
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    with pytest.raises(CodecError):
        assemble_stream([(0, packed, nbits), (nbits // 2, packed, nbits)],
                        nbits + nbits // 2)


def test_assemble_rejects_gap():
    data = b"gap"
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    with pytest.raises(CodecError):
        assemble_stream([(5, packed, nbits)], nbits + 5)


def test_assemble_rejects_out_of_range():
    data = b"range"
    tree = _tree(data)
    packed, nbits = encode_block(data, tree)
    with pytest.raises(CodecError):
        assemble_stream([(0, packed, nbits)], nbits - 1)


def test_assemble_out_of_order_pieces():
    data = b"0123456789abcdef" * 8
    tree = _tree(data)
    p0, n0 = encode_block(data[:64], tree)
    p1, n1 = encode_block(data[64:], tree)
    stream = assemble_stream([(n0, p1, n1), (0, p0, n0)], n0 + n1)
    assert decode_stream(stream, n0 + n1, tree) == data


def test_long_codes_slow_path():
    """Construct a tree with codes longer than the 16-bit peek window to
    force the decoder's canonical fallback."""
    hist = np.zeros(256, dtype=np.int64)
    # Exponential frequencies create a deep, skewed tree.
    for i in range(40):
        hist[i] = 2 ** min(i, 40)
    tree = HuffmanTree.from_histogram(hist)
    assert tree.max_length > 16
    rng = np.random.default_rng(1)
    # Sample data weighted towards rare (long-code) symbols.
    data = bytes(rng.integers(0, 40, 300, dtype=np.uint8))
    packed, nbits = encode_block(data, tree)
    assert decode_stream(packed, nbits, tree) == data

"""Pipeline geometry edge cases: awkward ratios, fan-outs and block counts."""

import numpy as np
import pytest

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

BLOCK = 256


def _run(n_blocks, **config_kw):
    base = dict(block_size=BLOCK, reduce_ratio=4, offset_fanout=8,
                speculative=True, step=1, verify_k=2, tolerance=0.01)
    base.update(config_kw)
    rng = np.random.default_rng(n_blocks)
    data = bytes(rng.choice(np.arange(32, 96, dtype=np.uint8), n_blocks * BLOCK))
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=3), policy="balanced", workers=3)
    pipe = HuffmanPipeline(rt, HuffmanConfig(**base), n_blocks)
    for i in range(n_blocks):
        ex.sim.schedule_at(float(i), lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.verify_roundtrip(data)
    return pipe, result


@pytest.mark.parametrize("n_blocks", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17])
def test_any_block_count_roundtrips(n_blocks):
    _, result = _run(n_blocks)
    assert result.n_blocks == n_blocks


def test_ratio_larger_than_input():
    """One reduce group covering everything: the first reduce is final."""
    pipe, result = _run(3, reduce_ratio=100)
    assert result.outcome == "recompute"  # nothing to speculate on


def test_fanout_larger_than_input():
    """A single offset group feeding every encode."""
    _, result = _run(6, offset_fanout=100)
    assert result.n_blocks == 6


def test_fanout_one_fully_serial_offsets():
    """Degenerate chain: one offset task per block."""
    _, result = _run(8, offset_fanout=1)
    assert result.n_blocks == 8


def test_ratio_one_update_per_block():
    """An update after every single block (maximum check opportunities)."""
    pipe, result = _run(8, reduce_ratio=1, verify_k=1)
    assert result.outcome in ("commit", "recompute")
    if pipe.manager is not None:
        assert pipe.manager.stats.checks >= 1


def test_uneven_tail_group_everywhere():
    """Block count coprime with both ratios exercises partial groups in the
    reduce cascade and the offset chain simultaneously."""
    _, result = _run(13, reduce_ratio=4, offset_fanout=5)
    assert result.n_blocks == 13

"""Huffman pipeline under adversarial arrival orders.

Unlike the filter app (which needs the previous block's raw tail), the
Huffman pipeline has no ordering requirement: counts are per-block, reduce
groups complete whenever their members do, and the offset chain wires
retroactively. Blocks may arrive in any order.
"""

import numpy as np
import pytest

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

BLOCK = 512


def _run_order(order, n_blocks=16, **config_kw):
    base = dict(block_size=BLOCK, reduce_ratio=4, offset_fanout=4,
                speculative=True, step=1, verify_k=2, tolerance=0.01)
    base.update(config_kw)
    rng = np.random.default_rng(42)
    data = bytes(rng.choice(np.arange(40, 90, dtype=np.uint8), n_blocks * BLOCK))
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced", workers=4)
    pipe = HuffmanPipeline(rt, HuffmanConfig(**base), n_blocks)
    for slot, i in enumerate(order):
        ex.sim.schedule_at(float(slot * 7), lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.verify_roundtrip(data)
    return result


def test_reverse_arrival_order():
    result = _run_order(list(reversed(range(16))))
    assert result.outcome in ("commit", "recompute")
    assert result.n_blocks == 16


def test_shuffled_arrival_order():
    rng = np.random.default_rng(7)
    order = list(rng.permutation(16))
    result = _run_order(order)
    assert result.n_blocks == 16


def test_interleaved_group_completion():
    """Arrival order that completes reduce group 2 before group 0."""
    order = [8, 9, 10, 11, 0, 4, 1, 5, 2, 6, 3, 7, 12, 13, 14, 15]
    result = _run_order(order)
    assert result.n_blocks == 16


def test_burst_then_trickle():
    """All but one block at t=0, the last one much later (stalls the final
    reduce — speculation should cover the gap)."""
    rng = np.random.default_rng(42)
    n_blocks = 16
    data = bytes(rng.choice(np.arange(40, 90, dtype=np.uint8), n_blocks * BLOCK))
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced", workers=4)
    pipe = HuffmanPipeline(
        rt, HuffmanConfig(block_size=BLOCK, reduce_ratio=4, offset_fanout=4,
                          speculative=True, step=1, verify_k=2), n_blocks)
    for i in range(n_blocks - 1):
        ex.sim.schedule_at(float(i), lambda i=i: pipe.feed_block(
            i, data[i * BLOCK:(i + 1) * BLOCK]))
    ex.sim.schedule_at(5000.0, lambda: pipe.feed_block(
        n_blocks - 1, data[(n_blocks - 1) * BLOCK:]))
    end = ex.run()
    result = pipe.result(end)
    assert pipe.verify_roundtrip(data)
    # with speculation, earlier blocks were encoded long before the straggler
    lat = result.latencies
    assert lat[:4].max() < 5000.0


def test_run_pause_resume_midflight():
    """Stopping the simulation mid-run and resuming completes identically to
    an uninterrupted run (the paper's runtime never needs this, but a
    simulator that can't pause can't be inspected)."""
    import numpy as np
    from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
    from repro.platforms import X86Platform
    from repro.sre.executor_sim import SimulatedExecutor
    from repro.sre.runtime import Runtime

    def build():
        rng = np.random.default_rng(11)
        data = bytes(rng.choice(np.arange(60, 100, dtype=np.uint8), 16 * BLOCK))
        rt = Runtime()
        ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced",
                               workers=4)
        pipe = HuffmanPipeline(
            rt, HuffmanConfig(block_size=BLOCK, reduce_ratio=4,
                              offset_fanout=4, step=1, verify_k=2), 16)
        for i in range(16):
            ex.sim.schedule_at(float(i * 3), lambda i=i: pipe.feed_block(
                i, data[i * BLOCK:(i + 1) * BLOCK]))
        return ex, pipe, data

    ex1, pipe1, data = build()
    end1 = ex1.run()
    result1 = pipe1.result(end1)

    ex2, pipe2, _ = build()
    ex2.run(until=end1 / 3)
    ex2.run(until=2 * end1 / 3)
    end2 = ex2.run()
    result2 = pipe2.result(end2)

    assert end1 == end2
    assert np.array_equal(result1.latencies, result2.latencies)
    assert result1.outcome == result2.outcome
    assert pipe2.verify_roundtrip(data)

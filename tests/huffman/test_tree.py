"""Unit tests for Huffman tree construction and canonical codes."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree, code_lengths


def test_lengths_cover_all_symbols():
    lengths = code_lengths(byte_histogram(b"aaabbc"))
    assert lengths.shape == (256,)
    assert np.all(lengths >= 1)


def test_frequent_symbols_get_shorter_codes():
    data = b"a" * 1000 + b"b" * 100 + b"c" * 10
    lengths = code_lengths(byte_histogram(data))
    assert lengths[ord("a")] <= lengths[ord("b")] <= lengths[ord("c")]


def test_kraft_equality_holds():
    for data in (b"abc", b"a" * 999 + b"b", bytes(range(256)) * 5):
        tree = HuffmanTree.from_histogram(byte_histogram(data))
        kraft = np.sum(2.0 ** -tree.lengths.astype(np.float64))
        assert kraft == pytest.approx(1.0)


def test_uniform_histogram_gives_8bit_codes():
    hist = np.ones(256, dtype=np.int64) * 100
    tree = HuffmanTree.from_histogram(hist)
    assert np.all(tree.lengths == 8)


def test_deterministic_given_histogram():
    hist = byte_histogram(b"hello world, this is deterministic")
    a = code_lengths(hist)
    b = code_lengths(hist)
    assert np.array_equal(a, b)


def test_negative_counts_rejected():
    hist = np.zeros(256, dtype=np.int64)
    hist[0] = -1
    with pytest.raises(CodecError):
        code_lengths(hist)


def test_bad_shape_rejected():
    with pytest.raises(CodecError):
        code_lengths(np.ones(255, dtype=np.int64))


def test_canonical_codes_are_prefix_free():
    tree = HuffmanTree.from_histogram(byte_histogram(b"mississippi river" * 40))
    codes = [
        format(int(tree.codes[s]), "b").zfill(int(tree.lengths[s]))
        for s in range(256)
    ]
    codes.sort()
    for a, b in zip(codes, codes[1:]):
        assert not b.startswith(a), f"{a} is a prefix of {b}"


def test_canonical_codes_sorted_by_length_then_symbol():
    tree = HuffmanTree.from_histogram(byte_histogram(b"aabbccdd" * 100))
    # within one length, code value increases with symbol value
    by_len = {}
    for s in range(256):
        by_len.setdefault(int(tree.lengths[s]), []).append((s, int(tree.codes[s])))
    for entries in by_len.values():
        codes = [c for _, c in sorted(entries)]
        assert codes == sorted(codes)


def test_encoded_bits_weighted_sum():
    hist = byte_histogram(b"aab")
    tree = HuffmanTree.from_histogram(hist)
    expected = 2 * int(tree.lengths[ord("a")]) + int(tree.lengths[ord("b")])
    assert tree.encoded_bits(hist) == expected


def test_zero_frequencies_clamped_not_dropped():
    """Symbols absent from the histogram still get codes (speculative trees
    must be total — the package docstring's design decision)."""
    hist = np.zeros(256, dtype=np.int64)
    hist[ord("x")] = 1_000_000
    tree = HuffmanTree.from_histogram(hist)
    assert np.all(tree.lengths >= 1)
    assert tree.max_length < 64


def test_equality_and_hash_by_lengths():
    h = byte_histogram(b"equality test payload" * 30)
    a = HuffmanTree.from_histogram(h)
    b = HuffmanTree.from_histogram(h.copy())
    assert a == b
    assert hash(a) == hash(b)
    c = HuffmanTree.from_histogram(byte_histogram(b"\x00\xff" * 4000))
    assert a != c


def test_extreme_skew_bounded_depth():
    hist = np.ones(256, dtype=np.int64)
    hist[0] = 2**40
    tree = HuffmanTree.from_histogram(hist)
    assert tree.lengths[0] == 1
    assert tree.max_length <= 63

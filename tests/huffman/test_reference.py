"""Unit tests for the sequential reference codec (the oracle itself)."""

import numpy as np

from repro.huffman.reference import reference_compress, reference_decompress
from repro.workloads import get_workload


def test_roundtrip_text():
    data = b"The quick brown fox jumps over the lazy dog. " * 40
    packed, nbits, tree = reference_compress(data)
    assert reference_decompress(packed, nbits, tree) == data


def test_compresses_skewed_data():
    data = b"e" * 5000 + b"qz" * 10
    _, nbits, _ = reference_compress(data)
    assert nbits < len(data) * 2  # far better than 8 bits/byte


def test_random_data_near_incompressible():
    data = bytes(np.random.default_rng(0).integers(0, 256, 4096, dtype=np.uint8))
    _, nbits, _ = reference_compress(data)
    assert nbits >= len(data) * 7.5  # ~8 bits/byte, little slack


def test_roundtrip_each_workload():
    for name in ("txt", "bmp", "pdf"):
        data = get_workload(name).generate(32 * 1024, seed=5)
        packed, nbits, tree = reference_compress(data)
        assert reference_decompress(packed, nbits, tree) == data


def test_text_workload_compression_ratio_plausible():
    """~70 printable symbols Zipf-distributed: the paper quotes nearly 3.5x
    as the ceiling for text; our synthetic text should land well above 1.5x."""
    data = get_workload("txt").generate(256 * 1024, seed=0)
    _, nbits, _ = reference_compress(data)
    ratio = len(data) * 8 / nbits
    assert 1.4 < ratio < 3.5

"""Unit tests for histograms (count/reduce kernels)."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.huffman.histogram import byte_histogram, merge_histograms, zero_histogram


def test_zero_histogram_shape_and_dtype():
    h = zero_histogram()
    assert h.shape == (256,)
    assert h.dtype == np.int64
    assert h.sum() == 0


def test_byte_histogram_counts():
    h = byte_histogram(b"aabbbz")
    assert h[ord("a")] == 2
    assert h[ord("b")] == 3
    assert h[ord("z")] == 1
    assert h.sum() == 6


def test_byte_histogram_empty():
    assert byte_histogram(b"").sum() == 0


def test_byte_histogram_all_values():
    data = bytes(range(256)) * 3
    h = byte_histogram(data)
    assert np.all(h == 3)


def test_byte_histogram_accepts_uint8_array():
    arr = np.array([0, 0, 255], dtype=np.uint8)
    h = byte_histogram(arr)
    assert h[0] == 2 and h[255] == 1


def test_byte_histogram_rejects_wrong_dtype():
    with pytest.raises(CodecError):
        byte_histogram(np.array([1, 2], dtype=np.int32))


def test_merge_is_sum():
    a = byte_histogram(b"aa")
    b = byte_histogram(b"ab")
    merged = merge_histograms([a, b])
    assert merged[ord("a")] == 3
    assert merged[ord("b")] == 1


def test_merge_order_independent():
    parts = [byte_histogram(bytes([i]) * i) for i in range(1, 10)]
    fwd = merge_histograms(parts)
    rev = merge_histograms(reversed(parts))
    assert np.array_equal(fwd, rev)


def test_merge_matches_whole_input():
    data = b"the quick brown fox jumps over the lazy dog" * 20
    blocks = [data[i : i + 64] for i in range(0, len(data), 64)]
    merged = merge_histograms(byte_histogram(b) for b in blocks)
    assert np.array_equal(merged, byte_histogram(data))


def test_merge_rejects_bad_shape():
    with pytest.raises(CodecError):
        merge_histograms([np.zeros(10, dtype=np.int64)])

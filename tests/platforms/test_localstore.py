"""Unit tests for the Cell local-store allocator."""

import pytest

from repro.errors import PlatformError
from repro.platforms.localstore import LocalStore


def test_default_geometry_gives_32k_cap():
    store = LocalStore()
    assert store.capacity == 256 * 1024
    assert store.slots == 4
    assert store.max_task_bytes == 32 * 1024


def test_reserve_and_release():
    store = LocalStore()
    store.reserve("t1", 10_000)
    assert store.used_bytes == 10_000
    assert store.free_slots == 3
    store.release("t1")
    assert store.used_bytes == 0
    assert store.free_slots == 4


def test_per_task_cap_enforced():
    store = LocalStore()
    with pytest.raises(PlatformError):
        store.reserve("big", 33 * 1024)


def test_slot_exhaustion():
    store = LocalStore(slots=2)
    store.reserve("a", 1)
    store.reserve("b", 1)
    with pytest.raises(PlatformError):
        store.reserve("c", 1)


def test_double_reserve_rejected():
    store = LocalStore()
    store.reserve("a", 1)
    with pytest.raises(PlatformError):
        store.reserve("a", 1)


def test_release_unknown_rejected():
    with pytest.raises(PlatformError):
        LocalStore().release("ghost")


def test_invalid_geometry_rejected():
    with pytest.raises(PlatformError):
        LocalStore(capacity=0)
    with pytest.raises(PlatformError):
        LocalStore(slots=0)

"""Unit tests for platform models and cost tables."""

import pytest

from repro.errors import PlatformError
from repro.platforms import CellPlatform, X86Platform, get_platform
from repro.platforms.base import Platform
from repro.platforms.costmodel import CostModel, KindCost
from repro.sre.task import Task


def test_get_platform_by_name():
    assert isinstance(get_platform("x86"), X86Platform)
    assert isinstance(get_platform("CELL"), CellPlatform)
    with pytest.raises(PlatformError):
        get_platform("gpu")


def test_x86_defaults_match_paper():
    plat = X86Platform()
    assert plat.default_workers == 16
    assert plat.prefetch_depth == 1
    assert plat.max_task_bytes is None


def test_cell_defaults_match_paper():
    plat = CellPlatform()
    assert plat.default_workers == 16
    assert plat.prefetch_depth == 4
    assert plat.max_task_bytes == 32 * 1024
    assert plat.local_store.capacity == 256 * 1024


def test_cell_transfer_time_scales_with_bytes():
    plat = CellPlatform()
    small = Task("s", None, cost_hint={"bytes": 0.0})
    big = Task("b", None, cost_hint={"bytes": 4096.0})
    assert plat.transfer_time(big) > plat.transfer_time(small) > 0


def test_x86_has_no_transfer_time():
    t = Task("t", None, cost_hint={"bytes": 4096.0})
    assert X86Platform().transfer_time(t) == 0.0


def test_cell_slower_than_x86_for_same_task():
    t = Task("t", None, kind="encode", cost_hint={"bytes": 4096.0})
    assert CellPlatform().service_time(t) > X86Platform().service_time(t)


def test_validate_task_enforces_memory_cap():
    plat = CellPlatform()
    ok = Task("ok", None, cost_hint={"bytes": 4096.0})
    plat.validate_task(ok)
    too_big = Task("big", None, cost_hint={"bytes": 64 * 1024.0})
    with pytest.raises(PlatformError):
        plat.validate_task(too_big)


def test_encode_dominates_cost_table():
    """The second pass is the bulk of the work — the premise of the paper's
    parallelisation (and of speculating past the tree build)."""
    plat = X86Platform()
    block = {"bytes": 4096.0}
    encode = plat.service_time(Task("e", None, kind="encode", cost_hint=block))
    count = plat.service_time(Task("c", None, kind="count", cost_hint=block))
    tree = plat.service_time(Task("t", None, kind="tree", cost_hint={"entries": 256.0}))
    check = plat.service_time(Task("k", None, kind="check", cost_hint={"entries": 256.0}))
    assert encode > count
    assert encode > tree
    assert check < tree  # "check tasks are simple and run very quickly"


def test_kindcost_affine_evaluation():
    kc = KindCost(base=1.0, per_byte=0.5, per_entry=0.25, per_unit=2.0)
    assert kc.evaluate({"bytes": 2, "entries": 4, "units": 1}) == 1 + 1 + 1 + 2


def test_costmodel_unknown_kind_uses_default():
    cm = CostModel(kinds={}, default=KindCost(base=7.0))
    assert cm.service_time(Task("t", None, kind="mystery")) == 7.0


def test_costmodel_speed_scaling():
    cm = CostModel(kinds={"k": KindCost(base=10.0)})
    slow = cm.with_speed(2.0)
    t = Task("t", None, kind="k")
    assert slow.service_time(t) == 20.0
    assert cm.service_time(t) == 10.0  # original unchanged


def test_platform_validation():
    cm = CostModel()
    with pytest.raises(PlatformError):
        Platform("p", cm, prefetch_depth=0)
    with pytest.raises(PlatformError):
        Platform("p", cm, default_workers=0)

"""End-to-end distributed tracing through the serve daemon.

The acceptance bar for the trace spine:

* every job gets its own trace — two tenants submitting concurrently
  never share a trace id, and no span of one job leaks into the
  other's assembled trace;
* every ``span_start`` / ``span_end`` the daemon records carries the
  owning job's trace id, so the flight recorder and the ``trace`` op
  tell the same story;
* a procs job's trace reaches *inside* the worker processes: the
  ``worker_exec`` leaves stamped from the dispatch batch header join
  the submit's trace and hang off the execute span;
* the daemon-clock stage spans tile the job span — their summed
  duration accounts for (nearly) all of submit→result wall time.
"""

import pytest

from repro.client import ServeClient
from repro.obs.spans import span_tree
from repro.serve.server import ServeSettings, SpeculationServer

pytestmark = pytest.mark.slow

_HUFF = {"app": "huffman", "workload": "txt", "n_blocks": 8,
         "executor": "procs", "workers": 2, "transport": "shm", "seed": 0}
_KMEANS = {"app": "kmeans", "n_blocks": 8, "seed": 0}

_DAEMON_STAGES = {"admission", "queue", "lane_lease", "execute", "result"}


@pytest.fixture()
def server():
    srv = SpeculationServer(ServeSettings(job_workers=2)).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


def _trace_of(client, job_id):
    doc = client.trace(job_id)
    assert doc["state"] == "done"
    return doc


def test_two_tenants_get_disjoint_traces(server, client):
    jobs = {
        "alice": client.submit(_HUFF, tenant="alice"),
        "bob": client.submit(_KMEANS, tenant="bob"),
    }
    for job in jobs.values():
        client.result(job, timeout_s=180.0)
    traces = {t: _trace_of(client, j) for t, j in jobs.items()}

    # one trace per job, never shared
    assert traces["alice"]["trace_id"] != traces["bob"]["trace_id"]
    for tenant, doc in traces.items():
        assert doc["tenant"] == tenant
        assert len(doc["trace_id"]) == 32
        # every span of the job belongs to the job's trace...
        assert {s["trace_id"] for s in doc["spans"]} == {doc["trace_id"]}
        # ...and spans that name a tenant name the right one
        assert {s["tenant"] for s in doc["spans"]
                if s.get("tenant") is not None} == {tenant}

    # no span leaks across jobs
    ids = {t: {s["span_id"] for s in doc["spans"]}
           for t, doc in traces.items()}
    assert not ids["alice"] & ids["bob"]

    # every span event the daemon recorded carries one of the two trace
    # ids — the flight recorder and the trace op agree on lineage
    trace_ids = {doc["trace_id"] for doc in traces.values()}
    span_events = [e for e in server.events.events()
                   if e["kind"] in ("span_start", "span_end")]
    assert span_events
    assert {e["trace_id"] for e in span_events} <= trace_ids


def test_procs_trace_reaches_worker_processes(server, client):
    job = client.submit(_HUFF, tenant="alice")
    client.result(job, timeout_s=180.0)
    doc = _trace_of(client, job)
    names = {s["name"] for s in doc["spans"]}
    assert _DAEMON_STAGES <= names

    # worker-side leaves joined the same trace, one per executed payload
    leaves = [s for s in doc["spans"] if s["name"] == "worker_exec"]
    assert leaves
    assert all(s["clock"] == "worker" for s in leaves)
    assert all(s["trace_id"] == doc["trace_id"] for s in leaves)
    assert {s["worker"] for s in leaves} <= {0, 1}

    # tree shape: job at the root, worker leaves under execute
    (root,) = span_tree(doc["spans"])
    assert root["name"] == "job"
    by_name = {c["name"]: c for c in root["children"]}
    assert set(by_name) >= _DAEMON_STAGES
    execute = by_name["execute"]
    assert {c["name"] for c in execute["children"]} == {"worker_exec"}
    assert len(execute["children"]) == len(leaves)


def test_sim_job_trace_has_no_lane_lease_stage(server, client):
    # lanes exist for procs only; a sim job's trace must not fabricate one
    job = client.submit(_KMEANS, tenant="bob")
    client.result(job)
    names = {s["name"] for s in _trace_of(client, job)["spans"]}
    assert "lane_lease" not in names
    assert {"admission", "queue", "execute", "result", "job"} <= names


def test_warm_stage_spans_tile_the_job_span(server, client):
    # first job pays the lane spawn; the second (warm) job's stage spans
    # must account for nearly all of its submit→result wall time
    client.result(client.submit(_HUFF, tenant="alice"), timeout_s=180.0)
    job = client.submit(_HUFF, tenant="alice")
    client.result(job, timeout_s=180.0)
    doc = _trace_of(client, job)
    spans = {s["name"]: s for s in doc["spans"]
             if s.get("clock") != "worker"}
    (lease,) = [s for s in doc["spans"] if s["name"] == "lane_lease"]
    assert lease["outcome"] == "warm"
    job_dur = spans["job"]["dur_us"]
    stage_sum = sum(spans[name]["dur_us"] for name in _DAEMON_STAGES)
    assert job_dur > 0
    assert stage_sum / job_dur > 0.9
    assert stage_sum <= job_dur * 1.001


def test_trace_of_unknown_job_is_refused(client):
    from repro.client import ServeError
    with pytest.raises(ServeError):
        client.trace("job-nope")


def test_submit_reply_and_job_rows_carry_trace_id(server, client):
    job = client.submit(_KMEANS, tenant="bob")
    client.result(job)
    (row,) = [r for r in client.jobs() if r["job_id"] == job]
    assert row["trace_id"] == _trace_of(client, job)["trace_id"]

"""The unified Job API: one registry, one config, one result shape."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import (JOBS, RunReport, job_names, register_job,
                                    run_job)


def test_job_names_cover_all_bundled_apps():
    names = job_names()
    assert {"huffman", "filter", "kmeans"} <= set(names)
    assert names == tuple(sorted(names))


def test_run_job_dispatches_by_app():
    report = run_job(RunConfig.for_app("filter", n_blocks=16))
    assert isinstance(report, RunReport)
    assert report.app == "filter"
    assert report.output_sha256 is not None


def test_run_job_rejects_unknown_app():
    cfg = RunConfig(app="quicksort", n_blocks=8)
    with pytest.raises(ExperimentError, match="unknown app 'quicksort'"):
        run_job(cfg)


def test_run_job_rejects_non_runconfig():
    with pytest.raises(ExperimentError, match="RunConfig"):
        run_job({"app": "huffman"})


def test_register_job_round_trips():
    calls = []

    def fake(config, *, metrics=None, decisions=None, resources=None):
        calls.append(config.app)
        return run_job(RunConfig.for_app("filter", n_blocks=16))

    register_job("fake_app", fake)
    try:
        run_job(RunConfig(app="fake_app", n_blocks=8))
        assert calls == ["fake_app"]
    finally:
        del JOBS["fake_app"]


def test_register_job_validates_name():
    with pytest.raises(ExperimentError):
        register_job("", lambda **kw: None)


def test_for_app_fills_conventional_defaults():
    f = RunConfig.for_app("filter")
    assert (f.app, f.n_blocks, f.step, f.tolerance) == ("filter", 64, 2, 0.02)
    k = RunConfig.for_app("kmeans")
    assert (k.app, k.n_blocks, k.tolerance) == ("kmeans", 48, 0.05)
    h = RunConfig.for_app("huffman", n_blocks=8)
    assert (h.app, h.n_blocks) == ("huffman", 8)
    # explicit kwargs beat the app defaults
    assert RunConfig.for_app("kmeans", tolerance=0.5).tolerance == 0.5


def test_reports_share_one_shape_across_apps():
    reports = [
        run_job(RunConfig.for_app("huffman", workload="txt", n_blocks=16)),
        run_job(RunConfig.for_app("filter", n_blocks=16)),
        run_job(RunConfig.for_app("kmeans", n_blocks=12)),
    ]
    for r in reports:
        assert isinstance(r, RunReport)
        assert r.result.outcome in ("commit", "recompute", "non_speculative")
        assert isinstance(r.latencies, np.ndarray) and r.latencies.size
        assert r.avg_latency > 0
        assert r.completion_time > 0
        assert r.output_sha256 is not None and len(r.output_sha256) == 64
        assert r.metrics is not None
        assert r.run_config is not None
    assert [r.app for r in reports] == ["huffman", "filter", "kmeans"]

"""Framing layer: length-prefixed JSON frames over a socketpair."""

import socket
import threading

import pytest

from repro.errors import TransportError
from repro.serve.wire import (MAX_FRAME_BYTES, decode_blob, encode_blob,
                              recv_frame, send_frame)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_roundtrip_simple(pair):
    a, b = pair
    send_frame(a, {"op": "ping", "n": 3})
    assert recv_frame(b) == {"op": "ping", "n": 3}


def test_roundtrip_many_frames_in_order(pair):
    a, b = pair
    for i in range(50):
        send_frame(a, {"i": i})
    for i in range(50):
        assert recv_frame(b) == {"i": i}


def test_blob_roundtrip(pair):
    a, b = pair
    payload = bytes(range(256)) * 40
    send_frame(a, {"data_b64": encode_blob(payload)})
    frame = recv_frame(b)
    assert decode_blob(frame["data_b64"]) == payload


def test_clean_eof_returns_none(pair):
    a, b = pair
    a.close()
    assert recv_frame(b) is None


def test_mid_frame_eof_raises(pair):
    a, b = pair
    send_frame(a, {"x": "y" * 100})
    # deliver only the header + a few body bytes, then hang up
    threading.Thread(target=a.close).start()
    # consume the valid frame first so close lands cleanly for this test
    assert recv_frame(b)["x"] == "y" * 100


def test_truncated_body_raises():
    a, b = socket.socketpair()
    try:
        import struct

        a.sendall(struct.pack(">I", 100) + b'{"partial":')
        a.close()
        with pytest.raises(TransportError, match="mid-frame"):
            recv_frame(b)
    finally:
        b.close()


def test_oversize_announcement_refused():
    a, b = socket.socketpair()
    try:
        import struct

        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError, match="refusing"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_malformed_json_raises(pair):
    a, b = pair
    import struct

    body = b"not json at all"
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(TransportError, match="malformed"):
        recv_frame(b)


def test_non_object_frame_rejected(pair):
    a, b = pair
    import struct

    body = b"[1, 2, 3]"
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(TransportError, match="object"):
        recv_frame(b)


def test_bad_base64_raises():
    with pytest.raises(TransportError, match="base64"):
        decode_blob("!!!not base64!!!")

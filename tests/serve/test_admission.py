"""Admission gates: bulkheads, queue backpressure, the crash breaker.

Everything runs on an injected fake clock — the breaker walks its whole
closed → open → half-open → closed state machine without sleeping.
"""

import pytest

from repro.serve.admission import AdmissionController, TenantBreaker


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# TenantBreaker
# ----------------------------------------------------------------------
def test_breaker_closed_allows_and_success_resets():
    b = TenantBreaker(threshold=2, cooldown_s=10.0, clock=FakeClock())
    assert b.state == "closed"
    assert b.allow()
    b.record_crash()
    b.record_success()  # consecutive-crash count resets
    b.record_crash()
    assert b.state == "closed"  # 1 < threshold again


def test_breaker_opens_at_threshold():
    b = TenantBreaker(threshold=2, cooldown_s=10.0, clock=FakeClock())
    b.record_crash()
    b.record_crash()
    assert b.state == "open"
    assert not b.allow()
    assert b.opens == 1


def test_breaker_half_open_probe_lifecycle():
    clock = FakeClock()
    b = TenantBreaker(threshold=1, cooldown_s=10.0, clock=clock)
    b.record_crash()
    assert b.state == "open"
    clock.advance(9.9)
    assert not b.allow()  # still cooling
    clock.advance(0.2)
    assert b.allow()  # the half-open probe
    assert b.state == "half_open"
    assert not b.allow()  # only one probe at a time
    b.record_success()
    assert b.state == "closed"
    assert b.allow()


def test_breaker_probe_crash_reopens():
    clock = FakeClock()
    b = TenantBreaker(threshold=1, cooldown_s=10.0, clock=clock)
    b.record_crash()
    clock.advance(10.1)
    assert b.allow()
    b.record_crash()  # the probe crashed too
    assert b.state == "open"
    assert b.opens == 2
    assert not b.allow()  # cooldown restarted
    clock.advance(10.1)
    assert b.allow()


def test_breaker_validation():
    with pytest.raises(ValueError):
        TenantBreaker(threshold=0)
    with pytest.raises(ValueError):
        TenantBreaker(cooldown_s=0)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
def _ctl(**kw):
    defaults = dict(max_tenant_jobs=2, max_tenant_bytes=1000, queue_limit=3,
                    breaker_threshold=2, breaker_cooldown_s=10.0,
                    clock=FakeClock())
    defaults.update(kw)
    return AdmissionController(**defaults)


def test_admit_and_release_balance():
    ctl = _ctl()
    assert ctl.admit("a", 100) is None
    assert ctl.stats()["tenants"]["a"]["inflight_jobs"] == 1
    ctl.release("a", 100)
    stats = ctl.stats()["tenants"]["a"]
    assert stats["inflight_jobs"] == 0
    assert stats["inflight_bytes"] == 0


def test_tenant_job_bulkhead():
    ctl = _ctl()
    assert ctl.admit("a", 1) is None
    assert ctl.admit("a", 1) is None
    assert ctl.admit("a", 1) == "tenant_busy"
    # another tenant is unaffected
    assert ctl.admit("b", 1) is None


def test_tenant_byte_bulkhead():
    ctl = _ctl(max_tenant_jobs=10, queue_limit=10)
    assert ctl.admit("a", 800) is None
    assert ctl.admit("a", 300) == "tenant_bytes"
    assert ctl.admit("a", 200) is None  # exactly at the budget
    assert ctl.admit("b", 900) is None


def test_queue_full_backpressure():
    ctl = _ctl(max_tenant_jobs=10, queue_limit=3)
    for tenant in ("a", "b", "c"):
        assert ctl.admit(tenant, 1) is None
    assert ctl.admit("d", 1) == "queue_full"
    ctl.release("a", 1)
    assert ctl.admit("d", 1) is None


def test_crash_releases_open_the_breaker():
    clock = FakeClock()
    ctl = _ctl(clock=clock)
    for _ in range(2):
        assert ctl.admit("evil", 1) is None
        ctl.release("evil", 1, crash=True, success=False)
    assert ctl.breaker_state("evil") == "open"
    assert ctl.admit("evil", 1) == "circuit_open"
    # healthy neighbour sails through
    assert ctl.admit("good", 1) is None
    # cooldown -> exactly one half-open probe
    clock.advance(10.1)
    assert ctl.admit("evil", 1) is None
    assert ctl.admit("evil", 1) == "circuit_open"
    ctl.release("evil", 1, crash=False, success=True)
    assert ctl.breaker_state("evil") == "closed"


def test_plain_failure_does_not_feed_the_breaker():
    ctl = _ctl()
    for _ in range(5):
        assert ctl.admit("a", 1) is None
        ctl.release("a", 1, crash=False, success=False)
    assert ctl.breaker_state("a") == "closed"


def test_rejection_reasons_counted_in_stats():
    ctl = _ctl()
    ctl.admit("a", 1)
    ctl.admit("a", 1)
    ctl.admit("a", 1)  # tenant_busy
    ctl.admit("a", 1)  # tenant_busy
    assert ctl.stats()["tenants"]["a"]["rejections"] == {"tenant_busy": 2}


def test_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_tenant_jobs=0)
    with pytest.raises(ValueError):
        AdmissionController(queue_limit=0)
    with pytest.raises(ValueError):
        AdmissionController(max_tenant_bytes=0)

"""Regression tests for the serve-layer hang bugs.

Two ways the serve layer used to wedge forever, both found while
building the distributed executor on top of it:

* the daemon's per-connection threads were untracked and blocked in
  ``recv_frame`` with no timeout, so an idle client pinned its thread
  for the life of the process and ``stop()`` never reclaimed it;
* ``ServeClient._call`` held the client lock around an unbounded
  ``recv_frame``, so a daemon that accepted but never replied wedged
  the calling thread *and* every other thread sharing the client.

Each test here fails against the old code (hang or leaked thread)
and pins the fix: tracked connections + idle deadline + sockets closed
on ``stop()``; a per-call client deadline surfacing as a typed
:class:`~repro.client.ServeError`. The adversarial-peer tests drive
the same wire-level attacks (truncated header/body, oversize length,
non-JSON, non-dict JSON) against a *live daemon* and assert it sheds
the bad peer and keeps serving — `tests/serve/test_wire.py` proves
``recv_frame`` raises; these prove the daemon survives the raise.
"""

import socket
import struct
import threading
import time

import pytest

from repro.client import ServeClient, ServeError
from repro.serve.server import ServeSettings, SpeculationServer
from repro.serve.wire import MAX_FRAME_BYTES, recv_frame, send_frame


@pytest.fixture()
def server():
    srv = SpeculationServer(ServeSettings(job_workers=1)).start()
    yield srv
    srv.stop()


def _connect(srv: SpeculationServer) -> socket.socket:
    return socket.create_connection(("127.0.0.1", srv.port), timeout=10)


# ---------------------------------------------------------------------------
# satellite 1: idle connections must not survive daemon shutdown
# ---------------------------------------------------------------------------

def test_idle_connection_does_not_survive_shutdown():
    """An idle client (connected, never sends) must not block stop():
    the daemon closes the tracked socket, the handler thread exits, and
    the client sees EOF. The old code left the thread parked in
    recv_frame forever and stop() never knew about it."""
    srv = SpeculationServer(ServeSettings(job_workers=1)).start()
    idle = _connect(srv)
    # Prove the connection is established and being served before stop.
    probe = _connect(srv)
    send_frame(probe, {"op": "ping"})
    assert recv_frame(probe)["ok"]
    probe.close()

    done = threading.Event()
    threading.Thread(target=lambda: (srv.stop(), done.set()),
                     daemon=True).start()
    assert done.wait(timeout=15.0), "stop() wedged on an idle connection"
    # The daemon closed the socket under the idle peer: recv sees EOF
    # promptly instead of blocking until the peer gives up.
    idle.settimeout(5.0)
    assert idle.recv(1) == b""
    idle.close()


def test_idle_connection_evicted_by_deadline():
    """conn_idle_timeout_s bounds how long a silent peer may pin a
    handler thread even while the daemon keeps running."""
    srv = SpeculationServer(
        ServeSettings(job_workers=1, conn_idle_timeout_s=0.2)).start()
    try:
        idle = _connect(srv)
        idle.settimeout(10.0)
        assert idle.recv(1) == b"", "idle peer was not evicted"
        idle.close()
        kinds = [e["kind"] for e in srv.events.events()]
        assert "serve_conn_closed" in kinds
        # The daemon is still healthy for well-behaved clients.
        with ServeClient(port=srv.port) as client:
            assert client.ping()["ok"]
    finally:
        srv.stop()


# ---------------------------------------------------------------------------
# satellite 2: client-side reply deadline
# ---------------------------------------------------------------------------

@pytest.fixture()
def black_hole():
    """A server that accepts and then never replies — the exact shape of
    a wedged daemon."""
    listener = socket.create_server(("127.0.0.1", 0))
    conns: list[socket.socket] = []
    stop = threading.Event()

    def accept_loop():
        listener.settimeout(0.2)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conns.append(conn)  # hold it open; never read, never reply

    t = threading.Thread(target=accept_loop, daemon=True)
    t.start()
    yield listener.getsockname()[1]
    stop.set()
    listener.close()
    for c in conns:
        c.close()
    t.join(timeout=5.0)


def test_client_times_out_against_silent_daemon(black_hole):
    client = ServeClient(port=black_hole, timeout_s=0.5)
    try:
        t0 = time.monotonic()
        with pytest.raises(ServeError, match="daemon timed out"):
            client.ping()
        assert time.monotonic() - t0 < 10.0
    finally:
        client.close()


def test_client_timeout_does_not_wedge_other_threads(black_hole):
    """The lock is released when the deadline fires, so a second thread
    sharing the client gets its own timely timeout instead of queueing
    behind a forever-blocked peer."""
    client = ServeClient(port=black_hole, timeout_s=0.5)
    errors: list[Exception] = []

    def call():
        try:
            client.ping()
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    try:
        threads = [threading.Thread(target=call) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=15.0)
            assert not t.is_alive(), "caller wedged behind the lock"
        assert len(errors) == 2
        assert all(isinstance(e, ServeError) for e in errors)
    finally:
        client.close()


# ---------------------------------------------------------------------------
# satellite 3: adversarial peers against a live daemon
# ---------------------------------------------------------------------------

def _daemon_still_serves(srv: SpeculationServer) -> bool:
    with ServeClient(port=srv.port) as client:
        return bool(client.ping()["ok"])


def test_daemon_survives_truncated_header(server):
    evil = _connect(server)
    evil.sendall(b"\x00\x00")  # half a length prefix
    evil.close()
    assert _daemon_still_serves(server)


def test_daemon_survives_truncated_body(server):
    evil = _connect(server)
    evil.sendall(struct.pack(">I", 100) + b'{"partial":')
    evil.close()
    assert _daemon_still_serves(server)


def test_daemon_survives_oversize_announcement(server):
    evil = _connect(server)
    evil.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    # The daemon refuses the frame and drops the connection: EOF, no
    # gigabyte allocation, no hung thread.
    evil.settimeout(10.0)
    assert evil.recv(1) == b""
    evil.close()
    assert _daemon_still_serves(server)


def test_daemon_survives_malformed_and_non_dict_json(server):
    for body in (b"not json at all", b"[1, 2, 3]", b'"just a string"'):
        evil = _connect(server)
        evil.sendall(struct.pack(">I", len(body)) + body)
        evil.settimeout(10.0)
        assert evil.recv(1) == b""
        evil.close()
    assert _daemon_still_serves(server)

"""The serve daemon end to end: served == one-shot, isolation holds.

The acceptance bar for `repro serve`:

* a served job produces the **byte-identical** ``output_sha256`` a
  one-shot run of the same config produces (same code path, warm or
  cold);
* the warm substrate leaks nothing — after jobs drain, the daemon's
  shared BlockStore holds zero refs;
* one tenant's worker-killing payloads trip *its* breaker and poison
  *its* lane while a concurrent healthy tenant completes normally.
"""

import threading

import pytest

from repro.client import JobRejected, ServeClient, ServeError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import run_job
from repro.serve.server import ServeSettings, SpeculationServer

pytestmark = pytest.mark.slow


@pytest.fixture()
def server(request):
    settings = getattr(request, "param", None) or ServeSettings(job_workers=2)
    srv = SpeculationServer(settings).start()
    yield srv
    srv.stop()


@pytest.fixture()
def client(server):
    with ServeClient(port=server.port) as c:
        yield c


_HUFF = {"app": "huffman", "workload": "txt", "n_blocks": 16,
         "executor": "procs", "workers": 2, "transport": "shm", "seed": 0}
_KMEANS = {"app": "kmeans", "n_blocks": 16, "seed": 0}


def _one_shot_sha(config: dict) -> str:
    cfg = dict(config)
    return run_job(RunConfig.for_app(cfg.pop("app"), **cfg)).output_sha256


def test_ping(client):
    reply = client.ping()
    assert reply["ok"] and reply["pid"] > 0


def test_two_tenants_mixed_apps_byte_identical_and_no_leaks(server, client):
    """Tenants submit huffman (warm procs+shm) and kmeans (sim)
    concurrently; each served output is byte-identical to its one-shot
    equivalent and the warm arenas end the day empty."""
    jobs = {
        "alice": client.submit(_KMEANS, tenant="alice"),
        "bob": client.submit(_HUFF, tenant="bob"),
    }
    reports = {t: client.result(j, timeout_s=180.0) for t, j in jobs.items()}
    assert reports["alice"]["output_sha256"] == _one_shot_sha(_KMEANS)
    assert reports["bob"]["output_sha256"] == _one_shot_sha(_HUFF)
    assert reports["alice"]["app"] == "kmeans"
    assert reports["bob"]["app"] == "huffman"
    assert server.store.live_refs == 0
    stats = client.stats()
    assert stats["store"]["live_refs"] == 0
    assert stats["admission"]["inflight_total"] == 0


def test_warm_lane_reused_across_jobs(server, client):
    """The second procs job of a tenant rides the first job's worker
    pool — asserted through the lane-reuse counter, not timing."""
    for _ in range(2):
        job = client.submit(_HUFF, tenant="bob")
        client.result(job, timeout_s=180.0)
    assert server.metrics.value("serve_lane_spawns") == 1
    assert server.metrics.value("serve_lane_reuses") == 1
    (lane,) = server.lanes.stats()
    assert lane["jobs_served"] == 2 and not lane["in_use"]


def test_served_equals_one_shot_across_seeds(server, client):
    """Spot-check determinism through the service for sim configs."""
    for seed in (0, 7):
        cfg = dict(_KMEANS, seed=seed)
        job = client.submit(cfg, tenant="alice")
        assert client.result(job)["output_sha256"] == _one_shot_sha(cfg)


@pytest.mark.parametrize("server", [ServeSettings(
    job_workers=2, breaker_threshold=1, breaker_cooldown_s=600.0,
)], indirect=True)
def test_breaker_quarantines_crash_tenant_healthy_tenant_unaffected(
        server, client):
    """The §V resilience scenario: a tenant whose payloads kill workers
    is circuit-broken after one crash-failure; a concurrent healthy
    tenant's job completes byte-identical to its sim one-shot."""
    evil_cfg = {"app": "huffman", "workload": "txt", "n_blocks": 4,
                "executor": "procs", "workers": 1, "seed": 0,
                "fault_plan": "kill@1!", "max_task_retries": 1,
                "retry_backoff_s": 0.0, "max_worker_respawns": 1}
    evil_job = client.submit(evil_cfg, tenant="evil")
    good_job = client.submit(_KMEANS, tenant="good")
    # The poisoned job fails (its tasks are quarantined after repeated
    # worker deaths); the failure is crash-type and feeds the breaker.
    with pytest.raises(ServeError, match="failed"):
        client.result(evil_job, timeout_s=180.0)
    assert client.status(evil_job)["state"] == "failed"
    assert server.admission.breaker_state("evil") == "open"
    assert server.metrics.value("serve_breaker_opens", tenant="evil") == 1
    # Its lane was poisoned (dead/degraded seats) and dropped.
    assert server.metrics.value("serve_lane_drops") == 1
    assert server.lanes.stats() == []
    # Further submissions are refused instantly.
    with pytest.raises(JobRejected) as exc:
        client.submit(evil_cfg, tenant="evil")
    assert exc.value.reason == "circuit_open"
    # The healthy neighbour never noticed.
    report = client.result(good_job, timeout_s=180.0)
    assert report["output_sha256"] == _one_shot_sha(_KMEANS)
    assert server.admission.breaker_state("good") == "closed"
    assert server.store.live_refs == 0


def test_plain_failure_does_not_open_breaker(server, client):
    """A job that fails cleanly at run time (bad geometry — no worker
    was harmed) never feeds the breaker, however often it happens."""
    bad = {"app": "huffman", "workload": "txt", "n_blocks": 16,
           "executor": "sim", "block_size": -1}
    for _ in range(3):
        job = client.submit(bad, tenant="clumsy")
        with pytest.raises(ServeError, match="failed"):
            client.result(job, timeout_s=60.0)
    assert server.admission.breaker_state("clumsy") == "closed"
    # a malformed config dict is refused before admission, also breaker-free
    with pytest.raises(JobRejected) as exc:
        client.submit({"app": "huffman", "n_blockz": 8}, tenant="clumsy")
    assert exc.value.reason == "bad_config"
    assert server.admission.breaker_state("clumsy") == "closed"


@pytest.mark.parametrize("server", [ServeSettings(
    job_workers=1, max_tenant_jobs=1, queue_limit=2, stream_timeout_s=60.0,
)], indirect=True)
def test_bulkhead_and_queue_backpressure(server, client):
    """A held-open live job occupies its tenant's bulkhead slot; the
    tenant gets tenant_busy, and once the global queue fills other
    tenants get queue_full — until the slot frees."""
    live = {"app": "huffman", "io": "live", "n_blocks": 4,
            "executor": "threads", "workers": 2, "verify_roundtrip": False}
    held = client.submit(live, tenant="alice")
    with pytest.raises(JobRejected) as exc:
        client.submit(_KMEANS, tenant="alice")
    assert exc.value.reason == "tenant_busy"
    queued = client.submit(_KMEANS, tenant="bob")  # fills the global queue
    with pytest.raises(JobRejected) as exc:
        client.submit(_KMEANS, tenant="carol")
    assert exc.value.reason == "queue_full"
    # Feed the held job; completion frees the slots again.
    for i in range(4):
        client.send_block(held, i, bytes([i]) * 4096)
    client.close_stream(held)
    assert client.result(held, timeout_s=120.0)["outcome"]
    assert client.result(queued, timeout_s=120.0)["output_sha256"]
    assert client.submit(_KMEANS, tenant="carol")  # admitted now


def test_live_streaming_job_records_real_arrivals(server, client):
    """io='live': blocks pushed over the socket drive the pipeline and
    the run records their real (monotonic) arrival schedule."""
    blocks = [bytes([65 + i]) * 4096 for i in range(6)]
    job = client.submit({"app": "huffman", "io": "live", "n_blocks": 6,
                         "executor": "threads", "workers": 2},
                        tenant="alice")
    for i, block in enumerate(blocks):
        client.send_block(job, i, block)
    client.close_stream(job)
    report = client.result(job, timeout_s=120.0)
    assert report["roundtrip_ok"] is True
    arrivals = report["extras"]["live_arrivals_us"]
    assert len(arrivals) == 6
    assert arrivals == sorted(arrivals)
    assert report["label"].startswith("live/")


def test_concurrent_submitters_from_threads(server):
    """Two client threads (separate connections) hammer the daemon;
    every admitted job completes with the right per-seed digest."""
    results: dict[str, list] = {"a": [], "b": []}

    def drive(tenant: str, seeds: list[int]) -> None:
        with ServeClient(port=server.port) as c:
            for seed in seeds:
                job = c.submit(dict(_KMEANS, seed=seed), tenant=tenant)
                results[tenant].append(
                    (seed, c.result(job, timeout_s=120.0)["output_sha256"]))

    threads = [threading.Thread(target=drive, args=("a", [0, 1])),
               threading.Thread(target=drive, args=("b", [2, 3]))]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180.0)
    for tenant, rows in results.items():
        assert len(rows) == 2, f"{tenant} did not finish"
        for seed, sha in rows:
            assert sha == _one_shot_sha(dict(_KMEANS, seed=seed))


def test_unknown_ops_and_jobs_fail_cleanly(client):
    with pytest.raises(ServeError, match="unknown job"):
        client.status("job-999")
    with pytest.raises(ServeError, match="unknown op"):
        client._checked({"op": "frobnicate"})
    with pytest.raises(ServeError, match="unknown op"):
        client._checked({"op": "_op_ping"})  # no private-handler reach


def test_jobs_table_rows(server, client):
    job = client.submit(_KMEANS, tenant="alice")
    client.result(job)
    rows = client.jobs()
    assert [r["job_id"] for r in rows] == [job]
    (row,) = rows
    assert row["state"] == "done"
    assert row["tenant"] == "alice"
    assert row["latency_s"] > 0


def test_metrics_out_publishes_serve_snapshots(tmp_path):
    """`repro serve --metrics-out` keeps a snapshot fresh while the daemon
    runs and leaves a final post-harvest snapshot behind on stop — the
    file `repro top` tails."""
    from repro.obs.exporters import load_json_snapshot
    from repro.obs.top import derive_serve_stats

    path = tmp_path / "serve.metrics.json"
    srv = SpeculationServer(ServeSettings(
        job_workers=1, metrics_out=str(path),
        metrics_interval_s=0.05)).start()
    try:
        with ServeClient(port=srv.port) as c:
            c.result(c.submit(_KMEANS, tenant="alice"))
    finally:
        srv.stop()
    doc = load_json_snapshot(path.read_text())
    serve = derive_serve_stats(doc)
    assert serve is not None
    assert serve["tenants"]["alice"]["done"] == 1.0
    assert serve["stages"][("alice", "execute")]["count"] == 1.0

"""Calibration tests — pin the drift profiles the experiments depend on.

These assertions anchor every figure's rollback behaviour: if a generator
change moves a knee, these fail before the (slower) experiment tests do.
Run at paper geometry but reduced byte counts where the profile allows.
"""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import get_workload
from repro.workloads.calibration import (
    check_error_profile,
    first_safe_update,
    prefix_histograms,
)


def test_prefix_histograms_cover_input():
    data = b"abcd" * 4096  # 16 KB
    hists = prefix_histograms(data, block_size=1024, reduce_ratio=4)
    assert len(hists) == 4
    assert hists[-1].sum() == len(data)
    # prefixes are nested: counts only grow
    for a, b in zip(hists, hists[1:]):
        assert np.all(b >= a)


def test_prefix_histograms_partial_tail():
    data = b"x" * 5000
    hists = prefix_histograms(data, block_size=1024, reduce_ratio=4)
    assert len(hists) == 2
    assert hists[-1].sum() == 5000


def test_prefix_histograms_validation():
    with pytest.raises(WorkloadError):
        prefix_histograms(b"", 1024, 4)
    with pytest.raises(WorkloadError):
        prefix_histograms(b"x", 0, 4)


def test_check_error_profile_base_bounds():
    data = b"y" * 20_000
    with pytest.raises(WorkloadError):
        check_error_profile(data, 1024, 4, base_update=99)


def test_error_profile_of_final_base_is_empty():
    data = b"z" * 8192
    prof = check_error_profile(data, 1024, 4, base_update=2)
    assert prof.size == 0


@pytest.mark.slow
class TestPaperScaleCalibration:
    """The knees the figures rely on, at full paper geometry."""

    def test_txt_safe_from_first_update(self):
        data = get_workload("txt").generate(4 * 1024 * 1024, seed=0)
        assert first_safe_update(data, 0.01) == 1

    def test_bmp_knee_at_8(self):
        data = get_workload("bmp").generate(2 * 1024 * 1024, seed=0)
        assert first_safe_update(data, 0.01) == 8
        # step 4 rolls back, step 8 does not
        assert check_error_profile(data, base_update=4).max() > 0.01
        assert check_error_profile(data, base_update=8).max() <= 0.01

    def test_pdf_knee_near_16(self):
        data = get_workload("pdf").generate(4 * 1024 * 1024, seed=0)
        knee = first_safe_update(data, 0.01)
        assert 9 <= knee <= 16
        assert check_error_profile(data, base_update=8).max() > 0.01
        assert check_error_profile(data, base_update=16).max() <= 0.01

    def test_pdf_tolerance_ordering_fig9(self):
        """1% fails earlier than 2%; 5% never fails (incl. the final check)."""
        data = get_workload("pdf").generate(4 * 1024 * 1024, seed=0)
        prof = check_error_profile(data, base_update=1)
        checks = np.arange(2, 2 + prof.size)  # update index of each entry
        first_over_1 = checks[prof > 0.01][0]
        over_2 = checks[prof > 0.02]
        assert over_2.size > 0, "2% must eventually fail"
        first_over_2 = over_2[0]
        assert first_over_2 >= first_over_1 + 8, "2% must fail much later than 1%"
        assert prof.max() <= 0.05, "5% must never fail"

    def test_bmp_early_tree_fails_first_check(self):
        data = get_workload("bmp").generate(2 * 1024 * 1024, seed=0)
        prof = check_error_profile(data, base_update=1)
        err_at_8 = prof[8 - 2]  # profile starts at update 2
        assert err_at_8 > 0.01

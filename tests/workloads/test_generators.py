"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.huffman.histogram import byte_histogram
from repro.workloads import (
    BmpWorkload,
    PdfWorkload,
    TextWorkload,
    get_workload,
    gaussian_distribution,
    mix_distributions,
    sample_bytes,
    uniform_distribution,
    zipf_distribution,
)


# ---------------------------------------------------------------- helpers
def test_zipf_distribution_ranks():
    syms = np.array([10, 20, 30], dtype=np.uint8)
    p = zipf_distribution(syms, exponent=1.0)
    assert p[10] > p[20] > p[30]
    assert p.sum() == pytest.approx(1.0)
    assert p[0] == 0.0


def test_zipf_rejects_bad_exponent():
    with pytest.raises(WorkloadError):
        zipf_distribution(np.array([1], dtype=np.uint8), exponent=0.0)


def test_gaussian_distribution_peaks_at_center():
    p = gaussian_distribution(128, 20)
    assert np.argmax(p) == 128
    assert p.sum() == pytest.approx(1.0)


def test_uniform_distribution():
    p = uniform_distribution()
    assert np.allclose(p, 1 / 256)


def test_mix_distributions_bounds():
    p, q = uniform_distribution(), gaussian_distribution(0, 5)
    assert np.allclose(mix_distributions(p, q, 0.0), p)
    assert np.allclose(mix_distributions(p, q, 1.0), q)
    with pytest.raises(WorkloadError):
        mix_distributions(p, q, 1.5)


def test_sample_bytes_follows_distribution():
    p = np.zeros(256)
    p[7] = 0.75
    p[200] = 0.25
    rng = np.random.default_rng(0)
    draw = sample_bytes(p, 10_000, rng)
    hist = byte_histogram(draw)
    assert hist[7] + hist[200] == 10_000
    assert 0.70 < hist[7] / 10_000 < 0.80


def test_sample_bytes_deterministic_per_seed():
    p = uniform_distribution()
    a = sample_bytes(p, 100, np.random.default_rng(3))
    b = sample_bytes(p, 100, np.random.default_rng(3))
    assert np.array_equal(a, b)


# ---------------------------------------------------------------- text
def test_text_uses_limited_symbol_set():
    wl = TextWorkload()
    data = wl.generate(64 * 1024, seed=0)
    used = np.count_nonzero(byte_histogram(data))
    assert 40 <= used <= 80  # "around 70 characters" (§IV-A)


def test_text_is_stationary():
    wl = TextWorkload()
    data = wl.generate(256 * 1024, seed=0)
    half = len(data) // 2
    h1 = byte_histogram(data[:half]).astype(float)
    h2 = byte_histogram(data[half:]).astype(float)
    # L1 distance of the normalised halves is tiny
    assert np.abs(h1 / h1.sum() - h2 / h2.sum()).sum() < 0.04


# ---------------------------------------------------------------- bmp
def test_bmp_transient_then_stationary():
    wl = BmpWorkload()
    data = wl.generate(512 * 1024, seed=0)
    n = len(data)
    head = byte_histogram(data[: n // 16]).astype(float)
    mid = byte_histogram(data[n // 2 : n // 2 + n // 16]).astype(float)
    tail = byte_histogram(data[-n // 16 :]).astype(float)
    def dist(a, b):
        return np.abs(a / a.sum() - b / b.sum()).sum()
    # head differs from the body; mid and tail agree
    assert dist(head, tail) > 3 * dist(mid, tail)


def test_bmp_parameter_validation():
    with pytest.raises(WorkloadError):
        BmpWorkload(transient_fraction=0.0)
    with pytest.raises(WorkloadError):
        BmpWorkload(header_weight=1.5)


# ---------------------------------------------------------------- pdf
def test_pdf_stream_share_ramps_then_plateaus():
    wl = PdfWorkload()
    n = 4 * 1024 * 1024
    assert wl.stream_share(0, n) == pytest.approx(wl.stream_share_start)
    ramp_end = wl.ramp_fraction * n
    assert wl.stream_share(ramp_end, n) == pytest.approx(wl.stream_share_end)
    assert wl.stream_share(n, n) == pytest.approx(wl.stream_share_end)
    mid = wl.stream_share(ramp_end / 2, n)
    assert wl.stream_share_start < mid < wl.stream_share_end


def test_pdf_entropy_grows_with_position():
    wl = PdfWorkload()
    data = wl.generate(1024 * 1024, seed=0)
    n = len(data)

    def entropy(chunk):
        h = byte_histogram(chunk).astype(float)
        p = h[h > 0] / h.sum()
        return -(p * np.log2(p)).sum()

    early = entropy(data[: n // 8])
    late = entropy(data[-n // 8 :])
    assert late > early + 0.2


def test_pdf_parameter_validation():
    with pytest.raises(WorkloadError):
        PdfWorkload(stream_share_start=2.0)
    with pytest.raises(WorkloadError):
        PdfWorkload(ramp_fraction=0.0)
    with pytest.raises(WorkloadError):
        PdfWorkload(period=1024, chunk=4096)


# ---------------------------------------------------------------- registry
def test_registry_names():
    for name in ("txt", "bmp", "pdf"):
        assert get_workload(name).name == name
    with pytest.raises(WorkloadError):
        get_workload("exe")


def test_generators_are_deterministic():
    for name in ("txt", "bmp", "pdf"):
        wl = get_workload(name)
        assert wl.generate(8192, seed=9) == wl.generate(8192, seed=9)
        assert wl.generate(8192, seed=9) != wl.generate(8192, seed=10)


def test_generate_exact_length():
    for name in ("txt", "bmp", "pdf"):
        assert len(get_workload(name).generate(10_000, seed=0)) == 10_000


# ---------------------------------------------------------------- markov
def test_markov_uses_text_symbol_set():
    from repro.workloads import MarkovTextWorkload
    wl = MarkovTextWorkload()
    data = wl.generate(32 * 1024, seed=0)
    used = np.count_nonzero(byte_histogram(data))
    assert 40 <= used <= 80


def test_markov_is_correlated():
    """Bigram distribution differs from the product of marginals (unlike the
    i.i.d. TextWorkload)."""
    from repro.workloads import MarkovTextWorkload
    data = np.frombuffer(MarkovTextWorkload().generate(64 * 1024, seed=0),
                         dtype=np.uint8)
    # conditional distribution after the most common symbol vs the marginal
    top = np.bincount(data, minlength=256).argmax()
    idx = np.nonzero(data[:-1] == top)[0]
    following = np.bincount(data[idx + 1], minlength=256).astype(float)
    marginal = np.bincount(data, minlength=256).astype(float)
    following /= following.sum()
    marginal /= marginal.sum()
    assert np.abs(following - marginal).sum() > 0.2


def test_markov_deterministic_and_registered():
    from repro.workloads import get_workload
    wl = get_workload("markov")
    assert wl.generate(4096, 3) == wl.generate(4096, 3)


def test_markov_roundtrips_through_pipeline():
    from repro.experiments.runner import RunConfig, run_huffman
    r = run_huffman(config=RunConfig(workload="markov", n_blocks=32,
                                     reduce_ratio=4, policy="balanced",
                                     step=1, seed=0))
    assert r.roundtrip_ok
    assert r.result.outcome == "commit"  # stationary marginal: no rollback

"""Unit tests for speculation/verification frequency policies."""

import pytest

from repro.core.frequency import (
    EveryK,
    FullVerification,
    Optimistic,
    SpeculationInterval,
    get_verification,
)
from repro.errors import SpeculationError


def test_interval_step_opportunities():
    iv = SpeculationInterval(4)
    assert not iv.is_opportunity(0)
    assert not iv.is_opportunity(3)
    assert iv.is_opportunity(4)
    assert iv.is_opportunity(8)
    assert not iv.is_opportunity(9)


def test_interval_step_zero_speculates_earliest():
    iv = SpeculationInterval(0)
    assert iv.is_opportunity(0)
    assert not iv.is_opportunity(3)
    # after a rollback, any update is a re-speculation opportunity
    assert iv.is_opportunity(3, had_rollback=True)


def test_interval_negative_rejected():
    with pytest.raises(SpeculationError):
        SpeculationInterval(-1)


def test_every_k_checks():
    v = EveryK(8)
    assert [i for i in range(1, 25) if v.check_at(i)] == [8, 16, 24]
    assert not v.respeculate_on_failure


def test_every_k_validates_k():
    with pytest.raises(SpeculationError):
        EveryK(0)


def test_optimistic_never_checks_intermediate():
    v = Optimistic()
    assert not any(v.check_at(i) for i in range(1, 100))


def test_full_checks_everywhere_and_respeculates():
    v = FullVerification()
    assert all(v.check_at(i) for i in range(1, 10))
    assert v.respeculate_on_failure


def test_get_verification_names():
    assert isinstance(get_verification("every_k", k=4), EveryK)
    assert get_verification("every_k", k=4).k == 4
    assert isinstance(get_verification("baseline"), EveryK)
    assert isinstance(get_verification("optimistic"), Optimistic)
    assert isinstance(get_verification("full"), FullVerification)
    with pytest.raises(SpeculationError):
        get_verification("sometimes")

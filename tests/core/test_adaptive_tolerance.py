"""Tests for the adaptive (tightening) tolerance extension."""

import pytest

from repro.core.tolerance import AdaptiveTolerance
from repro.errors import ToleranceError


def test_margin_decays_per_check():
    rule = AdaptiveTolerance(initial=0.08, floor=0.01, decay=0.5)
    assert rule.current_margin == 0.08
    rule.accepts(0.0)
    assert rule.current_margin == 0.04
    rule.accepts(0.0)
    assert rule.current_margin == 0.02
    rule.accepts(0.0)
    assert rule.current_margin == 0.01  # clamped at the floor
    rule.accepts(0.0)
    assert rule.current_margin == 0.01


def test_early_lenient_late_strict():
    rule = AdaptiveTolerance(initial=0.05, floor=0.005, decay=0.5)
    assert rule.accepts(0.03)       # first check: margin 0.05
    assert not rule.accepts(0.03)   # second check: margin 0.025


def test_reset():
    rule = AdaptiveTolerance(initial=0.05, floor=0.005, decay=0.5)
    rule.accepts(0.0)
    rule.reset()
    assert rule.current_margin == 0.05


def test_validation():
    with pytest.raises(ToleranceError):
        AdaptiveTolerance(initial=0.01, floor=0.05)
    with pytest.raises(ToleranceError):
        AdaptiveTolerance(initial=0.05, floor=0.01, decay=0.0)
    with pytest.raises(ToleranceError):
        AdaptiveTolerance(initial=0.05, floor=-0.1)


def test_in_pipeline_run():
    """The adaptive rule plugs into the Huffman pipeline like any other."""
    from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
    from repro.core.tolerance import AdaptiveTolerance
    from repro.platforms import X86Platform
    from repro.sre.executor_sim import SimulatedExecutor
    from repro.sre.runtime import Runtime
    from repro.workloads import get_workload

    data = get_workload("bmp").generate(64 * 1024, seed=0)
    blocks = [data[i:i + 4096] for i in range(0, len(data), 4096)]
    config = HuffmanConfig(reduce_ratio=2, offset_fanout=4, step=1, verify_k=2)
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced", workers=4)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    pipe.manager.spec.tolerance = AdaptiveTolerance(0.05, 0.005, decay=0.6)
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(float(i * 5), lambda i=i, b=b: pipe.feed_block(i, b))
    end = ex.run()
    result = pipe.result(end)
    assert result.outcome in ("commit", "recompute")
    assert pipe.verify_roundtrip(data)

"""Unit tests for tolerance rules."""

import pytest

from repro.core.tolerance import (
    AbsoluteTolerance,
    CallableTolerance,
    ExactTolerance,
    RelativeTolerance,
)
from repro.errors import ToleranceError


def test_relative_accepts_within_margin():
    rule = RelativeTolerance(0.01)
    assert rule.accepts(0.0)
    assert rule.accepts(0.01)
    assert not rule.accepts(0.0100001)


def test_relative_rejects_negative_margin():
    with pytest.raises(ToleranceError):
        RelativeTolerance(-0.1)


def test_zero_margin_relative_equals_exact():
    rel = RelativeTolerance(0.0)
    exact = ExactTolerance()
    for err in (0.0, 1e-12, 0.5):
        assert rel.accepts(err) == exact.accepts(err)


def test_absolute_uses_abs():
    rule = AbsoluteTolerance(2.0)
    assert rule.accepts(-1.5)
    assert rule.accepts(2.0)
    assert not rule.accepts(-2.5)


def test_absolute_rejects_negative_bound():
    with pytest.raises(ToleranceError):
        AbsoluteTolerance(-1.0)


def test_exact_only_zero():
    rule = ExactTolerance()
    assert rule.accepts(0.0)
    assert not rule.accepts(1e-15)


def test_callable_adapter():
    rule = CallableTolerance(lambda e: e < 0.5)
    assert rule.accepts(0.4)
    assert not rule.accepts(0.6)


def test_rules_are_callable():
    assert RelativeTolerance(0.1)(0.05) is True

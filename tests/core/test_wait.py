"""Unit tests for the wait buffer (side-effect barrier)."""

import pytest

from repro.core.wait import WaitBuffer
from repro.errors import SpeculationError


def _buffer():
    flushed = []
    buf = WaitBuffer(sink=lambda k, v, t: flushed.append((k, v, t)))
    return buf, flushed


def test_deposit_is_held_until_commit():
    buf, flushed = _buffer()
    buf.deposit(1, "b0", "payload", now=5.0)
    assert flushed == []
    assert buf.pending(1) == 1


def test_commit_flushes_in_key_order():
    buf, flushed = _buffer()
    buf.deposit(1, 2, "two", 1.0)
    buf.deposit(1, 0, "zero", 2.0)
    buf.deposit(1, 1, "one", 3.0)
    n = buf.commit(1, now=10.0)
    assert n == 3
    assert [k for k, _, _ in flushed] == [0, 1, 2]
    assert all(t == 10.0 for _, _, t in flushed)


def test_commit_flushes_integer_keys_numerically_beyond_nine():
    """Regression: repr-sorted flushes wrote block 10 before block 2,
    corrupting any container with more than 9 buffered blocks."""
    buf, flushed = _buffer()
    order = [7, 10, 0, 11, 3, 1, 9, 2, 8, 5, 4, 6]
    for block in order:
        buf.deposit(1, block, f"payload-{block}", now=float(block))
    assert buf.commit(1, now=20.0) == 12
    assert [k for k, _, _ in flushed] == list(range(12))
    assert [v for _, v, _ in flushed] == [f"payload-{k}" for k in range(12)]


def test_commit_flush_order_mixed_key_types_is_deterministic():
    buf_a, flushed_a = _buffer()
    buf_b, flushed_b = _buffer()
    for buf in (buf_a, buf_b):
        buf.deposit(1, 2, "int", 0.0)
        buf.deposit(1, "b", "str", 0.0)
        buf.deposit(1, 10, "int", 0.0)
        buf.deposit(1, "a", "str", 0.0)
    buf_a.commit(1, 1.0)
    buf_b.commit(1, 1.0)
    keys = [k for k, _, _ in flushed_a]
    assert keys == [k for k, _, _ in flushed_b]
    # comparable subsets still flush in their own order
    assert keys.index(2) < keys.index(10)
    assert keys.index("a") < keys.index("b")


def test_post_commit_deposits_flush_immediately():
    buf, flushed = _buffer()
    buf.commit(3, now=1.0)
    buf.deposit(3, "late", "v", now=2.0)
    assert flushed == [("late", "v", 2.0)]


def test_discard_drops_version():
    buf, flushed = _buffer()
    buf.deposit(1, "a", 1, 0.0)
    buf.deposit(2, "b", 2, 0.0)
    assert buf.discard(1) == 1
    assert buf.pending(1) == 0
    assert buf.pending(2) == 1
    buf.commit(2, 5.0)
    assert [k for k, _, _ in flushed] == ["b"]


def test_double_commit_rejected():
    buf, _ = _buffer()
    buf.commit(1, 0.0)
    with pytest.raises(SpeculationError):
        buf.commit(2, 0.0)


def test_duplicate_key_overwrites():
    buf, flushed = _buffer()
    buf.deposit(1, "k", "old", 0.0)
    buf.deposit(1, "k", "new", 1.0)
    buf.commit(1, 2.0)
    assert flushed == [("k", "new", 2.0)]


def test_counters():
    buf, _ = _buffer()
    buf.deposit(1, "a", 1, 0.0)
    buf.deposit(2, "b", 2, 0.0)
    buf.discard(2)
    buf.commit(1, 0.0)
    assert buf.deposits == 2
    assert buf.discarded == 1
    assert buf.flushed == 1


def test_sinkless_buffer_counts_flushes():
    buf = WaitBuffer()
    buf.deposit(1, "a", 1, 0.0)
    buf.commit(1, 0.0)
    assert buf.flushed == 1

"""Unit tests for SpeculationSpec and SpecVersion."""

import pytest

from repro.core.frequency import EveryK, SpeculationInterval
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.errors import SpeculationError
from repro.sre.task import Task


def _spec(**overrides):
    base = dict(
        name="s",
        predictor=lambda v, n: Task(n, lambda: {"out": v}),
        validator=lambda p, c, r: 0.0,
        launch=lambda v: None,
        recompute=lambda v: None,
    )
    base.update(overrides)
    return SpeculationSpec(**base)


def test_defaults():
    spec = _spec()
    assert isinstance(spec.tolerance, RelativeTolerance)
    assert spec.tolerance.margin == 0.01
    assert isinstance(spec.interval, SpeculationInterval)
    assert isinstance(spec.verification, EveryK)


def test_int_interval_coerced():
    spec = _spec(interval=4)
    assert isinstance(spec.interval, SpeculationInterval)
    assert spec.interval.step == 4


def test_float_tolerance_coerced():
    spec = _spec(tolerance=0.05)
    assert isinstance(spec.tolerance, RelativeTolerance)
    assert spec.tolerance.margin == 0.05


def test_non_callable_predictor_rejected():
    with pytest.raises(SpeculationError):
        _spec(predictor="nope")


def test_version_register_tags_task():
    v = SpecVersion(3, created_index=2, created_at=1.0)
    t = Task("t", None)
    v.register(t)
    assert t.tags["spec_version"] == 3
    assert v.tasks == [t]


def test_version_initial_state():
    v = SpecVersion(1, 0, 0.0)
    assert v.active and not v.committed
    assert v.value is None


# ---------------------------------------------------------------------------
# SpecBuilder — the fluent four-point constructor
# ---------------------------------------------------------------------------

def _built(**validate_extra):
    return (
        SpeculationSpec.builder("fluent")
        .what(launch=lambda v: None, recompute=lambda v: None)
        .how(lambda v, n: Task(n, lambda: {"out": v}),
             interval=SpeculationInterval(4))
        .validate(lambda p, c, r: 0.0, **validate_extra)
        .build()
    )


def test_builder_builds_equivalent_spec():
    spec = _built(tolerance=RelativeTolerance(0.05), verification=EveryK(3))
    assert spec.name == "fluent"
    assert spec.interval.step == 4
    assert spec.tolerance.margin == 0.05
    assert spec.verification.k == 3


def test_builder_defaults_match_constructor_defaults():
    spec = _built()
    direct = _spec(interval=SpeculationInterval(4))
    assert spec.tolerance.margin == direct.tolerance.margin
    assert type(spec.verification) is type(direct.verification)
    assert spec.check_cost_hint == direct.check_cost_hint


def test_builder_reports_all_missing_points_at_once():
    with pytest.raises(SpeculationError) as err:
        SpeculationSpec.builder("incomplete").barrier(None).build()
    msg = str(err.value)
    assert ".what(" in msg and ".how(" in msg and ".validate(" in msg


def test_builder_requires_name():
    with pytest.raises(SpeculationError):
        SpeculationSpec.builder("")


# ---------------------------------------------------------------------------
# SpecVersion resource lifetime
# ---------------------------------------------------------------------------

def test_version_releases_resources_once_with_reason():
    v = SpecVersion(1, 0, 0.0)
    seen = []
    v.add_resource(seen.append)
    v.add_resource(seen.append)
    v.release_resources("rollback")
    assert seen == ["rollback", "rollback"]
    v.release_resources("commit")  # idempotent: nothing left to release
    assert seen == ["rollback", "rollback"]


def test_rollback_engine_releases_version_resources():
    from repro.core.rollback import RollbackEngine
    from repro.sre.runtime import Runtime

    v = SpecVersion(1, 0, 0.0)
    reasons = []
    v.add_resource(reasons.append)
    RollbackEngine(Runtime()).rollback(v)
    assert not v.active
    assert reasons == ["rollback"]

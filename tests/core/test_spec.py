"""Unit tests for SpeculationSpec and SpecVersion."""

import pytest

from repro.core.frequency import EveryK, SpeculationInterval
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.errors import SpeculationError
from repro.sre.task import Task


def _spec(**overrides):
    base = dict(
        name="s",
        predictor=lambda v, n: Task(n, lambda: {"out": v}),
        validator=lambda p, c, r: 0.0,
        launch=lambda v: None,
        recompute=lambda v: None,
    )
    base.update(overrides)
    return SpeculationSpec(**base)


def test_defaults():
    spec = _spec()
    assert isinstance(spec.tolerance, RelativeTolerance)
    assert spec.tolerance.margin == 0.01
    assert isinstance(spec.interval, SpeculationInterval)
    assert isinstance(spec.verification, EveryK)


def test_int_interval_coerced():
    spec = _spec(interval=4)
    assert isinstance(spec.interval, SpeculationInterval)
    assert spec.interval.step == 4


def test_float_tolerance_coerced():
    spec = _spec(tolerance=0.05)
    assert isinstance(spec.tolerance, RelativeTolerance)
    assert spec.tolerance.margin == 0.05


def test_non_callable_predictor_rejected():
    with pytest.raises(SpeculationError):
        _spec(predictor="nope")


def test_version_register_tags_task():
    v = SpecVersion(3, created_index=2, created_at=1.0)
    t = Task("t", None)
    v.register(t)
    assert t.tags["spec_version"] == 3
    assert v.tasks == [t]


def test_version_initial_state():
    v = SpecVersion(1, 0, 0.0)
    assert v.active and not v.committed
    assert v.value is None

"""Unit tests for the rollback engine."""

import pytest

from repro.core.rollback import RollbackEngine
from repro.core.spec import SpecVersion
from repro.core.wait import WaitBuffer
from repro.errors import RollbackError
from repro.sre.task import Task, TaskState

from tests.conftest import make_harness


def _version_with_chain(h, vid=1):
    """A version owning a -> b where b was spawned dynamically (unregistered)."""
    version = SpecVersion(vid, created_index=1, created_at=0.0)
    a = Task("a", lambda: {"out": 1}, speculative=True)
    b = Task("b", lambda x: {"out": x}, inputs=("x",), speculative=True)
    version.register(a)
    h.runtime.add_task(a)
    h.runtime.add_task(b)
    h.runtime.connect(a, "out", b, "x")
    return version, a, b


def test_rollback_aborts_registered_and_dependents():
    h = make_harness()
    version, a, b = _version_with_chain(h)
    engine = RollbackEngine(h.runtime)
    footprint = engine.rollback(version)
    assert {t.name for t in footprint} == {"a", "b"}
    # `a` was already dispatched (it is RUNNING): it is abort-flagged and
    # reaped at completion; `b` was never launched and aborts instantly.
    assert a.abort_requested
    assert b.state is TaskState.ABORTED
    h.run()
    assert a.state is TaskState.ABORTED
    assert not version.active
    assert engine.rollbacks == 1
    assert engine.tasks_destroyed == 2


def test_rollback_discards_buffer_entries():
    h = make_harness()
    version, a, b = _version_with_chain(h, vid=7)
    buf = WaitBuffer()
    buf.deposit(7, "k", "v", 0.0)
    engine = RollbackEngine(h.runtime, buf)
    engine.rollback(version)
    assert buf.pending(7) == 0
    assert engine.buffer_entries_discarded == 1


def test_rollback_idempotent_per_version():
    h = make_harness()
    version, *_ = _version_with_chain(h)
    engine = RollbackEngine(h.runtime)
    engine.rollback(version)
    assert engine.rollback(version) == []
    assert engine.rollbacks == 1


def test_committed_version_cannot_roll_back():
    h = make_harness()
    version, *_ = _version_with_chain(h)
    version.committed = True
    engine = RollbackEngine(h.runtime)
    with pytest.raises(RollbackError):
        engine.rollback(version)


def test_rollback_after_tasks_completed_discards_results():
    h = make_harness()
    version, a, b = _version_with_chain(h)
    h.run()  # both tasks execute
    assert b.state is TaskState.DONE
    engine = RollbackEngine(h.runtime)
    engine.rollback(version)
    assert a.state is TaskState.ABORTED
    assert b.state is TaskState.ABORTED
    assert h.runtime.memory.speculative_wasted > 0


def test_rollback_emits_trace():
    h = make_harness()
    version, *_ = _version_with_chain(h, vid=3)
    RollbackEngine(h.runtime).rollback(version)
    rec = h.runtime.trace.last("rollback")
    assert rec is not None
    assert rec.subject == "version:3"
    assert rec.detail["tasks_destroyed"] == 2


# ----------------------------------------------------------------------
# spec_rollback_cost histogram (double-entry vs engine counters)
# ----------------------------------------------------------------------
def _cost_series(h, measure):
    child = h.labels(measure=measure)
    return child.count(), child.sum()


def test_rollback_cost_histogram_double_enters_engine_counters():
    h = make_harness()
    engine = RollbackEngine(h.runtime)
    for vid in (1, 2):
        version = SpecVersion(vid, created_index=vid, created_at=0.0)
        a = Task(f"a{vid}", lambda: {"out": 1}, speculative=True)
        b = Task(f"b{vid}", lambda x: {"out": x}, inputs=("x",),
                 speculative=True)
        version.register(a)
        h.runtime.add_task(a)
        h.runtime.add_task(b)
        h.runtime.connect(a, "out", b, "x")
        h.run()
        engine.rollback(version)
    hist = h.runtime.metrics.get("spec_rollback_cost")
    n_tasks, sum_tasks = _cost_series(hist, "tasks")
    n_wasted, sum_wasted = _cost_series(hist, "wasted_us")
    # one observation per rollback on each measure
    assert n_tasks == n_wasted == engine.rollbacks == 2
    # and the sums are the engine's own running totals
    assert sum_tasks == engine.tasks_destroyed == 4
    assert sum_wasted == pytest.approx(engine.wasted_task_us)
    assert engine.wasted_task_us > 0  # tasks had run before the signal


def test_rollback_cost_counts_unstarted_footprint_as_zero_waste():
    h = make_harness()
    version, *_ = _version_with_chain(h)
    engine = RollbackEngine(h.runtime)
    engine.rollback(version)  # nothing has executed yet: a is RUNNING at 0
    hist = h.runtime.metrics.get("spec_rollback_cost")
    assert _cost_series(hist, "tasks") == (1, 2.0)
    n, total = _cost_series(hist, "wasted_us")
    assert n == 1 and total == 0.0


def test_rollback_done_event_mirrors_histogram_entry():
    h = make_harness()
    version, *_ = _version_with_chain(h, vid=9)
    h.run()
    engine = RollbackEngine(h.runtime)
    engine.rollback(version)
    done = [e for e in h.runtime.events.events()
            if e["kind"] == "rollback_done"][-1]
    assert done["version"] == 9
    assert done["tasks_destroyed"] == engine.tasks_destroyed
    assert done["wasted_us"] == pytest.approx(engine.wasted_task_us)

"""Unit tests for the SpeculationManager protocol.

A synthetic speculation domain over scalar values: the predictor's task
returns the update value itself; the validator measures relative distance.
This isolates the manager's predict/check/commit/rollback protocol from the
Huffman specifics.
"""

import pytest

from repro.core.frequency import EveryK, FullVerification, Optimistic, SpeculationInterval
from repro.core.manager import SpeculationManager
from repro.core.spec import SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.errors import SpeculationError
from repro.sre.task import Task, TaskState

from tests.conftest import make_harness


class Domain:
    """Synthetic speculation client."""

    def __init__(self, harness, *, step=1, verification=None, tolerance=0.01):
        self.h = harness
        self.launched = []
        self.recomputed = []
        self.flushed = []
        self.barrier = WaitBuffer(sink=lambda k, v, t: self.flushed.append((k, v)))
        spec = SpeculationSpec(
            name="dom",
            predictor=self._predictor,
            validator=lambda pred, cand, ref: abs(pred - cand) / max(abs(cand), 1e-9),
            launch=self._launch,
            recompute=self.recomputed.append,
            barrier=self.barrier,
            tolerance=RelativeTolerance(tolerance),
            interval=SpeculationInterval(step),
            verification=verification or EveryK(2),
        )
        self.manager = SpeculationManager(harness.runtime, spec)

    def _predictor(self, value, name):
        return Task(name, lambda v=value: {"out": v}, kind="tree")

    def _launch(self, version):
        self.launched.append(version)
        work = Task(
            f"specwork:v{version.vid}",
            lambda v=version.value: {"out": v},
            kind="encode",
            speculative=True,
        )
        version.register(work)
        self.h.runtime.add_task(work)
        self.h.runtime.connect_sink(
            work, "out",
            lambda v, ver=version: self.barrier.deposit(
                ver.vid, "result", v, self.h.runtime.now
            ),
        )

    def offer(self, index, value, is_final=False):
        self.manager.offer_update(index, value, is_final=is_final)
        self.h.run()


def test_speculates_at_first_opportunity():
    h = make_harness()
    d = Domain(h, step=2)
    d.offer(1, 10.0)
    assert d.launched == []  # 1 is not a multiple of 2
    d.offer(2, 10.0)
    assert len(d.launched) == 1
    assert d.launched[0].value == 10.0
    assert d.manager.stats.speculations == 1


def test_step_zero_speculates_on_update_zero():
    h = make_harness()
    d = Domain(h, step=0)
    d.offer(0, 5.0)
    assert len(d.launched) == 1


def test_passing_check_keeps_version():
    h = make_harness()
    d = Domain(h, step=1, verification=EveryK(2))
    d.offer(1, 100.0)
    v1 = d.manager.active_version
    d.offer(2, 100.4)  # 0.4% error < 1%
    assert d.manager.active_version is v1
    assert d.manager.stats.checks_passed == 1
    assert v1.active


def test_failing_check_rolls_back_and_respeculates():
    h = make_harness()
    d = Domain(h, step=1, verification=EveryK(2))
    d.offer(1, 100.0)
    v1 = d.manager.active_version
    spec_task = h.runtime.graph.get("specwork:v1")
    assert spec_task.state is TaskState.DONE
    d.offer(2, 150.0)  # 33% error
    assert not v1.active
    assert d.manager.stats.rollbacks == 1
    assert spec_task.state is TaskState.ABORTED
    # re-speculated with the candidate value, no second prediction task
    v2 = d.manager.active_version
    assert v2 is not v1
    assert v2.value == 150.0
    assert d.barrier.pending(v1.vid) == 0  # discarded


def test_rollback_without_opportunity_waits():
    h = make_harness()
    d = Domain(h, step=3, verification=EveryK(4))
    d.offer(3, 100.0)
    d.offer(4, 200.0)  # fails; 4 is not a multiple of 3 -> no respec yet
    assert d.manager.active_version is None
    assert d.manager.stats.rollbacks == 1
    d.offer(5, 210.0)  # still not an opportunity
    assert d.manager.active_version is None
    d.offer(6, 220.0)  # opportunity
    assert d.manager.active_version is not None
    assert d.manager.stats.speculations == 2


def test_full_verification_respeculates_immediately():
    h = make_harness()
    d = Domain(h, step=4, verification=FullVerification())
    d.offer(4, 100.0)
    d.offer(5, 200.0)  # fails at a non-opportunity index
    assert d.manager.active_version is not None  # immediate restart
    assert d.manager.active_version.value == 200.0


def test_optimistic_never_checks_until_final():
    h = make_harness()
    d = Domain(h, step=1, verification=Optimistic())
    d.offer(1, 100.0)
    for i in range(2, 10):
        d.offer(i, 500.0)  # wildly wrong, but never checked
    assert d.manager.stats.checks == 0
    assert d.manager.active_version.active
    d.offer(10, 500.0, is_final=True)
    assert d.manager.outcome == "recompute"
    assert d.recomputed == [500.0]


def test_final_pass_commits_and_flushes_buffer():
    h = make_harness()
    d = Domain(h, step=1)
    d.offer(1, 100.0)
    d.offer(5, 100.2, is_final=True)
    assert d.manager.outcome == "commit"
    assert d.manager.stats.commits == 1
    assert d.flushed == [("result", 100.0)]
    assert d.manager.active_version.committed


def test_final_fail_recomputes_with_true_value():
    h = make_harness()
    d = Domain(h, step=1)
    d.offer(1, 100.0)
    d.offer(5, 300.0, is_final=True)
    assert d.manager.outcome == "recompute"
    assert d.recomputed == [300.0]
    assert d.flushed == []
    assert d.manager.stats.rollbacks == 1


def test_final_without_any_version_recomputes():
    h = make_harness()
    d = Domain(h, step=8)
    d.offer(1, 100.0)  # below first opportunity
    d.offer(2, 100.0, is_final=True)
    assert d.manager.outcome == "recompute"
    assert d.manager.stats.speculations == 0


def test_updates_after_final_rejected():
    h = make_harness()
    d = Domain(h)
    d.offer(1, 1.0, is_final=True)
    with pytest.raises(SpeculationError):
        d.manager.offer_update(2, 1.0)


def test_double_final_rejected():
    h = make_harness()
    d = Domain(h)
    d.offer(1, 1.0, is_final=True)
    with pytest.raises(SpeculationError):
        d.manager.offer_update(2, 1.0, is_final=True)


def test_no_check_against_own_creation_index():
    h = make_harness()
    d = Domain(h, step=2, verification=EveryK(2))
    d.offer(2, 100.0)
    # the check policy fires at index 2, but the version was created there
    assert d.manager.stats.checks == 0


def test_check_errors_recorded():
    h = make_harness()
    d = Domain(h, step=1, verification=EveryK(1))
    d.offer(1, 100.0)
    d.offer(2, 100.5)
    d.offer(3, 101.0)
    assert len(d.manager.stats.check_errors) == 2
    assert d.manager.stats.check_errors[0] == pytest.approx(0.5 / 100.5)


def test_offers_after_commit_are_protocol_violations():
    h = make_harness()
    d = Domain(h, step=1)
    d.offer(1, 100.0)
    d.offer(2, 100.0, is_final=True)
    assert d.manager.outcome == "commit"
    with pytest.raises(SpeculationError):
        d.manager.offer_update(3, 100.0)
    assert d.manager.stats.speculations == 1

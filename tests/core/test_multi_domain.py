"""Two independent speculation domains coexisting in one runtime.

The framework is per-edge: each SpeculationSpec gets its own manager,
versions, barrier and rollback footprint. A rollback in one domain must not
disturb the other.
"""

from repro.core.frequency import EveryK, SpeculationInterval
from repro.core.manager import SpeculationManager
from repro.core.spec import SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.sre.task import Task, TaskState

from tests.conftest import make_harness


def _domain(h, name, tolerance=0.01):
    flushed = []
    barrier = WaitBuffer(sink=lambda k, v, t: flushed.append((k, v)))
    state = {"flushed": flushed, "launched": []}

    def launch(version):
        state["launched"].append(version)
        work = Task(f"{name}:work:v{version.vid}",
                    lambda v=version.value: {"out": v},
                    kind="encode", speculative=True)
        version.register(work)
        h.runtime.add_task(work)
        h.runtime.connect_sink(
            work, "out",
            lambda v, ver=version: barrier.deposit(ver.vid, "r", v, h.runtime.now))

    spec = SpeculationSpec(
        name=name,
        predictor=lambda v, n: Task(n, lambda x=v: {"out": x}, kind="predict"),
        validator=lambda p, c, r: abs(p - c) / max(abs(c), 1e-9),
        launch=launch,
        recompute=lambda v: state.setdefault("recomputed", []).append(v),
        barrier=barrier,
        tolerance=RelativeTolerance(tolerance),
        interval=SpeculationInterval(1),
        verification=EveryK(1),
    )
    return SpeculationManager(h.runtime, spec), state


def test_domains_are_independent():
    h = make_harness()
    m_good, s_good = _domain(h, "good")
    m_bad, s_bad = _domain(h, "bad")

    # good domain: stable value; bad domain: value jumps (forces rollback)
    m_good.offer_update(1, 100.0)
    m_bad.offer_update(1, 100.0)
    h.run()
    good_v1 = m_good.active_version
    bad_v1 = m_bad.active_version

    m_good.offer_update(2, 100.1)
    m_bad.offer_update(2, 500.0)
    h.run()

    assert m_good.active_version is good_v1
    assert not bad_v1.active
    assert m_bad.stats.rollbacks == 1
    assert m_good.stats.rollbacks == 0
    # the good domain's speculative work untouched by the bad rollback
    good_work = h.runtime.graph.get("good:work:v1")
    assert good_work.state is TaskState.DONE

    m_good.offer_update(3, 100.0, is_final=True)
    m_bad.offer_update(3, 500.0, is_final=True)
    h.run()
    assert m_good.outcome == "commit"
    assert m_bad.outcome == "commit"  # re-speculated v2 matches the final
    assert s_good["flushed"] and s_bad["flushed"]


def test_domain_rollback_does_not_touch_natural_tasks():
    h = make_harness()
    m, _ = _domain(h, "dom")
    natural = h.runtime.add_task(Task("bystander", lambda: {"out": 1}))
    m.offer_update(1, 10.0)
    h.run()
    m._rollback(m.active_version)
    assert natural.state is TaskState.DONE
    assert h.runtime.graph.get("bystander").state is TaskState.DONE

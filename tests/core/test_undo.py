"""Tests for user-defined rollback routines (the paper's §II extension)."""

import pytest

from repro.core.rollback import RollbackEngine
from repro.core.spec import SpecVersion
from repro.errors import TaskStateError
from repro.sre.task import Task, TaskState

from tests.conftest import make_harness


def test_side_effecting_speculative_task_requires_undo():
    with pytest.raises(TaskStateError):
        Task("bad", lambda: 1, speculative=True, side_effect_free=False)
    # with an undo routine it is allowed
    Task("ok", lambda: 1, speculative=True, side_effect_free=False,
         undo=lambda t: None)


def test_undo_called_on_rollback_of_completed_task():
    h = make_harness()
    store: list[int] = []

    def effectful():
        store.append(42)
        return {"out": 42}

    def compensate(task):
        store.remove(42)

    version = SpecVersion(1, 0, 0.0)
    t = Task("writer", effectful, kind="store", speculative=True,
             side_effect_free=False, undo=compensate)
    version.register(t)
    h.runtime.add_task(t)
    h.run()
    assert store == [42]
    RollbackEngine(h.runtime).rollback(version)
    assert store == []
    assert t.state is TaskState.ABORTED
    assert h.runtime.trace.count("undo") == 1


def test_undo_not_called_for_unlaunched_task():
    h = make_harness()
    called = []
    version = SpecVersion(1, 0, 0.0)
    t = Task("writer", lambda x: x, inputs=("x",), speculative=True,
             side_effect_free=False, undo=lambda task: called.append(task))
    version.register(t)
    h.runtime.add_task(t)  # blocked: never runs
    RollbackEngine(h.runtime).rollback(version)
    assert called == []  # nothing happened, nothing to compensate
    assert t.state is TaskState.ABORTED


def test_undo_not_called_for_pure_tasks():
    h = make_harness()
    called = []
    version = SpecVersion(1, 0, 0.0)
    t = Task("pure", lambda: {"out": 1}, speculative=True,
             undo=lambda task: called.append(task))
    version.register(t)
    h.runtime.add_task(t)
    h.run()
    RollbackEngine(h.runtime).rollback(version)
    assert called == []  # side_effect_free: no compensation needed


def test_undo_called_when_threaded_executor_discards():
    """Threaded executors run the function before noticing the abort flag;
    finish_task must compensate."""
    from repro.sre.runtime import Runtime
    rt = Runtime()  # no executor: we drive the life cycle by hand
    store = []
    t = Task("writer", lambda: store.append(1) or {"out": 1},
             kind="store", speculative=True, side_effect_free=False,
             undo=lambda task: store.pop())
    rt.add_task(t)
    rt.begin_task(t)
    t.abort_requested = True
    # simulate the threaded path: fn already ran, results precomputed
    store.append(1)
    out = rt.finish_task(t, {"out": 1}, precomputed=True)
    assert out is None
    assert store == []
    assert t.state is TaskState.ABORTED

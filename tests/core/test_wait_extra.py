"""Additional wait-buffer edge cases."""

from repro.core.wait import WaitBuffer


def test_deposit_for_stale_version_after_commit_is_held_not_flushed():
    """A deposit under a *different* (rolled-back) version arriving after a
    commit must not leak to the sink — it is held inert (the rollback's
    discard may have raced it) and never flushed."""
    flushed = []
    buf = WaitBuffer(sink=lambda k, v, t: flushed.append(k))
    buf.commit(2, now=1.0)
    buf.deposit(1, "late-stale", "v", now=2.0)
    assert flushed == []
    assert buf.pending(1) == 1
    buf.discard(1)
    assert buf.pending(1) == 0
    assert flushed == []


def test_discard_missing_version_is_zero():
    buf = WaitBuffer()
    assert buf.discard(99) == 0


def test_commit_empty_version_flushes_nothing():
    flushed = []
    buf = WaitBuffer(sink=lambda k, v, t: flushed.append(k))
    assert buf.commit(1, now=0.0) == 0
    assert flushed == []
    # subsequent deposits for the committed version flow through
    buf.deposit(1, "k", "v", now=1.0)
    assert flushed == ["k"]


def test_interleaved_versions_isolated():
    flushed = []
    buf = WaitBuffer(sink=lambda k, v, t: flushed.append((k, v)))
    for vid in (1, 2, 3):
        for key in range(3):
            buf.deposit(vid, key, f"v{vid}:{key}", now=0.0)
    buf.discard(1)
    buf.discard(3)
    buf.commit(2, now=5.0)
    assert [v for _, v in flushed] == ["v2:0", "v2:1", "v2:2"]

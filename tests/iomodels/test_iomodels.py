"""Unit tests for the I/O arrival models."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.iomodels import DiskModel, SocketModel, TraceArrivals
from repro.iomodels.base import jittered_schedule


def test_disk_is_fast_and_regular():
    times = DiskModel().arrival_times(10)
    assert times[0] == 10.0
    gaps = np.diff(times)
    assert np.allclose(gaps, 8.0)


def test_socket_is_much_slower_than_disk():
    disk = DiskModel().arrival_times(100)
    sock = SocketModel(jitter=0.0).arrival_times(100)
    assert sock[-1] > 50 * disk[-1]


def test_socket_jitter_is_seeded():
    a = SocketModel().arrival_times(50, rng=np.random.default_rng(1))
    b = SocketModel().arrival_times(50, rng=np.random.default_rng(1))
    c = SocketModel().arrival_times(50, rng=np.random.default_rng(2))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_jittered_arrivals_still_monotonic():
    times = SocketModel(jitter=0.5).arrival_times(500, rng=np.random.default_rng(3))
    assert np.all(np.diff(times) >= 0)


def test_trace_arrivals_replay():
    times = TraceArrivals([1.0, 2.0, 5.0]).arrival_times(3)
    assert list(times) == [1.0, 2.0, 5.0]


def test_trace_arrivals_length_mismatch():
    with pytest.raises(ExperimentError):
        TraceArrivals([1.0]).arrival_times(2)


def test_trace_arrivals_must_be_sorted():
    with pytest.raises(ExperimentError):
        TraceArrivals([2.0, 1.0])


def test_trace_arrivals_must_be_non_negative():
    with pytest.raises(ExperimentError):
        TraceArrivals([-1.0, 2.0])


def test_jittered_schedule_rejects_bad_params():
    with pytest.raises(ExperimentError):
        jittered_schedule(5, start=-1.0, per_block=1.0, jitter=0.0, rng=None)
    with pytest.raises(ExperimentError):
        jittered_schedule(5, start=0.0, per_block=-1.0, jitter=0.0, rng=None)


def test_zero_jitter_ignores_rng():
    times = jittered_schedule(5, start=0.0, per_block=2.0, jitter=0.0, rng=None)
    assert list(times) == [0.0, 2.0, 4.0, 6.0, 8.0]

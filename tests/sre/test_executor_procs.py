"""Unit tests for the process-pool executor (real processes, wall clock).

Task functions here are module-level (bound with ``functools.partial``) so
their payloads pickle and genuinely ship to worker processes; tests that
*want* coordinator-inline execution use lambdas/closures on purpose.
Cross-process rendezvous uses files — worker processes cannot see
coordinator threading primitives.
"""

import os
import time
from functools import partial

import pytest

from repro.errors import PlatformError, SchedulingError, TaskExecutionError
from repro.sre.executor_procs import (
    _OK,
    _SKIPPED,
    ProcessExecutor,
    _process_main,
)
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState

pytestmark = [pytest.mark.procs, pytest.mark.threaded]


# ---------------------------------------------------------------------------
# picklable task bodies
# ---------------------------------------------------------------------------

def _identity(i):
    return {"out": i}


def _double(x):
    return {"out": x * 2}


def _incr(x):
    return {"out": x + 1}


def _touch_then_wait(touch_path, wait_path, timeout_s=20.0):
    """Signal 'started' by creating touch_path, then block on wait_path."""
    with open(touch_path, "w") as fh:
        fh.write("started")
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(wait_path):
        if time.monotonic() > deadline:
            return {"out": "timeout"}
        time.sleep(0.005)
    return {"out": "released"}


def _touch(path):
    with open(path, "w") as fh:
        fh.write("ran")
    return {"out": "ran"}


def _boom():
    raise ValueError("kernel exploded")


def _wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


# ---------------------------------------------------------------------------
# the threaded executor's contract, on processes
# ---------------------------------------------------------------------------

def test_runs_all_tasks_in_worker_processes():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    for i in range(10):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    ex.run(timeout=60.0)
    assert {t.name: t.outputs["out"] for t in rt.graph.tasks()} == {
        f"t{i}": i for i in range(10)
    }
    assert ex.tasks_shipped == 10
    assert ex.tasks_inline == 0


def test_dataflow_chain_executes_in_order():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=3)
    a = rt.add_task(Task("a", partial(_identity, 5)))
    b = rt.add_task(Task("b", _double, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    ex.run(timeout=60.0)
    assert b.outputs == {"out": 10}


def test_external_delivery_while_running():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    t = rt.add_task(Task("t", _incr, inputs=("x",)))
    ex.start()
    ex.deliver(t, "x", 41)
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    assert t.outputs == {"out": 42}


def test_deliver_after_close_input_raises():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    t = rt.add_task(Task("t", _incr, inputs=("x",)))
    ex.start()
    ex.close_input()
    with pytest.raises(SchedulingError):
        ex.deliver(t, "x", 1)
    ex.shutdown()


def test_workers_must_be_positive():
    with pytest.raises(SchedulingError):
        ProcessExecutor(Runtime(), workers=0)


def test_policy_selection_by_name_and_instance():
    from repro.sre.policies import ThrottledPolicy

    for policy in ("aggressive", "balanced", ThrottledPolicy(max_speculative=1)):
        rt = Runtime()
        ex = ProcessExecutor(rt, workers=2, policy=policy)
        for i in range(4):
            rt.add_task(Task(f"n{i}", partial(_identity, i)))
            rt.add_task(Task(f"s{i}", partial(_identity, i), speculative=True))
        ex.run(timeout=60.0)
        assert rt.tasks_completed == 8


# ---------------------------------------------------------------------------
# abort protocol across the process boundary
# ---------------------------------------------------------------------------

def test_abort_flagged_running_task_is_reaped_on_completion(tmp_path):
    """The paper's destroy-signal protocol: in-flight work cannot be
    recalled; its results are discarded when it completes."""
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    started = tmp_path / "started"
    release = tmp_path / "release"
    t = rt.add_task(Task("slow", partial(_touch_then_wait, str(started), str(release))))
    sink_seen = []
    rt.connect_sink(t, "out", sink_seen.append)
    ex.start()
    assert _wait_until(started.exists)  # worker process is executing
    ex.submit(rt.abort_task, t)  # flag while running in another process
    release.write_text("go")
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    assert t.state is TaskState.ABORTED
    assert sink_seen == []
    assert rt.tasks_aborted == 1


def _send_batch(conn, blobs):
    """Speak the batch wire protocol: pickled frame count, then the frames."""
    import pickle

    conn.send_bytes(pickle.dumps(len(blobs)))
    for blob in blobs:
        conn.send_bytes(blob)


def test_worker_observes_abort_flag_before_launch(tmp_path):
    """A raised abort flag is visible in the worker's address space: the
    payload is skipped entirely, not executed-and-discarded."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe(duplex=True)
    flags = ctx.Array("b", 1, lock=False)
    flags[0] = 1  # destroy signal raised before the payload arrives
    proc = ctx.Process(target=_process_main, args=(child, flags, 0), daemon=True)
    proc.start()
    child.close()
    marker = tmp_path / "ran"
    task = Task("skipped", partial(_touch, str(marker)))
    _send_batch(parent, [task.serialize_payload()])
    seq, status, payload = parent.recv()
    assert (seq, status) == (1, _SKIPPED)
    assert not marker.exists()  # the body never ran
    flags[0] = 0
    _send_batch(parent, [task.serialize_payload()])
    seq, status, payload = parent.recv()
    assert seq == 2  # the reply stream counts across batches
    assert status == _OK and payload == {"out": "ran"}
    parent.send_bytes(b"\x00__sre_stop__")
    proc.join(timeout=10.0)
    assert proc.exitcode == 0


def test_worker_streams_one_reply_per_payload(tmp_path):
    """Many payloads in one pipe message come back as one sequenced reply
    *each*, in payload order — the streaming wire protocol."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    parent, child = ctx.Pipe(duplex=True)
    flags = ctx.Array("b", 1, lock=False)
    proc = ctx.Process(target=_process_main, args=(child, flags, 0), daemon=True)
    proc.start()
    child.close()
    tasks = [Task(f"b{i}", partial(_identity, i)) for i in range(5)]
    _send_batch(parent, [t.serialize_payload() for t in tasks])
    replies = [parent.recv() for _ in range(5)]
    assert [seq for seq, _, _ in replies] == [1, 2, 3, 4, 5]
    assert [status for _, status, _ in replies] == [_OK] * 5
    assert [payload["out"] for _, _, payload in replies] == list(range(5))
    parent.send_bytes(b"\x00__sre_stop__")
    proc.join(timeout=10.0)
    assert proc.exitcode == 0


# ---------------------------------------------------------------------------
# inline fallback and payload budget
# ---------------------------------------------------------------------------

def test_unpicklable_payload_runs_inline_on_coordinator():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    seen = []
    rt.add_task(Task("closure", lambda: {"out": seen.append("ran") or 1}))
    ex.run(timeout=60.0)
    assert seen == ["ran"]  # closure mutated *this* process's state
    assert ex.tasks_inline == 1
    assert ex.tasks_shipped == 0


def test_control_tasks_always_run_inline():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    rt.add_task(Task("check", partial(_identity, 7), control=True))
    ex.run(timeout=60.0)
    assert ex.tasks_inline == 1
    assert ex.tasks_shipped == 0


def test_payload_budget_enforced():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, payload_budget=256)
    big = bytes(4096)
    t = rt.add_task(Task("oversize", partial(_identity, big)))
    with pytest.raises(TaskExecutionError) as err:
        ex.run(timeout=60.0)
    assert isinstance(err.value.original, PlatformError)
    assert t.state is TaskState.ABORTED


def test_worker_exception_becomes_task_failure_and_aborts_dependents():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    bad = rt.add_task(Task("bad", _boom))
    dep = rt.add_task(Task("dep", _double, inputs=("x",)))
    rt.connect(bad, "out", dep, "x")
    ok = rt.add_task(Task("ok", partial(_identity, 1)))
    with pytest.raises(TaskExecutionError, match="bad"):
        ex.run(timeout=60.0)
    assert bad.state is TaskState.ABORTED
    assert dep.state is TaskState.ABORTED
    assert ok.state is TaskState.DONE


# ---------------------------------------------------------------------------
# true parallelism
# ---------------------------------------------------------------------------

def _rendezvous(my_path, all_paths, timeout_s=30.0):
    with open(my_path, "w") as fh:
        fh.write("here")
    deadline = time.monotonic() + timeout_s
    while not all(os.path.exists(p) for p in all_paths):
        if time.monotonic() > deadline:
            return {"out": "timeout"}
        time.sleep(0.005)
    return {"out": "met"}


def test_parallel_execution_overlaps_across_processes(tmp_path):
    """4 tasks rendezvous via the filesystem — impossible unless all four
    are simultaneously in flight in separate processes."""
    n = 4
    paths = [str(tmp_path / f"w{i}") for i in range(n)]
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=n)
    for i in range(n):
        rt.add_task(Task(f"t{i}", partial(_rendezvous, paths[i], paths)))
    ex.run(timeout=120.0)
    assert [rt.graph.get(f"t{i}").outputs["out"] for i in range(n)] == ["met"] * n

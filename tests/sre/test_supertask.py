"""Unit tests for SuperTask hierarchy and notifications."""

import pytest

from repro.errors import GraphError
from repro.sre.supertask import SuperTask
from repro.sre.task import Task


def test_path_is_hierarchical():
    root = SuperTask("root")
    child = root.subgroup("stage")
    grand = child.subgroup("inner")
    assert grand.path == "root/stage/inner"


def test_subgroup_is_idempotent():
    root = SuperTask("root")
    assert root.subgroup("a") is root.subgroup("a")


def test_adopt_sets_supertask():
    st = SuperTask("st")
    t = Task("t", None)
    st.adopt(t)
    assert t.supertask is st


def test_double_adopt_rejected():
    st = SuperTask("st")
    t = Task("t", None)
    st.adopt(t)
    with pytest.raises(GraphError):
        SuperTask("other").adopt(t)


def test_duplicate_child_name_rejected():
    st = SuperTask("st")
    st.adopt(Task("t", None))
    with pytest.raises(GraphError):
        st.adopt(Task("t", None))


def test_iter_tasks_recursive():
    root = SuperTask("root")
    inner = root.subgroup("inner")
    a = Task("a", None)
    b = Task("b", None)
    root.adopt(a)
    inner.adopt(b)
    assert {t.name for t in root.iter_tasks()} == {"a", "b"}
    assert {t.name for t in root.iter_tasks(recursive=False)} == {"a"}


def test_notifications_bubble_to_ancestors():
    root = SuperTask("root")
    inner = root.subgroup("inner")
    t = Task("t", None)
    inner.adopt(t)
    seen = []
    root.on_child_complete(lambda task, outs: seen.append(("root", task.name)))
    inner.on_child_complete(lambda task, outs: seen.append(("inner", task.name)))
    inner.notify_child_complete(t, {})
    assert seen == [("inner", "t"), ("root", "t")]


def test_spec_base_hooks_fire_only_for_flagged_tasks():
    st = SuperTask("st")
    plain = Task("plain", None)
    flagged = Task("flagged", None, tags={"spec_base": True})
    st.adopt(plain)
    st.adopt(flagged)
    seen = []
    st.on_speculation_base(lambda task, outs: seen.append(task.name))
    st.notify_child_complete(plain, {})
    st.notify_child_complete(flagged, {})
    assert seen == ["flagged"]


def test_spec_base_bubbles_through_hierarchy():
    root = SuperTask("root")
    inner = root.subgroup("inner")
    t = Task("t", None, tags={"spec_base": True})
    inner.adopt(t)
    seen = []
    root.on_speculation_base(lambda task, outs: seen.append(task.name))
    inner.notify_child_complete(t, {"out": 1})
    assert seen == ["t"]

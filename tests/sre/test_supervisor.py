"""Worker-supervisor tests: crash detection, respawn, retry, quarantine,
degradation, and the shutdown harvest accounting.

The headline regression here is :func:`test_sigkilled_worker_mid_run`: on
the pre-supervisor executor, SIGKILLing a worker while its payload was in
flight left the coordinator thread to die on an uncaught ``EOFError`` in
``conn.recv()`` and the run failed; the supervisor must detect the death
via the process sentinel, respawn, re-dispatch, and complete.

Deterministic chaos uses :mod:`repro.testing.faults`; the external-SIGKILL
tests use a file rendezvous (worker payloads cannot see coordinator
threading primitives).
"""

import os
import signal
import time
from functools import partial

import pytest

from repro.errors import TaskExecutionError
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import Task

pytestmark = [pytest.mark.procs, pytest.mark.threaded]


def _identity(i):
    return {"out": i}


def _touch_then_wait(touch_path, wait_path, timeout_s=20.0):
    """Signal 'started' by creating touch_path, then block on wait_path."""
    with open(touch_path, "w") as fh:
        fh.write("started")
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(wait_path):
        if time.monotonic() > deadline:
            return {"out": "timeout"}
        time.sleep(0.005)
    return {"out": "released"}


def _wait_for(path, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(path):
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


def _kinds(rt):
    return [e["kind"] for e in rt.events.events()]


# ---------------------------------------------------------------------------
# the headline regression: a SIGKILLed worker must not sink the run
# ---------------------------------------------------------------------------

def test_sigkilled_worker_mid_run(tmp_path):
    """Kill the worker while its payload is in flight; the run completes.

    On the pre-supervisor executor this died on the uncaught ``EOFError``
    from the blind ``conn.recv()`` and the run raised.
    """
    touch = str(tmp_path / "started")
    release = str(tmp_path / "release")
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    t = rt.add_task(Task("victim", partial(_touch_then_wait, touch, release)))
    ex.start()
    try:
        assert _wait_for(touch), "payload never started in the worker"
        pid = ex.supervisor.pids()[0]
        assert pid is not None
        os.kill(pid, signal.SIGKILL)
        with open(release, "w") as fh:
            fh.write("go")
        ex.close_input()
        assert ex.wait_idle(timeout=60.0)
    finally:
        ex.shutdown()
    ex.raise_errors()
    assert t.outputs == {"out": "released"}
    assert rt.metrics.value("procs_worker_crashes", cause="crash") == 1
    assert rt.metrics.value("procs_worker_respawns") == 1
    kinds = _kinds(rt)
    assert "worker_crash" in kinds
    assert "worker_respawn" in kinds
    assert "task_retry" in kinds


def test_crash_cascade_is_causally_linked():
    """worker_crash is the cause root of its respawn and retries."""
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="kill@1")
    rt.add_task(Task("t0", partial(_identity, 0)))
    ex.run(timeout=60.0)
    events = rt.events.events()
    crash = next(e for e in events if e["kind"] == "worker_crash")
    respawn = next(e for e in events if e["kind"] == "worker_respawn")
    retry = next(e for e in events if e["kind"] == "task_retry")
    assert respawn["cause"] == crash["seq"]
    assert retry["cause"] == crash["seq"]
    # the loss cause travels as `reason`; `cause` stays a causal edge
    assert crash["reason"] == "crash"
    assert crash.get("cause") is None


# ---------------------------------------------------------------------------
# hang detection: the dispatch deadline
# ---------------------------------------------------------------------------

def test_hung_worker_hits_deadline_and_recovers():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="hang@1",
                         dispatch_timeout_s=0.5)
    tasks = [rt.add_task(Task(f"t{i}", partial(_identity, i)))
             for i in range(3)]
    ex.run(timeout=60.0)
    assert [t.outputs["out"] for t in tasks] == [0, 1, 2]
    assert rt.metrics.value("procs_worker_crashes", cause="hang") == 1
    assert rt.metrics.value("procs_worker_respawns") == 1


def test_dropped_reply_is_recovered_like_a_hang():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="drop@1",
                         dispatch_timeout_s=0.5)
    tasks = [rt.add_task(Task(f"t{i}", partial(_identity, i)))
             for i in range(3)]
    ex.run(timeout=60.0)
    assert [t.outputs["out"] for t in tasks] == [0, 1, 2]
    assert rt.metrics.value("procs_worker_crashes", cause="hang") == 1


def test_slow_worker_within_deadline_is_not_a_crash():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="delay@1:0.2",
                         dispatch_timeout_s=30.0)
    t = rt.add_task(Task("t", partial(_identity, 7)))
    ex.run(timeout=60.0)
    assert t.outputs == {"out": 7}
    assert rt.metrics.value("procs_worker_crashes", cause="hang") == 0
    assert rt.metrics.value("procs_worker_crashes", cause="crash") == 0


# ---------------------------------------------------------------------------
# quarantine: a payload that keeps killing its worker fails for real
# ---------------------------------------------------------------------------

def test_poisonous_payload_is_quarantined():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="kill@1!",
                         max_task_retries=1, max_worker_respawns=5)
    rt.add_task(Task("poison", partial(_identity, 0)))
    with pytest.raises(TaskExecutionError, match="quarantined"):
        ex.run(timeout=60.0)
    assert rt.metrics.value("procs_tasks_quarantined") == 1
    # Bounded: one initial dispatch + max_task_retries re-dispatches.
    assert rt.metrics.value("procs_task_retries") <= 1
    kinds = _kinds(rt)
    assert "task_quarantine" in kinds
    assert kinds.count("worker_crash") == 2  # initial + one retry


# ---------------------------------------------------------------------------
# degradation: out of respawns, the coordinator is the substrate of last
# resort
# ---------------------------------------------------------------------------

def test_seat_degrades_to_inline_and_run_completes():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1, fault_plan="kill@1!",
                         max_worker_respawns=0, max_task_retries=100)
    tasks = [rt.add_task(Task(f"t{i}", partial(_identity, i)))
             for i in range(4)]
    ex.run(timeout=60.0)
    assert [t.outputs["out"] for t in tasks] == [0, 1, 2, 3]
    assert rt.metrics.value("procs_workers_degraded") == 1
    assert "worker_degraded" in _kinds(rt)
    # Everything after the degradation ran on the coordinator.
    assert ex.tasks_inline >= 1


# ---------------------------------------------------------------------------
# shutdown harvest accounting
# ---------------------------------------------------------------------------

def test_harvest_loss_is_accounted():
    """A worker killed between drain and shutdown loses its final snapshot;
    that loss must be accounted, not silent."""
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    t = rt.add_task(Task("t", partial(_identity, 1)))
    ex.start()
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    pid = ex.supervisor.pids()[0]
    os.kill(pid, signal.SIGKILL)
    deadline = time.monotonic() + 10.0
    while ex.supervisor.process(0).is_alive():
        assert time.monotonic() < deadline
        time.sleep(0.01)
    ex.shutdown()
    ex.raise_errors()
    assert t.outputs == {"out": 1}
    assert rt.metrics.value("procs_worker_harvest_lost", reason="dead") == 1
    assert "worker_harvest_lost" in _kinds(rt)


def test_clean_run_has_no_crash_or_harvest_noise():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    for i in range(6):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    ex.run(timeout=60.0)
    kinds = _kinds(rt)
    for kind in ("worker_crash", "worker_respawn", "worker_degraded",
                 "worker_harvest_lost", "task_retry", "task_quarantine"):
        assert kind not in kinds
    assert rt.metrics.value("procs_worker_respawns") == 0

"""Unit tests for the Task life cycle and port semantics."""

import pytest

from repro.errors import TaskStateError
from repro.sre.task import Task, TaskState


def test_source_task_ready_immediately():
    t = Task("src", lambda: {"out": 1})
    assert t.is_ready_to_schedule
    assert t.missing_inputs == frozenset()


def test_deliver_completes_input_set():
    t = Task("t", lambda a, b: {"out": a + b}, inputs=("a", "b"))
    assert not t.deliver("a", 1)
    assert t.deliver("b", 2)
    assert t.is_ready_to_schedule


def test_deliver_unknown_port_raises():
    t = Task("t", None, inputs=("a",))
    with pytest.raises(TaskStateError):
        t.deliver("nope", 1)


def test_double_delivery_raises():
    t = Task("t", None, inputs=("a", "b"))
    t.deliver("a", 1)
    with pytest.raises(TaskStateError):
        t.deliver("a", 2)


def test_run_with_missing_inputs_raises():
    t = Task("t", lambda a: a, inputs=("a",))
    with pytest.raises(TaskStateError):
        t.run()


def test_run_normalises_outputs():
    assert Task("a", lambda: {"x": 1}).run() == {"x": 1}
    assert Task("b", lambda: 7).run() == {"out": 7}
    assert Task("c", lambda: None).run() == {}
    assert Task("d", None).run() == {}


def test_run_receives_inputs_as_kwargs():
    t = Task("t", lambda left, right: {"out": left - right}, inputs=("left", "right"))
    t.deliver("left", 10)
    t.deliver("right", 4)
    assert t.run() == {"out": 6}


def test_lifecycle_happy_path():
    t = Task("t", lambda: 1)
    t.mark_ready(1.0)
    t.mark_running(2.0)
    t.mark_done(3.0)
    assert t.state is TaskState.DONE
    assert (t.ready_time, t.start_time, t.finish_time) == (1.0, 2.0, 3.0)


def test_illegal_transition_raises():
    t = Task("t", lambda: 1)
    with pytest.raises(TaskStateError):
        t.mark_running(0.0)  # not READY yet


def test_request_abort_before_running_reaps():
    t = Task("t", lambda: 1)
    assert t.request_abort() is True
    assert t.state is TaskState.ABORTED


def test_request_abort_while_running_only_flags():
    t = Task("t", lambda: 1)
    t.mark_ready(0.0)
    t.mark_running(0.0)
    assert t.request_abort() is False
    assert t.state is TaskState.RUNNING
    assert t.abort_requested


def test_speculative_with_side_effects_rejected():
    with pytest.raises(TaskStateError):
        Task("bad", lambda: 1, speculative=True, side_effect_free=False)


def test_deliver_after_launch_rejected():
    t = Task("t", lambda a: a, inputs=("a", "b"))
    t.deliver("a", 1)
    t.deliver("b", 1)
    t.mark_ready(0.0)
    with pytest.raises(TaskStateError):
        t.deliver("b", 2)


def test_seq_monotonically_increases():
    a, b = Task("a", None), Task("b", None)
    assert b.seq > a.seq


def test_cost_hint_and_tags_are_copied():
    hint = {"bytes": 1.0}
    tags = {"block": 3}
    t = Task("t", None, cost_hint=hint, tags=tags)
    hint["bytes"] = 99.0
    tags["block"] = 99
    assert t.cost_hint == {"bytes": 1.0}
    assert t.tags == {"block": 3}


# ---------------------------------------------------------------------------
# payload serialization (process back-end support)
# ---------------------------------------------------------------------------

def _kernel(a, b):
    return {"out": a + b}


def _bare_kernel(x):
    return abs(x)  # bare value, not a dict


def test_serialize_payload_roundtrips_through_run_payload():
    from functools import partial
    t = Task("t", partial(_kernel, 1), inputs=("b",))
    t.deliver("b", 2)
    blob = t.serialize_payload()
    assert isinstance(blob, bytes)
    assert Task.run_payload(blob) == {"out": 3}


def test_run_payload_normalises_bare_values_and_none():
    import pickle
    assert Task.run_payload(pickle.dumps((_bare_kernel, {"x": -3}))) == {"out": 3}
    assert Task.run_payload(pickle.dumps((None, {}))) == {}


def test_serialize_payload_rejects_closures():
    captured = []
    t = Task("t", lambda: captured)
    with pytest.raises(TaskStateError):
        t.serialize_payload()


def test_serialized_footprint_scales_with_captured_data():
    from functools import partial
    small = Task("s", partial(_kernel, b"x"), inputs=("b",))
    big = Task("b", partial(_kernel, bytes(64 * 1024)), inputs=("b",))
    assert big.serialized_footprint() > small.serialized_footprint() + 60_000

"""Tests for the §II-B resource-management policies: ratio and throttling."""

import pytest

from repro.errors import SchedulingError
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.policies import RatioPolicy, ThrottledPolicy, get_policy
from repro.sre.queues import ReadyQueue
from repro.sre.runtime import Runtime
from repro.sre.task import Task


def _queues(n_nat, n_spec):
    nat, spec = ReadyQueue(), ReadyQueue()
    for i in range(n_nat):
        t = Task(f"n{i}", lambda: 1)
        t.mark_ready(0.0)
        nat.push(t)
    for i in range(n_spec):
        t = Task(f"s{i}", lambda: 1, speculative=True)
        t.mark_ready(0.0)
        spec.push(t)
    return nat, spec


def _drain(policy, nat, spec):
    order = []
    while True:
        t = policy.select(nat, spec)
        if t is None:
            return order
        order.append(t)
        policy.notify_started(t)


def test_ratio_half_matches_alternation():
    nat, spec = _queues(4, 4)
    order = _drain(RatioPolicy(0.5), nat, spec)
    spec_flags = [t.speculative for t in order]
    assert sum(spec_flags) == 4
    # never two speculative picks in a row at 0.5
    assert not any(a and b for a, b in zip(spec_flags, spec_flags[1:]))


def test_ratio_quarter_long_run_share():
    nat, spec = _queues(30, 10)
    order = _drain(RatioPolicy(0.25), nat, spec)
    spec_picks = sum(t.speculative for t in order)
    assert spec_picks == 10
    first_half = order[:20]
    assert sum(t.speculative for t in first_half) == pytest.approx(5, abs=1)


def test_ratio_zero_is_conservative_like():
    nat, spec = _queues(2, 2)
    order = _drain(RatioPolicy(0.0), nat, spec)
    assert [t.speculative for t in order] == [False, False, True, True]


def test_ratio_one_is_aggressive_like():
    nat, spec = _queues(2, 2)
    order = _drain(RatioPolicy(1.0), nat, spec)
    assert [t.speculative for t in order] == [True, True, False, False]


def test_ratio_validates_share():
    with pytest.raises(SchedulingError):
        RatioPolicy(1.5)


def test_throttle_caps_inflight_speculation():
    policy = ThrottledPolicy(max_speculative=1)
    nat, spec = _queues(2, 3)
    first = policy.select(nat, spec)
    policy.notify_started(first)
    # balanced inner picks natural first; keep selecting until a spec task
    picked = [first]
    while True:
        t = policy.select(nat, spec)
        if t is None:
            break
        policy.notify_started(t)
        picked.append(t)
    running_spec = sum(t.speculative for t in picked)
    assert running_spec == 1  # cap reached; remaining spec tasks not selected
    assert policy.speculative_inflight == 1
    # finishing the speculative task frees a slot
    spec_task = next(t for t in picked if t.speculative)
    policy.notify_finished(spec_task)
    t = policy.select(nat, spec)
    assert t is not None and t.speculative


def test_throttle_zero_blocks_all_speculation():
    policy = ThrottledPolicy(max_speculative=0)
    nat, spec = _queues(1, 2)
    order = _drain(policy, nat, spec)
    assert [t.speculative for t in order] == [False]
    assert len(spec) == 2  # untouched


def test_throttle_end_to_end_in_executor():
    """The cap holds inside a running executor."""
    rt = Runtime()
    policy = ThrottledPolicy(max_speculative=2)
    ex = SimulatedExecutor(rt, X86Platform(workers=8), policy=policy, workers=8)
    peak = {"value": 0}

    def watch(task):
        peak["value"] = max(peak["value"], policy.speculative_inflight)

    for i in range(6):
        t = Task(f"s{i}", lambda: 1, speculative=True)
        t.on_complete.append(lambda *_: watch(t))
        rt.add_task(t)
    for i in range(4):
        rt.add_task(Task(f"n{i}", lambda: 1))
    ex.run()
    assert peak["value"] <= 2
    assert all(t.state.value == "done" for t in rt.graph.tasks())


def test_get_policy_knows_new_names():
    assert isinstance(get_policy("ratio"), RatioPolicy)
    assert isinstance(get_policy("throttled"), ThrottledPolicy)

"""Unit tests for the simulated executor."""

import pytest

from repro.errors import SchedulingError
from repro.platforms import CellPlatform, X86Platform
from repro.platforms.base import Platform
from repro.platforms.costmodel import CostModel, KindCost
from repro.sim.trace import TraceRecorder
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState


def _flat_platform(us=10.0, workers=2, **kw):
    return Platform(
        "flat",
        CostModel(kinds={}, default=KindCost(base=us)),
        default_workers=workers,
        **kw,
    )


def _setup(workers=2, policy="conservative", platform=None):
    rt = Runtime(trace=TraceRecorder(enabled=True))
    plat = platform or _flat_platform(workers=workers)
    ex = SimulatedExecutor(rt, plat, policy=policy, workers=workers)
    return rt, ex


def test_single_task_takes_service_time():
    rt, ex = _setup()
    t = rt.add_task(Task("t", lambda: {"out": 1}))
    end = ex.run()
    assert end == 10.0
    assert t.state is TaskState.DONE
    assert t.finish_time == 10.0


def test_parallelism_limited_by_workers():
    rt, ex = _setup(workers=2)
    for i in range(4):
        rt.add_task(Task(f"t{i}", lambda: 1))
    end = ex.run()
    # 4 tasks of 10 µs on 2 workers: two waves.
    assert end == 20.0


def test_workers_must_be_positive():
    rt = Runtime()
    with pytest.raises(SchedulingError):
        SimulatedExecutor(rt, _flat_platform(), workers=0)


def test_chain_executes_sequentially():
    rt, ex = _setup()
    a = rt.add_task(Task("a", lambda: {"out": 1}))
    b = rt.add_task(Task("b", lambda x: {"out": x}, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    end = ex.run()
    assert end == 20.0
    assert b.start_time == 10.0


def test_dynamic_tasks_get_executed():
    rt, ex = _setup()
    a = rt.add_task(Task("a", lambda: {"out": 1}))
    a.on_complete.append(lambda t, o: rt.add_task(Task("late", lambda: 1)))
    end = ex.run()
    assert rt.graph.get("late").state is TaskState.DONE
    assert end == 20.0


def test_policy_order_respected_under_contention():
    rt, ex = _setup(workers=1, policy="aggressive")
    order = []
    # The blocker claims the only worker; the natural and speculative tasks
    # then contend for the next dispatch, which the policy decides.
    rt.add_task(Task("blocker", lambda: order.append("blocker")))
    rt.add_task(Task("n", lambda: order.append("n")))
    rt.add_task(Task("s", lambda: order.append("s"), speculative=True))
    ex.run()
    assert order == ["blocker", "s", "n"]


def test_abort_flagged_running_task_discards():
    rt, ex = _setup(workers=1)
    ran = []
    t = rt.add_task(Task("t", lambda: ran.append(1)))
    ex.sim.schedule(5.0, lambda: rt.abort_task(t))  # mid-flight
    ex.run()
    assert t.state is TaskState.ABORTED
    assert ran == []


def test_abort_queued_task_never_runs():
    rt, ex = _setup(workers=1)
    first = rt.add_task(Task("first", lambda: 1))
    victim = rt.add_task(Task("victim", lambda: 1))
    ex.sim.schedule(1.0, lambda: rt.abort_task(victim))
    end = ex.run()
    assert victim.state is TaskState.ABORTED
    assert first.state is TaskState.DONE
    assert end == 10.0  # only one task actually occupied a worker


def test_utilisation_fraction():
    rt, ex = _setup(workers=2)
    rt.add_task(Task("a", lambda: 1))
    ex.run()
    # one worker busy 10 µs, the other idle, over 10 µs elapsed
    assert ex.utilisation() == pytest.approx(0.5)


def test_service_time_from_cost_hint():
    rt = Runtime()
    plat = Platform(
        "hints",
        CostModel(kinds={"enc": KindCost(base=1.0, per_byte=0.5)}),
        default_workers=1,
    )
    ex = SimulatedExecutor(rt, plat, workers=1)
    t = rt.add_task(Task("t", lambda: 1, kind="enc", cost_hint={"bytes": 8.0}))
    assert ex.run() == pytest.approx(5.0)


def test_cell_dma_delays_start():
    rt = Runtime()
    plat = CellPlatform(workers=1)
    ex = SimulatedExecutor(rt, plat, workers=1)
    t = rt.add_task(Task("t", lambda: 1, kind="count", cost_hint={"bytes": 4096.0}))
    ex.run()
    # DMA = 2 + 0.002*4096 ≈ 10.2 µs before the task may start.
    assert t.start_time == pytest.approx(plat.transfer_time(t))


def test_cell_prefetch_overlaps_dma_with_compute():
    rt = Runtime()
    plat = CellPlatform(workers=1)
    ex = SimulatedExecutor(rt, plat, workers=1)
    t1 = rt.add_task(Task("t1", lambda: 1, kind="count", cost_hint={"bytes": 4096.0}))
    t2 = rt.add_task(Task("t2", lambda: 1, kind="count", cost_hint={"bytes": 4096.0}))
    ex.run()
    # t2's DMA ran while t1 computed: t2 starts exactly when t1 finishes.
    assert t2.start_time == pytest.approx(t1.finish_time)


def test_prefetch_depth_bounds_local_queue():
    rt = Runtime()
    plat = CellPlatform(workers=1, slots=2)
    ex = SimulatedExecutor(rt, plat, workers=1)
    for i in range(6):
        rt.add_task(Task(f"t{i}", lambda: 1, kind="count", cost_hint={"bytes": 1024.0}))
    ex._dispatch()
    # depth 2: one running/queued pair at most
    assert ex.workers[0].load() <= 2
    ex.run()
    assert all(rt.graph.get(f"t{i}").state is TaskState.DONE for i in range(6))


def test_run_until_stops_clock():
    rt, ex = _setup(workers=1)
    for i in range(3):
        rt.add_task(Task(f"t{i}", lambda: 1))
    end = ex.run(until=15.0)
    assert end == 15.0
    # remaining task still pending
    assert any(t.state is not TaskState.DONE for t in rt.graph.tasks())


def test_deterministic_replay():
    def go():
        rt, ex = _setup(workers=3, policy="balanced")
        order = []
        for i in range(20):
            spec = i % 3 == 0
            rt.add_task(Task(f"t{i}", lambda i=i: order.append(i), speculative=spec))
        ex.run()
        return order

    assert go() == go()

"""Unit tests for the advisory side-effect analyzer."""

import functools

from repro.sre.analysis import analyze_side_effects, recommend
from repro.sre.task import Task


def test_pure_function_is_clean():
    def pure(a, b):
        c = a + b
        return {"out": c * 2}

    report = analyze_side_effects(pure)
    assert report.clean
    assert not report.opaque


def test_numpy_style_pure_closure_is_clean():
    data = [1, 2, 3]

    def fn(d=data):
        return {"out": sum(x * x for x in d)}

    assert analyze_side_effects(fn).clean


def test_global_store_is_definite():
    def bad():
        global _some_counter
        _some_counter = 1

    report = analyze_side_effects(bad)
    assert report.definite
    assert any("_some_counter" in f.detail for f in report.definite)


def test_closure_mutation_is_definite():
    cell = 0

    def bad():
        nonlocal cell
        cell += 1

    report = analyze_side_effects(bad)
    assert report.definite


def test_print_is_definite():
    def chatty(x):
        print(x)
        return x

    report = analyze_side_effects(chatty)
    assert any("print" in f.detail for f in report.definite)


def test_attribute_store_is_possible():
    class Box:
        pass

    def maybe(box):
        box.value = 1
        return box

    report = analyze_side_effects(maybe)
    assert report.possible
    assert not report.definite


def test_subscript_store_is_possible():
    def maybe(d):
        d["k"] = 1

    assert analyze_side_effects(maybe).possible


def test_nested_function_scanned():
    def outer():
        def inner(x):
            print(x)
        return inner

    assert analyze_side_effects(outer).definite


def test_builtin_is_opaque():
    report = analyze_side_effects(len)
    assert report.opaque
    assert not report.clean


def test_partial_unwrapped():
    def chatty(x, y):
        print(x, y)

    report = analyze_side_effects(functools.partial(chatty, 1))
    assert report.definite


def test_none_fn():
    assert analyze_side_effects(None).clean


def test_recommend_pure_task():
    task = Task("t", lambda: {"out": 1})
    may, report = recommend(task)
    assert may and report.clean


def test_recommend_rejects_definite_effects():
    def write_out(x):
        print(x)

    task = Task("t", write_out, side_effect_free=False)
    may, _ = recommend(task)
    assert not may


def test_recommend_accepts_with_undo():
    log = []

    def effectful():
        log.append(1)
        return {"out": 1}

    task = Task("t", print, side_effect_free=False, undo=lambda t: None)
    may, _ = recommend(task)
    assert may


def test_recommend_allows_possible_only():
    def maybe(d):
        d["k"] = 1  # mutates its own input; may be task-local

    task = Task("t", maybe)
    may, report = recommend(task)
    assert may
    assert report.possible

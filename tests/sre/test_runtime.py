"""Unit tests for the runtime core: routing, readiness, aborts."""

import pytest

from repro.errors import TaskStateError
from repro.sim.trace import TraceRecorder
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState


def _rt():
    return Runtime(trace=TraceRecorder(enabled=True))


def _finish(rt, task):
    rt.begin_task(task)
    return rt.finish_task(task)


def test_source_task_becomes_ready_on_add():
    rt = _rt()
    t = rt.add_task(Task("src", lambda: {"out": 1}))
    assert t.state is TaskState.READY
    assert len(rt.natural_queue) == 1


def test_task_with_inputs_blocks():
    rt = _rt()
    t = rt.add_task(Task("t", lambda a: a, inputs=("a",)))
    assert t.state is TaskState.BLOCKED


def test_outputs_route_along_edges():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 5}))
    b = rt.add_task(Task("b", lambda x: {"out": x * 2}, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    _finish(rt, a)
    assert b.state is TaskState.READY
    assert _finish(rt, b) == {"out": 10}


def test_retroactive_connect_delivers_buffered_output():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 3}))
    _finish(rt, a)
    b = rt.add_task(Task("b", lambda x: x, inputs=("x",)))
    rt.connect(a, "out", b, "x")  # a already DONE
    assert b.state is TaskState.READY
    assert b.inputs["x"] == 3


def test_retroactive_sink_fires():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 3}))
    _finish(rt, a)
    seen = []
    rt.connect_sink(a, "out", seen.append)
    assert seen == [3]


def test_sink_receives_output():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": "payload"}))
    seen = []
    rt.connect_sink(a, "out", seen.append)
    _finish(rt, a)
    assert seen == ["payload"]


def test_speculative_tasks_use_their_own_queue():
    rt = _rt()
    rt.add_task(Task("n", lambda: 1))
    rt.add_task(Task("s", lambda: 1, speculative=True))
    assert rt.ready_counts() == (1, 1)


def test_on_complete_hook_runs_after_routing():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 1}))
    b = rt.add_task(Task("b", lambda x: x, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    states = []
    a.on_complete.append(lambda t, outs: states.append(b.state))
    _finish(rt, a)
    assert states == [TaskState.READY]


def test_hooks_can_add_tasks_dynamically():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 1}))

    def spawn(task, outs):
        rt.add_task(Task("child", lambda: {"out": 2}))

    a.on_complete.append(spawn)
    _finish(rt, a)
    assert rt.graph.get("child") is not None
    assert rt.graph.get("child").state is TaskState.READY


def test_abort_ready_task_leaves_queue():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: 1))
    rt.abort_task(t)
    assert t.state is TaskState.ABORTED
    assert len(rt.natural_queue) == 0
    assert rt.tasks_aborted == 1


def test_abort_running_task_discards_results():
    rt = _rt()
    ran = []
    t = rt.add_task(Task("t", lambda: ran.append(1) or {"out": 1}))
    b = rt.add_task(Task("b", lambda x: x, inputs=("x",)))
    rt.connect(t, "out", b, "x")
    rt.begin_task(t)
    rt.abort_task(t)  # flag only
    assert t.state is TaskState.RUNNING
    result = rt.finish_task(t)
    assert result is None
    assert t.state is TaskState.ABORTED
    assert ran == []  # function never executed
    assert b.state is TaskState.BLOCKED  # nothing routed


def test_abort_done_task_discards_memory_accounting():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: {"out": b"x" * 100}, speculative=True))
    _finish(rt, t)
    live_before = rt.memory.live_bytes
    rt.abort_task(t)
    assert rt.memory.live_bytes < live_before
    assert rt.memory.speculative_wasted > 0


def test_abort_is_idempotent():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: 1))
    rt.abort_task(t)
    rt.abort_task(t)
    assert rt.tasks_aborted == 1


def test_abort_dependents_propagates():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 1}))
    b = rt.add_task(Task("b", lambda x: {"out": x}, inputs=("x",)))
    c = rt.add_task(Task("c", lambda x: {"out": x}, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    rt.connect(b, "out", c, "x")
    footprint = rt.abort_dependents([a])
    assert [t.name for t in footprint] == ["a", "b", "c"]
    assert all(t.state is TaskState.ABORTED for t in (a, b, c))


def test_delivery_to_aborted_task_is_dropped():
    rt = _rt()
    a = rt.add_task(Task("a", lambda: {"out": 1}))
    b = rt.add_task(Task("b", lambda x: x, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    rt.abort_task(b)
    _finish(rt, a)  # must not raise


def test_delivery_to_done_task_raises():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: 1))
    _finish(rt, t)
    with pytest.raises(TaskStateError):
        rt.deliver_external(t, "x", 1)


def test_supertask_notification_on_completion():
    rt = _rt()
    seen = []
    rt.root.on_child_complete(lambda t, outs: seen.append(t.name))
    t = rt.add_task(Task("t", lambda: {"out": 1}))
    _finish(rt, t)
    assert seen == ["t"]


def test_stats_counters():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: 1, speculative=True))
    _finish(rt, t)
    s = rt.stats()
    assert s["tasks_completed"] == 1
    assert s["speculative_completed"] == 1
    assert s["graph_size"] == 1


def test_precomputed_finish_skips_fn():
    rt = _rt()
    ran = []
    t = rt.add_task(Task("t", lambda: ran.append(1) or {"out": 1}))
    rt.begin_task(t)
    out = rt.finish_task(t, {"out": 42}, precomputed=True)
    assert out == {"out": 42}
    assert ran == []


def test_trace_records_lifecycle():
    rt = _rt()
    t = rt.add_task(Task("t", lambda: 1))
    _finish(rt, t)
    assert rt.trace.count("task_ready") == 1
    assert rt.trace.count("task_start") == 1
    assert rt.trace.count("task_done") == 1


def test_failing_task_raises_contextual_error():
    from repro.errors import TaskExecutionError
    rt = _rt()

    def boom():
        raise ValueError("kapow")

    t = rt.add_task(Task("boom", boom))
    child = rt.add_task(Task("child", lambda x: x, inputs=("x",)))
    rt.connect(t, "out", child, "x")
    rt.begin_task(t)
    with pytest.raises(TaskExecutionError) as exc_info:
        rt.finish_task(t)
    assert exc_info.value.task_name == "boom"
    assert isinstance(exc_info.value.original, ValueError)
    # the failing cone is aborted, the runtime stays consistent
    assert t.state is TaskState.ABORTED
    assert child.state is TaskState.ABORTED
    assert rt.trace.count("task_failed") == 1

"""The distributed executor: a ProcessExecutor whose workers live
behind a TCP worker pool.

Acceptance bar, mirroring the procs back-end's:

* a dist run is **byte-identical** to the simulated run of the same
  config (pickle and shm transports);
* the chaos harness maps onto sockets verbatim — ``kill@3`` on the
  remote pool produces a ``worker_respawn`` and a clean, still
  byte-identical completion;
* a pool (or seat) that is gone for good degrades to coordinator-inline
  execution instead of failing the run;
* an adversarial or wedged pool surfaces as a prompt typed
  :class:`~repro.errors.WorkerLost` at the coordinator seam — never a
  hang (the dist half of the serve-layer hang regressions);
* nothing leaks: pushed segments are released at teardown.
"""

import pickle
import socket
import struct
import threading
from functools import partial

import pytest

from repro.errors import WorkerLost
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.serve.wire import (MAX_FRAME_BYTES, encode_blob, recv_frame,
                              send_frame)
from repro.sre import shm
from repro.sre.executor_dist import DistExecutor, RemotePool
from repro.sre.registry import executor_names, make_executor
from repro.sre.runtime import Runtime
from repro.sre.task import PAYLOAD_PROTOCOL, Task
from repro.sre.worker_pool import PoolSettings, WorkerPoolServer

pytestmark = [pytest.mark.procs, pytest.mark.threaded]


@pytest.fixture()
def pool():
    srv = WorkerPoolServer(PoolSettings()).start()
    yield srv
    srv.stop()


@pytest.fixture()
def pool_addr(pool):
    return f"127.0.0.1:{pool.port}"


def _shm_names():
    """Segments created by *this* process (coordinator and in-process
    pool both name them ``repro-<pid>-...``) present under /dev/shm —
    pid-scoped so concurrent repro runs can't race us; leak checks
    diff before/after so earlier tests' leftovers don't bleed in."""
    import glob
    import os

    return set(glob.glob(f"/dev/shm/repro-{os.getpid()}-*"))


def _identity(i):
    return {"out": i}


def _double(x):
    return {"out": x * 2}


# ---------------------------------------------------------------------------
# registration + config plumbing
# ---------------------------------------------------------------------------

def test_dist_is_registered():
    assert "dist" in executor_names()


def test_make_executor_builds_dist(pool_addr):
    ex = make_executor("dist", Runtime(), pool=pool_addr, workers=1)
    assert isinstance(ex, DistExecutor)


def test_runconfig_requires_pool():
    from repro.errors import ExperimentError
    from repro.experiments.config import RunConfig

    with pytest.raises(ExperimentError, match="pool"):
        RunConfig(executor="dist")
    with pytest.raises(ExperimentError, match="dist"):
        RunConfig(executor="procs", pool="127.0.0.1:1")
    with pytest.raises(ExperimentError, match="host:port"):
        RunConfig(executor="dist", pool="nonsense")


# ---------------------------------------------------------------------------
# the executor contract, across the wire
# ---------------------------------------------------------------------------

def test_runs_all_tasks_on_remote_workers(pool_addr):
    rt = Runtime()
    ex = DistExecutor(rt, pool=pool_addr, workers=2)
    for i in range(10):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    ex.run(timeout=60.0)
    assert {t.name: t.outputs["out"] for t in rt.graph.tasks()} == {
        f"t{i}": i for i in range(10)
    }
    assert ex.tasks_shipped == 10
    assert ex.tasks_inline == 0
    # remote worker_exec events came home in the detach snapshot,
    # attributed to both their seat and their origin pool.
    execs = [e for e in rt.events.events() if e["kind"] == "worker_exec"]
    assert execs and all("origin" in e and "worker" in e for e in execs)


def test_dataflow_chain_across_the_wire(pool_addr):
    rt = Runtime()
    ex = DistExecutor(rt, pool=pool_addr, workers=2)
    a = rt.add_task(Task("a", partial(_identity, 5)))
    b = rt.add_task(Task("b", _double, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    ex.run(timeout=60.0)
    assert b.outputs == {"out": 10}


def test_remote_kill_respawns_and_completes(pool_addr):
    """kill@3 armed on the *remote* pool: the seat connection dies, the
    coordinator reconnects with a bumped incarnation, and every task
    still completes."""
    rt = Runtime()
    ex = DistExecutor(rt, pool=pool_addr, workers=2, fault_plan="kill@3",
                      batch_max=1)
    for i in range(12):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    ex.run(timeout=120.0)
    assert {t.outputs["out"] for t in rt.graph.tasks()} == set(range(12))
    kinds = [e["kind"] for e in rt.events.events()]
    assert "worker_crash" in kinds
    assert "worker_respawn" in kinds


def test_persistent_kills_degrade_to_inline(pool_addr):
    """kill@1! on every incarnation exhausts the reconnect budget; the
    seats degrade and the run completes coordinator-inline — the same
    ladder the local back-end guarantees."""
    rt = Runtime()
    ex = DistExecutor(rt, pool=pool_addr, workers=1, fault_plan="kill@1!",
                      max_worker_respawns=1, max_task_retries=8,
                      batch_max=1)
    for i in range(6):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    ex.run(timeout=120.0)
    assert {t.outputs["out"] for t in rt.graph.tasks()} == set(range(6))
    kinds = [e["kind"] for e in rt.events.events()]
    assert "worker_degraded" in kinds
    assert ex.tasks_inline > 0


def test_attach_to_dead_pool_raises():
    from repro.errors import SchedulingError

    listener = socket.create_server(("127.0.0.1", 0))
    port = listener.getsockname()[1]
    listener.close()  # nothing listens here any more
    rt = Runtime()
    ex = DistExecutor(rt, pool=f"127.0.0.1:{port}", workers=1)
    with pytest.raises((SchedulingError, OSError)):
        ex.start()


def test_pool_refuses_oversized_attach(pool):
    srv = pool
    conn = socket.create_connection(("127.0.0.1", srv.port), timeout=10)
    send_frame(conn, {"op": "attach",
                      "workers": srv.settings.max_workers + 1})
    reply = recv_frame(conn)
    assert reply["ok"] is False and "seats" in reply["error"]
    conn.close()


def test_seat_hello_for_unknown_session_refused(pool):
    conn = socket.create_connection(("127.0.0.1", pool.port), timeout=10)
    send_frame(conn, {"op": "seat", "session": "nope", "wid": 0,
                      "incarnation": 0})
    reply = recv_frame(conn)
    assert reply["ok"] is False
    conn.close()


# ---------------------------------------------------------------------------
# end-to-end byte identity vs the simulated executor
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("transport", ["pickle", "shm"])
def test_huffman_dist_byte_identical_to_sim(pool_addr, transport):
    from repro.experiments import RunConfig, run_huffman

    before = _shm_names()
    sim = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                       executor="sim"))
    dist = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                        executor="dist", pool=pool_addr,
                                        workers=2, transport=transport))
    assert dist.output_sha256 == sim.output_sha256
    leaked = _shm_names() - before
    assert not leaked, f"leaked segments: {sorted(leaked)}"


@pytest.mark.slow
def test_huffman_dist_chaos_byte_identical(pool_addr):
    from repro.experiments import RunConfig, run_huffman

    before = _shm_names()
    sim = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                       executor="sim"))
    dist = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                        executor="dist", pool=pool_addr,
                                        workers=2, fault_plan="kill@3"))
    assert dist.output_sha256 == sim.output_sha256
    kinds = [e["kind"] for e in dist.events.events()]
    assert "remote_pool_attach" in kinds
    assert "worker_respawn" in kinds
    leaked = _shm_names() - before
    assert not leaked, f"leaked segments: {sorted(leaked)}"


# ---------------------------------------------------------------------------
# the block-push seam (chunked shm over the wire)
# ---------------------------------------------------------------------------

def test_segment_push_roundtrip():
    """materialize/write/read: the primitives the pool's segment/chunk
    ops land on, exercised without a socket."""
    name = "repro_test_push_seg"
    created = shm.materialize_segment(name, 4096)
    try:
        assert created is True  # fresh name: a copy was created
        # attaching the same name again is a no-op native attach
        assert shm.materialize_segment(name, 4096) is False
        payload = bytes(range(256)) * 8
        shm.write_block(name, 128, payload)
        assert shm.read_block(name, 128, len(payload)) == payload
        assert shm.segment_size(name) >= 4096
        with pytest.raises(Exception):
            shm.write_block(name, 4096 - 1, b"xx")  # over the end
    finally:
        shm.release_segment(name, unlink=True)
    from repro.errors import SegmentGone

    with pytest.raises(SegmentGone):
        shm.segment_size(name)


# ---------------------------------------------------------------------------
# adversarial pool: the dist half of the serve-layer hang regressions.
# RemotePool.recv_reply must turn every wire-level attack into a prompt
# typed WorkerLost — the recovery path — never a hang.
# ---------------------------------------------------------------------------

def _pool_with_fake_seat():
    rt = Runtime(metrics=MetricsRegistry(), events=EventLog())
    pool = RemotePool("127.0.0.1:1", workers=1, runtime=rt,
                      net_margin_s=0.1)
    ours, theirs = socket.socketpair()
    seat = pool._seats[0]
    seat.sock = ours
    seat.sent = 5  # pretend a batch is in flight
    return pool, theirs


@pytest.mark.parametrize("attack,cause", [
    (b"\x00\x00", "protocol"),                          # truncated header
    (struct.pack(">I", 100) + b'{"par', "protocol"),    # truncated body
    (struct.pack(">I", MAX_FRAME_BYTES + 1), "protocol"),  # oversize
    (struct.pack(">I", 9) + b"[1, 2, 3]", "protocol"),  # non-dict JSON
    (b"", "crash"),                                     # clean EOF
])
def test_recv_reply_adversarial_frames(attack, cause):
    pool, evil = _pool_with_fake_seat()
    if attack:
        evil.sendall(attack)
    evil.close()
    with pytest.raises(WorkerLost) as exc:
        pool.recv_reply(0, timeout_s=5.0)
    assert exc.value.cause == cause


def test_recv_reply_silent_pool_is_a_hang_not_a_wedge():
    pool, silent = _pool_with_fake_seat()
    try:
        with pytest.raises(WorkerLost) as exc:
            pool.recv_reply(0, timeout_s=0.2)
        assert exc.value.cause == "hang"
    finally:
        silent.close()


def test_recv_reply_out_of_sequence_is_protocol_loss():
    pool, peer = _pool_with_fake_seat()
    try:
        payload = encode_blob(pickle.dumps(("x", None),
                                           protocol=PAYLOAD_PROTOCOL))
        send_frame(peer, {"seq": 3, "status": "ok",
                          "payload_b64": payload})
        with pytest.raises(WorkerLost) as exc:
            pool.recv_reply(0, timeout_s=5.0)
        assert exc.value.cause == "protocol"
    finally:
        peer.close()


def test_recv_reply_relayed_loss_carries_cause():
    pool, peer = _pool_with_fake_seat()
    try:
        send_frame(peer, {"lost": "crash", "respawned": True,
                          "exitcode": -9})
        with pytest.raises(WorkerLost) as exc:
            pool.recv_reply(0, timeout_s=5.0)
        assert exc.value.cause == "crash"
        assert exc.value.exitcode == -9
    finally:
        peer.close()

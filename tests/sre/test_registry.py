"""Unit tests for the executor registry (repro.sre.registry)."""

import pytest

from repro.errors import SchedulingError
from repro.sre.registry import (
    EXECUTORS,
    executor_names,
    make_executor,
    register_executor,
)
from repro.sre.runtime import Runtime


def test_builtin_backends_registered():
    names = executor_names()
    for expected in ("sim", "threads", "procs"):
        assert expected in names
    assert names == tuple(sorted(names))


def test_make_executor_sim_resolves_platform_name():
    ex = make_executor("sim", Runtime(), platform="x86", workers=2)
    assert ex.platform.name == "x86"


def test_make_executor_threads():
    ex = make_executor("threads", Runtime(), workers=2)
    assert ex.n_workers == 2


def test_unknown_name_raises_with_choices():
    with pytest.raises(SchedulingError) as err:
        make_executor("gpu", Runtime())
    msg = str(err.value)
    assert "gpu" in msg
    for name in ("procs", "sim", "threads"):
        assert name in msg


def test_custom_registration_round_trips():
    calls = {}

    def factory(runtime, **opts):
        calls["runtime"] = runtime
        calls["opts"] = opts
        return "custom-executor"

    register_executor("unittest-dummy", factory)
    try:
        rt = Runtime()
        assert make_executor("unittest-dummy", rt, knob=3) == "custom-executor"
        assert calls == {"runtime": rt, "opts": {"knob": 3}}
        assert "unittest-dummy" in executor_names()
    finally:
        EXECUTORS.pop("unittest-dummy", None)

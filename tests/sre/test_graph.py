"""Unit tests for the dynamic DFG."""

import pytest

from repro.errors import GraphError
from repro.sre.graph import DFG
from repro.sre.task import Task


def _t(name, inputs=()):
    return Task(name, lambda **kw: {"out": 1}, inputs=inputs)


def test_duplicate_names_rejected():
    g = DFG()
    g.add_task(_t("a"))
    with pytest.raises(GraphError):
        g.add_task(_t("a"))


def test_connect_requires_membership():
    g = DFG()
    a = g.add_task(_t("a"))
    stranger = _t("s", inputs=("x",))
    with pytest.raises(GraphError):
        g.connect(a, "out", stranger, "x")


def test_connect_unknown_port_rejected():
    g = DFG()
    a = g.add_task(_t("a"))
    b = g.add_task(_t("b", inputs=("x",)))
    with pytest.raises(GraphError):
        g.connect(a, "out", b, "nope")


def test_successors_predecessors():
    g = DFG()
    a = g.add_task(_t("a"))
    b = g.add_task(_t("b", inputs=("x",)))
    c = g.add_task(_t("c", inputs=("x",)))
    g.connect(a, "out", b, "x")
    g.connect(a, "out", c, "x")
    assert {t.name for t in g.successors(a)} == {"b", "c"}
    assert [t.name for t in g.predecessors(b)] == ["a"]


def test_dependents_transitive_closure():
    g = DFG()
    tasks = {n: g.add_task(_t(n, inputs=("x",) if n != "a" else ())) for n in "abcd"}
    g.connect(tasks["a"], "out", tasks["b"], "x")
    g.connect(tasks["b"], "out", tasks["c"], "x")
    g.connect(tasks["c"], "out", tasks["d"], "x")
    deps = g.dependents([tasks["b"]])
    assert [t.name for t in deps] == ["c", "d"]
    deps_incl = g.dependents([tasks["b"]], include_roots=True)
    assert [t.name for t in deps_incl] == ["b", "c", "d"]


def test_dependents_diamond_no_duplicates():
    g = DFG()
    a = g.add_task(_t("a"))
    b = g.add_task(_t("b", inputs=("x",)))
    c = g.add_task(_t("c", inputs=("x",)))
    d = g.add_task(Task("d", lambda l, r: 1, inputs=("l", "r")))
    g.connect(a, "out", b, "x")
    g.connect(a, "out", c, "x")
    g.connect(b, "out", d, "l")
    g.connect(c, "out", d, "r")
    deps = g.dependents([a])
    assert sorted(t.name for t in deps) == ["b", "c", "d"]


def test_remove_task_cleans_edges_and_sinks():
    g = DFG()
    a = g.add_task(_t("a"))
    b = g.add_task(_t("b", inputs=("x",)))
    g.connect(a, "out", b, "x")
    g.connect_sink(a, "out", lambda v: None)
    g.remove_task(a)
    assert a not in g
    assert g.in_edges(b) == []
    assert g.sinks_for(a, "out") == []
    # idempotent
    g.remove_task(a)


def test_has_cycle_detects_cycles():
    g = DFG()
    a = g.add_task(_t("a", inputs=("x",)))
    b = g.add_task(_t("b", inputs=("x",)))
    g.connect(a, "out", b, "x")
    assert not g.has_cycle()
    g.connect(b, "out", a, "x")
    assert g.has_cycle()


def test_to_networkx_export():
    g = DFG()
    a = g.add_task(_t("a"))
    b = g.add_task(_t("b", inputs=("x",)))
    g.connect(a, "out", b, "x")
    nxg = g.to_networkx()
    assert set(nxg.nodes) == {"a", "b"}
    assert nxg.has_edge("a", "b")
    assert nxg.nodes["a"]["kind"] == "task"


def test_multiple_sinks_per_port():
    g = DFG()
    a = g.add_task(_t("a"))
    seen = []
    g.connect_sink(a, "out", lambda v: seen.append(("s1", v)))
    g.connect_sink(a, "out", lambda v: seen.append(("s2", v)))
    for fn in g.sinks_for(a, "out"):
        fn(7)
    assert seen == [("s1", 7), ("s2", 7)]


def test_to_dot_export():
    g = DFG()
    a = g.add_task(Task("a", lambda: {"out": 1}))
    spec = g.add_task(Task("spec", lambda x: 1, inputs=("x",), speculative=True))
    chk = g.add_task(Task("chk", lambda x: 1, inputs=("x",), kind="check"))
    g.connect(a, "out", spec, "x")
    g.connect(a, "out", chk, "x")
    dot = g.to_dot()
    assert dot.startswith("digraph dfg {")
    assert '"a" -> "spec"' in dot
    assert "style=dashed" in dot          # speculative tasks dashed
    assert "shape=diamond" in dot         # check tasks are diamonds (paper)
    spec.request_abort()
    assert "color=red" in g.to_dot()

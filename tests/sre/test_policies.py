"""Unit tests for the dispatch policies."""

import pytest

from repro.errors import SchedulingError
from repro.sre.policies import (
    AggressivePolicy,
    BalancedPolicy,
    ConservativePolicy,
    FCFSPolicy,
    get_policy,
)
from repro.sre.queues import ReadyQueue
from repro.sre.task import Task


def _queues(n_nat, n_spec):
    nat, spec = ReadyQueue(), ReadyQueue()
    for i in range(n_nat):
        t = Task(f"n{i}", lambda: 1)
        t.mark_ready(0.0)
        nat.push(t)
    for i in range(n_spec):
        t = Task(f"s{i}", lambda: 1, speculative=True)
        t.mark_ready(0.0)
        spec.push(t)
    return nat, spec


def _drain(policy, nat, spec):
    order = []
    while True:
        t = policy.select(nat, spec)
        if t is None:
            return order
        order.append(t.name)


def test_conservative_prefers_natural():
    nat, spec = _queues(2, 2)
    assert _drain(ConservativePolicy(), nat, spec) == ["n0", "n1", "s0", "s1"]


def test_aggressive_prefers_speculative():
    nat, spec = _queues(2, 2)
    assert _drain(AggressivePolicy(), nat, spec) == ["s0", "s1", "n0", "n1"]


def test_balanced_alternates():
    nat, spec = _queues(3, 3)
    order = _drain(BalancedPolicy(), nat, spec)
    assert order == ["n0", "s0", "n1", "s1", "n2", "s2"]


def test_balanced_serves_whatever_is_available():
    nat, spec = _queues(3, 0)
    assert _drain(BalancedPolicy(), nat, spec) == ["n0", "n1", "n2"]


def test_balanced_alternation_resumes_on_reappearance():
    policy = BalancedPolicy()
    nat, spec = _queues(2, 0)
    assert policy.select(nat, spec).name == "n0"
    assert policy.select(nat, spec).name == "n1"  # only natural available
    # Speculative work appears: it must be served next.
    t = Task("late-spec", lambda: 1, speculative=True)
    t.mark_ready(0.0)
    spec.push(t)
    nat2, _ = _queues(1, 0)
    assert policy.select(nat2, spec).name == "late-spec"


def test_fcfs_is_global_arrival_order():
    nat, spec = ReadyQueue(), ReadyQueue()
    t1 = Task("first", lambda: 1)
    t2 = Task("second", lambda: 1, speculative=True)
    t3 = Task("third", lambda: 1)
    for t, q in ((t1, nat), (t2, spec), (t3, nat)):
        t.mark_ready(0.0)
        q.push(t)
    assert _drain(FCFSPolicy(), nat, spec) == ["first", "second", "third"]


def test_empty_queues_yield_none():
    nat, spec = _queues(0, 0)
    for policy in (ConservativePolicy(), AggressivePolicy(), BalancedPolicy(), FCFSPolicy()):
        assert policy.select(nat, spec) is None


def test_get_policy_by_name():
    for name, cls in [("conservative", ConservativePolicy),
                      ("aggressive", AggressivePolicy),
                      ("balanced", BalancedPolicy),
                      ("fcfs", FCFSPolicy)]:
        assert isinstance(get_policy(name), cls)


def test_get_policy_unknown():
    with pytest.raises(SchedulingError):
        get_policy("yolo")


def test_balanced_reset_clears_state():
    policy = BalancedPolicy()
    nat, spec = _queues(1, 1)
    assert policy.select(nat, spec).name == "n0"
    policy.reset()
    nat2, spec2 = _queues(1, 1)
    assert policy.select(nat2, spec2).name == "n0"

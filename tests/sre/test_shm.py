"""Unit tests for the shared-memory block transport (repro.sre.shm)."""

import pickle
from functools import partial

import numpy as np
import pytest

from repro.errors import SegmentGone, TransportError
from repro.obs.metrics import MetricsRegistry
from repro.sre import shm
from repro.sre.shm import BlockRef, BlockStore
from repro.sre.task import Task


@pytest.fixture
def store():
    s = BlockStore(min_bytes=16)
    yield s
    s.close()


# ---------------------------------------------------------------------------
# put / resolve
# ---------------------------------------------------------------------------

def test_put_ndarray_resolves_to_readonly_view(store):
    arr = np.arange(256, dtype=np.uint8)
    ref = store.put(arr)
    assert ref is not None
    view = shm.resolve(ref)
    np.testing.assert_array_equal(view, arr)
    assert not view.flags.writeable


def test_put_object_resolves_by_pickle(store):
    obj = {"tree": list(range(100)), "label": "x"}
    ref = store.put(obj)
    assert ref.kind == "pickle"
    assert shm.resolve(ref) == obj
    # Cached per location: the coordinator primes the cache with the
    # original object, so local resolve is identity.
    assert shm.resolve(ref) is shm.resolve(ref)


def test_put_below_min_bytes_returns_none():
    with BlockStore(min_bytes=64) as s:
        assert s.put(b"tiny") is None
        assert s.put(np.zeros(4, dtype=np.uint8)) is None


def test_blocks_pack_into_one_segment(store):
    refs = [store.put(np.full(64, i, dtype=np.uint8)) for i in range(4)]
    assert len({r.segment for r in refs}) == 1
    for i, ref in enumerate(refs):
        assert bytes(shm.resolve(ref)) == bytes([i]) * 64


def test_oversize_block_gets_dedicated_segment():
    with BlockStore(min_bytes=16, segment_bytes=1024) as s:
        small = s.put(np.zeros(64, dtype=np.uint8))
        big = s.put(np.zeros(4096, dtype=np.uint8))
        assert small.segment != big.segment
        assert shm.resolve(big).nbytes == 4096


def test_blockref_pickles_as_handle(store):
    ref = store.put(np.zeros(4096, dtype=np.uint8))
    blob = pickle.dumps(ref)
    assert len(blob) < 200  # the handle, not the 4 KB of data
    clone = pickle.loads(blob)
    assert clone == ref
    np.testing.assert_array_equal(shm.resolve(clone), np.zeros(4096))


# ---------------------------------------------------------------------------
# refcount lifecycle
# ---------------------------------------------------------------------------

def test_refcount_lifecycle(store):
    ref = store.put(np.zeros(64, dtype=np.uint8), refs=1)
    assert store.refcount(ref) == 1
    store.acquire(ref)
    store.acquire(ref, n=2)
    assert store.refcount(ref) == 4
    store.release(ref, n=3)
    assert store.refcount(ref) == 1
    store.release(ref)
    assert store.refcount(ref) == 0


def test_double_release_raises(store):
    ref = store.put(np.zeros(64, dtype=np.uint8))
    store.release(ref)
    with pytest.raises(TransportError):
        store.release(ref)


def test_over_release_raises(store):
    ref = store.put(np.zeros(64, dtype=np.uint8), refs=2)
    with pytest.raises(TransportError):
        store.release(ref, n=3)


def test_acquire_after_reclaim_raises(store):
    ref = store.put(np.zeros(64, dtype=np.uint8))
    store.release(ref)
    with pytest.raises(TransportError):
        store.acquire(ref)


def test_release_callback_matches_release_resources_shape(store):
    ref = store.put(np.zeros(64, dtype=np.uint8))
    cb = store.release_callback(ref)
    cb("rollback")
    assert store.refcount(ref) == 0


# ---------------------------------------------------------------------------
# reclamation
# ---------------------------------------------------------------------------

def test_segment_reclaimed_when_all_blocks_released():
    reg = MetricsRegistry()
    with BlockStore(metrics=reg, min_bytes=16, segment_bytes=256) as s:
        # Fill and seal the first arena by overflowing into a second.
        a = s.put(np.zeros(200, dtype=np.uint8))
        b = s.put(np.zeros(200, dtype=np.uint8))
        assert a.segment != b.segment
        assert s.live_segments == 2
        s.release(a, reason="rollback")
        assert s.live_segments == 1  # sealed arena with zero refs unlinks
        assert s.segments_reclaimed == 1
        assert reg.counter("shm_refs_released",
                           labelnames=("reason",)).labels(reason="rollback").value() == 1
    assert reg.gauge("shm_segments").value() == 0
    assert reg.gauge("shm_bytes_resident").value() == 0


def test_open_arena_not_reclaimed_until_sealed(store):
    ref = store.put(np.zeros(64, dtype=np.uint8))
    store.release(ref)
    # The open arena may still receive blocks, so it must survive.
    assert store.live_segments == 1


def test_attach_after_unlink_raises_segment_gone():
    s = BlockStore(min_bytes=16)
    ref = s.put(np.zeros(64, dtype=np.uint8))
    s.close()
    # close() also dropped the process-local mapping, so resolving now
    # requires a fresh attach against an unlinked name.
    with pytest.raises(SegmentGone):
        shm.resolve(ref)


def test_close_releases_leftovers_with_reason():
    reg = MetricsRegistry()
    s = BlockStore(metrics=reg, min_bytes=16)
    s.put(np.zeros(64, dtype=np.uint8), refs=3)
    s.close()
    counter = reg.counter("shm_refs_released", labelnames=("reason",))
    assert counter.labels(reason="close").value() == 3
    assert s.live_refs == 0
    s.close()  # idempotent


def test_put_after_close_raises():
    s = BlockStore(min_bytes=16)
    s.close()
    with pytest.raises(TransportError):
        s.put(np.zeros(64, dtype=np.uint8))


# ---------------------------------------------------------------------------
# payload walking + Task integration
# ---------------------------------------------------------------------------

def test_iter_refs_and_referenced_bytes(store):
    r1 = store.put(np.zeros(64, dtype=np.uint8))
    r2 = store.put(np.zeros(128, dtype=np.uint8))
    payload = {"a": [r1, 1, "x"], "b": (None, {"c": r2}),
               "f": partial(len, r1)}
    found = list(shm.iter_refs(payload))
    assert sorted(f.length for f in found) == [64, 64, 128]
    assert shm.referenced_bytes(payload) == 64 + 64 + 128


def test_swap_in_preserves_ref_free_payloads(store):
    payload = {"a": [1, 2], "b": (3, 4)}
    assert shm.swap_in(payload) is payload


def test_task_runs_with_ref_inputs(store):
    arr = np.arange(100, dtype=np.uint8)
    ref = store.put(arr)
    task = Task("sum", lambda data: {"out": int(np.sum(data))},
                inputs=("data",))
    task.deliver("data", ref)
    assert task.run() == {"out": int(arr.sum())}


def test_run_payload_round_trips_refs(store):
    arr = np.arange(200, dtype=np.uint8)
    ref = store.put(arr)
    task = Task("sum", _sum_kernel, inputs=("data",))
    task.deliver("data", ref)
    blob = task.serialize_payload()
    assert len(blob) < 1024  # the handle shipped, not the array
    assert Task.run_payload(blob) == {"out": int(arr.sum())}


def _sum_kernel(data):
    return {"out": int(np.sum(data))}


def test_payload_footprint_counts_referenced_bytes(store):
    big = np.zeros(8192, dtype=np.uint8)
    ref = store.put(big)
    task = Task("t", _sum_kernel, inputs=("data",))
    task.deliver("data", ref)
    assert task.referenced_bytes() == 8192
    assert task.serialized_footprint() < 1024
    assert task.payload_footprint() == (
        task.serialized_footprint() + task.referenced_bytes())


def test_serialize_payload_caches_blob():
    task = Task("t", _sum_kernel, inputs=("data",))
    task.deliver("data", b"x" * 100)
    blob = task.serialize_payload()
    assert task.serialize_payload() is blob  # cached, not re-pickled
    task.drop_payload_cache()
    blob2 = task.serialize_payload()
    assert blob2 is not blob and blob2 == blob

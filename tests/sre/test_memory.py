"""Unit tests for memory accounting."""

import numpy as np

from repro.sre.memory import MemoryLedger, sizeof_value


def test_sizeof_numpy_array():
    assert sizeof_value(np.zeros(10, dtype=np.int64)) == 80


def test_sizeof_bytes_like():
    assert sizeof_value(b"abcd") == 4
    assert sizeof_value(bytearray(8)) == 8


def test_sizeof_containers_recurse():
    assert sizeof_value([b"ab", b"cd"]) == 4
    assert sizeof_value({"a": b"xy", "b": b"z"}) == 3
    assert sizeof_value((np.zeros(2, np.uint8), b"a")) == 3


def test_sizeof_scalar_nominal():
    assert sizeof_value(123) == 16


def test_allocate_and_commit():
    ledger = MemoryLedger()
    ledger.allocate("t1", 100, speculative=False)
    assert ledger.live_bytes == 100
    assert ledger.peak_bytes == 100
    ledger.commit("t1")
    assert ledger.live_bytes == 0
    assert ledger.speculative_wasted == 0


def test_discard_speculative_counts_waste():
    ledger = MemoryLedger()
    ledger.allocate("s1", 50, speculative=True)
    ledger.discard("s1")
    assert ledger.speculative_wasted == 50
    assert ledger.speculative_allocated == 50


def test_discard_natural_not_wasted():
    ledger = MemoryLedger()
    ledger.allocate("n1", 50, speculative=False)
    ledger.discard("n1")
    assert ledger.speculative_wasted == 0


def test_peak_tracks_high_water_mark():
    ledger = MemoryLedger()
    ledger.allocate("a", 100, False)
    ledger.allocate("b", 100, False)
    ledger.commit("a")
    ledger.allocate("c", 10, False)
    assert ledger.peak_bytes == 200
    assert ledger.live_bytes == 110


def test_reallocate_same_owner_replaces():
    ledger = MemoryLedger()
    ledger.allocate("t", 100, False)
    ledger.allocate("t", 40, False)
    assert ledger.live_bytes == 40
    assert ledger.total_allocated == 140


def test_release_unknown_owner_is_noop():
    ledger = MemoryLedger()
    ledger.commit("ghost")
    ledger.discard("ghost")
    assert ledger.live_bytes == 0


def test_summary_keys():
    ledger = MemoryLedger()
    s = ledger.summary()
    assert set(s) == {
        "live_bytes", "peak_bytes", "total_allocated",
        "speculative_allocated", "speculative_wasted",
    }

"""Unit tests for the replay machinery: schedule extraction, cascade
accounting, config reconstruction and director divergence bookkeeping.

End-to-end record→replay runs live in tests/integration/test_replay.py;
these tests exercise the pure pieces on synthetic event streams.
"""

import pytest

from repro.errors import ReplayDivergence, ReplayError
from repro.sre.replay import (
    CascadeSummary,
    ReplayDirector,
    config_from_header,
    decision_signature,
    extract_schedule,
    render_diff,
)


def _ev(kind, seq, **kw):
    return {"kind": kind, "seq": seq, "t": float(seq), **kw}


_ROLLBACK_RUN = [
    _ev("task_spawn", 1, task="count:0"),
    _ev("spec_predict", 2, version=1, index=1),
    _ev("spec_launch", 3, version=1, index=1),
    _ev("check_fail", 4, version=1, index=8, error=0.5),
    _ev("destroy_signal", 5, version=1),
    _ev("rollback_done", 6, version=1, tasks_destroyed=7,
        buffer_discarded=3, wasted_us=120.0),
    _ev("spec_launch", 7, version=2, index=8, reused=True),
    _ev("check_pass", 8, version=2, index=16, error=0.001),
    _ev("check_pass", 9, version=2, error=0.0, final=True),
    _ev("spec_commit", 10, version=2, lifetime_us=500.0),
    _ev("run_result", 11, outcome="commit", compressed_bits=4096,
        output_sha256="ab" * 32),
]


def test_extract_schedule_gate_kinds_and_order():
    sched = extract_schedule(_ROLLBACK_RUN)
    assert [g.kind for g in sched.gates] == [
        "predict", "launch", "verdict", "respec", "verdict", "final_verdict"]
    assert [g.pos for g in sched.gates] == list(range(6))
    assert sched.gates[2].outcome == "fail"
    assert sched.gates[2].error == 0.5
    assert sched.gates[-1].kind == "final_verdict"
    assert sched.outcome == "commit"
    assert sched.commit_version == 2
    assert sched.run_result["output_sha256"] == "ab" * 32
    assert len(sched) == 6


def test_extract_schedule_skips_worker_clock_events():
    events = [_ev("spec_predict", 2, version=1, index=1, clock="worker")]
    assert len(extract_schedule(events)) == 0


def test_decision_signature_ignores_timing_fields():
    a = decision_signature(_ROLLBACK_RUN)
    # same decisions, different seqs/times/footprints → equal signature
    shifted = [dict(e, seq=e["seq"] + 100, t=e["t"] * 7) for e in _ROLLBACK_RUN]
    shifted[5]["tasks_destroyed"] = 99
    assert decision_signature(shifted) == a
    # a flipped verdict → different signature
    flipped = [dict(e) for e in _ROLLBACK_RUN]
    flipped[7]["kind"] = "check_fail"
    assert decision_signature(flipped) != a


def test_cascade_summary_counts():
    s = CascadeSummary.from_events(_ROLLBACK_RUN + [
        _ev("shm_release", 12, reason="rollback", nbytes=4096),
        _ev("shm_release", 13, reason="commit", nbytes=1),
        _ev("worker_crash", 14, worker=0),
        _ev("task_retry", 15, task="x"),
        _ev("task_steal", 16, task="y", worker=1, from_worker=0),
    ])
    assert s.speculations == 2  # predict + reused launch
    assert s.checks_passed == 2 and s.checks_failed == 1
    assert s.rollbacks == 1
    assert s.tasks_destroyed == 7 and s.buffer_discarded == 3
    assert s.wasted_us == 120.0
    assert s.shm_rollback_bytes == 4096  # commit-release excluded
    assert s.worker_crashes == 1 and s.task_retries == 1 and s.steals == 1
    assert s.commits == 1 and s.recomputes == 0
    assert s.outcome == "commit"
    assert s.compressed_bits == 4096
    assert s.output_sha256 == "ab" * 32


def test_render_diff_shows_delta_and_truncates_digests():
    a = CascadeSummary(rollbacks=1, wasted_us=100.0, output_sha256="a" * 64)
    b = CascadeSummary(rollbacks=3, wasted_us=250.0, output_sha256="b" * 64)
    text = render_diff(a, b)
    assert "recorded" in text and "counterfactual" in text
    assert "+2" in text      # rollbacks delta
    assert "+150" in text    # wasted µs delta
    assert "a" * 64 not in text  # digests truncated for the table
    assert "≠" in text       # non-numeric mismatch marker


def test_config_from_header_requires_run_config():
    with pytest.raises(ReplayError, match="run_config"):
        config_from_header({"kind": "log_header"})
    with pytest.raises(ReplayError, match="run_config"):
        config_from_header(None)


def test_config_from_header_rejects_custom_workload():
    header = {"meta": {"run_config": {"workload": "custom"}}}
    with pytest.raises(ReplayError, match="raw-bytes"):
        config_from_header(header)


def test_config_from_header_applies_overrides_and_redirects_outputs():
    header = {"meta": {"run_config": {
        "workload": "txt", "n_blocks": 16, "policy": "balanced",
        "tolerance": 0.01, "trace": True, "metrics_out": "m.prom"}}}
    cfg = config_from_header(header, overrides={"policy": "aggressive",
                                                "tolerance": None})
    assert cfg.policy == "aggressive"
    assert cfg.tolerance == 0.01     # None override ignored
    assert cfg.trace is False        # side outputs redirected
    assert cfg.metrics_out is None
    assert cfg.events is True


def test_director_finish_names_first_unconsumed_gate():
    sched = extract_schedule(_ROLLBACK_RUN)
    director = ReplayDirector(sched)
    with pytest.raises(ReplayDivergence) as exc:
        director.finish()
    assert exc.value.seq == 2        # the spec_predict event's seq
    assert "never reached" in str(exc.value)


def test_director_recorded_divergence_wins_over_unconsumed():
    director = ReplayDirector(extract_schedule(_ROLLBACK_RUN))
    director._note("error drifted", 4)
    with pytest.raises(ReplayDivergence) as exc:
        director.finish()
    assert exc.value.seq == 4
    assert "error drifted" in str(exc.value)


def test_director_first_divergence_is_kept():
    director = ReplayDirector(extract_schedule(_ROLLBACK_RUN))
    director._note("first", 4)
    director._note("second", 8)
    assert director.divergence.seq == 4


def test_director_refuses_second_speculation_domain():
    director = ReplayDirector(extract_schedule(_ROLLBACK_RUN))
    director.bind(object())
    with pytest.raises(ReplayError, match="one speculation domain"):
        director.bind(object())


def test_empty_schedule_finishes_clean():
    director = ReplayDirector(extract_schedule([]))
    director.finish()  # nothing recorded, nothing owed

"""Unit tests for the ready queue's dispatch ordering."""

from repro.sre.queues import ReadyQueue
from repro.sre.task import Task


def _ready(name, depth=0, control=False):
    t = Task(name, lambda: 1, depth=depth, control=control)
    t.mark_ready(0.0)
    return t


def test_fcfs_within_equal_depth():
    q = ReadyQueue()
    a, b = _ready("a", depth=2), _ready("b", depth=2)
    q.push(a)
    q.push(b)
    assert q.pop() is a
    assert q.pop() is b


def test_depth_favoured():
    q = ReadyQueue()
    shallow, deep = _ready("s", depth=0), _ready("d", depth=4)
    q.push(shallow)
    q.push(deep)
    assert q.pop() is deep


def test_control_beats_depth():
    q = ReadyQueue()
    deep = _ready("deep", depth=10)
    ctl = _ready("ctl", depth=0, control=True)
    q.push(deep)
    q.push(ctl)
    assert q.pop() is ctl


def test_control_first_disabled():
    q = ReadyQueue(control_first=False)
    deep = _ready("deep", depth=10)
    ctl = _ready("ctl", depth=0, control=True)
    q.push(deep)
    q.push(ctl)
    assert q.pop() is deep


def test_pure_fcfs_mode_ignores_depth():
    q = ReadyQueue(depth_first=False)
    first, deep = _ready("first", depth=0), _ready("deep", depth=9)
    q.push(first)
    q.push(deep)
    assert q.pop() is first


def test_pop_empty_returns_none():
    assert ReadyQueue().pop() is None
    assert ReadyQueue().peek() is None


def test_aborted_tasks_are_skipped():
    q = ReadyQueue()
    a, b = _ready("a"), _ready("b")
    q.push(a)
    q.push(b)
    a.request_abort()
    q.discard_aborted(a)
    assert len(q) == 1
    assert q.pop() is b
    assert q.pop() is None


def test_peek_does_not_remove():
    q = ReadyQueue()
    a = _ready("a")
    q.push(a)
    assert q.peek() is a
    assert len(q) == 1
    assert q.pop() is a


def test_len_tracks_live_entries():
    q = ReadyQueue()
    tasks = [_ready(f"t{i}") for i in range(5)]
    for t in tasks:
        q.push(t)
    assert len(q) == 5
    q.pop()
    assert len(q) == 4


def test_aborted_heap_head_skimmed_by_peek():
    """Aborting the heap head leaves a stale entry; peek must skim past it
    without disturbing the live count."""
    q = ReadyQueue()
    head = _ready("head", depth=9)  # highest priority: sits at the heap top
    rest = _ready("rest", depth=0)
    q.push(head)
    q.push(rest)
    head.request_abort()
    q.discard_aborted(head)
    assert len(q) == 1
    assert bool(q) is True
    assert q.peek() is rest  # skim dropped the aborted head lazily
    assert len(q) == 1  # peek never changes accounting
    assert q.pop() is rest
    assert len(q) == 0
    assert bool(q) is False


def test_abort_all_queued_leaves_empty_falsy_queue():
    q = ReadyQueue()
    tasks = [_ready(f"t{i}") for i in range(4)]
    for t in tasks:
        q.push(t)
    for t in tasks:
        t.request_abort()
        q.discard_aborted(t)
    assert len(q) == 0
    assert not q
    assert q.peek() is None
    assert q.pop() is None
    assert len(q) == 0  # popping an all-stale heap must not go negative


def test_interleaved_aborts_keep_len_consistent():
    q = ReadyQueue()
    a, b, c = _ready("a", depth=3), _ready("b", depth=2), _ready("c", depth=1)
    for t in (a, b, c):
        q.push(t)
    b.request_abort()
    q.discard_aborted(b)
    assert len(q) == 2
    assert q.pop() is a
    assert len(q) == 1
    c.request_abort()
    q.discard_aborted(c)
    assert len(q) == 0 and not q
    assert q.pop() is None
    # a fresh push after full drain restores normal service
    d = _ready("d")
    q.push(d)
    assert len(q) == 1 and q.pop() is d


def test_snapshot_only_ready():
    q = ReadyQueue()
    a, b = _ready("a"), _ready("b")
    q.push(a)
    q.push(b)
    b.request_abort()
    q.discard_aborted(b)
    assert [t.name for t in q.snapshot()] == ["a"]


def test_discard_after_pop_does_not_go_negative():
    """Regression: a READY task popped (e.g. parked for DMA staging) and
    only then aborted must not be double-discounted — len() went negative,
    which the queue-depth gauges turned into a ValueError mid-run."""
    q = ReadyQueue()
    a = _ready("a")
    q.push(a)
    assert q.pop() is a          # dispatched, but still state READY
    q.discard_aborted(a)         # abort lands after the pop
    assert len(q) == 0
    # and the accounting still balances for subsequent traffic
    b = _ready("b")
    q.push(b)
    assert len(q) == 1 and q.pop() is b and len(q) == 0


def test_discard_aborted_is_idempotent():
    q = ReadyQueue()
    a = _ready("a")
    q.push(a)
    q.discard_aborted(a)
    q.discard_aborted(a)
    assert len(q) == 0

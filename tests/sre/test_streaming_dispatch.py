"""Streaming dispatch on the process pool: per-payload completion,
per-payload wall attribution, and work-stealing deques.

This is the head-of-line regression suite. Before replies streamed one
per payload, a batch's fast members waited on its slowest member twice
over: their *replies* were held until the whole batch resolved, and the
backlog claimed into the seat's batch was pinned there even while other
seats idled. The tests here fail (by hanging into their waits) against
whole-batch dispatch.

Task functions are module-level so payloads pickle and genuinely ship;
cross-process rendezvous uses files, as in test_executor_procs.py.
"""

import os
import time
from functools import partial

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sre.executor_procs import ProcessExecutor, _Claimed
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState

pytestmark = [pytest.mark.procs, pytest.mark.threaded]


def _identity(i):
    return {"out": i}


def _sleep_identity(seconds, i):
    time.sleep(seconds)
    return {"out": i}


def _touch_then_wait(touch_path, wait_path, timeout_s=20.0):
    """Signal 'started' by creating touch_path, then block on wait_path."""
    with open(touch_path, "w") as fh:
        fh.write("started")
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(wait_path):
        if time.monotonic() > deadline:
            return {"out": "timeout"}
        time.sleep(0.005)
    return {"out": "released"}


def _wait_until(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


# ---------------------------------------------------------------------------
# head-of-line: a fast batch-mate completes while a slow member runs
# ---------------------------------------------------------------------------

def test_fast_batch_mate_completes_while_slow_member_still_runs(tmp_path):
    """The regression itself: 'fast' and 'slow' share one pipe message on
    the only seat; 'fast' executes first and its reply must complete it
    while 'slow' is still inside its body. Whole-batch replies hold the
    fast result hostage and this test times out."""
    started = tmp_path / "started"
    release = tmp_path / "release"
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    fast = rt.add_task(Task("fast", partial(_identity, 1)))
    slow = rt.add_task(
        Task("slow", partial(_touch_then_wait, str(started), str(release))))
    ex.start()
    ex.close_input()
    assert _wait_until(started.exists)  # the slow body is executing
    assert ex.batches >= 1              # ...so both rode one pipe message
    assert _wait_until(lambda: fast.state is TaskState.DONE)
    assert slow.state is TaskState.RUNNING  # still held by the worker
    release.write_text("go")
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    assert fast.outputs == {"out": 1}
    assert slow.outputs == {"out": "released"}


def test_wall_time_is_attributed_per_payload():
    """``exec_task_wall_us`` stamps each payload with its *own* send→reply
    time: a fast rider batched ahead of a sleeping mate must not inherit
    the sleeper's wall clock."""
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=1)
    rt.add_task(Task("fast", partial(_identity, 1), kind="rider"))
    rt.add_task(Task("slow", partial(_sleep_identity, 0.5, 2), kind="sleeper"))
    ex.run(timeout=60.0)
    assert ex.batches >= 1  # both genuinely shared a pipe message
    hist = rt.metrics.histogram("exec_task_wall_us", labelnames=("kind",))
    rider_us = hist.labels(kind="rider").sum()
    sleeper_us = hist.labels(kind="sleeper").sum()
    assert sleeper_us >= 400_000  # the sleeper owns its 0.5 s
    assert rider_us < sleeper_us / 4  # the rider does not


# ---------------------------------------------------------------------------
# work stealing: idle seats drain a straggler's deque
# ---------------------------------------------------------------------------

def test_idle_seat_steals_backlog_from_straggling_seat(tmp_path):
    """Seat B blocks on its own gated head; seat A blocks on a gated head
    with a backlog of fast payloads claimed into its deque. Releasing B
    leaves it idle with empty queues, so it must steal A's backlog and
    finish it while A's gate is still closed."""
    start_b, gate_b = tmp_path / "start_b", tmp_path / "gate_b"
    start_a, gate_a = tmp_path / "start_a", tmp_path / "gate_a"
    registry = MetricsRegistry()
    events = EventLog("steal-test")
    rt = Runtime(metrics=registry, events=events)
    ex = ProcessExecutor(rt, workers=2)
    ex.start()
    # Occupy one seat first, so the wave below is claimed by the other.
    ex.submit(rt.add_task, Task(
        "slow_b", partial(_touch_then_wait, str(start_b), str(gate_b))))
    assert _wait_until(start_b.exists)
    fasts = []

    def _add_wave():
        rt.add_task(Task(
            "slow_a", partial(_touch_then_wait, str(start_a), str(gate_a))))
        for i in range(20):
            fasts.append(rt.add_task(Task(f"f{i}", partial(_identity, i))))

    ex.submit(_add_wave)  # one lock hold: only the idle seat can claim it
    assert _wait_until(start_a.exists)  # seat A's head is executing
    gate_b.write_text("go")  # seat B drains the queue, goes idle, steals
    assert _wait_until(lambda: registry.value("procs_tasks_stolen") > 0)
    # Stolen work completes while the straggler is still gated: only a
    # theft can finish a payload claimed behind slow_a's closed gate.
    assert _wait_until(
        lambda: any(t.state is TaskState.DONE for t in fasts))
    assert not gate_a.exists()
    gate_a.write_text("go")
    ex.close_input()
    assert ex.wait_idle(timeout=60.0)
    ex.shutdown()
    assert {t.outputs["out"] for t in fasts} == set(range(20))
    steals = [e for e in events.events() if e["kind"] == "task_steal"]
    assert steals
    assert registry.value("procs_tasks_stolen") == len(steals)
    assert all(e["worker"] != e["from_worker"] for e in steals)
    # Each theft is causally rooted in the victim's dispatch_stream.
    streams = {e["seq"] for e in events.events()
               if e["kind"] == "dispatch_stream"}
    assert all(e.get("cause") in streams for e in steals)


def test_acquire_work_steals_half_only_when_enabled():
    """White-box: an idle seat with empty queues steals ⌈half⌉ of the
    deepest victim deque (order preserved) — unless ``steal=False``."""
    for steal in (True, False):
        registry = MetricsRegistry()
        events = EventLog("steal-unit")
        rt = Runtime(metrics=registry, events=events)
        ex = ProcessExecutor(rt, workers=2, steal=steal)
        for i in range(5):
            rt.add_task(Task(f"t{i}", partial(_identity, i)))
        with ex._cond:
            head = ex._acquire_work(1)  # seat 1 takes t0, marks itself busy
            ex._busy[0] = True  # no idle seat: the claim sweeps the queue
            shippable, inline, failed = ex._take_extras(1)
            ex._deques[1].extend(shippable)
            ex._busy[0] = False
            assert head.name == "t0" and not inline and not failed
            assert [t.name for t, _ in ex._deques[1]] == [
                "t1", "t2", "t3", "t4"]
            got = ex._acquire_work(0)
        if steal:
            assert isinstance(got, _Claimed) and got.task.name == "t3"
            assert [t.name for t, _ in ex._deques[0]] == ["t4"]
            assert [t.name for t, _ in ex._deques[1]] == ["t1", "t2"]
            assert registry.value("procs_tasks_stolen") == 2
            kinds = [e["kind"] for e in events.events()]
            assert kinds.count("task_steal") == 2
        else:
            assert got is None
            assert len(ex._deques[1]) == 4
            assert registry.value("procs_tasks_stolen") == 0


# ---------------------------------------------------------------------------
# the batching guard counts idle *seats*, not n_workers - inflight tasks
# ---------------------------------------------------------------------------

def test_extras_leave_one_task_per_idle_seat():
    """Regression: the old guard compared the queue depth against
    ``n_workers - inflight``, where inflight counts *tasks* — one batch
    of extras drove it negative and the claim swept the whole queue,
    starving every idle seat. The fixed guard counts idle seats."""
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=3)
    for i in range(6):
        rt.add_task(Task(f"t{i}", partial(_identity, i)))
    with ex._cond:
        primary = ex._acquire_work(0)
        shippable, inline, failed = ex._take_extras(0)
    assert primary.name == "t0" and not inline and not failed
    # 5 queued, 2 idle seats: claim exactly 3, leave one per idle seat.
    assert [t.name for t, _ in shippable] == ["t1", "t2", "t3"]
    assert len(rt.natural_queue) == 2


def test_idle_seats_counts_seats_not_inflight_tasks():
    rt = Runtime()
    ex = ProcessExecutor(rt, workers=2)
    ex._busy[0] = True
    ex._inflight = 5  # one seat holding a deep batch
    # n_workers - inflight would answer -3 here; there is one idle seat.
    assert ex._idle_seats() == 1

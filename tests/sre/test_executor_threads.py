"""Unit tests for the threaded executor (real threads, wall clock)."""

import threading
import time

import pytest

from repro.errors import SchedulingError
from repro.sre.executor_threads import ThreadedExecutor
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState

pytestmark = pytest.mark.threaded


def test_runs_all_tasks():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=2)
    results = []
    lock = threading.Lock()

    def work(i):
        with lock:
            results.append(i)
        return {"out": i}

    for i in range(10):
        rt.add_task(Task(f"t{i}", lambda i=i: work(i)))
    ex.run(timeout=10.0)
    assert sorted(results) == list(range(10))


def test_dataflow_chain_executes_in_order():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=3)
    a = rt.add_task(Task("a", lambda: {"out": 5}))
    b = rt.add_task(Task("b", lambda x: {"out": x * 2}, inputs=("x",)))
    rt.connect(a, "out", b, "x")
    ex.run(timeout=10.0)
    assert b.outputs == {"out": 10}


def test_external_delivery_while_running():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=2)
    t = rt.add_task(Task("t", lambda x: {"out": x + 1}, inputs=("x",)))
    ex.start()
    ex.deliver(t, "x", 41)
    ex.close_input()
    assert ex.wait_idle(timeout=10.0)
    ex.shutdown()
    assert t.outputs == {"out": 42}


def test_wait_idle_times_out_when_input_open():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=1)
    ex.start()
    assert ex.wait_idle(timeout=0.2) is False  # input never closed
    ex.close_input()
    assert ex.wait_idle(timeout=5.0)
    ex.shutdown()


def test_deliver_after_close_input_raises():
    """Post-close delivery could race wait_idle into declaring the run
    drained while work is still arriving — it must be rejected loudly."""
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=1)
    t = rt.add_task(Task("t", lambda x: {"out": x + 1}, inputs=("x",)))
    ex.start()
    ex.close_input()
    with pytest.raises(SchedulingError):
        ex.deliver(t, "x", 41)
    assert ex.wait_idle(timeout=5.0)
    ex.shutdown()
    assert t.state is TaskState.BLOCKED  # the late input never landed


def test_task_failure_reaped_and_reraised_from_run():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=2)

    def boom():
        raise ValueError("bad kernel")

    bad = rt.add_task(Task("bad", boom))
    dep = rt.add_task(Task("dep", lambda x: {"out": x}, inputs=("x",)))
    rt.connect(bad, "out", dep, "x")
    from repro.errors import TaskExecutionError
    with pytest.raises(TaskExecutionError, match="bad"):
        ex.run(timeout=10.0)
    assert bad.state is TaskState.ABORTED
    assert dep.state is TaskState.ABORTED
    assert len(ex.errors) == 1


def test_double_start_rejected():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=1)
    ex.start()
    try:
        with pytest.raises(SchedulingError):
            ex.start()
    finally:
        ex.close_input()
        ex.shutdown()


def test_workers_must_be_positive():
    with pytest.raises(SchedulingError):
        ThreadedExecutor(Runtime(), workers=0)


def test_abort_flagged_task_results_discarded():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=1)
    gate = threading.Event()
    released = threading.Event()

    def slow():
        gate.set()
        released.wait(5.0)
        return {"out": 1}

    t = rt.add_task(Task("slow", slow))
    sink_seen = []
    rt.connect_sink(t, "out", sink_seen.append)
    ex.start()
    assert gate.wait(5.0)
    ex.submit(rt.abort_task, t)  # flag while running
    released.set()
    ex.close_input()
    assert ex.wait_idle(timeout=10.0)
    ex.shutdown()
    assert t.state is TaskState.ABORTED
    assert sink_seen == []


def test_clock_is_monotonic_microseconds():
    ex = ThreadedExecutor(Runtime(), workers=1)
    a = ex.now
    time.sleep(0.01)
    assert ex.now - a >= 5_000  # at least 5 ms in µs


def test_parallel_execution_overlaps():
    rt = Runtime()
    ex = ThreadedExecutor(rt, workers=4)
    barrier = threading.Barrier(4, timeout=5.0)

    def rendezvous():
        barrier.wait()  # deadlocks unless 4 tasks run simultaneously
        return {"out": 1}

    for i in range(4):
        rt.add_task(Task(f"t{i}", rendezvous))
    ex.run(timeout=10.0)
    assert all(rt.graph.get(f"t{i}").state is TaskState.DONE for i in range(4))

"""Unit tests for the end-of-run anomaly detectors."""

import pytest

from repro.obs.anomaly import AnomalyThresholds, detect_anomalies, scan_run
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry


def _ev(kind, t, task=None, **data):
    e = {"run_id": "r", "kind": kind, "seq": t, "t": float(t)}
    if task is not None:
        e["task"] = task
    e.update(data)
    return e


def _bracket(t0=0.0, t1=1_000_000.0):
    """Span-defining bookend events (1 s run)."""
    return [_ev("run_start", t0), _ev("run_end", t1)]


# ----------------------------------------------------------------------
# mis-speculation burst
# ----------------------------------------------------------------------
def test_burst_of_destroy_signals_flags():
    events = _bracket() + [_ev("destroy_signal", t)
                           for t in (100.0, 200.0, 300.0)]
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "misspec_burst"
    assert anomaly.data["rollbacks"] == 3
    assert "tolerance/step" in anomaly.message


def test_spread_out_destroys_do_not_flag():
    # 3 rollbacks, but spread over the full second (window is 25% of span)
    events = _bracket() + [_ev("destroy_signal", t)
                           for t in (0.0, 500_000.0, 999_999.0)]
    assert detect_anomalies(events) == []


def test_fewer_than_k_destroys_never_flags():
    events = _bracket() + [_ev("destroy_signal", 100.0),
                           _ev("destroy_signal", 101.0)]
    assert detect_anomalies(events) == []


# ----------------------------------------------------------------------
# ready-queue stall
# ----------------------------------------------------------------------
def test_long_ready_to_dispatch_wait_flags_worst_task():
    events = _bracket() + [
        _ev("task_ready", 10.0, task="fast"),
        _ev("task_dispatch", 20.0, task="fast"),
        _ev("task_ready", 100.0, task="slow"),
        _ev("task_dispatch", 500_000.0, task="slow"),   # 0.5 s wait
    ]
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "ready_stall"
    assert anomaly.data["task"] == "slow"
    assert anomaly.data["wait_us"] == 499_900.0


def test_short_waits_below_floor_do_not_flag():
    # tiny run: span-based threshold would be microscopic, the absolute
    # floor (50 ms) keeps fast sims quiet
    events = [_ev("task_ready", 0.0, task="a"),
              _ev("task_dispatch", 100.0, task="a")]
    assert detect_anomalies(events) == []


def test_worker_clock_events_are_excluded_from_time_detectors():
    # worker timestamps share no epoch with the coordinator; a merged
    # batch must not fabricate a stall or distort the span
    events = _bracket() + [
        _ev("task_ready", 10.0, task="x"),
        dict(_ev("task_dispatch", 900_000.0, task="x"), clock="worker"),
    ]
    assert detect_anomalies(events) == []


# ----------------------------------------------------------------------
# payload-budget pressure
# ----------------------------------------------------------------------
def _snapshot(budget, peak):
    reg = MetricsRegistry("repro")
    reg.gauge("procs_payload_budget_bytes", "budget").set(budget)
    reg.gauge("procs_payload_max_footprint_bytes", "peak").set(peak)
    return reg.snapshot()


def test_footprint_near_budget_flags():
    (anomaly,) = detect_anomalies([], _snapshot(1000, 900))
    assert anomaly.kind == "budget_pressure"
    assert anomaly.data == {"peak_bytes": 900.0, "budget_bytes": 1000.0}


def test_footprint_well_under_budget_is_quiet():
    assert detect_anomalies([], _snapshot(1000, 500)) == []


def test_no_budget_metric_is_quiet():
    assert detect_anomalies([], MetricsRegistry("repro").snapshot()) == []


def test_thresholds_are_tunable():
    th = AnomalyThresholds(budget_frac=0.4)
    (anomaly,) = detect_anomalies([], _snapshot(1000, 500), thresholds=th)
    assert anomaly.kind == "budget_pressure"


# ----------------------------------------------------------------------
# worker churn / harvest loss
# ----------------------------------------------------------------------
def test_worker_crash_flags_churn_with_recovery_tally():
    events = _bracket() + [
        _ev("worker_crash", 100, worker=0, reason="crash"),
        _ev("worker_crash", 200, worker=1, reason="hang"),
        _ev("worker_respawn", 110, worker=0),
        _ev("task_quarantine", 300, task="t"),
        _ev("worker_degraded", 400, worker=1),
    ]
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "worker_churn"
    assert anomaly.data["crashes"] == 2
    assert anomaly.data["causes"] == {"crash": 1, "hang": 1}
    assert anomaly.data["respawns"] == 1
    assert anomaly.data["quarantined"] == 1
    assert anomaly.data["degraded"] == 1
    assert "supervisor" in anomaly.message


def test_no_crashes_is_quiet():
    events = _bracket() + [_ev("worker_respawn", 100, worker=0)]
    assert detect_anomalies(events) == []


def test_crash_threshold_is_tunable():
    events = _bracket() + [_ev("worker_crash", 100, worker=0, reason="crash")]
    th = AnomalyThresholds(crash_k=2)
    assert detect_anomalies(events, thresholds=th) == []


def test_harvest_loss_flags():
    events = _bracket() + [
        _ev("worker_harvest_lost", 900, worker=1, reason="timeout")]
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "harvest_loss"
    assert anomaly.data["workers"] == [1]
    assert "under-report" in anomaly.message


def test_degraded_harvest_is_not_a_harvest_loss():
    # a degraded seat has no pipe by design: its shutdown bookkeeping entry
    # must not trip the harvest detector on top of the churn detector
    events = _bracket() + [
        _ev("worker_harvest_lost", 900, worker=1, reason="degraded")]
    assert detect_anomalies(events) == []


# ----------------------------------------------------------------------
# straggling seat (work stealing)
# ----------------------------------------------------------------------
def _steals(n, victim=0):
    return [_ev("task_steal", 100 + i, task=f"t{i}", worker=1,
                from_worker=victim) for i in range(n)]


def test_repeated_steals_from_one_seat_flag_straggler():
    events = _bracket() + _steals(4)
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "straggler"
    assert anomaly.data["worker"] == 0
    assert anomaly.data["stolen_from"] == 4
    assert anomaly.data["steals"] == 4
    assert "stealing" in anomaly.message


def test_steals_below_threshold_are_quiet():
    assert detect_anomalies(_bracket() + _steals(3)) == []


def test_steals_spread_across_victims_do_not_flag():
    # 6 steals, but no single victim loses steal_k payloads
    events = _bracket() + _steals(2, victim=0) + _steals(2, victim=1) \
        + _steals(2, victim=2)
    assert detect_anomalies(events) == []


def test_steal_threshold_is_tunable():
    th = AnomalyThresholds(steal_k=1)
    (anomaly,) = detect_anomalies(_bracket() + _steals(1), thresholds=th)
    assert anomaly.kind == "straggler"


# ----------------------------------------------------------------------
# breaker flap (serve daemon event logs)
# ----------------------------------------------------------------------
def _opens(times, tenant="alice"):
    return [_ev("breaker_open", t, tenant=tenant) for t in times]


def test_breaker_flap_flags_tight_burst():
    events = _bracket(0.0, 120e6) + _opens([1e6, 2e6, 3e6])
    (anomaly,) = detect_anomalies(events)
    assert anomaly.kind == "breaker_flap"
    assert anomaly.data["tenant"] == "alice"
    assert anomaly.data["opens"] == 3
    assert anomaly.data["burst_us"] == pytest.approx(2e6)
    assert "crash-looping" in anomaly.message


def test_breaker_opens_spread_past_window_are_quiet():
    # 3 opens but 70 s apart pairwise: no 60 s window holds all three
    events = _bracket(0.0, 300e6) + _opens([0.0, 70e6, 140e6])
    assert detect_anomalies(events) == []


def test_breaker_opens_split_across_tenants_are_quiet():
    events = _bracket(0.0, 120e6) \
        + _opens([1e6, 2e6]) + _opens([1e6, 2e6], tenant="bob")
    assert detect_anomalies(events) == []


def test_breaker_flap_reports_worst_tenant():
    events = _bracket(0.0, 120e6) \
        + _opens([1e6, 2e6, 3e6]) \
        + _opens([1e6, 2e6, 3e6, 4e6], tenant="bob")
    (anomaly,) = detect_anomalies(events)
    assert anomaly.data["tenant"] == "bob"
    assert anomaly.data["opens"] == 4


def test_breaker_flap_thresholds_are_tunable():
    events = _bracket(0.0, 120e6) + _opens([1e6, 2e6])
    assert detect_anomalies(events) == []
    th = AnomalyThresholds(flap_k=2)
    (anomaly,) = detect_anomalies(events, thresholds=th)
    assert anomaly.kind == "breaker_flap"


# ----------------------------------------------------------------------
# scan_run
# ----------------------------------------------------------------------
def test_scan_run_emits_anomaly_events_and_returns_warnings():
    log = EventLog("r")
    log.set_clock(iter([0.0, 100.0, 200.0, 300.0, 1_000_000.0,
                        1_000_001.0]).__next__)
    for _ in range(4):
        log.emit("destroy_signal")
    log.emit("run_end")
    warnings = scan_run(log)
    assert len(warnings) == 1 and warnings[0].startswith("misspec_burst:")
    kinds = [e["kind"] for e in log.events()]
    assert kinds[-1] == "anomaly_misspec_burst"


def test_scan_run_on_disabled_log_is_empty():
    assert scan_run(EventLog("r", enabled=False)) == []

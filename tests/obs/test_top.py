"""Unit tests for the `repro top` dashboard."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import (
    derive_serve_stats,
    derive_stats,
    render_frame,
    render_serve_frame,
    run_top,
    sample_snapshot,
)


def _doc(*, blocks=10, tasks=40, passes=3, fails=1, meta=None):
    reg = MetricsRegistry("repro")
    reg.counter("blocks_committed", "blocks").inc(blocks)
    reg.counter("sre_tasks_completed", "tasks").inc(tasks)
    checks = reg.counter("spec_checks", "checks", labelnames=("verdict",))
    checks.labels(verdict="pass").inc(passes)
    checks.labels(verdict="fail").inc(fails)
    depth = reg.gauge("sre_ready_depth", "ready", labelnames=("queue",))
    depth.labels(queue="natural").set(2)
    depth.labels(queue="speculative").set(1)
    reg.counter("spec_rollbacks", "rollbacks").inc(fails)
    reg.counter("spec_commits", "commits").inc(passes)
    reg.gauge("shm_bytes_resident", "shm").set(8192)
    reg.gauge("shm_segments", "segs").set(1)
    doc = dict(reg.snapshot())
    if meta is not None:
        doc["meta"] = meta
    return doc


def test_derive_stats_pulls_dashboard_quantities():
    stats = derive_stats(_doc())
    assert stats["blocks_committed"] == 10
    assert stats["tasks_completed"] == 40
    assert stats["ready_natural"] == 2 and stats["ready_spec"] == 1
    assert stats["spec_hit_rate"] == pytest.approx(0.75)
    assert stats["rollbacks"] == 1 and stats["commits"] == 3
    assert stats["shm_resident"] == 8192 and stats["shm_segments"] == 1


def test_derive_stats_with_no_checks_has_no_hit_rate():
    assert derive_stats({"metrics": []})["spec_hit_rate"] is None


def test_render_frame_totals_and_meta_label():
    text = render_frame(_doc(meta={"workload": "txt", "executor": "procs",
                                   "transport": "shm"}), path="x.json")
    assert "repro top — x.json  [txt procs shm]" in text
    assert "10 blocks committed" in text
    assert "75.0% (3/4)" in text
    assert "nat 2 / spec 1" in text
    assert "8 KiB (1 segment(s))" in text


def test_render_frame_throughput_delta_between_polls():
    prev = _doc(blocks=10, tasks=40)
    cur = _doc(blocks=30, tasks=80)
    text = render_frame(cur, prev, dt_s=2.0)
    assert "10.0 blocks/s" in text
    assert "20.0 tasks/s" in text


def test_sample_snapshot_tolerates_missing_and_partial_files(tmp_path):
    assert sample_snapshot(str(tmp_path / "absent.json")) is None
    partial = tmp_path / "partial.json"
    partial.write_text('{"metrics": [')
    assert sample_snapshot(str(partial)) is None


def test_run_top_once_prints_single_frame(tmp_path, capsys):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_doc()))
    assert run_top(str(path), once=True) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "10 blocks committed" in out


def test_run_top_once_raises_when_no_snapshot_appears(tmp_path, monkeypatch):
    import time as time_mod
    # collapse the 5 s grace wait so the test is instant
    clock = iter([0.0, 10.0, 20.0])
    monkeypatch.setattr(time_mod, "monotonic", lambda: next(clock))
    monkeypatch.setattr(time_mod, "sleep", lambda _s: None)
    with pytest.raises(ObservabilityError):
        run_top(str(tmp_path / "never.json"), once=True)


def test_run_top_loop_bounded_by_max_frames(tmp_path, capsys, monkeypatch):
    import time as time_mod
    monkeypatch.setattr(time_mod, "sleep", lambda _s: None)
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_doc(blocks=10)))
    assert run_top(str(path), max_frames=2, interval_s=0.0) == 0
    out = capsys.readouterr().out
    # second frame switches from totals to throughput deltas
    assert out.count("repro top") == 2
    assert "throughput" in out


# ----------------------------------------------------------------------
# serve-side stats (daemon snapshots and the live `--serve` dashboard)
# ----------------------------------------------------------------------
def _serve_doc(*, done=3, failed=1, rejected=2, opens=0):
    reg = MetricsRegistry("serve")
    sub = reg.counter("serve_jobs_submitted", "jobs",
                      labelnames=("tenant", "app"))
    sub.labels(tenant="alice", app="huffman").inc(done + failed)
    fin = reg.counter("serve_jobs_finished", "finished",
                      labelnames=("tenant", "app", "state"))
    fin.labels(tenant="alice", app="huffman", state="done").inc(done)
    fin.labels(tenant="alice", app="huffman", state="failed").inc(failed)
    rej = reg.counter("serve_jobs_rejected", "rejected",
                      labelnames=("tenant", "reason"))
    rej.labels(tenant="alice", reason="queue_full").inc(rejected)
    if opens:
        reg.counter("serve_breaker_opens", "opens",
                    labelnames=("tenant",)).labels(tenant="alice").inc(opens)
    stage = reg.histogram("serve_job_stage_us", "stage latency",
                          labelnames=("stage", "tenant"),
                          buckets=(100.0, 1_000.0, 10_000.0))
    for _ in range(10):
        stage.labels(stage="execute", tenant="alice").observe(500.0)
    return dict(reg.snapshot())


def test_derive_serve_stats_none_without_serve_series():
    assert derive_serve_stats(_doc()) is None
    assert derive_serve_stats({"metrics": []}) is None


def test_derive_serve_stats_tenant_and_stage_rollups():
    serve = derive_serve_stats(_serve_doc(done=3, failed=1, rejected=2,
                                          opens=4))
    assert serve["tenants"]["alice"] == {
        "submitted": 4.0, "done": 3.0, "failed": 1.0, "rejected": 2.0}
    assert serve["breaker_opens"] == 4.0
    pct = serve["stages"][("alice", "execute")]
    assert pct["count"] == 10.0
    # all 10 observations landed in the (100, 1000] bucket
    assert 100.0 < pct["p50"] <= 1_000.0
    assert 100.0 < pct["p95"] <= 1_000.0


def test_derive_stats_surfaces_serve_slice():
    stats = derive_stats(_serve_doc())
    assert stats["serve"]["tenants"]["alice"]["done"] == 3.0
    assert "serve" not in derive_stats(_doc())


def test_render_frame_appends_serve_lines_for_daemon_snapshots():
    text = render_frame(_serve_doc(opens=2), path="serve.metrics.json")
    assert "serve [alice]  submitted 4  done 3  failed 1  rejected 2" in text
    assert "alice/execute" in text and "p95" in text
    assert "serve breaker opens 2" in text


def _stats_reply(**kw):
    return {
        "uptime_s": 12.5,
        "jobs": {"done": 3, "failed": 1},
        "metrics": _serve_doc(),
        "admission": {"tenants": {"alice": {"breaker": "open"}}},
        "lanes": [{"tenant": "alice", "workers": 2, "in_use": True,
                   "jobs_served": 5},
                  {"tenant": "bob", "workers": 2, "in_use": False,
                   "jobs_served": 1}],
        "store": {"live_refs": 4, "live_segments": 2},
        "warnings": [],
        **kw,
    }


def test_render_serve_frame_shows_tenants_lanes_and_percentiles():
    text = render_serve_frame(_stats_reply(), target="127.0.0.1:7070")
    assert "repro top — serve 127.0.0.1:7070  up 12s" in text
    assert "jobs         done 3  failed 1" in text
    assert "tenant alice" in text and "done 3" in text
    assert "breaker open" in text
    assert "lanes        1/2 in use" in text
    assert "[alice:2w* 5j]" in text
    assert "store        refs 4  segments 2" in text
    assert "stage alice/execute" in text and "p50" in text


def test_render_serve_frame_rate_deltas_and_warnings():
    prev = _stats_reply()
    cur = _stats_reply(metrics=_serve_doc(done=7),
                       warnings=["breaker_flap: tenant 'alice' ..."])
    text = render_serve_frame(cur, prev, dt_s=2.0)
    assert "rate  2.00 jobs/s" in text
    assert "!! breaker_flap" in text


def test_render_serve_frame_tolerates_empty_daemon():
    # a daemon polled before its first job: no metrics series, no lanes
    text = render_serve_frame({"uptime_s": 0.0, "jobs": {},
                               "metrics": {"metrics": []}})
    assert "jobs         none yet" in text
    assert "lanes        0/0 in use" in text

"""Unit tests for the `repro top` dashboard."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.top import derive_stats, render_frame, run_top, sample_snapshot


def _doc(*, blocks=10, tasks=40, passes=3, fails=1, meta=None):
    reg = MetricsRegistry("repro")
    reg.counter("blocks_committed", "blocks").inc(blocks)
    reg.counter("sre_tasks_completed", "tasks").inc(tasks)
    checks = reg.counter("spec_checks", "checks", labelnames=("verdict",))
    checks.labels(verdict="pass").inc(passes)
    checks.labels(verdict="fail").inc(fails)
    depth = reg.gauge("sre_ready_depth", "ready", labelnames=("queue",))
    depth.labels(queue="natural").set(2)
    depth.labels(queue="speculative").set(1)
    reg.counter("spec_rollbacks", "rollbacks").inc(fails)
    reg.counter("spec_commits", "commits").inc(passes)
    reg.gauge("shm_bytes_resident", "shm").set(8192)
    reg.gauge("shm_segments", "segs").set(1)
    doc = dict(reg.snapshot())
    if meta is not None:
        doc["meta"] = meta
    return doc


def test_derive_stats_pulls_dashboard_quantities():
    stats = derive_stats(_doc())
    assert stats["blocks_committed"] == 10
    assert stats["tasks_completed"] == 40
    assert stats["ready_natural"] == 2 and stats["ready_spec"] == 1
    assert stats["spec_hit_rate"] == pytest.approx(0.75)
    assert stats["rollbacks"] == 1 and stats["commits"] == 3
    assert stats["shm_resident"] == 8192 and stats["shm_segments"] == 1


def test_derive_stats_with_no_checks_has_no_hit_rate():
    assert derive_stats({"metrics": []})["spec_hit_rate"] is None


def test_render_frame_totals_and_meta_label():
    text = render_frame(_doc(meta={"workload": "txt", "executor": "procs",
                                   "transport": "shm"}), path="x.json")
    assert "repro top — x.json  [txt procs shm]" in text
    assert "10 blocks committed" in text
    assert "75.0% (3/4)" in text
    assert "nat 2 / spec 1" in text
    assert "8 KiB (1 segment(s))" in text


def test_render_frame_throughput_delta_between_polls():
    prev = _doc(blocks=10, tasks=40)
    cur = _doc(blocks=30, tasks=80)
    text = render_frame(cur, prev, dt_s=2.0)
    assert "10.0 blocks/s" in text
    assert "20.0 tasks/s" in text


def test_sample_snapshot_tolerates_missing_and_partial_files(tmp_path):
    assert sample_snapshot(str(tmp_path / "absent.json")) is None
    partial = tmp_path / "partial.json"
    partial.write_text('{"metrics": [')
    assert sample_snapshot(str(partial)) is None


def test_run_top_once_prints_single_frame(tmp_path, capsys):
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_doc()))
    assert run_top(str(path), once=True) == 0
    out = capsys.readouterr().out
    assert "repro top" in out and "10 blocks committed" in out


def test_run_top_once_raises_when_no_snapshot_appears(tmp_path, monkeypatch):
    import time as time_mod
    # collapse the 5 s grace wait so the test is instant
    clock = iter([0.0, 10.0, 20.0])
    monkeypatch.setattr(time_mod, "monotonic", lambda: next(clock))
    monkeypatch.setattr(time_mod, "sleep", lambda _s: None)
    with pytest.raises(ObservabilityError):
        run_top(str(tmp_path / "never.json"), once=True)


def test_run_top_loop_bounded_by_max_frames(tmp_path, capsys, monkeypatch):
    import time as time_mod
    monkeypatch.setattr(time_mod, "sleep", lambda _s: None)
    path = tmp_path / "snap.json"
    path.write_text(json.dumps(_doc(blocks=10)))
    assert run_top(str(path), max_frames=2, interval_s=0.0) == 0
    out = capsys.readouterr().out
    # second frame switches from totals to throughput deltas
    assert out.count("repro top") == 2
    assert "throughput" in out

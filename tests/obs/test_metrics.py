"""Unit tests for the metrics instruments and registry."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    MetricsRegistry,
    merge_snapshots,
)


# ----------------------------------------------------------------------
# counters
# ----------------------------------------------------------------------
def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("hits", "hits served")
    assert c.value() == 0
    c.inc()
    c.inc(3)
    assert c.value() == 4
    assert reg.value("hits") == 4


def test_counter_rejects_negative():
    c = MetricsRegistry().counter("hits")
    with pytest.raises(ObservabilityError):
        c.inc(-1)


def test_counter_labels_are_independent_series():
    reg = MetricsRegistry()
    c = reg.counter("tasks", "tasks run", labelnames=("kind",))
    c.labels(kind="encode").inc(2)
    c.labels(kind="count").inc()
    assert reg.value("tasks", kind="encode") == 2
    assert reg.value("tasks", kind="count") == 1
    # same label set returns the same child
    assert c.labels(kind="encode") is c.labels(kind="encode")


def test_labelled_metric_rejects_default_series():
    c = MetricsRegistry().counter("tasks", labelnames=("kind",))
    with pytest.raises(ObservabilityError):
        c.inc()


def test_labels_must_match_declaration():
    c = MetricsRegistry().counter("tasks", labelnames=("kind",))
    with pytest.raises(ObservabilityError):
        c.labels(wrong="x")
    with pytest.raises(ObservabilityError):
        c.labels(kind="x", extra="y")


def test_counter_concurrent_increments_are_not_lost():
    """Per-thread sharding: 8 threads x 1000 incs must fold to exactly 8000."""
    c = MetricsRegistry().counter("hits")

    def worker():
        for _ in range(1000):
            c.inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == 8000


# ----------------------------------------------------------------------
# gauges
# ----------------------------------------------------------------------
def test_gauge_set_inc_dec():
    g = MetricsRegistry().gauge("depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value() == 2


def test_gauge_external_merge_takes_max():
    reg = MetricsRegistry()
    g = reg.gauge("inflight")
    g.set(2)
    other = MetricsRegistry()
    other.gauge("inflight").set(5)
    reg.merge_snapshot(other.snapshot())
    assert g.value() == 5
    # a later, smaller external level does not lower the reported max
    third = MetricsRegistry()
    third.gauge("inflight").set(1)
    reg.merge_snapshot(third.snapshot())
    assert g.value() == 5


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
def test_histogram_bucketing_and_moments():
    h = MetricsRegistry().histogram("svc", buckets=(10, 100))
    for v in (7, 70, 700):
        h.observe(v)
    counts, total, n = h._default_child().raw()
    assert counts == [1, 1, 1]  # <=10, <=100, +Inf
    assert total == 777
    assert n == 3
    assert h.count() == 3
    assert h.sum() == 777
    assert h.mean() == pytest.approx(259.0)


def test_histogram_boundary_value_lands_in_lower_bucket():
    h = MetricsRegistry().histogram("svc", buckets=(10, 100))
    h.observe(10)  # le="10" is inclusive, Prometheus-style
    counts, _, _ = h._default_child().raw()
    assert counts == [1, 0, 0]


def test_histogram_default_buckets():
    h = MetricsRegistry().histogram("lat")
    assert h.buckets == DEFAULT_LATENCY_BUCKETS_US


def test_histogram_rejects_non_increasing_buckets():
    reg = MetricsRegistry()
    with pytest.raises(ObservabilityError):
        reg.histogram("bad", buckets=(10, 10))
    with pytest.raises(ObservabilityError):
        reg.histogram("bad2", buckets=(5, 3))
    # empty bucket list means "use the defaults", not an error
    assert reg.histogram("dflt", buckets=()).buckets == DEFAULT_LATENCY_BUCKETS_US


def test_histogram_timer_uses_supplied_clock():
    h = MetricsRegistry().histogram("span_us", buckets=(10, 100))
    fake = iter([100.0, 170.0])
    with h.time(clock=lambda: next(fake)):
        pass
    assert h.count() == 1
    assert h.sum() == 70.0


def test_histogram_mean_empty_is_zero():
    assert MetricsRegistry().histogram("h", buckets=(1,)).mean() == 0.0


# ----------------------------------------------------------------------
# registry semantics
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("c") is reg.counter("c")
    assert reg.gauge("g") is reg.gauge("g")
    assert reg.histogram("h") is reg.histogram("h")


def test_registry_type_clash_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ObservabilityError):
        reg.gauge("x")


def test_registry_labelname_clash_raises():
    reg = MetricsRegistry()
    reg.counter("x", labelnames=("a",))
    with pytest.raises(ObservabilityError):
        reg.counter("x", labelnames=("b",))


def test_registry_introspection():
    reg = MetricsRegistry("ns")
    reg.counter("b")
    reg.gauge("a")
    assert reg.names() == ["a", "b"]
    assert "a" in reg and "zzz" not in reg
    assert reg.get("b").kind == "counter"
    with pytest.raises(ObservabilityError):
        reg.value("zzz")


def test_snapshot_is_json_able_and_detached():
    import json

    reg = MetricsRegistry("ns")
    reg.counter("c").inc(2)
    reg.histogram("h", buckets=(1, 2)).observe(1.5)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    reg.counter("c").inc(10)
    # the snapshot is a point-in-time copy, not a live view
    c_series = next(m for m in snap["metrics"] if m["name"] == "c")["series"]
    assert c_series[0]["value"] == 2


# ----------------------------------------------------------------------
# cross-registry merging
# ----------------------------------------------------------------------
def test_merge_snapshot_adds_counters_and_histograms():
    a = MetricsRegistry()
    a.counter("done", labelnames=("kind",)).labels(kind="x").inc(3)
    a.histogram("lat", buckets=(10,)).observe(5)

    b = MetricsRegistry()
    b.counter("done", labelnames=("kind",)).labels(kind="x").inc(4)
    b.counter("done", labelnames=("kind",)).labels(kind="y").inc(1)
    b.histogram("lat", buckets=(10,)).observe(50)

    a.merge_snapshot(b.snapshot())
    assert a.value("done", kind="x") == 7
    assert a.value("done", kind="y") == 1
    h = a.get("lat")
    assert h.count() == 2
    assert h.sum() == 55


def test_merge_snapshot_creates_missing_metrics():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.counter("only_in_b").inc(9)
    a.merge_snapshot(b.snapshot())
    assert a.value("only_in_b") == 9


def test_merge_snapshot_is_repeatable_accumulation():
    """Merging two worker snapshots one after the other adds both."""
    coord = MetricsRegistry()
    for amount in (2, 5):
        w = MetricsRegistry()
        w.counter("tasks").inc(amount)
        coord.merge_snapshot(w.snapshot())
    assert coord.value("tasks") == 7


def test_merge_histogram_bucket_mismatch_raises():
    a = MetricsRegistry()
    a.histogram("h", buckets=(1, 2)).observe(1)
    b = MetricsRegistry()
    b.histogram("h", buckets=(1, 2, 3)).observe(1)
    with pytest.raises(ObservabilityError):
        a.merge_snapshot(b.snapshot())


def test_merge_snapshots_pure_function():
    a = MetricsRegistry()
    a.counter("c").inc(1)
    a.gauge("g").set(2)
    b = MetricsRegistry()
    b.counter("c").inc(2)
    b.gauge("g").set(5)
    merged = merge_snapshots(a.snapshot(), b.snapshot())
    by_name = {m["name"]: m for m in merged["metrics"]}
    assert by_name["c"]["series"][0]["value"] == 3
    assert by_name["g"]["series"][0]["value"] == 5
    # inputs are untouched
    assert a.value("c") == 1 and b.value("c") == 2


# ----------------------------------------------------------------------
# the shared monotonic clock (timer default)
# ----------------------------------------------------------------------
def test_timer_default_clock_is_immune_to_wall_clock_jumps(monkeypatch):
    import time as time_mod
    from repro.obs import metrics as metrics_mod
    # Simulate an NTP step: time.time() jumps 1 hour backwards. The timer
    # must not record a negative (or hour-long) duration because its
    # default clock is MONOTONIC_CLOCK, not the wall clock.
    wall = iter([1_000_000.0, 1_000_000.0 - 3600.0])
    monkeypatch.setattr(time_mod, "time", lambda: next(wall))
    assert metrics_mod.MONOTONIC_CLOCK is time_mod.perf_counter
    reg = MetricsRegistry()
    h = reg.histogram("dur_s", buckets=(0.5, 1.0))
    with h.time():
        pass
    assert 0 <= h.sum() < 1.0
    assert h.count() == 1


def test_event_log_timestamps_share_the_timer_clock():
    # satellite: one clock threaded through events and histogram timers,
    # so a timer observation can be placed on the event timeline
    from repro.obs import metrics as metrics_mod
    from repro.obs.events import default_clock
    lo = metrics_mod.MONOTONIC_CLOCK() * 1e6
    mid = default_clock()
    hi = metrics_mod.MONOTONIC_CLOCK() * 1e6
    assert lo <= mid <= hi


def test_timer_accepts_explicit_clock():
    reg = MetricsRegistry()
    h = reg.histogram("dur", buckets=(10.0,))
    ticks = iter([100.0, 107.0])
    with h.time(clock=lambda: next(ticks)):
        pass
    assert h.sum() == 7.0

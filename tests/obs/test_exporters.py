"""Tests for the Prometheus/JSON exporters and the periodic writer."""

import json
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs.exporters import (
    PeriodicSnapshotWriter,
    load_json_snapshot,
    to_json_snapshot,
    to_prometheus_text,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry("ns")
    reg.counter("reqs", "requests served").inc(3)
    reg.gauge("depth", "queue depth").set(2)
    h = reg.histogram("lat_us", "latency", buckets=(10, 100))
    for v in (7, 70, 700):
        h.observe(v)
    reg.counter("by_kind", "labelled", labelnames=("kind",)) \
        .labels(kind="a").inc()
    return reg


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_counter_rendering():
    text = to_prometheus_text(_sample_registry().snapshot())
    assert "# HELP ns_reqs_total requests served" in text
    assert "# TYPE ns_reqs_total counter" in text
    assert "\nns_reqs_total 3\n" in text
    assert text.endswith("\n")


def test_prometheus_gauge_rendering():
    text = to_prometheus_text(_sample_registry().snapshot())
    assert "# TYPE ns_depth gauge" in text
    assert "\nns_depth 2\n" in text


def test_prometheus_histogram_is_cumulative_with_inf():
    text = to_prometheus_text(_sample_registry().snapshot())
    assert 'ns_lat_us_bucket{le="10"} 1' in text
    assert 'ns_lat_us_bucket{le="100"} 2' in text
    assert 'ns_lat_us_bucket{le="+Inf"} 3' in text
    assert "ns_lat_us_sum 777" in text
    assert "ns_lat_us_count 3" in text


def test_prometheus_label_rendering_and_escaping():
    reg = MetricsRegistry("ns")
    reg.counter("c", labelnames=("k",)).labels(k='with "quote"\n').inc()
    text = to_prometheus_text(reg.snapshot())
    assert 'ns_c_total{k="with \\"quote\\"\\n"} 1' in text


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def test_json_round_trip_preserves_snapshot():
    snap = _sample_registry().snapshot()
    assert load_json_snapshot(to_json_snapshot(snap)) == snap


def test_json_loader_rejects_wrong_format():
    with pytest.raises(ObservabilityError):
        load_json_snapshot(json.dumps({"format": 999, "metrics": []}))
    with pytest.raises(ObservabilityError):
        load_json_snapshot(json.dumps({"metrics": []}))


def test_loaded_snapshot_is_mergeable():
    reg = _sample_registry()
    loaded = load_json_snapshot(to_json_snapshot(reg.snapshot()))
    other = MetricsRegistry("ns")
    other.merge_snapshot(loaded)
    assert other.value("reqs") == 3
    assert other.get("lat_us").count() == 3


# ----------------------------------------------------------------------
# write_metrics
# ----------------------------------------------------------------------
def test_write_metrics_infers_format_from_extension(tmp_path):
    snap = _sample_registry().snapshot()
    j = tmp_path / "m.json"
    p = tmp_path / "m.prom"
    assert write_metrics(str(j), snap) == "json"
    assert write_metrics(str(p), snap) == "prom"
    assert load_json_snapshot(j.read_text()) == snap
    assert p.read_text().startswith("# HELP")


def test_write_metrics_explicit_format_wins(tmp_path):
    snap = _sample_registry().snapshot()
    path = tmp_path / "m.json"
    assert write_metrics(str(path), snap, "prom") == "prom"
    assert path.read_text().startswith("# HELP")
    with pytest.raises(ObservabilityError):
        write_metrics(str(path), snap, "xml")


def test_write_metrics_leaves_no_temp_file(tmp_path):
    write_metrics(str(tmp_path / "m.prom"), _sample_registry().snapshot())
    assert [f.name for f in tmp_path.iterdir()] == ["m.prom"]


# ----------------------------------------------------------------------
# PeriodicSnapshotWriter
# ----------------------------------------------------------------------
def test_periodic_writer_final_flush_on_stop(tmp_path):
    reg = MetricsRegistry("ns")
    path = tmp_path / "m.json"
    writer = PeriodicSnapshotWriter(reg, str(path), interval_s=3600)
    writer.start()
    reg.counter("c").inc(5)
    writer.stop()
    snap = load_json_snapshot(path.read_text())
    series = next(m for m in snap["metrics"] if m["name"] == "c")["series"]
    assert series[0]["value"] == 5
    assert writer.writes >= 1


def test_periodic_writer_writes_on_interval(tmp_path):
    reg = MetricsRegistry("ns")
    reg.counter("c").inc()
    writer = PeriodicSnapshotWriter(reg, str(tmp_path / "m.prom"),
                                    interval_s=0.02)
    with writer:
        deadline = time.time() + 5.0
        while writer.writes < 2 and time.time() < deadline:
            time.sleep(0.01)
    assert writer.writes >= 2  # at least one periodic + the final flush


def test_periodic_writer_context_manager_and_flush(tmp_path):
    reg = MetricsRegistry("ns")
    path = tmp_path / "m.prom"
    with PeriodicSnapshotWriter(reg, str(path), interval_s=3600) as writer:
        writer.flush()
        assert path.exists()
    assert writer.writes >= 2


def test_periodic_writer_rejects_bad_interval(tmp_path):
    with pytest.raises(ObservabilityError):
        PeriodicSnapshotWriter(MetricsRegistry(), str(tmp_path / "m"),
                               interval_s=0)


def test_periodic_writer_run_shorter_than_interval_still_snapshots(tmp_path):
    # regression: a run that finishes before the first tick must still
    # leave a final snapshot on disk
    reg = MetricsRegistry("ns")
    path = tmp_path / "m.json"
    with PeriodicSnapshotWriter(reg, str(path), interval_s=3600):
        reg.counter("done").inc()
    snap = load_json_snapshot(path.read_text())
    series = next(m for m in snap["metrics"] if m["name"] == "done")["series"]
    assert series[0]["value"] == 1


def test_periodic_writer_final_snapshot_when_body_raises(tmp_path):
    # the crash post-mortem depends on __exit__ flushing unconditionally
    reg = MetricsRegistry("ns")
    reg.counter("progress").inc(7)
    path = tmp_path / "m.json"
    with pytest.raises(RuntimeError):
        with PeriodicSnapshotWriter(reg, str(path), interval_s=3600):
            raise RuntimeError("workload crashed")
    snap = load_json_snapshot(path.read_text())
    series = next(m for m in snap["metrics"]
                  if m["name"] == "progress")["series"]
    assert series[0]["value"] == 7


def test_periodic_loop_survives_transient_write_failure(tmp_path):
    # flush() raising inside the loop must not kill the thread; once the
    # path becomes writable again snapshots resume, and stop() still works
    reg = MetricsRegistry("ns")
    missing_dir = tmp_path / "gone"
    writer = PeriodicSnapshotWriter(reg, str(missing_dir / "m.json"),
                                    interval_s=0.01)
    writer.start()
    time.sleep(0.05)                      # a few failing ticks
    assert writer._thread.is_alive()
    missing_dir.mkdir()                   # directory appears
    deadline = time.time() + 5.0
    while writer.writes < 1 and time.time() < deadline:
        time.sleep(0.01)
    writer.stop()
    assert writer.writes >= 1
    assert (missing_dir / "m.json").exists()

"""Unit tests for rollback-cascade reconstruction (`repro explain`)."""

from repro.obs.explain import build_cascades, explain_events, explain_path


def _cascade_events(version=1, run_id="r1"):
    """A synthetic mis-speculation: predict → launch → fail → destroy."""
    return [
        {"run_id": run_id, "kind": "spec_predict", "version": version,
         "seq": 1, "t": 0.0},
        {"run_id": run_id, "kind": "spec_launch", "version": version,
         "cause": 1, "seq": 2, "t": 5.0},
        {"run_id": run_id, "kind": "task_spawn", "task": "enc:0",
         "cause": 2, "seq": 3, "t": 6.0},
        {"run_id": run_id, "kind": "check_fail", "version": version,
         "cause": 2, "error": 0.5, "tolerance": 0.01, "final": True,
         "seq": 4, "t": 50.0},
        {"run_id": run_id, "kind": "destroy_signal", "version": version,
         "cause": 4, "seq": 5, "t": 51.0},
        {"run_id": run_id, "kind": "task_abort", "task": "enc:0",
         "cause": 5, "while_running": True, "ran_us": 44.0,
         "seq": 6, "t": 52.0},
        {"run_id": run_id, "kind": "task_abort", "task": "enc:1",
         "cause": 5, "seq": 7, "t": 52.5},
        {"run_id": run_id, "kind": "buffer_discard", "key": "0",
         "cause": 5, "seq": 8, "t": 53.0},
        {"run_id": run_id, "kind": "shm_release", "reason": "rollback",
         "refs": 3, "nbytes": 12288, "cause": 5, "seq": 9, "t": 54.0},
        {"run_id": run_id, "kind": "shm_release", "reason": "commit",
         "refs": 1, "nbytes": 4096, "cause": 5, "seq": 10, "t": 54.5},
        {"run_id": run_id, "kind": "rollback_done", "version": version,
         "tasks_destroyed": 2, "buffer_discarded": 1, "wasted_us": 44.0,
         "cause": 5, "seq": 11, "t": 55.0},
        # rebuild: re-speculation caused by the failed check, not the signal
        {"run_id": run_id, "kind": "spec_launch", "version": version + 1,
         "reused": True, "cause": 4, "seq": 12, "t": 60.0},
    ]


def test_build_cascades_partitions_children_by_kind():
    (cascade,) = build_cascades(_cascade_events())
    assert cascade.version == 1
    assert [e["task"] for e in cascade.aborts] == ["enc:0", "enc:1"]
    assert len(cascade.discards) == 1
    assert len(cascade.releases) == 2
    assert cascade.tasks_destroyed == 2
    assert cascade.buffer_discarded == 1
    assert cascade.wasted_us == 44.0


def test_root_chain_walks_to_spec_predict():
    (cascade,) = build_cascades(_cascade_events())
    assert [e["kind"] for e in cascade.root_chain] == [
        "check_fail", "spec_launch", "spec_predict"]


def test_freed_bytes_counts_only_rollback_releases():
    (cascade,) = build_cascades(_cascade_events())
    assert cascade.freed_bytes == 12288   # the commit release is excluded
    assert cascade.freed_refs == 3


def test_rebuild_found_via_shared_check_fail_cause():
    (cascade,) = build_cascades(_cascade_events())
    assert [e["version"] for e in cascade.rebuilds] == [2]


def test_version_filter_selects_one_cascade():
    events = _cascade_events(version=1)
    shifted = [dict(e, seq=e["seq"] + 100,
                    **({"cause": e["cause"] + 100} if "cause" in e else {}))
               for e in _cascade_events(version=7)]
    all_events = events + shifted
    assert len(build_cascades(all_events)) == 2
    (only,) = build_cascades(all_events, version=7)
    assert only.version == 7


def test_format_report_mentions_root_cause_and_totals():
    text = explain_events(_cascade_events())
    assert "run r1 — 1 rollback cascade(s)" in text
    assert "final check on v1 (error 0.5 > tolerance 0.01)" in text
    assert "spec_predict(seq 1) → spec_launch(seq 2) → check_fail(seq 4)" in text
    assert "destroyed: 2 task(s), 1 buffered entr(ies)" in text
    assert "shm released (rollback): 3 ref(s), 12288 B" in text
    assert "enc:0 (reaped while running, 44 µs sunk)" in text
    assert "rebuild: spec_launch v2 (reused candidate)" in text
    assert "totals: 2 tasks destroyed · 12288 B shm freed" in text


def test_no_cascades_renders_cleanly():
    assert "0 rollback cascade(s)" in explain_events(
        [{"run_id": "r", "kind": "task_spawn", "seq": 1, "t": 0.0}])


def test_destroy_without_check_fail_reports_missing_root():
    events = [{"run_id": "r", "kind": "destroy_signal", "version": 3,
               "seq": 1, "t": 0.0}]
    text = explain_events(events)
    assert "rollback without a failed check" in text


def test_explain_path_roundtrips_jsonl(tmp_path):
    import json
    path = tmp_path / "run.events.jsonl"
    path.write_text("".join(json.dumps(e) + "\n" for e in _cascade_events()))
    assert "1 rollback cascade(s)" in explain_path(str(path))


# ----------------------------------------------------------------------
# worker-crash cascades
# ----------------------------------------------------------------------

def _crash_events(seq0=0):
    """A crash whose replacement also died; second death quarantines.

    The follow-on crash's ``cause`` edge points at the root crash — the
    ambient cause scope the recovery path holds when it fires.
    """
    s = seq0
    return [
        {"run_id": "r", "kind": "worker_crash", "worker": 0,
         "reason": "crash", "exitcode": -9, "inflight": 2,
         "tasks": ["enc:0", "enc:1"], "seq": s + 1, "t": 10.0},
        {"run_id": "r", "kind": "worker_respawn", "worker": 0,
         "incarnation": 1, "respawns": 1, "cause": s + 1,
         "seq": s + 2, "t": 11.0},
        {"run_id": "r", "kind": "task_retry", "task": "enc:0", "worker": 0,
         "attempt": 1, "cause": s + 1, "seq": s + 3, "t": 12.0},
        {"run_id": "r", "kind": "worker_crash", "worker": 0,
         "reason": "crash", "exitcode": -9, "inflight": 1,
         "tasks": ["enc:0"], "cause": s + 1, "seq": s + 4, "t": 13.0},
        {"run_id": "r", "kind": "worker_respawn", "worker": 0,
         "incarnation": 2, "respawns": 2, "cause": s + 4,
         "seq": s + 5, "t": 14.0},
        {"run_id": "r", "kind": "task_quarantine", "task": "enc:0",
         "attempts": 2, "cause": s + 4, "seq": s + 6, "t": 15.0},
        {"run_id": "r", "kind": "shm_release", "reason": "crash",
         "refs": 2, "nbytes": 8192, "freed": True, "cause": s + 4,
         "seq": s + 7, "t": 16.0},
    ]


def test_crash_cascades_fold_follow_on_crashes_into_the_root():
    from repro.obs.explain import build_crash_cascades

    cascades = build_crash_cascades(_crash_events())
    assert len(cascades) == 1  # the second crash is not its own root
    c = cascades[0]
    assert c.worker == 0 and c.reason == "crash"
    assert len(c.follow_on) == 1
    assert len(c.respawns) == 2  # both incarnations' respawns fold in
    assert [q["task"] for q in c.quarantines] == ["enc:0"]
    assert c.crash_freed_bytes == 8192


def test_explain_renders_crash_section_after_rollbacks():
    # offset the crash events' seq space past the rollback fixture's
    events = _cascade_events() + _crash_events(seq0=100)
    text = explain_events(events)
    assert "1 rollback cascade(s)" in text
    assert "worker-crash cascade" in text
    assert "quarantined: enc:0" in text
    assert "8192 B force-freed" in text


def test_explain_without_crashes_has_no_crash_section():
    text = explain_events(_cascade_events())
    assert "worker-crash" not in text

"""Unit tests for the flight-recorder event log."""

import json
import threading

from repro.obs.events import (
    EventLog,
    children_of,
    default_clock,
    index_by_seq,
    load_events_jsonl,
    walk_to_root,
)


# ----------------------------------------------------------------------
# emission & ring
# ----------------------------------------------------------------------
def test_emit_assigns_monotonic_seqs_and_stamps_fields():
    log = EventLog("run1")
    s1 = log.emit("task_spawn", task="a", version=2, payload=7)
    s2 = log.emit("task_done", task="a")
    assert (s1, s2) == (1, 2)
    e1, e2 = log.events()
    assert e1 == {"run_id": "run1", "kind": "task_spawn", "task": "a",
                  "version": 2, "payload": 7, "seq": 1, "t": e1["t"]}
    assert e2["seq"] == 2 and e2["t"] >= e1["t"]


def test_none_valued_payload_fields_are_dropped():
    log = EventLog("r")
    log.emit("k", task=None, version=None, extra=None, kept=0)
    (event,) = log.events()
    assert "task" not in event and "version" not in event
    assert "extra" not in event and event["kept"] == 0


def test_ring_keeps_most_recent_capacity_events():
    log = EventLog("r", capacity=3)
    for i in range(10):
        log.emit("k", i=i)
    assert [e["i"] for e in log.events()] == [7, 8, 9]
    assert len(log) == 3
    assert log.last_seq == 10  # seqs keep counting past evictions


def test_disabled_log_is_a_noop():
    log = EventLog("r", enabled=False)
    assert log.emit("k", x=1) == 0
    with log.cause(5):
        assert log.current_cause() is None
        assert log.emit("k") == 0
    assert log.events() == [] and len(log) == 0


# ----------------------------------------------------------------------
# cause context
# ----------------------------------------------------------------------
def test_cause_scope_defaults_cause_and_nests():
    log = EventLog("r")
    root = log.emit("root")
    with log.cause(root):
        a = log.emit("child")
        with log.cause(a):
            log.emit("grandchild")
        log.emit("sibling")
    log.emit("outside")
    by_kind = {e["kind"]: e for e in log.events()}
    assert "cause" not in by_kind["root"]
    assert by_kind["child"]["cause"] == root
    assert by_kind["grandchild"]["cause"] == a
    assert by_kind["sibling"]["cause"] == root
    assert "cause" not in by_kind["outside"]


def test_explicit_cause_wins_over_ambient_scope():
    log = EventLog("r")
    with log.cause(99):
        log.emit("k", cause=7)
    assert log.events()[0]["cause"] == 7


def test_cause_scopes_are_thread_local():
    log = EventLog("r")
    seen = {}

    def worker():
        seen["cause"] = log.current_cause()
        log.emit("from_thread")

    with log.cause(42):
        t = threading.Thread(target=worker)
        t.start()
        t.join()
    assert seen["cause"] is None
    assert "cause" not in [e for e in log.events()
                           if e["kind"] == "from_thread"][0]


def test_cause_none_scope_is_transparent():
    log = EventLog("r")
    with log.cause(None):
        assert log.current_cause() is None


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def test_jsonl_sink_receives_every_event_despite_ring_eviction(tmp_path):
    path = tmp_path / "run.events.jsonl"
    with EventLog("r", capacity=2, path=str(path)) as log:
        for i in range(5):
            log.emit("k", i=i)
    events = load_events_jsonl(str(path))
    assert [e["i"] for e in events] == [0, 1, 2, 3, 4]
    assert all(e["run_id"] == "r" for e in events)
    # but the ring only kept the tail
    assert len(log) == 2


def test_jsonl_lines_are_valid_json(tmp_path):
    path = tmp_path / "e.jsonl"
    with EventLog("r", path=str(path)) as log:
        log.emit("k", blob=b"\x00\xff")  # non-JSON type goes through default=str
    for line in path.read_text().splitlines():
        json.loads(line)


# ----------------------------------------------------------------------
# merge_worker
# ----------------------------------------------------------------------
def test_merge_worker_reassigns_seqs_and_remaps_intra_batch_causes():
    log = EventLog("coord")
    log.emit("local")  # seq 1
    batch = [
        {"run_id": "w0", "kind": "a", "seq": 1, "t": 10.0},
        {"run_id": "w0", "kind": "b", "seq": 2, "t": 20.0, "cause": 1},
        {"run_id": "w0", "kind": "c", "seq": 3, "t": 30.0, "cause": 999},
    ]
    log.merge_worker(0, batch)
    a, b, c = log.events()[1:]
    assert a["seq"] == 2 and b["seq"] == 3 and c["seq"] == 4
    assert b["cause"] == 2                  # remapped to a's new seq
    assert "cause" not in c                 # dangling ref dropped
    assert all(e["run_id"] == "coord" for e in (a, b, c))
    assert all(e["worker"] == 0 and e["clock"] == "worker" for e in (a, b, c))
    assert [e["worker_seq"] for e in (a, b, c)] == [1, 2, 3]
    # source dicts untouched
    assert batch[0]["run_id"] == "w0" and batch[1]["cause"] == 1


def test_merge_worker_noop_when_disabled_or_empty():
    log = EventLog("c", enabled=False)
    log.merge_worker(0, [{"kind": "a", "seq": 1}])
    assert len(log) == 0
    live = EventLog("c")
    live.merge_worker(0, [])
    assert live.last_seq == 0


# ----------------------------------------------------------------------
# clock
# ----------------------------------------------------------------------
def test_default_clock_is_monotonic_and_immune_to_wall_jumps(monkeypatch):
    import time as time_mod
    # Wall clock jumping backwards (NTP / DST) must not affect timestamps.
    monkeypatch.setattr(time_mod, "time", lambda: 0.0)
    t0 = default_clock()
    t1 = default_clock()
    assert t1 >= t0 > 0


def test_set_clock_rebinds_timestamp_source():
    log = EventLog("r")
    log.set_clock(lambda: 123.0)
    log.emit("k")
    assert log.events()[0]["t"] == 123.0


# ----------------------------------------------------------------------
# lineage helpers
# ----------------------------------------------------------------------
def _lineage_fixture():
    return [
        {"kind": "spec_predict", "seq": 1},
        {"kind": "spec_launch", "seq": 2, "cause": 1},
        {"kind": "check_fail", "seq": 3, "cause": 2},
        {"kind": "destroy_signal", "seq": 4, "cause": 3},
        {"kind": "task_abort", "seq": 5, "cause": 4},
        {"kind": "task_abort", "seq": 6, "cause": 4},
    ]


def test_children_of_groups_direct_effects_in_order():
    kids = children_of(_lineage_fixture())
    assert [e["seq"] for e in kids[4]] == [5, 6]
    assert [e["seq"] for e in kids[1]] == [2]
    assert 5 not in kids


def test_walk_to_root_follows_cause_chain():
    events = _lineage_fixture()
    by_seq = index_by_seq(events)
    chain = walk_to_root(events[4], by_seq)
    assert [e["seq"] for e in chain] == [5, 4, 3, 2, 1]


def test_walk_to_root_tolerates_dangling_cause():
    events = [{"kind": "x", "seq": 10, "cause": 9}]  # 9 evicted from ring
    chain = walk_to_root(events[0], index_by_seq(events))
    assert [e["seq"] for e in chain] == [10]

"""The event-log schema header: stamping, validation, compatibility.

Every JSONL sink must open with a ``log_header`` record (schema name +
version + run metadata) so that a log file is self-describing and
``read_event_log`` can reject foreign or future-version files with a
clear error instead of a confusing downstream failure. ``load_events_jsonl``
stays the raw accessor: it skips the header and never validates.
"""

import json

import pytest

from repro.errors import EventSchemaError
from repro.obs.events import (
    EVENTS_SCHEMA,
    EVENTS_SCHEMA_VERSION,
    EventLog,
    load_events_jsonl,
    read_event_log,
)


def _record(tmp_path, meta=None):
    path = tmp_path / "run.events.jsonl"
    log = EventLog(run_id="cafe0001", path=str(path), meta=meta)
    log.emit("task_spawn", task="a")
    log.emit("task_done", task="a")
    log.close()
    return path


def test_jsonl_sink_stamps_header_first(tmp_path):
    path = _record(tmp_path)
    first = json.loads(path.read_text().splitlines()[0])
    assert first["kind"] == "log_header"
    assert first["schema"] == EVENTS_SCHEMA
    assert first["schema_version"] == EVENTS_SCHEMA_VERSION
    assert first["run_id"] == "cafe0001"
    assert first["seq"] == 0


def test_header_carries_meta(tmp_path):
    path = _record(tmp_path, meta={"app": "huffman", "run_config": {"seed": 7}})
    header, events = read_event_log(path)
    assert header["meta"]["app"] == "huffman"
    assert header["meta"]["run_config"] == {"seed": 7}
    assert [e["kind"] for e in events] == ["task_spawn", "task_done"]


def test_read_event_log_separates_header_from_events(tmp_path):
    header, events = read_event_log(_record(tmp_path))
    assert header["kind"] == "log_header"
    assert all(e["kind"] != "log_header" for e in events)


def test_load_events_jsonl_skips_header(tmp_path):
    events = load_events_jsonl(_record(tmp_path))
    assert [e["kind"] for e in events] == ["task_spawn", "task_done"]


def test_headerless_file_rejected(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text('{"kind": "task_spawn", "seq": 1}\n')
    with pytest.raises(EventSchemaError, match="no log_header"):
        read_event_log(path)


def test_headerless_file_allowed_when_not_required(tmp_path):
    path = tmp_path / "old.jsonl"
    path.write_text('{"kind": "task_spawn", "seq": 1}\n')
    header, events = read_event_log(path, require_header=False)
    assert header is None
    assert [e["kind"] for e in events] == ["task_spawn"]


def test_wrong_schema_rejected(tmp_path):
    path = tmp_path / "foreign.jsonl"
    path.write_text(json.dumps({
        "kind": "log_header", "schema": "someone.else", "schema_version": 1,
        "seq": 0}) + "\n")
    with pytest.raises(EventSchemaError, match="schema"):
        read_event_log(path)


def test_future_version_rejected_even_if_header_optional(tmp_path):
    path = tmp_path / "future.jsonl"
    path.write_text(json.dumps({
        "kind": "log_header", "schema": EVENTS_SCHEMA,
        "schema_version": EVENTS_SCHEMA_VERSION + 1, "seq": 0}) + "\n")
    with pytest.raises(EventSchemaError, match="version"):
        read_event_log(path)
    with pytest.raises(EventSchemaError, match="version"):
        read_event_log(path, require_header=False)


def test_ring_does_not_contain_header(tmp_path):
    path = tmp_path / "run.events.jsonl"
    log = EventLog(run_id="cafe0002", path=str(path))
    log.emit("task_spawn", task="a")
    log.close()
    assert all(e["kind"] != "log_header" for e in log.events())

"""Unit tests for spans / trace-context propagation (repro.obs.spans)."""

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import histogram_quantile
from repro.obs.spans import (
    Span,
    TraceContext,
    Tracer,
    format_traceparent,
    parse_traceparent,
    render_span_tree,
    span_tree,
)


# ----------------------------------------------------------------------
# traceparent round-trip and tolerant parse
# ----------------------------------------------------------------------
def test_mint_produces_w3c_shaped_ids():
    ctx = TraceContext.mint()
    assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
    assert set(ctx.trace_id + ctx.span_id) <= set("0123456789abcdef")


def test_traceparent_round_trip():
    ctx = TraceContext.mint()
    header = ctx.to_traceparent()
    assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
    assert parse_traceparent(header) == ctx


def test_parse_tolerates_case_and_whitespace():
    ctx = TraceContext.mint()
    header = f"  {format_traceparent(ctx).upper()}  "
    assert parse_traceparent(header) == ctx


@pytest.mark.parametrize("garbage", [
    None, 17, b"00-aa-bb-01", "", "traceparent",
    "01-" + "a" * 32 + "-" + "b" * 16 + "-01",   # unknown version
    "00-" + "a" * 31 + "-" + "b" * 16 + "-01",   # short trace id
    "00-" + "a" * 32 + "-" + "b" * 15 + "-01",   # short span id
    "00-" + "g" * 32 + "-" + "b" * 16 + "-01",   # non-hex
])
def test_parse_returns_none_on_garbage(garbage):
    # a malformed header must never fail a submit — it starts a fresh trace
    assert parse_traceparent(garbage) is None


def test_child_keeps_trace_id_and_changes_span_id():
    root = TraceContext.mint()
    child = root.child()
    assert child.trace_id == root.trace_id
    assert child.span_id != root.span_id


# ----------------------------------------------------------------------
# Tracer: spans, double-entry, cause edges
# ----------------------------------------------------------------------
def _tracer(times):
    log = EventLog("r")
    clock = iter([float(t) for t in times])
    log.set_clock(clock.__next__)
    tracer = Tracer(events=log, clock=iter(
        [float(t) for t in times]).__next__)
    return tracer, log


def test_span_timing_and_attrs():
    tracer = Tracer(clock=iter([10.0, 35.0]).__next__)
    span = tracer.start("admission", tenant="alice", skipped=None)
    assert span.dur_us == 0.0            # still open
    tracer.end(span, outcome="accepted")
    assert span.t0_us == 10.0 and span.t1_us == 35.0
    assert span.dur_us == 25.0
    assert span.attrs == {"tenant": "alice", "outcome": "accepted"}


def test_parent_may_be_context_or_span():
    tracer = Tracer(clock=iter([0.0, 1.0, 2.0, 3.0]).__next__)
    root_ctx = TraceContext.mint()
    parent = tracer.start("job", parent=root_ctx)
    child = tracer.start("queue", parent=parent)
    assert parent.trace_id == root_ctx.trace_id
    assert parent.parent_id == root_ctx.span_id
    assert child.trace_id == root_ctx.trace_id
    assert child.parent_id == parent.span_id


def test_double_entry_into_flight_recorder_with_cause_edges():
    tracer, log = _tracer([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
    parent = tracer.start("job")
    child = tracer.start("execute", parent=parent)
    tracer.end(child, status="ok")
    tracer.end(parent)
    kinds = [(e["kind"], e["span"]) for e in log.events()]
    assert kinds == [("span_start", "job"), ("span_start", "execute"),
                     ("span_end", "execute"), ("span_end", "job")]
    start_job, start_exec, end_exec, end_job = log.events()
    # child's start hangs off the parent's start; ends point at own start
    assert start_exec["cause"] == start_job["seq"]
    assert end_exec["cause"] == start_exec["seq"]
    assert end_job["cause"] == start_job["seq"]
    assert {e["trace_id"] for e in log.events()} == {parent.trace_id}
    assert end_exec["status"] == "ok"
    assert end_exec["dur_us"] == child.dur_us


def test_end_sink_receives_span_dict():
    sink = []
    tracer = Tracer(clock=iter([0.0, 4.0]).__next__)
    span = tracer.start("result", tenant="bob")
    tracer.end(span, sink=sink.append)
    (row,) = sink
    assert row["name"] == "result" and row["tenant"] == "bob"
    assert row["dur_us"] == 4.0
    assert row["span_id"] == span.span_id
    assert row["parent_id"] is None


def test_span_scope_context_manager_records_errors():
    sink = []
    tracer = Tracer(clock=iter([0.0, 1.0, 2.0, 3.0]).__next__)
    with tracer.span("fine", sink=sink.append):
        pass
    with pytest.raises(RuntimeError):
        with tracer.span("broken", sink=sink.append):
            raise RuntimeError("boom")
    fine, broken = sink
    assert "error" not in fine
    assert "RuntimeError" in broken["error"]


# ----------------------------------------------------------------------
# span_tree / render_span_tree
# ----------------------------------------------------------------------
def _spans():
    return [
        {"name": "job", "span_id": "j", "parent_id": "root",
         "t0_us": 0.0, "t1_us": 100.0, "dur_us": 100.0},
        {"name": "admission", "span_id": "a", "parent_id": "j",
         "t0_us": 0.0, "t1_us": 10.0, "dur_us": 10.0, "tenant": "alice"},
        {"name": "execute", "span_id": "e", "parent_id": "j",
         "t0_us": 10.0, "t1_us": 90.0, "dur_us": 80.0},
        {"name": "worker_exec", "span_id": "w", "parent_id": "e",
         "t0_us": 5.0, "t1_us": 60.0, "dur_us": 55.0, "clock": "worker",
         "worker": 1},
    ]


def test_span_tree_assembles_children_and_orphan_roots():
    (root,) = span_tree(_spans())
    # the submit-context parent lives client-side: "job" becomes the root
    assert root["name"] == "job"
    assert [c["name"] for c in root["children"]] == ["admission", "execute"]
    (leaf,) = root["children"][1]["children"]
    assert leaf["name"] == "worker_exec"


def test_span_tree_partial_list_still_renders():
    spans = [s for s in _spans() if s["span_id"] != "j"]
    roots = span_tree(spans)
    assert [r["name"] for r in roots] == ["admission", "execute"]


def test_render_span_tree_indents_and_labels():
    lines = list(render_span_tree(_spans()))
    assert lines[0].startswith("job")
    assert lines[1].startswith("  admission")
    assert "[tenant=alice]" in lines[1]
    assert lines[3].startswith("    worker_exec")
    assert "[worker=1]" in lines[3]


# ----------------------------------------------------------------------
# histogram_quantile (the SLO math the stage histograms feed)
# ----------------------------------------------------------------------
def test_quantile_interpolates_within_bucket():
    # 10 observations uniform in (0, 100]
    assert histogram_quantile([100.0], [10.0, 0.0], 0.5) == pytest.approx(50.0)
    assert histogram_quantile([50.0, 100.0], [5.0, 5.0, 0.0], 0.95) \
        == pytest.approx(95.0)


def test_quantile_clamps_inf_bucket_to_last_edge():
    assert histogram_quantile([100.0], [0.0, 3.0], 0.99) == 100.0


def test_quantile_empty_series_is_none():
    assert histogram_quantile([100.0], [0.0, 0.0], 0.5) is None


def test_quantile_rejects_out_of_range_q():
    from repro.errors import ObservabilityError
    with pytest.raises(ObservabilityError):
        histogram_quantile([100.0], [1.0, 0.0], 1.5)

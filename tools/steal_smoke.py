#!/usr/bin/env python
"""Deterministic work-stealing smoke for CI.

Reproduces the straggler scenario end-to-end on real worker processes:
seat B blocks inside a gated payload; seat A blocks on its *own* gated
head with a backlog of fast payloads claimed into its deque. Releasing
B's gate leaves B idle with empty ready queues, so it must steal A's
backlog (half the deque, from the tail) and finish it while A is still
gated. The script prints every ``task_steal`` event it observed — CI
greps for them — and exits non-zero unless stealing fired and every
payload completed with correct output.

Usage::

    python tools/steal_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from functools import partial

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.events import EventLog  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.sre.executor_procs import ProcessExecutor  # noqa: E402
from repro.sre.runtime import Runtime  # noqa: E402
from repro.sre.task import Task, TaskState  # noqa: E402

N_FAST = 20


def _identity(i):
    return {"out": i}


def _touch_then_wait(touch_path, wait_path, timeout_s=30.0):
    with open(touch_path, "w") as fh:
        fh.write("started")
    deadline = time.monotonic() + timeout_s
    while not os.path.exists(wait_path):
        if time.monotonic() > deadline:
            return {"out": "timeout"}
        time.sleep(0.005)
    return {"out": "released"}


def _wait_until(predicate, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.005)
    return True


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-steal-smoke-") as td:
        start_b, gate_b = os.path.join(td, "sb"), os.path.join(td, "gb")
        start_a, gate_a = os.path.join(td, "sa"), os.path.join(td, "ga")
        registry = MetricsRegistry()
        events = EventLog("steal-smoke")
        rt = Runtime(metrics=registry, events=events)
        ex = ProcessExecutor(rt, workers=2)
        ex.start()
        ex.submit(rt.add_task, Task(
            "slow_b", partial(_touch_then_wait, start_b, gate_b)))
        if not _wait_until(lambda: os.path.exists(start_b)):
            print("steal smoke: FAILED — seat B never started", flush=True)
            return 1
        fasts: list[Task] = []

        def _add_wave():
            rt.add_task(Task(
                "slow_a", partial(_touch_then_wait, start_a, gate_a)))
            for i in range(N_FAST):
                fasts.append(rt.add_task(Task(f"f{i}",
                                              partial(_identity, i))))

        ex.submit(_add_wave)
        if not _wait_until(lambda: os.path.exists(start_a)):
            print("steal smoke: FAILED — seat A never started", flush=True)
            return 1
        with open(gate_b, "w") as fh:
            fh.write("go")
        stolen_in_time = _wait_until(
            lambda: registry.value("procs_tasks_stolen") > 0)
        rescued_in_time = stolen_in_time and _wait_until(
            lambda: any(t.state is TaskState.DONE for t in fasts))
        with open(gate_a, "w") as fh:
            fh.write("go")
        ex.close_input()
        drained = ex.wait_idle(timeout=60.0)
        ex.shutdown()
        ex.raise_errors()

    steals = [e for e in events.events() if e["kind"] == "task_steal"]
    for e in steals:
        print(f"task_steal task={e.get('task')} worker={e.get('worker')} "
              f"from_worker={e.get('from_worker')} cause={e.get('cause')}")
    outputs = {t.outputs.get("out") for t in fasts}
    problems = []
    if not stolen_in_time:
        problems.append("no task_steal fired while the straggler was gated")
    if not rescued_in_time:
        problems.append("no stolen payload completed before the gate opened")
    if not drained:
        problems.append("run did not drain")
    if outputs != set(range(N_FAST)):
        problems.append(f"outputs wrong: {sorted(outputs)!r}")
    if problems:
        print("steal smoke: FAILED — " + "; ".join(problems))
        return 1
    print(f"steal smoke: passed ({len(steals)} task_steal event(s), "
          f"{N_FAST} payloads correct, straggler backlog rescued)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

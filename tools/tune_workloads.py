"""Offline tuning harness for workload drift profiles (not shipped API)."""
import numpy as np
from repro.workloads.calibration import check_error_profile, first_safe_update
from repro.workloads import get_workload

def profile(name, data, bases=(0,1,2,4,8,16,24,32), tol=0.01):
    n_updates = len(data)//(4096*16)
    print(f"--- {name}: {len(data)} bytes, {n_updates} updates")
    for b in bases:
        if b >= n_updates: continue
        p = check_error_profile(data, base_update=b)
        print(f" base={b:2d} max={p.max():.4f} final={p[-1]:.4f} " +
              " ".join(f"{x:.3f}" for x in p[:: max(1,len(p)//8)]))
    print(" first_safe(1%)=", first_safe_update(data, tol))

if __name__ == "__main__":
    import sys
    which = sys.argv[1] if len(sys.argv)>1 else "all"
    if which in ("txt","all"):
        profile("txt", get_workload("txt").generate(4*1024*1024, 0))
    if which in ("bmp","all"):
        profile("bmp", get_workload("bmp").generate(2*1024*1024, 0))
    if which in ("pdf","all"):
        profile("pdf", get_workload("pdf").generate(4*1024*1024, 0))

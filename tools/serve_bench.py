#!/usr/bin/env python
"""Warm-daemon latency bench: the acceptance number for `repro serve`.

The point of the long-lived service is that the second job on a warm
lane skips the entire substrate start-up — forking worker processes,
connecting pipes, creating shm arenas. This script measures exactly
that gap for one procs+shm huffman config:

* **one-shot wall time** — `run_job` cold, everything built and torn
  down, averaged over a few runs;
* **warm submit→result latency** — the same config through a running
  `SpeculationServer`: job 1 pays the lane spawn, jobs 2..N ride the
  warm pool; their client-observed submit→result latency is the number
  that must sit well below the one-shot wall time.

Exits non-zero unless (a) every served digest equals the one-shot
digest (byte-identity) and (b) the mean warm latency beats the mean
one-shot wall time.

Usage::

    python tools/serve_bench.py [--blocks 32] [--workers 2] [--runs 3]
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.client import ServeClient  # noqa: E402
from repro.experiments.config import RunConfig  # noqa: E402
from repro.experiments.jobs import run_job  # noqa: E402
from repro.serve.server import ServeSettings, SpeculationServer  # noqa: E402


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--blocks", type=int, default=32)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--runs", type=int, default=3,
                    help="one-shot runs and warm jobs to average over")
    args = ap.parse_args()

    raw = {"workload": "txt", "n_blocks": args.blocks, "executor": "procs",
           "workers": args.workers, "transport": "shm", "seed": 0}
    cfg = RunConfig.for_app("huffman", **raw)

    one_shot_s: list[float] = []
    for _ in range(args.runs):
        t0 = time.monotonic()
        report = run_job(cfg)
        one_shot_s.append(time.monotonic() - t0)
    expected_sha = report.output_sha256

    warm_s: list[float] = []
    shas: list[str] = []
    server = SpeculationServer(ServeSettings(job_workers=1)).start()
    try:
        with ServeClient(port=server.port) as client:
            # job 1 pays the lane spawn; not part of the warm sample
            t0 = time.monotonic()
            first = client.result(client.submit(dict(raw, app="huffman"),
                                                tenant="bench"),
                                  timeout_s=300.0)
            cold_s = time.monotonic() - t0
            shas.append(first["output_sha256"])
            for _ in range(args.runs):
                t0 = time.monotonic()
                rep = client.result(client.submit(dict(raw, app="huffman"),
                                                  tenant="bench"),
                                    timeout_s=300.0)
                warm_s.append(time.monotonic() - t0)
                shas.append(rep["output_sha256"])
        reuses = server.metrics.value("serve_lane_reuses")
    finally:
        server.stop()

    one_shot = statistics.mean(one_shot_s)
    warm = statistics.mean(warm_s)
    print(f"one-shot run_job wall time : {one_shot * 1e3:8.1f} ms "
          f"(n={len(one_shot_s)})")
    print(f"served job 1 (lane spawn)  : {cold_s * 1e3:8.1f} ms")
    print(f"warm submit->result latency: {warm * 1e3:8.1f} ms "
          f"(n={len(warm_s)}, lane reuses {reuses})")
    print(f"warm / one-shot            : {warm / one_shot:8.2f}x")

    problems = []
    if any(sha != expected_sha for sha in shas):
        problems.append("served digest diverged from one-shot digest")
    if reuses < args.runs:
        problems.append(f"expected {args.runs} lane reuses, saw {reuses}")
    if warm >= one_shot:
        problems.append(f"warm latency {warm * 1e3:.1f} ms did not beat "
                        f"one-shot {one_shot * 1e3:.1f} ms")
    if problems:
        print("serve bench: FAILED — " + "; ".join(problems))
        return 1
    print(f"serve bench: passed (warm jobs skip pool start-up, "
          f"{(1 - warm / one_shot) * 100:.0f}% below one-shot)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

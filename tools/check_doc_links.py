#!/usr/bin/env python
"""Check that relative Markdown links in the repo's docs resolve.

Scans every tracked ``*.md`` file for ``[text](target)`` links and verifies
that each relative target exists on disk (anchors and external URLs are
skipped; an anchor-only link like ``(#section)`` is ignored). Exits
non-zero listing every broken link, so CI catches docs drifting from the
tree — renamed files, deleted examples, typo'd paths.

Usage::

    python tools/check_doc_links.py [root]
"""

from __future__ import annotations

import pathlib
import re
import sys

# [text](target) — excluding images' srcset edge cases; good enough for
# hand-written docs. Nested parens in URLs are not used in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "chrome://")
_SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def iter_markdown(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(path.relative_to(root).parts):
            yield path


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    for n, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]  # strip in-file anchors
            if not rel:
                continue
            if not (path.parent / rel).exists():
                errors.append(f"{path}:{n}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    errors = []
    n_files = 0
    for md in iter_markdown(root):
        n_files += 1
        errors.extend(check_file(md))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {n_files} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python
"""Check that relative Markdown links in the repo's docs resolve.

Scans every tracked ``*.md`` file for ``[text](target)`` links and verifies
that each relative target exists on disk (anchors and external URLs are
skipped; an anchor-only link like ``(#section)`` is ignored). Also scans
code spans and fenced blocks for ``repro <subcommand>`` invocations and
verifies each named subcommand is actually registered in
``repro.cli.build_parser()`` — so docs can't advertise commands the CLI
doesn't have (or lose one in a rename). For each recognised subcommand
the ``--flags`` on the same line are checked against the subparser's
registered option strings too (``repro top --serve``, ``repro trace
--spans-json`` and friends must really exist; flags on continuation
lines after a ``\\`` are not checked). Exits non-zero listing every
broken link / unknown subcommand / unknown flag, so CI catches docs
drifting from the tree — renamed files, deleted examples, typo'd paths,
stale CLI examples.

Usage::

    python tools/check_doc_links.py [root]
"""

from __future__ import annotations

import pathlib
import re
import sys

# [text](target) — excluding images' srcset edge cases; good enough for
# hand-written docs. Nested parens in URLs are not used in this repo.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "chrome://")
_SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}


def iter_markdown(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        if not _SKIP_DIRS.intersection(path.relative_to(root).parts):
            yield path


# `repro <sub>` / `python -m repro <sub>` inside code spans or fenced
# blocks. `repro.cli <sub>` covers `python -m repro.cli run` spellings.
_SUBCMD = re.compile(r"\brepro(?:\.cli)?\s+([a-z][a-z0-9_-]*)")
_INLINE_CODE = re.compile(r"`([^`]+)`")
# words that follow a bare `repro` token without being subcommands
# (python import syntax inside code spans).
_NOT_SUBCOMMANDS = {"import", "package", "module", "script"}


def known_subcommands(root: pathlib.Path) -> dict[str, set[str]]:
    """``repro.cli.build_parser()``'s subcommands and their options.

    Maps each subcommand name to its registered option strings
    (``{"--once", "--serve", ...}``). Callers that only care about the
    names can treat the mapping as a set of names.
    """
    import argparse

    sys.path.insert(0, str(root / "src"))
    try:
        from repro.cli import build_parser
        parser = build_parser()
    finally:
        sys.path.pop(0)
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return {
                name: {opt for a in sub._actions for opt in a.option_strings}
                for name, sub in action.choices.items()
            }
    raise AssertionError("repro.cli.build_parser() has no subparsers")


def _code_texts(path: pathlib.Path):
    """Yield (lineno, code_text) for fenced-block lines and inline spans."""
    in_fence = False
    for n, line in enumerate(path.read_text().splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            yield n, line
        else:
            for m in _INLINE_CODE.finditer(line):
                yield n, m.group(1)


#: a long option in example text; ``--flag=value`` matches just the flag.
_FLAG = re.compile(r"--[a-z][a-z0-9-]*")


def check_subcommands(
    path: pathlib.Path, known: "set[str] | dict[str, set[str]]"
) -> list[str]:
    """Flag unknown subcommands — and, when ``known`` is the mapping from
    :func:`known_subcommands`, unknown ``--flags`` for known ones."""
    flags = known if isinstance(known, dict) else None
    errors = []
    for n, text in _code_texts(path):
        matches = list(_SUBCMD.finditer(text))
        for i, m in enumerate(matches):
            name = m.group(1)
            if name in _NOT_SUBCOMMANDS:
                continue
            if name not in known:
                errors.append(
                    f"{path}:{n}: unknown `repro {name}` subcommand "
                    f"(not registered in repro.cli.build_parser())")
                continue
            if flags is None:
                continue
            # Options between this invocation and the next one (or end of
            # line); continuation lines after a backslash aren't seen.
            end = matches[i + 1].start() if i + 1 < len(matches) \
                else len(text)
            segment = text[m.end():end]
            # A shell comment or pipeline hands off to another command
            # whose flags aren't ours to validate.
            segment = re.split(r"[#|;]|&&", segment, maxsplit=1)[0]
            for fm in _FLAG.finditer(segment):
                if fm.group(0) not in flags[name]:
                    errors.append(
                        f"{path}:{n}: `repro {name}` has no "
                        f"{fm.group(0)} option")
    return errors


def check_file(path: pathlib.Path) -> list[str]:
    errors = []
    for n, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]  # strip in-file anchors
            if not rel:
                continue
            if not (path.parent / rel).exists():
                errors.append(f"{path}:{n}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    root = pathlib.Path(argv[1]) if len(argv) > 1 else pathlib.Path(".")
    try:
        known = known_subcommands(root)
    except ImportError as exc:  # running outside the repo root
        print(f"warning: cannot import repro.cli ({exc}); "
              "skipping subcommand checks", file=sys.stderr)
        known = None
    errors = []
    n_files = 0
    for md in iter_markdown(root):
        n_files += 1
        errors.extend(check_file(md))
        if known is not None:
            errors.extend(check_subcommands(md, known))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {n_files} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} problem(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

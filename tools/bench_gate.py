#!/usr/bin/env python
"""Fail CI when a gated bench metric regresses past its threshold.

Compares a freshly produced bench document (``repro bench
--emit-bench-json current.json``) against the committed baseline
(``BENCH_huffman.json``). Which metrics are gated — and by how much —
lives in the *baseline*'s ``"gate"`` object, so loosening or tightening
the gate is a reviewed change to a committed file, not a CI-config edit.

Deterministic simulated-clock metrics take tight thresholds; a
wall-clock metric may be gated only with a deliberately *loose*
threshold (it varies with the host — the gate is for catastrophes like
a serialized worker pool, not noise). A zero baseline admits no
relative change, so any movement in the regressing direction fails
outright (0 rollbacks -> 12 must never slip through as "+0.0%").
Exits 0 when every gated metric is within bounds (improvements always
pass), 1 on any regression past its threshold, 2 on malformed input.

Usage::

    python tools/bench_gate.py --baseline BENCH_huffman.json \
                               --current current.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_doc(path: str) -> dict:
    doc = json.loads(pathlib.Path(path).read_text())
    if not isinstance(doc.get("metrics"), dict):
        raise ValueError(f"{path}: not a bench document (no 'metrics' object)")
    return doc


def compare(baseline: dict, current: dict) -> list[str]:
    """Return one line per gated metric; lines starting with FAIL regress."""
    lines = []
    gate = baseline.get("gate", {})
    if not gate:
        raise ValueError("baseline has no 'gate' object — nothing to enforce")
    for name, spec in gate.items():
        base = baseline["metrics"].get(name)
        cur = current["metrics"].get(name)
        if base is None or cur is None:
            lines.append(f"FAIL {name}: missing from "
                         f"{'baseline' if base is None else 'current'} doc")
            continue
        higher = spec.get("higher_is_better", True)
        max_reg = float(spec["max_regression"])
        if base == 0:
            # A zero baseline admits no relative change: any movement in
            # the regressing direction is infinitely worse than baseline
            # (e.g. gated `rollbacks` going 0 -> 12 must FAIL, not pass
            # with a silent 0.0% "change"); movement the other way is an
            # unbounded improvement.
            if cur == base:
                change = 0.0
            else:
                worse = (cur < base) if higher else (cur > base)
                change = float("-inf" if higher else "inf") if worse \
                    else float("inf" if higher else "-inf")
        else:
            change = (cur - base) / abs(base)
        regression = -change if higher else change
        status = "FAIL" if regression > max_reg else "ok"
        lines.append(
            f"{status} {name}: baseline {base:,.3f} -> current {cur:,.3f} "
            f"({change:+.1%}, allowed regression {max_reg:.0%})")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed baseline doc (BENCH_huffman.json)")
    parser.add_argument("--current", required=True,
                        help="freshly emitted doc to check")
    args = parser.parse_args(argv)
    try:
        baseline = load_doc(args.baseline)
        current = load_doc(args.current)
        lines = compare(baseline, current)
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"bench gate error: {exc}", file=sys.stderr)
        return 2
    failed = [l for l in lines if l.startswith("FAIL")]
    for line in lines:
        print(line)
    print(f"bench gate: {'FAILED' if failed else 'passed'} "
          f"({len(lines) - len(failed)}/{len(lines)} gated metric(s) ok)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

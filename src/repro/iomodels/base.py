"""Arrival-model interface and the explicit-trace model."""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.sim.rng import make_rng

__all__ = ["ArrivalModel", "TraceArrivals"]


class ArrivalModel:
    """Generates block arrival times for one run.

    Subclasses implement :meth:`arrival_times`; callers schedule
    ``pipeline.feed_block`` at those instants (simulated executor) or sleep
    until them (threaded executor).
    """

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        """Arrival timestamp (µs) per block, non-decreasing, length ``n_blocks``."""
        raise NotImplementedError

    def _finalize(self, times: np.ndarray) -> np.ndarray:
        """Clamp, sort-check and freeze a generated schedule."""
        times = np.asarray(times, dtype=np.float64)
        if times.size and times[0] < 0:
            raise ExperimentError("arrival times must be non-negative")
        if np.any(np.diff(times) < 0):
            raise ExperimentError("arrival times must be non-decreasing")
        return times


class TraceArrivals(ArrivalModel):
    """Replay an explicit list of arrival timestamps (tests, recorded runs)."""

    def __init__(self, times) -> None:
        self._times = self._finalize(np.asarray(times, dtype=np.float64))

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        if n_blocks != self._times.size:
            raise ExperimentError(
                f"trace has {self._times.size} arrivals, {n_blocks} blocks requested"
            )
        return self._times.copy()


def jittered_schedule(
    n_blocks: int, start: float, per_block: float, jitter: float, rng
) -> np.ndarray:
    """Common helper: ``start + i·per_block`` with multiplicative jitter.

    ``jitter`` is the coefficient of variation of each inter-arrival gap;
    0 gives a perfectly regular (deterministic) stream.
    """
    if per_block < 0 or start < 0 or jitter < 0:
        raise ExperimentError("start, per_block and jitter must be non-negative")
    if jitter == 0:
        return start + per_block * np.arange(n_blocks, dtype=np.float64)
    gen = make_rng(rng)
    gaps = per_block * np.maximum(0.0, gen.normal(1.0, jitter, size=n_blocks))
    times = start + np.cumsum(gaps) - gaps[0]
    return times

"""Socket arrival model.

"Data is streamed via a tunnelled SSH socket connection over a long
distance" (§V-A): arrival time dominates everything (Fig. 7 shows ~6 s of
transfer for a 4 MB file — thousands of µs per 4 KB block), making the
encoder latency essentially free *if* speculation keeps up with arrivals —
and making rollbacks brutally visible, since re-encoding has to wait for no
one while fresh blocks trickle in.

Two modes live here:

* :class:`SocketModel` *simulates* that arrival process (jittered
  schedule) for the deterministic figures.
* :class:`LiveArrivals` records the *real* thing: the serve daemon (or
  any streaming caller) stamps each block as it lands off the wire, and
  the recorded schedule doubles as an :class:`ArrivalModel` — replay a
  measured live stream through the simulated executor afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.iomodels.base import ArrivalModel, jittered_schedule
from repro.obs.metrics import MONOTONIC_CLOCK

__all__ = ["LiveArrivals", "SocketModel"]


class SocketModel(ArrivalModel):
    """Slow, jittered block arrivals (long-distance tunnelled stream)."""

    def __init__(
        self,
        per_block_us: float = 5500.0,
        start_us: float = 2000.0,
        jitter: float = 0.15,
    ) -> None:
        self.per_block_us = per_block_us
        self.start_us = start_us
        self.jitter = jitter

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        return self._finalize(
            jittered_schedule(n_blocks, self.start_us, self.per_block_us, self.jitter, rng)
        )


class LiveArrivals(ArrivalModel):
    """Timestamps of real block arrivals (µs, monotonic, zero-based).

    The live arrival mode of the paper's §V-A scenario: whoever drains the
    wire calls :meth:`record` the instant block ``index`` lands, and the
    stamps accumulate on the monotonic clock every metric timer uses.
    Stamps are relative to the first recorded block, so the schedule is a
    drop-in :class:`ArrivalModel`: feed the same recorder back as
    ``RunConfig(io=recorder)`` to re-run a *measured* live stream through
    the simulated executor deterministically.
    """

    def __init__(self) -> None:
        self._t0: float | None = None
        self._times: list[float] = []

    def record(self, index: int, t_us: float | None = None) -> float:
        """Stamp block ``index``'s arrival; returns the relative stamp (µs).

        Blocks must be recorded in order (the wire delivers them in
        order); ``t_us`` overrides the clock for deterministic tests.
        """
        if index != len(self._times):
            raise ExperimentError(
                f"live arrivals must be recorded in order: got block "
                f"{index}, expected {len(self._times)}")
        now = MONOTONIC_CLOCK() * 1e6 if t_us is None else float(t_us)
        if self._t0 is None:
            self._t0 = now
        stamp = max(0.0, now - self._t0)
        if self._times and stamp < self._times[-1]:
            stamp = self._times[-1]  # clock ties under coarse timers
        self._times.append(stamp)
        return stamp

    @property
    def n_recorded(self) -> int:
        return len(self._times)

    def times_us(self) -> list[float]:
        """The recorded schedule so far (relative µs, non-decreasing)."""
        return list(self._times)

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        if n_blocks != len(self._times):
            raise ExperimentError(
                f"recorded {len(self._times)} live arrivals, "
                f"{n_blocks} blocks requested")
        return self._finalize(np.asarray(self._times, dtype=np.float64))

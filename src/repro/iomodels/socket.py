"""Socket arrival model.

"Data is streamed via a tunnelled SSH socket connection over a long
distance" (§V-A): arrival time dominates everything (Fig. 7 shows ~6 s of
transfer for a 4 MB file — thousands of µs per 4 KB block), making the
encoder latency essentially free *if* speculation keeps up with arrivals —
and making rollbacks brutally visible, since re-encoding has to wait for no
one while fresh blocks trickle in.
"""

from __future__ import annotations

import numpy as np

from repro.iomodels.base import ArrivalModel, jittered_schedule

__all__ = ["SocketModel"]


class SocketModel(ArrivalModel):
    """Slow, jittered block arrivals (long-distance tunnelled stream)."""

    def __init__(
        self,
        per_block_us: float = 5500.0,
        start_us: float = 2000.0,
        jitter: float = 0.15,
    ) -> None:
        self.per_block_us = per_block_us
        self.start_us = start_us
        self.jitter = jitter

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        return self._finalize(
            jittered_schedule(n_blocks, self.start_us, self.per_block_us, self.jitter, rng)
        )

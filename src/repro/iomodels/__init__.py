"""I/O arrival models.

The paper tests two input modes (§V-A): reading from a hard-disk cache
(very low latency — blocks are available almost back-to-back) and streaming
over a tunnelled SSH socket connection between distant servers (very slow,
arrival-dominated). To the runtime, an input mode is nothing but the block
arrival process; these models generate arrival timestamps.
"""

from repro.iomodels.base import ArrivalModel, TraceArrivals
from repro.iomodels.disk import DiskModel
from repro.iomodels.socket import LiveArrivals, SocketModel

__all__ = ["ArrivalModel", "TraceArrivals", "DiskModel", "LiveArrivals",
           "SocketModel"]

"""Disk-cache arrival model.

"Reading from a hard disk cache ... simulates very low I/O latency" (§V-A):
blocks stream in nearly back-to-back. Default: a 4 KB block every 8 µs
(~500 MB/s effective), deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.iomodels.base import ArrivalModel, jittered_schedule

__all__ = ["DiskModel"]


class DiskModel(ArrivalModel):
    """Fast, regular block arrivals."""

    def __init__(
        self,
        per_block_us: float = 8.0,
        start_us: float = 10.0,
        jitter: float = 0.0,
    ) -> None:
        self.per_block_us = per_block_us
        self.start_us = start_us
        self.jitter = jitter

    def arrival_times(self, n_blocks: int, rng=None) -> np.ndarray:
        return self._finalize(
            jittered_schedule(n_blocks, self.start_us, self.per_block_us, self.jitter, rng)
        )

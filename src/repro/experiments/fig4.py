"""Figure 4 — dispatch policies on the Cell platform.

Same sweep as Fig. 3 but on the Cell model. The Cell-specific finding: the
conservative policy performs poorly because multiple buffering keeps a deep
per-worker dispatch queue that always offers some non-speculative task, so
little speculation happens overall.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import FigureResult, policy_sweep

__all__ = ["run"]


def run(scale: ExperimentScale | None = None, seed: int = 0) -> FigureResult:
    result = policy_sweep(
        figure="fig4",
        title="Latency and runtime per dispatch policy, Cell / disk",
        platform="cell",
        scale=scale,
        seed=seed,
        run_kwargs={"trace": True},
    )
    txt_panel = "txt (cell)"
    cons = result.reports[(txt_panel, "conservative")]
    bal = result.reports[(txt_panel, "balanced")]
    result.notes.append(
        "conservative vs balanced avg latency on TXT: "
        f"{cons.avg_latency:,.0f} vs {bal.avg_latency:,.0f} µs "
        "(paper: conservative collapses on Cell due to multiple buffering)"
    )
    def first_spec_start(report):
        starts = [r for r in report.trace.of_kind("task_start")
                  if r.detail.get("speculative")
                  and r.detail.get("task_kind") == "encode"]
        return starts[0].time if starts else float("nan")

    result.notes.append(
        "first speculative encode dispatched at: "
        f"conservative {first_spec_start(cons):,.0f} µs vs "
        f"balanced {first_spec_start(bal):,.0f} µs — multiple buffering "
        "keeps conservative workers saturated with natural work"
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

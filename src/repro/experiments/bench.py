"""``repro bench`` — the performance baseline behind the CI regression gate.

Produces a small machine-readable document (``BENCH_huffman.json`` when
committed as the baseline) with two classes of numbers:

* **Gated** — deterministic simulated-clock throughput of the standard
  64-block txt workload (``blocks_per_virtual_s``). The simulator's
  virtual clock makes this byte-for-byte reproducible across machines, so
  CI can fail hard when a change slows the modelled pipeline down by more
  than the gate threshold (20%). Which metrics are gated, and by how
  much, is part of the *baseline* document (its ``"gate"`` object), so
  tightening the gate is a reviewed change to a committed file.
* **Informational** — wall-clock numbers that depend on the host: the
  flight-recorder overhead (same sim run with the event ring on vs off)
  and, with ``--full``, live procs+shm wall throughput. These are printed
  and recorded for humans; ``tools/bench_gate.py`` ignores them.

Workflow::

    repro bench --emit-bench-json current.json
    python tools/bench_gate.py --baseline BENCH_huffman.json \
                               --current current.json

The overhead leg is also how the "event log costs ≤5% with the ring
sink" acceptance number is measured: ``events_overhead_pct`` compares
median wall time over a few repeats.
"""

from __future__ import annotations

import statistics
import time
from typing import Any

from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman

__all__ = ["run_bench", "render_bench", "BENCH_SCHEMA", "GATE"]

#: Bench document schema version (bumped on incompatible layout changes).
BENCH_SCHEMA = 1

#: Gate spec embedded in every emitted doc: metric name -> max fractional
#: regression and direction. bench_gate.py reads the *baseline*'s copy.
GATE: dict[str, dict[str, Any]] = {
    "blocks_per_virtual_s": {"max_regression": 0.20, "higher_is_better": True},
}


def _sim_config(seed: int, blocks: int, *, events: bool) -> RunConfig:
    return RunConfig(
        workload="txt",
        n_blocks=blocks,
        seed=seed,
        executor="sim",
        events=events,
    )


def _time_run(cfg: RunConfig) -> tuple[float, Any]:
    t0 = time.perf_counter()
    report = run_huffman(config=cfg)
    return time.perf_counter() - t0, report


def run_bench(*, seed: int = 0, blocks: int = 64, quick: bool = True,
              repeats: int = 3) -> dict[str, Any]:
    """Run the bench suite; returns the bench document (JSON-safe dict).

    ``quick`` skips the live procs+shm wall-clock leg (the default — CI
    runs it separately under the transport tests); ``repeats`` controls
    how many timed runs the wall-clock medians are taken over.
    """
    # Gated leg: virtual throughput under the simulated clock. One run —
    # the simulator is deterministic, repeats would measure nothing.
    _, report = _time_run(_sim_config(seed, blocks, events=True))
    virtual_s = report.summary.completion_time_us / 1e6
    metrics: dict[str, float] = {
        "blocks_per_virtual_s": blocks / virtual_s if virtual_s else 0.0,
        "virtual_completion_us": report.summary.completion_time_us,
        "rollbacks": float(report.summary.rollbacks),
    }

    # Informational leg: flight-recorder overhead, ring sink only.
    on = [_time_run(_sim_config(seed, blocks, events=True))[0]
          for _ in range(repeats)]
    off = [_time_run(_sim_config(seed, blocks, events=False))[0]
           for _ in range(repeats)]
    wall_on = statistics.median(on)
    wall_off = statistics.median(off)
    metrics["wall_sim_s"] = wall_off
    metrics["events_overhead_pct"] = (
        100.0 * (wall_on - wall_off) / wall_off if wall_off else 0.0)

    if not quick:
        wall, live = _time_run(RunConfig(
            workload="txt", n_blocks=blocks, seed=seed,
            executor="procs", transport="shm", workers=2,
        ))
        metrics["wall_procs_shm_s"] = wall
        metrics["blocks_per_wall_s_procs_shm"] = blocks / wall if wall else 0.0
        del live

    return {
        "schema": BENCH_SCHEMA,
        "suite": "huffman",
        "workload": "txt",
        "blocks": blocks,
        "seed": seed,
        "gate": GATE,
        "metrics": metrics,
    }


def render_bench(doc: dict[str, Any]) -> str:
    """Human-readable table for one bench document."""
    gate = doc.get("gate", {})
    lines = [f"repro bench — suite={doc.get('suite')} "
             f"workload={doc.get('workload')} blocks={doc.get('blocks')} "
             f"seed={doc.get('seed')}"]
    for name, value in doc.get("metrics", {}).items():
        tag = ""
        if name in gate:
            tag = (f"   [gated: ±{gate[name]['max_regression']:.0%}"
                   f"{' higher-is-better' if gate[name].get('higher_is_better') else ''}]")
        lines.append(f"  {name:<28} {value:>14,.3f}{tag}")
    return "\n".join(lines)

"""``repro bench`` — the performance baseline behind the CI regression gate.

Produces a small machine-readable document (``BENCH_huffman.json`` when
committed as the baseline) with two classes of numbers:

* **Gated** — deterministic simulated-clock throughput of the standard
  64-block txt workload (``blocks_per_virtual_s``, 20% threshold; the
  virtual clock makes it byte-for-byte reproducible across machines),
  the run's ``rollbacks`` count (lower is better, zero tolerance — also
  deterministic), and **live procs wall-clock throughput**
  (``blocks_per_wall_s_procs``, procs+shm, deliberately loose 80%
  threshold: wall time varies with the host, so this gate exists to
  catch catastrophic dispatch regressions — a serialized pool, a
  head-of-line stall — not 10% noise). Which metrics are gated, and by
  how much, is part of the *baseline* document (its ``"gate"`` object),
  so tightening the gate is a reviewed change to a committed file.
* **Informational** — remaining wall-clock numbers that depend on the
  host: the flight-recorder overhead (same sim run with the event ring
  on vs off). Printed and recorded for humans; ``tools/bench_gate.py``
  ignores them.

Workflow::

    repro bench --emit-bench-json current.json
    python tools/bench_gate.py --baseline BENCH_huffman.json \
                               --current current.json

The overhead leg is also how the "event log costs ≤5% with the ring
sink" acceptance number is measured: ``events_overhead_pct`` compares
median wall time over a few repeats.
"""

from __future__ import annotations

import statistics
import time
from typing import Any

from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman

__all__ = ["run_bench", "render_bench", "BENCH_SCHEMA", "GATE"]

#: Bench document schema version (bumped on incompatible layout changes).
BENCH_SCHEMA = 1

#: Gate spec embedded in every emitted doc: metric name -> max fractional
#: regression and direction. bench_gate.py reads the *baseline*'s copy.
GATE: dict[str, dict[str, Any]] = {
    "blocks_per_virtual_s": {"max_regression": 0.20, "higher_is_better": True},
    # Deterministic under the simulated clock; any new rollback is a
    # behaviour change, and the zero baseline means *any* increase fails
    # (see the zero-baseline rule in tools/bench_gate.py).
    "rollbacks": {"max_regression": 0.0, "higher_is_better": False},
    # Wall clock varies with the host: the loose threshold catches a
    # dispatch catastrophe (serialized pool, head-of-line stall), not
    # noise.
    "blocks_per_wall_s_procs": {"max_regression": 0.80,
                                "higher_is_better": True},
}


def _sim_config(seed: int, blocks: int, *, events: bool) -> RunConfig:
    return RunConfig(
        workload="txt",
        n_blocks=blocks,
        seed=seed,
        executor="sim",
        events=events,
    )


def _time_run(cfg: RunConfig) -> tuple[float, Any]:
    t0 = time.perf_counter()
    report = run_huffman(config=cfg)
    return time.perf_counter() - t0, report


def run_bench(*, seed: int = 0, blocks: int = 64, quick: bool = True,
              repeats: int = 3) -> dict[str, Any]:
    """Run the bench suite; returns the bench document (JSON-safe dict).

    The live procs+shm wall-clock leg always runs (it feeds the gated
    ``blocks_per_wall_s_procs`` metric — best-of-N to damp host noise);
    ``quick`` (the default) keeps it at 2 timed runs, ``--full`` uses
    ``repeats``. ``repeats`` also controls the flight-recorder overhead
    medians.
    """
    # Gated leg: virtual throughput under the simulated clock. One run —
    # the simulator is deterministic, repeats would measure nothing.
    _, report = _time_run(_sim_config(seed, blocks, events=True))
    virtual_s = report.summary.completion_time_us / 1e6
    metrics: dict[str, float] = {
        "blocks_per_virtual_s": blocks / virtual_s if virtual_s else 0.0,
        "virtual_completion_us": report.summary.completion_time_us,
        "rollbacks": float(report.summary.rollbacks),
    }

    # Informational leg: flight-recorder overhead, ring sink only.
    on = [_time_run(_sim_config(seed, blocks, events=True))[0]
          for _ in range(repeats)]
    off = [_time_run(_sim_config(seed, blocks, events=False))[0]
           for _ in range(repeats)]
    wall_on = statistics.median(on)
    wall_off = statistics.median(off)
    metrics["wall_sim_s"] = wall_off
    metrics["events_overhead_pct"] = (
        100.0 * (wall_on - wall_off) / wall_off if wall_off else 0.0)

    # Gated wall-clock leg: live procs+shm throughput. Best-of-N damps
    # scheduler noise; the gate threshold is loose on top of that.
    n_procs = 2 if quick else max(repeats, 2)
    procs_walls = [
        _time_run(RunConfig(
            workload="txt", n_blocks=blocks, seed=seed,
            executor="procs", transport="shm", workers=2,
        ))[0]
        for _ in range(n_procs)
    ]
    wall_procs = min(procs_walls)
    metrics["wall_procs_shm_s"] = wall_procs
    metrics["blocks_per_wall_s_procs"] = (
        blocks / wall_procs if wall_procs else 0.0)

    return {
        "schema": BENCH_SCHEMA,
        "suite": "huffman",
        "workload": "txt",
        "blocks": blocks,
        "seed": seed,
        "gate": GATE,
        "metrics": metrics,
    }


def render_bench(doc: dict[str, Any]) -> str:
    """Human-readable table for one bench document."""
    gate = doc.get("gate", {})
    lines = [f"repro bench — suite={doc.get('suite')} "
             f"workload={doc.get('workload')} blocks={doc.get('blocks')} "
             f"seed={doc.get('seed')}"]
    for name, value in doc.get("metrics", {}).items():
        tag = ""
        if name in gate:
            tag = (f"   [gated: ±{gate[name]['max_regression']:.0%}"
                   f"{' higher-is-better' if gate[name].get('higher_is_better') else ''}]")
        lines.append(f"  {name:<28} {value:>14,.3f}{tag}")
    return "\n".join(lines)

"""Unified Job API: one registry, one config object, one result shape.

The repo grew three divergent entry points — ``run_huffman(config=...)``,
``run_kmeans_experiment(...)`` and the filter runner — each with its own
keyword vocabulary and its own report dataclass. The jobs registry
collapses them into a single seam, mirroring :mod:`repro.sre.registry`
(``EXECUTORS``) exactly:

* :data:`JOBS` maps an app name to its runner callable; applications can
  register their own job kinds with :func:`register_job`.
* :class:`~repro.experiments.config.RunConfig` is the single config
  object — its ``app`` field names the registered runner and
  ``RunConfig.for_app`` fills per-app conventional defaults.
* :class:`RunReport` is the single result shape. App-specific scalars
  (filter response error, kmeans inertia, ...) ride in ``extras``;
  every app populates ``output_sha256``, the byte-identity oracle both
  `repro replay` and the serve-vs-one-shot tests compare against.

Callers that know the app can keep calling the runner directly; callers
that don't — the `repro serve` daemon above all — dispatch through
:func:`run_job`::

    from repro.experiments.jobs import run_job
    report = run_job(RunConfig.for_app("kmeans", n_blocks=24))

:class:`JobResources` carries *runtime resources* (as opposed to run
parameters): a shared metrics registry, an injected decision source, and
— for the long-lived service — a warm executor factory, a caller-owned
shm :class:`~repro.sre.shm.BlockStore` the runner must not close, and a
live block source for ``io="live"`` streaming arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.metrics.summary import RunSummary
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "JOBS",
    "AppResult",
    "JobResources",
    "RunReport",
    "job_names",
    "register_job",
    "run_job",
]

#: name -> runner callable with the unified signature
#: ``fn(config, *, metrics=None, decisions=None, resources=None) -> RunReport``.
JOBS: dict[str, Callable[..., "RunReport"]] = {}


def register_job(name: str, fn: Callable[..., "RunReport"]) -> None:
    """Register a job runner under ``name`` (last registration wins).

    Runner modules self-register at import time, exactly like executor
    back-ends do with :func:`repro.sre.registry.register_executor`.
    """
    if not name or not isinstance(name, str):
        raise ExperimentError("job name must be a non-empty string")
    JOBS[name] = fn


def job_names() -> tuple[str, ...]:
    """Registered job names, sorted (for CLI choices and error messages)."""
    _ensure_registered()
    return tuple(sorted(JOBS))


def _ensure_registered() -> None:
    # Import the bundled runner modules for their registration side
    # effect; application-registered jobs are already in JOBS.
    import repro.experiments.runner  # noqa: F401
    import repro.filterapp.runner  # noqa: F401
    import repro.kmeansapp.runner  # noqa: F401


def run_job(
    config: RunConfig,
    *,
    metrics: MetricsRegistry | None = None,
    decisions: object | None = None,
    resources: "JobResources | None" = None,
) -> "RunReport":
    """Run ``config.app`` through its registered runner.

    The single dispatch seam the serve daemon (and any other app-generic
    caller) uses: every job kind takes the same ``RunConfig`` and returns
    the same :class:`RunReport`, so flight-recorder logs and replay stay
    uniform across apps.
    """
    if not isinstance(config, RunConfig):
        raise ExperimentError(
            f"config must be a RunConfig, got {type(config).__name__}")
    _ensure_registered()
    try:
        fn = JOBS[config.app]
    except KeyError:
        raise ExperimentError(
            f"unknown app {config.app!r}; registered: "
            f"{', '.join(job_names())}") from None
    return fn(config, metrics=metrics, decisions=decisions,
              resources=resources)


@dataclass
class JobResources:
    """Runtime resources a caller threads into a run (not run parameters).

    Everything here is optional; a one-shot run passes nothing. The serve
    daemon uses every field:

    ``executor_factory``
        ``fn(runtime) -> LiveExecutor`` building the run's executor around
        an already-warm worker pool; when set, the runner calls it instead
        of :func:`repro.sre.registry.make_executor`.
    ``store``
        A caller-owned :class:`~repro.sre.shm.BlockStore`. The runner uses
        it for the shm transport but must **not** close it — the arenas
        outlive the job. Per-job blocks still reclaim at refcount zero.
    ``block_source``
        Iterable of block ``bytes`` for ``io="live"``: the runner pulls
        (blocking on real arrivals, e.g. a socket drain) instead of
        synthesising a workload.
    ``arrivals``
        A :class:`~repro.iomodels.socket.LiveArrivals` recorder to stamp
        live arrivals into; one is created when omitted. The recorded
        schedule lands in ``report.extras["live_arrivals_us"]``.
    ``trace``
        A :class:`~repro.obs.spans.TraceContext` (the serve daemon's
        execute-span context). The runner stamps it onto the job's event
        log, so every event of the run — and, through the dispatch batch
        headers, every worker-side ``worker_exec`` event — carries the
        submitting request's ``trace_id``.
    """

    executor_factory: Callable[..., Any] | None = None
    store: Any | None = None
    block_source: Any | None = None
    arrivals: Any | None = None
    trace: Any | None = None


@dataclass
class AppResult:
    """Minimal result shape for apps without a dedicated pipeline result.

    Mirrors the slice of ``HuffmanPipeline``'s ``PipelineResult`` that
    :class:`RunReport`'s convenience properties rely on, so filter/kmeans
    reports delegate identically.
    """

    outcome: str
    latencies: np.ndarray
    arrivals: np.ndarray
    completion_time: float

    @property
    def avg_latency(self) -> float:
        return float(self.latencies.mean()) if self.latencies.size else 0.0


@dataclass
class RunReport:
    """Everything one job run produces — the single result shape.

    ``result`` is the app's pipeline result (huffman's ``PipelineResult``
    or an :class:`AppResult`); either way it exposes ``outcome``,
    ``latencies``, ``arrivals``, ``avg_latency`` and ``completion_time``.
    App-specific scalars live in ``extras`` (filter: ``response_error``,
    ``output_ok``; kmeans: ``inertia``, ``labels_ok``; both: ``rollbacks``,
    ``speculations``; live runs: ``live_arrivals_us``).
    """

    label: str
    result: Any
    summary: RunSummary | None
    utilisation: float
    #: output verification verdict: huffman round-trip, filter re-filter
    #: check, kmeans label re-assignment check; None when skipped.
    roundtrip_ok: bool | None
    config: Any
    platform_name: str
    policy: str
    workers: int
    #: the registered job name that produced this report.
    app: str = "huffman"
    #: populated when config.trace=True: the full runtime trace.
    trace: object | None = None
    #: the run's MetricsRegistry (always populated): counters, gauges and
    #: histograms from every layer — export with repro.obs.exporters.
    metrics: MetricsRegistry | None = None
    #: the full run parameterisation — makes the report (and any metrics
    #: export stamped with run_config.to_dict()) self-describing.
    run_config: RunConfig | None = None
    #: the run's flight recorder (see docs/flight-recorder.md): the ring
    #: of structured events with causal IDs; None when events=False.
    events: EventLog | None = None
    #: human-readable anomaly warnings (repro.obs.anomaly detectors).
    warnings: list[str] | None = None
    #: sha256 of the committed output bytes — the byte-identity oracle
    #: `repro replay` and the serve-vs-one-shot tests verify against.
    output_sha256: str | None = None
    #: app-specific scalars that don't generalise across job kinds.
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def latencies(self) -> np.ndarray:
        """Per-element latency series (the paper's main y-axis)."""
        return self.result.latencies

    @property
    def arrivals(self) -> np.ndarray:
        return self.result.arrivals

    @property
    def avg_latency(self) -> float:
        return self.result.avg_latency

    @property
    def completion_time(self) -> float:
        return self.result.completion_time

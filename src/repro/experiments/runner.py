"""One-call experiment runner: workload → pipeline → run → report.

:func:`run_huffman` is the huffman entry point used by the examples, the
figure modules and the benchmark harness, and the runner registered as
the ``"huffman"`` job kind (see :mod:`repro.experiments.jobs`). It wires
a workload, an I/O arrival model, a platform and a pipeline configuration
onto an executor back-end (resolved through :mod:`repro.sre.registry`),
runs to quiescence, verifies the compressed output round-trips, and
returns a :class:`~repro.experiments.jobs.RunReport`.

The only calling convention is a frozen
:class:`~repro.experiments.config.RunConfig`::

    report = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                          executor="procs", transport="shm"))

(The bare-keyword deprecation shim from the pre-RunConfig era is gone;
``RunConfig.from_kwargs(**kw)`` is the one-line migration for callers
that still hold keyword dicts.)

Besides the synthetic ``disk``/``socket`` arrival models, ``io="live"``
feeds real blocks as they arrive: the runner pulls from
``resources.block_source`` (e.g. the serve daemon's socket drain) and
timestamps each arrival with a
:class:`~repro.iomodels.socket.LiveArrivals` recorder — the paper's §V-A
tunnelled-socket scenario measured for real instead of simulated.
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import JobResources, RunReport, register_job
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.iomodels import ArrivalModel, DiskModel, SocketModel
from repro.iomodels.socket import LiveArrivals
from repro.metrics.summary import summarize_run
from repro.obs.anomaly import scan_run
from repro.obs.events import EventLog
from repro.obs.exporters import PeriodicSnapshotWriter
from repro.obs.metrics import MetricsRegistry
from repro.platforms import get_platform
from repro.sim.rng import make_rng
from repro.sim.trace import TraceRecorder
from repro.sre.registry import make_executor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore

__all__ = ["RunConfig", "RunReport", "run_huffman", "split_blocks"]


def split_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Break input data into 4 KB-style blocks (last may be partial)."""
    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    if not data:
        raise ExperimentError("empty input data")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]


def _resolve_io(io) -> ArrivalModel:
    if isinstance(io, ArrivalModel):
        return io
    name = str(io).lower()
    if name == "disk":
        return DiskModel()
    if name == "socket":
        return SocketModel()
    raise ExperimentError(
        f"unknown io model {io!r}; choose 'disk', 'socket' or 'live'")


def run_huffman(
    config: RunConfig,
    *,
    metrics: MetricsRegistry | None = None,
    decisions: object | None = None,
    resources: JobResources | None = None,
) -> RunReport:
    """Run one Huffman encoding experiment on a chosen executor back-end.

    Args:
        config: a :class:`RunConfig` describing the run — the only
            calling convention. See RunConfig for every field: workload,
            geometry, platform, speculation knobs, ``executor`` (any name
            registered with :mod:`repro.sre.registry` — "sim" runs on
            deterministic virtual time and reproduces the paper's figures,
            "threads"/"procs" run on the wall clock), and ``transport``
            ("pickle" ships block bytes per payload; "shm" places each
            block into shared memory once and ships refs — the zero-copy
            path for the process back-end, see docs/transport.md).
        metrics: a registry to record into (one is created otherwise);
            pass a shared registry to aggregate several runs. A runtime
            resource, not a run parameter — hence not part of RunConfig.
        decisions: optional :class:`~repro.core.decisions.DecisionSource`
            injected into the runtime — the seam `repro replay` uses to
            force a recorded schedule. Like ``metrics``, a runtime
            resource rather than a run parameter.
        resources: optional :class:`~repro.experiments.jobs.JobResources`
            — warm executor factory, caller-owned shm store, live block
            source. The seam the `repro serve` daemon threads its
            long-lived pool and arenas through.

    Returns a :class:`RunReport`; ``report.metrics`` carries the registry
    and ``report.run_config`` the resolved configuration.
    """
    if not isinstance(config, RunConfig):
        raise ExperimentError(
            f"config must be a RunConfig, got {type(config).__name__} — "
            "bare keywords are no longer accepted; build one with "
            "RunConfig(...) or RunConfig.from_kwargs(**kw)")
    cfg = config
    if cfg.app != "huffman":
        raise ExperimentError(
            f"run_huffman got config.app={cfg.app!r}; dispatch other apps "
            "through repro.experiments.jobs.run_job")
    if cfg.policy == "nonspec":
        # Shorthand used throughout the figures: the paper's baseline run.
        cfg = replace(cfg, speculative=False, policy="conservative")

    live_feed = isinstance(cfg.io, str) and cfg.io == "live"
    rng = make_rng(cfg.seed)
    if live_feed:
        # Blocks arrive from the caller's source (serve socket drain);
        # nothing to synthesise. n_blocks sizes the pipeline up-front.
        if cfg.executor == "sim":
            raise ExperimentError(
                "io='live' feeds wall-clock arrivals; it requires a live "
                "executor (threads/procs), not 'sim'")
        if resources is None or resources.block_source is None:
            raise ExperimentError(
                "io='live' requires resources.block_source (an iterable "
                "of block bytes, e.g. the serve daemon's stream drain)")
        if cfg.n_blocks is None:
            raise ExperimentError("n_blocks is required with io='live'")
        blocks: list[bytes] | None = None
        data: bytes | None = None
        n_blocks = cfg.n_blocks
        workload_name = "live"
    else:
        if isinstance(cfg.workload, str):
            if cfg.n_blocks is None:
                raise ExperimentError("n_blocks is required with a named workload")
            data = get_workload_data(cfg.workload, cfg.n_blocks * cfg.block_size, rng)
            workload_name = cfg.workload
        else:
            data = bytes(cfg.workload)
            workload_name = "custom"
        blocks = split_blocks(data, cfg.block_size)
        if cfg.n_blocks is not None and len(blocks) != cfg.n_blocks:
            raise ExperimentError(
                f"data yields {len(blocks)} blocks, expected {cfg.n_blocks}"
            )
        n_blocks = len(blocks)

    plat = get_platform(cfg.platform) if isinstance(cfg.platform, str) else cfg.platform
    io_model = None if live_feed else _resolve_io(cfg.io)
    hconfig = HuffmanConfig(
        block_size=cfg.block_size,
        reduce_ratio=cfg.reduce_ratio,
        offset_fanout=cfg.offset_fanout,
        speculative=cfg.speculative,
        step=cfg.step,
        verification=cfg.verification,
        verify_k=cfg.verify_k,
        tolerance=cfg.tolerance,
    )

    registry = metrics if metrics is not None else MetricsRegistry()
    # The header meta makes the JSONL self-describing enough to replay:
    # the full run parameterisation rides along with the events.
    events = EventLog(capacity=cfg.events_capacity, path=cfg.events_out,
                      enabled=cfg.events,
                      meta={"app": "huffman", "run_config": cfg.to_dict()})
    if resources is not None and resources.trace is not None:
        # Served job: every event of this run joins the submit's trace.
        events.set_trace_context(resources.trace)
    runtime = Runtime(
        trace=TraceRecorder(enabled=cfg.trace),
        metrics=registry,
        events=events,
        depth_first=cfg.depth_first,
        control_first=cfg.control_first,
        decisions=decisions,
    )
    store: BlockStore | None = None
    owns_store = True
    if cfg.transport == "shm":
        # The shared-memory transport works under every back-end (local
        # resolution is a cache hit); it pays off on "procs", where block
        # bytes stop crossing the coordinator→worker pipes.
        if resources is not None and resources.store is not None:
            store = resources.store  # warm arenas owned by the daemon
            owns_store = False
        else:
            store = BlockStore(metrics=registry, events=events)
    writer = None
    if cfg.metrics_out is not None:
        writer = PeriodicSnapshotWriter(
            registry, cfg.metrics_out, interval_s=cfg.metrics_interval_s,
            meta=cfg.to_dict(),
        ).start()
    live_arrivals: LiveArrivals | None = None
    pipeline: HuffmanPipeline | None = None
    try:
        if cfg.executor == "sim":
            engine = make_executor(
                "sim", runtime, platform=plat, policy=cfg.policy, workers=cfg.workers
            )
            pipeline = HuffmanPipeline(runtime, hconfig, n_blocks, store=store)
            arrivals = io_model.arrival_times(n_blocks, rng)
            for index, (when, block) in enumerate(zip(arrivals, blocks)):
                engine.sim.schedule_at(
                    float(when),
                    lambda i=index, b=block: pipeline.feed_block(i, b),
                )
            end = engine.run()
        else:
            import time as _time

            if resources is not None and resources.executor_factory is not None:
                # Warm path: the caller (serve daemon) builds the executor
                # around an already-started worker pool.
                engine = resources.executor_factory(runtime)
            else:
                live_opts: dict[str, object] = {}
                if cfg.executor in ("procs", "dist"):
                    # Supervisor / fault-injection knobs are specific to the
                    # process-pool back-ends; other registered back-ends
                    # would reject the keywords.
                    live_opts.update(
                        store=store,
                        fault_plan=cfg.fault_plan,
                        steal=cfg.steal,
                        dispatch_timeout_s=cfg.dispatch_timeout_s,
                        max_task_retries=cfg.max_task_retries,
                        retry_backoff_s=cfg.retry_backoff_s,
                        max_worker_respawns=cfg.max_worker_respawns,
                        harvest_timeout_s=cfg.harvest_timeout_s,
                    )
                if cfg.executor == "dist":
                    live_opts.update(pool=cfg.pool)
                engine = make_executor(
                    cfg.executor, runtime, policy=cfg.policy,
                    workers=cfg.workers if cfg.workers is not None else 4,
                    **live_opts,
                )
            pipeline = HuffmanPipeline(runtime, hconfig, n_blocks, store=store)
            engine.start()
            if live_feed:
                live_arrivals = (resources.arrivals
                                 if resources.arrivals is not None
                                 else LiveArrivals())
                received: list[bytes] = []
                for index, block in enumerate(resources.block_source):
                    if index >= n_blocks:
                        raise ExperimentError(
                            f"live source produced more than the declared "
                            f"{n_blocks} blocks")
                    block = bytes(block)
                    live_arrivals.record(index)
                    received.append(block)
                    engine.submit(pipeline.feed_block, index, block)
                if len(received) != n_blocks:
                    raise ExperimentError(
                        f"live source produced {len(received)} blocks, "
                        f"declared {n_blocks}")
                data = b"".join(received)
            else:
                for index, block in enumerate(blocks):
                    engine.submit(pipeline.feed_block, index, block)
                    if cfg.feed_gap_s:
                        _time.sleep(cfg.feed_gap_s)
            engine.close_input()
            if not engine.wait_idle(timeout=600.0):
                raise ExperimentError("live executor did not drain within 600s")
            engine.shutdown()
            engine.raise_errors()
            end = engine.now
        result = pipeline.result(end)
        ok: bool | None = None
        if cfg.verify_roundtrip:
            ok = pipeline.verify_roundtrip(data)
            if not ok:
                raise ExperimentError("round-trip verification failed: corrupt output")
        # Post-run anomaly scan: detectors emit anomaly_* events (before
        # the JSONL sink closes) and produce the report's warnings.
        run_warnings = scan_run(events, registry)
        # Terminal run_result event: outcome + output digest, the oracle
        # replay compares against for byte-identity.
        output_sha: str | None = None
        if cfg.events:
            packed, total_bits = pipeline.assemble()
            output_sha = hashlib.sha256(packed.tobytes()).hexdigest()
            manager = getattr(pipeline, "manager", None)
            events.emit(
                "run_result",
                outcome=manager.outcome if manager is not None else None,
                compressed_bits=int(total_bits),
                output_sha256=output_sha,
                roundtrip_ok=ok,
            )
    finally:
        # Each cleanup in its own finally clause: a raising store.close()
        # must not eat the final metrics snapshot or the event sink flush.
        try:
            if store is not None:
                if owns_store:
                    store.close()  # releases leftover refs, unlinks segments
                elif pipeline is not None:
                    # Caller-owned warm arenas: the close sweep never runs,
                    # so this run drains its own leftover refs instead.
                    pipeline.release_store_refs()
        finally:
            try:
                if writer is not None:
                    writer.stop()  # final snapshot: the drained end state
            finally:
                events.close()

    run_label = cfg.label or (
        f"{workload_name}/{plat.name}/{cfg.policy}"
        + ("" if cfg.executor == "sim" else f"/{cfg.executor}")
        + ("" if cfg.transport == "pickle" else f"/{cfg.transport}")
        + ("" if cfg.speculative else "/nonspec")
    )
    if cfg.executor == "sim":
        n_workers = cfg.workers if cfg.workers is not None else plat.default_workers
    else:
        n_workers = engine.n_workers
    extras: dict[str, object] = {}
    if live_arrivals is not None:
        extras["live_arrivals_us"] = live_arrivals.times_us()
    return RunReport(
        label=run_label,
        result=result,
        summary=summarize_run(run_label, result),
        utilisation=engine.utilisation(),
        roundtrip_ok=ok,
        config=hconfig,
        platform_name=plat.name,
        policy=cfg.policy,
        workers=n_workers,
        app="huffman",
        trace=runtime.trace if cfg.trace else None,
        metrics=registry,
        run_config=cfg,
        events=events if cfg.events else None,
        warnings=run_warnings,
        output_sha256=output_sha,
        extras=extras,
    )


def get_workload_data(name: str, size: int, rng) -> bytes:
    """Generate ``size`` bytes of the named workload (registry lookup)."""
    from repro.workloads import get_workload

    return get_workload(name).generate(size, rng)


register_job("huffman", run_huffman)

"""One-call experiment runner: workload → pipeline → run → report.

:func:`run_huffman` is the public entry point used by the examples, the
figure modules and the benchmark harness. It wires a workload, an I/O
arrival model, a platform and a pipeline configuration onto an executor
back-end (resolved through :mod:`repro.sre.registry`), runs to quiescence,
verifies the compressed output round-trips, and returns a
:class:`RunReport`.

The primary calling convention is a frozen
:class:`~repro.experiments.config.RunConfig`::

    report = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                          executor="procs", transport="shm"))

Bare keywords (``run_huffman(workload="txt", n_blocks=64)``) still work as
a deprecation shim — they are folded into a RunConfig with a one-time
warning — so every pre-existing call site keeps running while new code
gets a value object it can stamp into exports and sweep over.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline, PipelineResult
from repro.iomodels import ArrivalModel, DiskModel, SocketModel
from repro.metrics.summary import RunSummary, summarize_run
from repro.obs.anomaly import scan_run
from repro.obs.events import EventLog
from repro.obs.exporters import PeriodicSnapshotWriter
from repro.obs.metrics import MetricsRegistry
from repro.platforms import Platform, get_platform
from repro.sim.rng import make_rng
from repro.sim.trace import TraceRecorder
from repro.sre.registry import make_executor
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockStore
from repro.workloads import get_workload

__all__ = ["RunConfig", "RunReport", "run_huffman", "split_blocks"]

#: one-time flag for the bare-keyword deprecation warning.
_warned_kwargs = False


def split_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Break input data into 4 KB-style blocks (last may be partial)."""
    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    if not data:
        raise ExperimentError("empty input data")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]


@dataclass
class RunReport:
    """Everything one experiment run produces."""

    label: str
    result: PipelineResult
    summary: RunSummary
    utilisation: float
    roundtrip_ok: bool | None
    config: HuffmanConfig
    platform_name: str
    policy: str
    workers: int
    #: populated when run_huffman(..., trace=True): the full runtime trace.
    trace: object | None = None
    #: the run's MetricsRegistry (always populated): counters, gauges and
    #: histograms from every layer — export with repro.obs.exporters.
    metrics: MetricsRegistry | None = None
    #: the full run parameterisation — makes the report (and any metrics
    #: export stamped with run_config.to_dict()) self-describing.
    run_config: RunConfig | None = None
    #: the run's flight recorder (see docs/flight-recorder.md): the ring
    #: of structured events with causal IDs; None when events=False.
    events: EventLog | None = None
    #: human-readable anomaly warnings (repro.obs.anomaly detectors).
    warnings: list[str] | None = None
    #: sha256 of the assembled compressed output (populated when events
    #: are on) — the byte-identity oracle `repro replay` verifies against.
    output_sha256: str | None = None

    @property
    def latencies(self) -> np.ndarray:
        """Per-element latency series (the paper's main y-axis)."""
        return self.result.latencies

    @property
    def arrivals(self) -> np.ndarray:
        return self.result.arrivals

    @property
    def avg_latency(self) -> float:
        return self.result.avg_latency

    @property
    def completion_time(self) -> float:
        return self.result.completion_time


def _resolve_io(io) -> ArrivalModel:
    if isinstance(io, ArrivalModel):
        return io
    name = str(io).lower()
    if name == "disk":
        return DiskModel()
    if name == "socket":
        return SocketModel()
    raise ExperimentError(f"unknown io model {io!r}; choose 'disk' or 'socket'")


def _coerce_config(config: RunConfig | None, kwargs: dict) -> RunConfig:
    """Resolve the calling convention: RunConfig object or bare keywords."""
    global _warned_kwargs
    if config is not None:
        if kwargs:
            raise ExperimentError(
                "pass either config=RunConfig(...) or bare keywords, not both "
                f"(got config plus {sorted(kwargs)})"
            )
        if not isinstance(config, RunConfig):
            raise ExperimentError(
                f"config must be a RunConfig, got {type(config).__name__}"
            )
        return config
    if kwargs and not _warned_kwargs:
        _warned_kwargs = True
        warnings.warn(
            "calling run_huffman with bare keywords is deprecated; "
            "pass config=RunConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RunConfig.from_kwargs(**kwargs)


def run_huffman(
    config: RunConfig | None = None,
    *,
    metrics: MetricsRegistry | None = None,
    decisions: object | None = None,
    **kwargs,
) -> RunReport:
    """Run one Huffman encoding experiment on a chosen executor back-end.

    Args:
        config: a :class:`RunConfig` describing the run — the primary
            calling convention. See RunConfig for every field: workload,
            geometry, platform, speculation knobs, ``executor`` (any name
            registered with :mod:`repro.sre.registry` — "sim" runs on
            deterministic virtual time and reproduces the paper's figures,
            "threads"/"procs" run on the wall clock), and ``transport``
            ("pickle" ships block bytes per payload; "shm" places each
            block into shared memory once and ships refs — the zero-copy
            path for the process back-end, see docs/transport.md).
        metrics: a registry to record into (one is created otherwise);
            pass a shared registry to aggregate several runs. A runtime
            resource, not a run parameter — hence not part of RunConfig.
        decisions: optional :class:`~repro.core.decisions.DecisionSource`
            injected into the runtime — the seam `repro replay` uses to
            force a recorded schedule. Like ``metrics``, a runtime
            resource rather than a run parameter.
        **kwargs: deprecated bare-keyword form; folded into a RunConfig
            with a one-time DeprecationWarning.

    Returns a :class:`RunReport`; ``report.metrics`` carries the registry
    and ``report.run_config`` the resolved configuration.
    """
    cfg = _coerce_config(config, kwargs)
    if cfg.policy == "nonspec":
        # Shorthand used throughout the figures: the paper's baseline run.
        cfg = replace(cfg, speculative=False, policy="conservative")

    rng = make_rng(cfg.seed)
    if isinstance(cfg.workload, str):
        if cfg.n_blocks is None:
            raise ExperimentError("n_blocks is required with a named workload")
        data = get_workload(cfg.workload).generate(cfg.n_blocks * cfg.block_size, rng)
        workload_name = cfg.workload
    else:
        data = bytes(cfg.workload)
        workload_name = "custom"
    blocks = split_blocks(data, cfg.block_size)
    if cfg.n_blocks is not None and len(blocks) != cfg.n_blocks:
        raise ExperimentError(
            f"data yields {len(blocks)} blocks, expected {cfg.n_blocks}"
        )

    plat = get_platform(cfg.platform) if isinstance(cfg.platform, str) else cfg.platform
    io_model = _resolve_io(cfg.io)
    hconfig = HuffmanConfig(
        block_size=cfg.block_size,
        reduce_ratio=cfg.reduce_ratio,
        offset_fanout=cfg.offset_fanout,
        speculative=cfg.speculative,
        step=cfg.step,
        verification=cfg.verification,
        verify_k=cfg.verify_k,
        tolerance=cfg.tolerance,
    )

    registry = metrics if metrics is not None else MetricsRegistry()
    # The header meta makes the JSONL self-describing enough to replay:
    # the full run parameterisation rides along with the events.
    events = EventLog(capacity=cfg.events_capacity, path=cfg.events_out,
                      enabled=cfg.events,
                      meta={"app": "huffman", "run_config": cfg.to_dict()})
    runtime = Runtime(
        trace=TraceRecorder(enabled=cfg.trace),
        metrics=registry,
        events=events,
        depth_first=cfg.depth_first,
        control_first=cfg.control_first,
        decisions=decisions,
    )
    store: BlockStore | None = None
    if cfg.transport == "shm":
        # The shared-memory transport works under every back-end (local
        # resolution is a cache hit); it pays off on "procs", where block
        # bytes stop crossing the coordinator→worker pipes.
        store = BlockStore(metrics=registry, events=events)
    writer = None
    if cfg.metrics_out is not None:
        writer = PeriodicSnapshotWriter(
            registry, cfg.metrics_out, interval_s=cfg.metrics_interval_s,
            meta=cfg.to_dict(),
        ).start()
    try:
        if cfg.executor == "sim":
            engine = make_executor(
                "sim", runtime, platform=plat, policy=cfg.policy, workers=cfg.workers
            )
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks), store=store)
            arrivals = io_model.arrival_times(len(blocks), rng)
            for index, (when, block) in enumerate(zip(arrivals, blocks)):
                engine.sim.schedule_at(
                    float(when),
                    lambda i=index, b=block: pipeline.feed_block(i, b),
                )
            end = engine.run()
        else:
            import time as _time

            live_opts: dict[str, object] = {}
            if cfg.executor == "procs":
                # Supervisor / fault-injection knobs are specific to the
                # process back-end; other registered back-ends would
                # reject the keywords.
                live_opts.update(
                    store=store,
                    fault_plan=cfg.fault_plan,
                    steal=cfg.steal,
                    dispatch_timeout_s=cfg.dispatch_timeout_s,
                    max_task_retries=cfg.max_task_retries,
                    retry_backoff_s=cfg.retry_backoff_s,
                    max_worker_respawns=cfg.max_worker_respawns,
                    harvest_timeout_s=cfg.harvest_timeout_s,
                )
            engine = make_executor(
                cfg.executor, runtime, policy=cfg.policy,
                workers=cfg.workers if cfg.workers is not None else 4,
                **live_opts,
            )
            pipeline = HuffmanPipeline(runtime, hconfig, len(blocks), store=store)
            engine.start()
            for index, block in enumerate(blocks):
                engine.submit(pipeline.feed_block, index, block)
                if cfg.feed_gap_s:
                    _time.sleep(cfg.feed_gap_s)
            engine.close_input()
            if not engine.wait_idle(timeout=600.0):
                raise ExperimentError("live executor did not drain within 600s")
            engine.shutdown()
            engine.raise_errors()
            end = engine.now
        result = pipeline.result(end)
        ok: bool | None = None
        if cfg.verify_roundtrip:
            ok = pipeline.verify_roundtrip(data)
            if not ok:
                raise ExperimentError("round-trip verification failed: corrupt output")
        # Post-run anomaly scan: detectors emit anomaly_* events (before
        # the JSONL sink closes) and produce the report's warnings.
        run_warnings = scan_run(events, registry)
        # Terminal run_result event: outcome + output digest, the oracle
        # replay compares against for byte-identity.
        output_sha: str | None = None
        if cfg.events:
            packed, total_bits = pipeline.assemble()
            output_sha = hashlib.sha256(packed.tobytes()).hexdigest()
            manager = getattr(pipeline, "manager", None)
            events.emit(
                "run_result",
                outcome=manager.outcome if manager is not None else None,
                compressed_bits=int(total_bits),
                output_sha256=output_sha,
                roundtrip_ok=ok,
            )
    finally:
        # Each cleanup in its own finally clause: a raising store.close()
        # must not eat the final metrics snapshot or the event sink flush.
        try:
            if store is not None:
                store.close()  # releases leftover refs, unlinks segments
        finally:
            try:
                if writer is not None:
                    writer.stop()  # final snapshot: the drained end state
            finally:
                events.close()

    run_label = cfg.label or (
        f"{workload_name}/{plat.name}/{cfg.policy}"
        + ("" if cfg.executor == "sim" else f"/{cfg.executor}")
        + ("" if cfg.transport == "pickle" else f"/{cfg.transport}")
        + ("" if cfg.speculative else "/nonspec")
    )
    if cfg.executor == "sim":
        n_workers = cfg.workers if cfg.workers is not None else plat.default_workers
    else:
        n_workers = engine.n_workers
    return RunReport(
        label=run_label,
        result=result,
        summary=summarize_run(run_label, result),
        utilisation=engine.utilisation(),
        roundtrip_ok=ok,
        config=hconfig,
        platform_name=plat.name,
        policy=cfg.policy,
        workers=n_workers,
        trace=runtime.trace if cfg.trace else None,
        metrics=registry,
        run_config=cfg,
        events=events if cfg.events else None,
        warnings=run_warnings,
        output_sha256=output_sha,
    )

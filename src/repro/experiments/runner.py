"""One-call experiment runner: workload → pipeline → simulated run → report.

:func:`run_huffman` is the public entry point used by the examples, the
figure modules and the benchmark harness. It wires a workload, an I/O
arrival model, a platform and a pipeline configuration onto the simulated
executor, runs to quiescence, verifies the compressed output round-trips,
and returns a :class:`RunReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ExperimentError
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline, PipelineResult
from repro.iomodels import ArrivalModel, DiskModel, SocketModel
from repro.metrics.summary import RunSummary, summarize_run
from repro.obs.exporters import PeriodicSnapshotWriter
from repro.obs.metrics import MetricsRegistry
from repro.platforms import Platform, get_platform
from repro.sim.rng import make_rng
from repro.sim.trace import TraceRecorder
from repro.sre.executor_procs import ProcessExecutor
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.executor_threads import ThreadedExecutor
from repro.sre.runtime import Runtime
from repro.workloads import get_workload

__all__ = ["RunReport", "run_huffman", "split_blocks"]


def split_blocks(data: bytes, block_size: int) -> list[bytes]:
    """Break input data into 4 KB-style blocks (last may be partial)."""
    if block_size < 1:
        raise ExperimentError("block_size must be >= 1")
    if not data:
        raise ExperimentError("empty input data")
    return [data[i : i + block_size] for i in range(0, len(data), block_size)]


@dataclass
class RunReport:
    """Everything one experiment run produces."""

    label: str
    result: PipelineResult
    summary: RunSummary
    utilisation: float
    roundtrip_ok: bool | None
    config: HuffmanConfig
    platform_name: str
    policy: str
    workers: int
    #: populated when run_huffman(..., trace=True): the full runtime trace.
    trace: object | None = None
    #: the run's MetricsRegistry (always populated): counters, gauges and
    #: histograms from every layer — export with repro.obs.exporters.
    metrics: MetricsRegistry | None = None

    @property
    def latencies(self) -> np.ndarray:
        """Per-element latency series (the paper's main y-axis)."""
        return self.result.latencies

    @property
    def arrivals(self) -> np.ndarray:
        return self.result.arrivals

    @property
    def avg_latency(self) -> float:
        return self.result.avg_latency

    @property
    def completion_time(self) -> float:
        return self.result.completion_time


def _resolve_io(io: str | ArrivalModel) -> ArrivalModel:
    if isinstance(io, ArrivalModel):
        return io
    name = io.lower()
    if name == "disk":
        return DiskModel()
    if name == "socket":
        return SocketModel()
    raise ExperimentError(f"unknown io model {io!r}; choose 'disk' or 'socket'")


def run_huffman(
    *,
    workload: str | bytes = "txt",
    n_blocks: int | None = None,
    block_size: int = 4096,
    platform: str | Platform = "x86",
    workers: int | None = None,
    io: str | ArrivalModel = "disk",
    policy: str = "balanced",
    speculative: bool = True,
    step: int = 1,
    verification: str = "every_k",
    verify_k: int = 8,
    tolerance: float = 0.01,
    reduce_ratio: int = 16,
    offset_fanout: int = 64,
    seed: int = 0,
    verify_roundtrip: bool = True,
    trace: bool = False,
    label: str | None = None,
    depth_first: bool = True,
    control_first: bool = True,
    executor: str = "sim",
    feed_gap_s: float = 0.002,
    metrics: MetricsRegistry | None = None,
    metrics_out: str | None = None,
    metrics_interval_s: float = 5.0,
) -> RunReport:
    """Run one Huffman encoding experiment on a chosen executor back-end.

    Args:
        workload: a workload name ("txt" / "bmp" / "pdf") or raw bytes.
        n_blocks: number of blocks (with a named workload, generates
            ``n_blocks * block_size`` bytes; required in that case).
        platform: "x86" / "cell" or a Platform instance.
        io: "disk" / "socket" or an ArrivalModel.
        policy: dispatch policy — conservative / aggressive / balanced /
            fcfs. With ``speculative=False`` the policy is irrelevant
            (there is never speculative work) but still applied.
        speculative, step, verification, verify_k, tolerance: the
            speculation knobs (see HuffmanConfig).
        seed: drives both workload generation and I/O jitter.
        verify_roundtrip: decode the committed stream and compare with the
            input (cheap insurance that speculation never corrupts data).
        executor: "sim" (default — deterministic virtual time, the paper's
            figures), "threads" (live OS threads) or "procs" (live process
            pool; kernel payloads ship to worker processes, control tasks
            and closure-based glue stay on the coordinator). The live
            back-ends ignore the platform cost model and the I/O arrival
            model's timing: blocks stream in ``feed_gap_s`` apart on the
            wall clock.
        feed_gap_s: inter-block feed gap for the live back-ends (seconds).
        metrics: a registry to record into (one is created otherwise);
            pass a shared registry to aggregate several runs.
        metrics_out: path to dump metric snapshots to — rewritten every
            ``metrics_interval_s`` seconds during the run and once at the
            end, so long runs always leave recent accounting on disk
            (``.json`` → JSON snapshot, else Prometheus text).

    Returns a :class:`RunReport`; ``report.metrics`` carries the registry.
    """
    if policy == "nonspec":
        # Shorthand used throughout the figures: the paper's baseline run.
        speculative = False
        policy = "conservative"
    rng = make_rng(seed)
    if isinstance(workload, str):
        if n_blocks is None:
            raise ExperimentError("n_blocks is required with a named workload")
        data = get_workload(workload).generate(n_blocks * block_size, rng)
        workload_name = workload
    else:
        data = bytes(workload)
        workload_name = "custom"
    blocks = split_blocks(data, block_size)
    if n_blocks is not None and len(blocks) != n_blocks:
        raise ExperimentError(f"data yields {len(blocks)} blocks, expected {n_blocks}")

    plat = get_platform(platform) if isinstance(platform, str) else platform
    io_model = _resolve_io(io)
    config = HuffmanConfig(
        block_size=block_size,
        reduce_ratio=reduce_ratio,
        offset_fanout=offset_fanout,
        speculative=speculative,
        step=step,
        verification=verification,
        verify_k=verify_k,
        tolerance=tolerance,
    )

    registry = metrics if metrics is not None else MetricsRegistry()
    runtime = Runtime(
        trace=TraceRecorder(enabled=trace),
        metrics=registry,
        depth_first=depth_first,
        control_first=control_first,
    )
    writer = None
    if metrics_out is not None:
        writer = PeriodicSnapshotWriter(
            registry, metrics_out, interval_s=metrics_interval_s
        ).start()
    try:
        if executor == "sim":
            engine = SimulatedExecutor(runtime, plat, policy=policy, workers=workers)
            pipeline = HuffmanPipeline(runtime, config, len(blocks))
            arrivals = io_model.arrival_times(len(blocks), rng)
            for index, (when, block) in enumerate(zip(arrivals, blocks)):
                engine.sim.schedule_at(
                    float(when),
                    lambda i=index, b=block: pipeline.feed_block(i, b),
                )
            end = engine.run()
        elif executor in ("threads", "procs"):
            import time as _time
            cls = ThreadedExecutor if executor == "threads" else ProcessExecutor
            engine = cls(runtime, policy=policy,
                         workers=workers if workers is not None else 4)
            pipeline = HuffmanPipeline(runtime, config, len(blocks))
            engine.start()
            for index, block in enumerate(blocks):
                engine.submit(pipeline.feed_block, index, block)
                if feed_gap_s:
                    _time.sleep(feed_gap_s)
            engine.close_input()
            if not engine.wait_idle(timeout=600.0):
                raise ExperimentError("live executor did not drain within 600s")
            engine.shutdown()
            engine.raise_errors()
            end = engine.now
        else:
            raise ExperimentError(
                f"unknown executor {executor!r}; choose 'sim', 'threads' or 'procs'"
            )
    finally:
        if writer is not None:
            writer.stop()  # final snapshot includes the drained end state
    result = pipeline.result(end)
    ok: bool | None = None
    if verify_roundtrip:
        ok = pipeline.verify_roundtrip(data)
        if not ok:
            raise ExperimentError("round-trip verification failed: corrupt output")

    run_label = label or (
        f"{workload_name}/{plat.name}/{policy}"
        + ("" if executor == "sim" else f"/{executor}")
        + ("" if speculative else "/nonspec")
    )
    if executor == "sim":
        n_workers = workers if workers is not None else plat.default_workers
    else:
        n_workers = engine.n_workers
    return RunReport(
        label=run_label,
        result=result,
        summary=summarize_run(run_label, result),
        utilisation=engine.utilisation(),
        roundtrip_ok=ok,
        config=config,
        platform_name=plat.name,
        policy=policy,
        workers=n_workers,
        trace=runtime.trace if trace else None,
        metrics=registry,
    )

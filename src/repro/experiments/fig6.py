"""Figure 6 — verification frequency: baseline vs optimistic vs full.

Four runs per workload on x86/disk, all under balanced dispatch:

* ``nonspec`` — no speculation;
* ``balanced`` — the baseline: verify every 8th reduce output;
* ``optimistic`` — speculate on the first tree available, verify only
  against the final tree;
* ``full`` — verify at every opportunity, re-speculate immediately on
  failure.

Paper findings: optimism pays when no rollbacks occur (check overhead is
low — optimistic and full differ little on TXT/BMP); with rollbacks (PDF)
both extremes hurt, optimistic catastrophically (all work restarts at the
end). Optimistic runs cut average latency by up to 51 % on TXT.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult, WORKLOAD_ORDER
from repro.experiments.runner import RunConfig, run_huffman

__all__ = ["run", "VERIFICATION_MODES"]

#: label -> (speculative, step, verification policy name)
VERIFICATION_MODES = {
    "nonspec": None,
    "balanced": ("every_k", 1),
    "optimistic": ("optimistic", 1),
    "full": ("full", 1),
}


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    platform: str = "x86",
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="fig6",
        title=f"Verification frequency policies ({platform} / disk)",
    )
    result.table_header = ["file", "mode", "avg lat (µs)", "runtime (µs)",
                           "checks", "rollbacks", "outcome"]
    for wl in workloads:
        panel = f"{wl} ({platform})"
        result.series[panel] = {}
        for mode, spec in VERIFICATION_MODES.items():
            kwargs = dict(
                workload=wl, n_blocks=scale.n_blocks(wl),
                block_size=scale.block_size, reduce_ratio=scale.reduce_ratio,
                offset_fanout=scale.offset_fanout, platform=platform,
                seed=seed, label=f"fig6/{wl}/{mode}",
            )
            if spec is None:
                report = run_huffman(config=RunConfig.from_kwargs(
                    policy="nonspec", **kwargs))
            else:
                verification, step = spec
                report = run_huffman(config=RunConfig.from_kwargs(
                    policy="balanced", step=step, verification=verification,
                    **kwargs,
                ))
            result.series[panel][mode] = report.latencies
            result.reports[(panel, mode)] = report
            result.table_rows.append([
                wl, mode, f"{report.avg_latency:,.0f}",
                f"{report.completion_time:,.0f}",
                str(report.result.spec_stats.get("checks", 0)),
                str(report.result.spec_stats.get("rollbacks", 0)),
                report.result.outcome,
            ])
    txt_panel = f"txt ({platform})"
    opt = result.reports[(txt_panel, "optimistic")]
    ns = result.reports[(txt_panel, "nonspec")]
    gain = 1.0 - opt.avg_latency / ns.avg_latency
    result.notes.append(
        f"optimistic TXT avg-latency reduction vs non-spec: {100 * gain:.1f}% "
        "(paper: up to 51% on Cell)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

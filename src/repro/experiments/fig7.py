"""Figure 7 — encoding over a socket I/O connection.

Blocks trickle in over a slow tunnelled-socket stream; the plot shows both
the arrival time and the per-element latency. With speculation and no
rollback (TXT), latency is negligible relative to transfer time. With a
rollback (PDF), the latency curve shows a flat plateau — every block already
on hand is re-encoded almost instantly once the corrected tree exists — and
then blocks are encoded as they arrive.

The socket configuration drops the reduce and offset ratios to 8:1 (§V-A).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult
from repro.experiments.runner import RunConfig, run_huffman
from repro.iomodels import SocketModel

__all__ = ["run"]


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    workloads: tuple[str, ...] = ("txt", "pdf"),
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="fig7",
        title="Socket I/O: arrival time and latency per element (x86)",
    )
    result.table_header = ["file", "avg lat (µs)", "max lat (µs)",
                           "last arrival (µs)", "rollbacks", "outcome"]
    for wl in workloads:
        report = run_huffman(config=RunConfig(
            workload=wl,
            n_blocks=scale.n_blocks(wl),
            block_size=scale.block_size,
            reduce_ratio=scale.socket_reduce_ratio,
            offset_fanout=scale.socket_offset_fanout,
            io=SocketModel(),
            policy="balanced",
            step=1,
            seed=seed,
            label=f"fig7/{wl}",
        ))
        result.series[f"{wl} over socket"] = {
            "arrival time": report.arrivals,
            "latency": report.latencies,
        }
        result.reports[(f"{wl} over socket", "run")] = report
        result.table_rows.append([
            wl,
            f"{report.avg_latency:,.0f}",
            f"{report.result.latencies.max():,.0f}",
            f"{report.arrivals[-1]:,.0f}",
            str(report.result.spec_stats.get("rollbacks", 0)),
            report.result.outcome,
        ])
    result.notes.append(
        "TXT latency should be negligible vs transfer; PDF shows the "
        "rollback plateau (already-arrived blocks re-encoded at once)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 2 — the Huffman data-flow graphs themselves.

Fig. 2 of the paper is not a measurement but the DFG diagrams of the
non-speculative and speculative Huffman encoders. Since our DFG is "a
snapshot of the application's dynamic execution", we regenerate the figure
by *running* a small instance of each pipeline and exporting the executed
graph to Graphviz DOT — speculative tasks dashed, check tasks as diamonds,
aborted work in red, exactly the paper's visual vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline
from repro.platforms import X86Platform
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime
from repro.workloads import get_workload

__all__ = ["run", "Fig2Result"]


@dataclass
class Fig2Result:
    """The two executed graphs, as DOT, plus task censuses."""

    dot_nonspec: str
    dot_spec: str
    census_nonspec: dict[str, int]
    census_spec: dict[str, int]

    def render(self, charts: bool = True) -> str:
        lines = ["=== fig2: executed Huffman DFGs (see .dot output) ==="]
        for label, census in (("non-speculative", self.census_nonspec),
                              ("speculative", self.census_spec)):
            parts = ", ".join(f"{k}×{v}" for k, v in sorted(census.items()))
            lines.append(f"{label}: {parts}")
        return "\n".join(lines)


def _run_one(speculative: bool, n_blocks: int, workload: str, seed: int):
    data = get_workload(workload).generate(n_blocks * 1024, seed=seed)
    blocks = [data[i:i + 1024] for i in range(0, len(data), 1024)]
    config = HuffmanConfig(block_size=1024, reduce_ratio=2, offset_fanout=2,
                           speculative=speculative, step=1, verify_k=2)
    rt = Runtime()
    ex = SimulatedExecutor(rt, X86Platform(workers=4), policy="balanced",
                           workers=4)
    pipe = HuffmanPipeline(rt, config, len(blocks))
    for i, b in enumerate(blocks):
        ex.sim.schedule_at(float(i * 5), lambda i=i, b=b: pipe.feed_block(i, b))
    ex.run()
    pipe.result()
    census: dict[str, int] = {}
    for task in rt.graph.tasks():
        census[task.kind] = census.get(task.kind, 0) + 1
    return rt.graph.to_dot(), census


def run(n_blocks: int = 8, workload: str = "txt", seed: int = 0) -> Fig2Result:
    dot_ns, census_ns = _run_one(False, n_blocks, workload, seed)
    dot_sp, census_sp = _run_one(True, n_blocks, workload, seed)
    return Fig2Result(dot_ns, dot_sp, census_ns, census_sp)


def main() -> None:  # pragma: no cover - CLI glue
    result = run()
    print(result.render())


if __name__ == "__main__":  # pragma: no cover
    main()

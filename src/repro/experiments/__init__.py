"""Experiment harness — one module per paper figure plus the claims table.

Every figure of the paper's evaluation (§V) has a module here whose ``run()``
regenerates its series/rows on the simulated substrate (fig2 regenerates the
DFG diagrams; ``resources`` sweeps the §II-B knobs the paper lists without
evaluating); ``benchmarks/`` wraps each in a pytest-benchmark target. See
DESIGN.md §4 for the index and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.experiments.runner import RunReport, run_huffman
from repro.experiments.config import ExperimentScale, QUICK, PAPER, RunConfig
from repro.experiments.jobs import (
    JOBS,
    JobResources,
    job_names,
    register_job,
    run_job,
)

__all__ = [
    "RunReport", "RunConfig", "run_huffman", "ExperimentScale", "QUICK",
    "PAPER", "JOBS", "JobResources", "job_names", "register_job", "run_job",
]

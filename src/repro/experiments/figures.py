"""Shared machinery for the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.runner import RunConfig, RunReport, run_huffman
from repro.metrics.report import ascii_chart, render_table

__all__ = ["FigureResult", "policy_sweep", "WORKLOAD_ORDER", "POLICY_ORDER"]

WORKLOAD_ORDER = ("txt", "bmp", "pdf")
#: Figures 3/4 legend order.
POLICY_ORDER = ("nonspec", "balanced", "aggressive", "conservative")


@dataclass
class FigureResult:
    """Series + scalar rows regenerating one paper figure."""

    figure: str
    title: str
    #: panel -> series-name -> y values (latency vs element, etc.).
    series: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)
    #: summary table rows (e.g. the run-times bar panel).
    table_header: list[str] = field(default_factory=list)
    table_rows: list[list[str]] = field(default_factory=list)
    #: full reports keyed (panel, series) for deeper inspection.
    reports: dict[tuple[str, str], RunReport] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self, charts: bool = True) -> str:
        """Human-readable reproduction of the figure."""
        parts = [f"=== {self.figure}: {self.title} ==="]
        if charts:
            for panel, series in self.series.items():
                parts.append(ascii_chart(series, title=f"[{panel}]"))
        if self.table_rows:
            parts.append(render_table(self.table_header, self.table_rows))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)


def policy_sweep(
    *,
    figure: str,
    title: str,
    platform: str,
    scale: ExperimentScale | None = None,
    seed: int = 0,
    policies: tuple[str, ...] = POLICY_ORDER,
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    step: int = 1,
    run_kwargs: dict[str, Any] | None = None,
) -> FigureResult:
    """Fig. 3 / Fig. 4 style sweep: latency curves per policy per workload,
    plus the run-times summary panel."""
    scale = scale or active_scale()
    extra = dict(run_kwargs or {})
    result = FigureResult(figure=figure, title=title)
    result.table_header = ["file", "policy", "avg lat (µs)", "runtime (µs)",
                           "outcome", "rollbacks"]
    for wl in workloads:
        panel = f"{wl} ({platform})"
        result.series[panel] = {}
        for policy in policies:
            report = run_huffman(config=RunConfig.from_kwargs(
                workload=wl,
                n_blocks=scale.n_blocks(wl),
                block_size=scale.block_size,
                reduce_ratio=scale.reduce_ratio,
                offset_fanout=scale.offset_fanout,
                platform=platform,
                policy=policy,
                step=step,
                seed=seed,
                label=f"{figure}/{wl}/{policy}",
                **extra,
            ))
            result.series[panel][policy] = report.latencies
            result.reports[(panel, policy)] = report
            result.table_rows.append([
                wl,
                policy,
                f"{report.avg_latency:,.0f}",
                f"{report.completion_time:,.0f}",
                report.result.outcome,
                str(report.result.spec_stats.get("rollbacks", 0)),
            ])
    return result

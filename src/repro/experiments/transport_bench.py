"""Transport micro-benchmark: pickle vs shared-memory payload shipping.

Runs the same 64-block txt Huffman workload on the live back-ends and
compares how many payload bytes actually cross the coordinator→worker
boundary. With ``transport="pickle"`` every block, histogram and tree is
serialized into the dispatch message; with ``transport="shm"`` the
:class:`~repro.sre.shm.BlockStore` places each value into a named
shared-memory segment once and the message carries only a
:class:`~repro.sre.shm.BlockRef` handle.

Only the process executor ships bytes over a pipe, so ``payload_bytes``
is zero for threads — the threads rows are there as the wall-clock
reference. The headline number is the procs pickle/shm byte ratio, which
the paper-scale workload puts well above 10x.

Used two ways:

* ``python benchmarks/bench_micro.py --transport-table`` — appended to
  the executor speedup table;
* ``repro transport`` — the same table from the installed CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.experiments.config import RunConfig
from repro.experiments.runner import run_huffman

__all__ = ["TransportRow", "run_transport_bench", "render_table"]


@dataclass
class TransportRow:
    """One (executor, transport) cell of the comparison table."""

    executor: str
    transport: str
    wall_s: float
    payload_bytes: int
    payload_bytes_avoided: int
    roundtrip_ok: bool | None


def _one_run(
    executor: str,
    transport: str,
    *,
    blocks: int,
    workers: int,
    seed: int,
) -> TransportRow:
    cfg = RunConfig(
        workload="txt",
        n_blocks=blocks,
        executor=executor,
        transport=transport,
        workers=workers,
        seed=seed,
        feed_gap_s=0.0,
    )
    t0 = time.perf_counter()
    report = run_huffman(config=cfg)
    wall = time.perf_counter() - t0
    reg = report.metrics

    def _count(name: str) -> int:
        # Only the process back-end registers the procs_* wire counters;
        # threads never serialize, so their payload traffic is zero.
        metric = reg.get(name)
        return int(metric.value()) if metric is not None else 0

    return TransportRow(
        executor=executor,
        transport=transport,
        wall_s=wall,
        payload_bytes=_count("procs_payload_bytes"),
        payload_bytes_avoided=_count("procs_payload_bytes_avoided"),
        roundtrip_ok=report.roundtrip_ok,
    )


def run_transport_bench(
    *,
    blocks: int = 64,
    workers: int = 4,
    seed: int = 0,
    executors: tuple[str, ...] = ("threads", "procs"),
) -> list[TransportRow]:
    """Run the txt workload across ``executors`` x {pickle, shm}."""
    return [
        _one_run(name, transport, blocks=blocks, workers=workers, seed=seed)
        for name in executors
        for transport in ("pickle", "shm")
    ]


def render_table(rows: list[TransportRow]) -> str:
    """Human-readable table with the procs pickle/shm byte-ratio line."""
    lines = [
        f"{'executor':<10} {'transport':<10} {'wall (s)':>10} "
        f"{'payload B':>12} {'avoided B':>12}",
        "-" * 58,
    ]
    for r in rows:
        lines.append(
            f"{r.executor:<10} {r.transport:<10} {r.wall_s:>10.3f} "
            f"{r.payload_bytes:>12,} {r.payload_bytes_avoided:>12,}"
        )
    by_key = {(r.executor, r.transport): r for r in rows}
    pickle_row = by_key.get(("procs", "pickle"))
    shm_row = by_key.get(("procs", "shm"))
    if pickle_row and shm_row and shm_row.payload_bytes:
        ratio = pickle_row.payload_bytes / shm_row.payload_bytes
        lines.append("-" * 58)
        lines.append(f"procs pickle/shm payload-byte ratio: {ratio:.1f}x")
    return "\n".join(lines)

"""Headline-claims table: the paper's summary numbers vs our measurements.

The paper's contribution list and conclusions quote four quantitative
claims. This module recomputes each from the corresponding experiment and
prints a paper-vs-measured table (the evaluation has no numbered tables, so
this stands in as "Table 1").

1. Up to **28 % speedup in execution time** (abstract / §VII) — best
   speculative configuration vs non-speculative, TXT.
2. Up to **51 % reduction in average latency** (§V-B) — optimistic
   verification, TXT, Cell.
3. **~19.5 % runtime speedup** on TXT, x86, from speculating early and
   correctly (§V-B).
4. Average latency reduced by up to **22 % (BMP/PDF)** and **28 % (TXT)**
   by choosing the speculation interval well (§V-B, Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.runner import RunConfig, run_huffman
from repro.metrics.report import render_table

__all__ = ["run", "ClaimResult"]


@dataclass
class ClaimResult:
    claim: str
    paper: str
    measured: str
    holds: bool


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def run(scale: ExperimentScale | None = None, seed: int = 0) -> list[ClaimResult]:
    scale = scale or active_scale()

    def go(wl: str, **kw):
        return run_huffman(config=RunConfig.from_kwargs(
            workload=wl, n_blocks=scale.n_blocks(wl), block_size=scale.block_size,
            reduce_ratio=scale.reduce_ratio, offset_fanout=scale.offset_fanout,
            seed=seed, **kw,
        ))

    claims: list[ClaimResult] = []

    # -- claims 1 & 3: runtime speedups on TXT (x86) --------------------
    ns_x86 = go("txt", policy="nonspec")
    best_runtime = min(
        (go("txt", policy=p, step=1, verification=v)
         for p in ("balanced", "aggressive") for v in ("every_k", "optimistic")),
        key=lambda r: r.completion_time,
    )
    speedup = 1.0 - best_runtime.completion_time / ns_x86.completion_time
    claims.append(ClaimResult(
        "execution-time speedup, TXT x86 (best spec config vs non-spec)",
        "up to 28%", _pct(speedup), speedup > 0.10,
    ))
    bal = go("txt", policy="balanced", step=1)
    speedup_bal = 1.0 - bal.completion_time / ns_x86.completion_time
    claims.append(ClaimResult(
        "runtime speedup, TXT x86, balanced baseline",
        "~19.5%", _pct(speedup_bal), speedup_bal > 0.05,
    ))

    # -- claim 2: optimistic avg-latency reduction, TXT ------------------
    # The paper's 51% came from the Cell. Our Cell model reproduces the
    # platform's *qualitative* behaviour (conservative collapse, DMA
    # overlap) via a count-saturated first pass, which structurally caps
    # speculative overlap gains — so we check direction+magnitude on Cell
    # and report the x86 number alongside (see EXPERIMENTS.md, divergences).
    ns_cell = go("txt", policy="nonspec", platform="cell")
    opt_cell = go("txt", policy="balanced", platform="cell",
                  step=1, verification="optimistic")
    lat_gain = 1.0 - opt_cell.avg_latency / ns_cell.avg_latency
    claims.append(ClaimResult(
        "avg-latency reduction, optimistic TXT on Cell",
        "up to 51%", _pct(lat_gain), lat_gain > 0.05,
    ))
    opt_x86 = go("txt", policy="balanced", step=1, verification="optimistic")
    lat_gain_x86 = 1.0 - opt_x86.avg_latency / ns_x86.avg_latency
    claims.append(ClaimResult(
        "avg-latency reduction, optimistic TXT on x86",
        "(cf. 51% on Cell)", _pct(lat_gain_x86), lat_gain_x86 > 0.20,
    ))

    # -- claim 4: step-size latency gains --------------------------------
    for wl, paper_val, threshold in (("txt", "28%", 0.10), ("bmp", "22%", 0.08),
                                     ("pdf", "22%", 0.08)):
        ns = go(wl, policy="nonspec")
        n_updates = scale.n_blocks(wl) // scale.reduce_ratio
        best = min(
            (go(wl, policy="balanced", step=s)
             for s in (0, 1, 2, 4, 8, 16, 32) if s < n_updates),
            key=lambda r: r.avg_latency,
        )
        gain = 1.0 - best.avg_latency / ns.avg_latency
        claims.append(ClaimResult(
            f"avg-latency reduction via step-size choice, {wl} x86",
            f"up to {paper_val}", _pct(gain), gain > threshold,
        ))
    return claims


def render(claims: list[ClaimResult]) -> str:
    rows = [[c.claim, c.paper, c.measured, "yes" if c.holds else "NO"]
            for c in claims]
    return render_table(["claim", "paper", "measured", "holds"], rows)


def main() -> None:  # pragma: no cover - CLI glue
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()

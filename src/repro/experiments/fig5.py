"""Figure 5 — speculation frequency (step size) vs average latency.

For each workload and dispatch policy, sweep the speculation interval over
{0, 1, 2, 4, 8, 16, 32} (0 = speculate on the very first count histogram).

Paper findings: for TXT, the earlier the better (latency rises with step
size). For BMP and PDF, small steps speculate inside the distribution
transient — rollbacks make them no better than non-speculative — and beyond
a workload-specific threshold (8 for BMP, 16 for PDF) rollbacks vanish and
average latency drops by up to 22 % (BMP/PDF) / 28 % (TXT).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult, WORKLOAD_ORDER
from repro.experiments.runner import RunConfig, run_huffman

__all__ = ["run", "STEP_SIZES"]

STEP_SIZES = (0, 1, 2, 4, 8, 16, 32)
_POLICIES = ("balanced", "aggressive", "conservative")


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    workloads: tuple[str, ...] = WORKLOAD_ORDER,
    steps: tuple[int, ...] = STEP_SIZES,
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="fig5",
        title="Average latency vs speculation step size (x86 / disk)",
    )
    result.table_header = ["file", "policy", "step", "avg lat (µs)", "rollbacks", "outcome"]
    for wl in workloads:
        n_blocks = scale.n_blocks(wl)
        n_updates = n_blocks // scale.reduce_ratio
        panel = f"{wl} avg latency vs step"
        result.series[panel] = {}
        nonspec = run_huffman(config=RunConfig(
            workload=wl, n_blocks=n_blocks, block_size=scale.block_size,
            reduce_ratio=scale.reduce_ratio, offset_fanout=scale.offset_fanout,
            policy="nonspec", seed=seed, label=f"fig5/{wl}/nonspec",
        ))
        usable_steps = [s for s in steps if s < n_updates]
        result.series[panel]["nonspec"] = np.full(
            len(usable_steps), nonspec.avg_latency
        )
        result.reports[(panel, "nonspec")] = nonspec
        for policy in _POLICIES:
            ys = []
            for s in usable_steps:
                report = run_huffman(config=RunConfig(
                    workload=wl, n_blocks=n_blocks, block_size=scale.block_size,
                    reduce_ratio=scale.reduce_ratio, offset_fanout=scale.offset_fanout,
                    policy=policy, step=s, seed=seed,
                    label=f"fig5/{wl}/{policy}/s{s}",
                ))
                ys.append(report.avg_latency)
                result.reports[(panel, f"{policy}/s{s}")] = report
                result.table_rows.append([
                    wl, policy, str(s), f"{report.avg_latency:,.0f}",
                    str(report.result.spec_stats.get("rollbacks", 0)),
                    report.result.outcome,
                ])
            result.series[panel][policy] = np.asarray(ys)
    result.notes.append(f"step sizes plotted: {usable_steps}")
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Experiment scale configuration.

The paper encodes 4 MB of TXT/PDF and 2 MB of BMP in 4 KB blocks (1024 /
1024 / 512 blocks). Running every figure at that scale takes minutes; the
benchmark suite defaults to a quarter-scale geometry that preserves every
qualitative feature (update counts scale with the file, so step-size and
tolerance thresholds are expressed in *update* units and stay put). Set
``REPRO_SCALE=paper`` in the environment (or pass ``scale=PAPER``) for
full-size runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

__all__ = ["ExperimentScale", "QUICK", "PAPER", "RunConfig", "active_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Geometry of one experiment campaign."""

    name: str
    #: blocks per workload (paper: TXT/PDF 1024, BMP 512).
    blocks: dict[str, int]
    block_size: int = 4096
    reduce_ratio: int = 16
    offset_fanout: int = 64
    #: ratios for the socket configuration (paper drops both to 8:1).
    socket_reduce_ratio: int = 8
    socket_offset_fanout: int = 8

    def n_blocks(self, workload: str) -> int:
        return self.blocks[workload]


PAPER = ExperimentScale(
    name="paper",
    blocks={"txt": 1024, "bmp": 512, "pdf": 1024},
)

#: Quarter scale: same block size, same ratios, same *per-update* geometry —
#: 16 updates for BMP, 16 for TXT/PDF... scaled runs keep enough updates for
#: every step size {1..32} used by Fig. 5 to remain meaningful on txt/pdf.
QUICK = ExperimentScale(
    name="quick",
    blocks={"txt": 512, "bmp": 256, "pdf": 512},
)


def active_scale() -> ExperimentScale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    return PAPER if os.environ.get("REPRO_SCALE", "").lower() == "paper" else QUICK


# ---------------------------------------------------------------------------
# RunConfig — one frozen value object for everything run_huffman accepts.
# ---------------------------------------------------------------------------

_UNSET = object()

#: Per-app conventional defaults applied by :meth:`RunConfig.for_app` —
#: the geometry the standalone filter/kmeans runners shipped with before
#: the unified Job API.
_APP_DEFAULTS: dict[str, dict[str, object]] = {
    "huffman": {},
    "filter": {"n_blocks": 64, "step": 2, "verify_k": 4, "tolerance": 0.02},
    "kmeans": {"n_blocks": 48, "step": 2, "verify_k": 4, "tolerance": 0.05},
}


@dataclass(frozen=True)
class RunConfig:
    """All parameters of one job run — the single config object for every
    registered application (huffman, filter, kmeans, ...).

    The primary way to invoke a runner::

        from repro.experiments import RunConfig, run_huffman
        report = run_huffman(config=RunConfig(workload="txt", n_blocks=64,
                                              executor="procs",
                                              transport="shm"))

    or, app-generically, through the jobs registry::

        from repro.experiments.jobs import run_job
        report = run_job(RunConfig.for_app("kmeans", n_blocks=24))

    Frozen so a config can be shared between sweep points, stamped into
    exported metrics (see :meth:`to_dict`) and compared for equality.
    Fields accepting either a registry name or an instance (``platform``,
    ``io``, ``policy``, ``verification``) keep the permissive types the
    bare keywords always had. App-specific geometry fields
    (``block_samples``/``iterations`` for filter,
    ``block_points``/``n_clusters``/``dim``/``drift_blocks`` for kmeans)
    are ignored by apps that don't use them; :meth:`for_app` fills the
    per-app defaults the standalone runners used to carry.
    """

    #: application name — resolved through repro.experiments.jobs.JOBS,
    #: so application-registered job kinds work here too.
    app: str = "huffman"
    workload: object = "txt"          # name or raw bytes
    n_blocks: int | None = None
    block_size: int = 4096
    platform: object = "x86"          # name or Platform instance
    workers: int | None = None
    io: object = "disk"               # name or ArrivalModel instance
    policy: object = "balanced"       # name or DispatchPolicy instance
    speculative: bool = True
    step: int = 1
    verification: object = "every_k"  # name or VerificationPolicy instance
    verify_k: int = 8
    tolerance: float = 0.01
    reduce_ratio: int = 16
    offset_fanout: int = 64
    seed: int = 0
    verify_roundtrip: bool = True
    trace: bool = False
    label: str | None = None
    depth_first: bool = True
    control_first: bool = True
    #: executor back-end name — resolved through repro.sre.registry, so
    #: application-registered back-ends work here too.
    executor: str = "sim"
    feed_gap_s: float = 0.002
    #: payload transport for task dispatch: "pickle" ships block bytes in
    #: every payload; "shm" places blocks in shared memory once and ships
    #: refs (zero-copy for the process back-end; see docs/transport.md).
    transport: str = "pickle"
    metrics_out: str | None = None
    metrics_interval_s: float = 5.0
    #: structured event log (flight recorder, docs/flight-recorder.md):
    #: ``events=False`` disables emission entirely; ``events_out`` writes
    #: every event as JSONL for `repro explain`.
    events: bool = True
    events_out: str | None = None
    events_capacity: int = 65536
    #: deterministic fault-injection plan for the process-pool back-ends
    #: (see repro.testing.faults for the grammar, e.g. "kill@3" or
    #: "hang@2:w1,kill@1!"). Requires executor="procs" or "dist"; with
    #: "dist" the plan ships to the remote pool at attach and arms there.
    fault_plan: str | None = None
    #: remote worker-pool address ("host:port") for executor="dist" —
    #: the rendezvous with a running `repro worker-pool`.
    pool: str | None = None
    #: worker-supervisor knobs (process back-end only; ignored elsewhere).
    #: Per-payload reply deadline. Worker replies stream back one per
    #: payload, so each reply gets this long — the deadline is never
    #: scaled by batch size.
    dispatch_timeout_s: float = 60.0
    #: allow idle seats to steal claimed-but-unshipped payloads from a
    #: straggling seat's deque (process back-end only).
    steal: bool = True
    #: worker deaths one task may cause/witness before it is quarantined.
    max_task_retries: int = 2
    #: base of the exponential backoff between re-dispatches.
    retry_backoff_s: float = 0.05
    #: replacement processes one worker seat may consume before it
    #: degrades to coordinator-inline execution.
    max_worker_respawns: int = 3
    #: shutdown grace per worker for the final metrics/events harvest.
    harvest_timeout_s: float = 2.0
    #: filter app: samples per signal block / design iterations.
    block_samples: int = 4096
    iterations: int = 24
    #: kmeans app: points per block and mixture geometry.
    block_points: int = 512
    n_clusters: int = 8
    dim: int = 4
    drift_blocks: int = 0

    def __post_init__(self) -> None:
        from repro.errors import ExperimentError

        if not isinstance(self.app, str) or not self.app:
            raise ExperimentError("app must be a job name string")
        if self.transport not in ("pickle", "shm"):
            raise ExperimentError(
                f"unknown transport {self.transport!r}; choose 'pickle' or 'shm'")
        if not isinstance(self.executor, str) or not self.executor:
            raise ExperimentError("executor must be a back-end name string")
        if self.metrics_interval_s <= 0:
            raise ExperimentError("metrics_interval_s must be positive")
        if self.events_capacity < 1:
            raise ExperimentError("events_capacity must be >= 1")
        if self.events_out is not None and not self.events:
            raise ExperimentError("events_out requires events=True")
        if self.dispatch_timeout_s <= 0:
            raise ExperimentError("dispatch_timeout_s must be positive")
        if self.harvest_timeout_s <= 0:
            raise ExperimentError("harvest_timeout_s must be positive")
        if self.max_task_retries < 0:
            raise ExperimentError("max_task_retries must be >= 0")
        if self.max_worker_respawns < 0:
            raise ExperimentError("max_worker_respawns must be >= 0")
        if self.retry_backoff_s < 0:
            raise ExperimentError("retry_backoff_s must be >= 0")
        if self.fault_plan is not None:
            if self.executor not in ("procs", "dist"):
                raise ExperimentError(
                    "fault_plan injects worker-process faults; it requires "
                    "executor='procs' or executor='dist'")
            from repro.testing.faults import FaultPlan

            FaultPlan.parse(self.fault_plan)  # validates the spec grammar
        if self.executor == "dist" and self.pool is None:
            raise ExperimentError(
                "executor='dist' needs pool='host:port' — the address of "
                "a running `repro worker-pool`")
        if self.pool is not None:
            if self.executor != "dist":
                raise ExperimentError(
                    "pool= is the dist back-end's rendezvous; it requires "
                    "executor='dist'")
            host, sep, port = str(self.pool).rpartition(":")
            if not sep or not host or not port.isdigit():
                raise ExperimentError(
                    f"pool must be 'host:port', got {self.pool!r}")

    @classmethod
    def from_kwargs(cls, **kwargs: object) -> "RunConfig":
        """Build a config from bare keywords.

        Raises :class:`~repro.errors.ExperimentError` for unknown names,
        listing the valid ones — the error a typo'd keyword used to get
        from Python is now a domain error with the full vocabulary.
        """
        from repro.errors import ExperimentError

        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ExperimentError(
                f"unknown RunConfig parameter(s): {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(valid))}")
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def for_app(cls, app: str, **kwargs: object) -> "RunConfig":
        """Build a config with the app's conventional defaults filled in.

        The standalone filter/kmeans runners historically defaulted to a
        different geometry than huffman (fewer blocks, wider step, looser
        tolerance); those defaults live in :data:`_APP_DEFAULTS` now that
        one RunConfig serves every app. Explicit keywords always win.
        Apps without a defaults entry (application-registered job kinds)
        just get the dataclass defaults.
        """
        base: dict[str, object] = dict(_APP_DEFAULTS.get(app, {}))
        base.update(kwargs)
        return cls.from_kwargs(app=app, **base)

    def to_dict(self) -> dict[str, object]:
        """JSON-safe summary of the run parameters.

        Instances degrade to names: byte workloads become ``"custom"``,
        platform/io/policy/verification instances become their ``name``
        attribute or class name. Embedded in metric exports so every
        snapshot is self-describing.
        """
        def _plain(value: object) -> object:
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            if isinstance(value, (bytes, bytearray, memoryview)):
                return "custom"
            name = getattr(value, "name", None)
            if isinstance(name, str):
                return name
            return type(value).__name__

        return {f.name: _plain(getattr(self, f.name)) for f in fields(self)}

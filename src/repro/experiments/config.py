"""Experiment scale configuration.

The paper encodes 4 MB of TXT/PDF and 2 MB of BMP in 4 KB blocks (1024 /
1024 / 512 blocks). Running every figure at that scale takes minutes; the
benchmark suite defaults to a quarter-scale geometry that preserves every
qualitative feature (update counts scale with the file, so step-size and
tolerance thresholds are expressed in *update* units and stay put). Set
``REPRO_SCALE=paper`` in the environment (or pass ``scale=PAPER``) for
full-size runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "QUICK", "PAPER", "active_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Geometry of one experiment campaign."""

    name: str
    #: blocks per workload (paper: TXT/PDF 1024, BMP 512).
    blocks: dict[str, int]
    block_size: int = 4096
    reduce_ratio: int = 16
    offset_fanout: int = 64
    #: ratios for the socket configuration (paper drops both to 8:1).
    socket_reduce_ratio: int = 8
    socket_offset_fanout: int = 8

    def n_blocks(self, workload: str) -> int:
        return self.blocks[workload]


PAPER = ExperimentScale(
    name="paper",
    blocks={"txt": 1024, "bmp": 512, "pdf": 1024},
)

#: Quarter scale: same block size, same ratios, same *per-update* geometry —
#: 16 updates for BMP, 16 for TXT/PDF... scaled runs keep enough updates for
#: every step size {1..32} used by Fig. 5 to remain meaningful on txt/pdf.
QUICK = ExperimentScale(
    name="quick",
    blocks={"txt": 512, "bmp": 256, "pdf": 512},
)


def active_scale() -> ExperimentScale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    return PAPER if os.environ.get("REPRO_SCALE", "").lower() == "paper" else QUICK

"""Resource-management exploration (paper §II-B, beyond its evaluation).

§II-B lists four ways to set speculative/natural preferences: priorities
(the conservative/aggressive/balanced policies of Fig. 3), bounding
concurrent speculative tasks, fixing a speculative:natural dispatch ratio,
and idle-only speculation. The paper evaluates only the first; this module
sweeps the other knobs on the same workloads, filling in the design space:

* ratio sweep — speculative dispatch share from 0 (conservative-like) to
  1 (aggressive-like);
* throttle sweep — cap on in-flight speculative tasks from 0 (speculation
  disabled in practice) to the worker count (unthrottled).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult
from repro.experiments.runner import RunConfig, run_huffman
from repro.sre.policies import BalancedPolicy, RatioPolicy, ThrottledPolicy

__all__ = ["run", "RATIO_STEPS", "THROTTLE_STEPS"]

RATIO_STEPS = (0.0, 0.25, 0.5, 0.75, 1.0)
THROTTLE_STEPS = (1, 2, 4, 8, 16)


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    workloads: tuple[str, ...] = ("txt", "pdf"),
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="resources",
        title="§II-B resource knobs: dispatch ratio and speculation throttle",
    )
    result.table_header = ["file", "knob", "value", "avg lat (µs)", "rollbacks"]
    import numpy as np

    for wl in workloads:
        n_blocks = scale.n_blocks(wl)
        common = dict(
            workload=wl, n_blocks=n_blocks, block_size=scale.block_size,
            reduce_ratio=scale.reduce_ratio, offset_fanout=scale.offset_fanout,
            step=1, seed=seed,
        )
        ratio_lat = []
        for share in RATIO_STEPS:
            report = run_huffman(config=RunConfig.from_kwargs(
                policy=RatioPolicy(share),
                label=f"resources/{wl}/ratio{share}", **common))
            ratio_lat.append(report.avg_latency)
            result.reports[(f"{wl} ratio", f"{share}")] = report
            result.table_rows.append([
                wl, "spec share", f"{share:.2f}",
                f"{report.avg_latency:,.0f}",
                str(report.result.spec_stats.get("rollbacks", 0)),
            ])
        result.series[f"{wl} avg latency vs spec share"] = {
            "ratio": np.asarray(ratio_lat),
        }

        throttle_lat = []
        for cap in THROTTLE_STEPS:
            report = run_huffman(config=RunConfig.from_kwargs(
                policy=ThrottledPolicy(BalancedPolicy(), max_speculative=cap),
                label=f"resources/{wl}/cap{cap}", **common,
            ))
            throttle_lat.append(report.avg_latency)
            result.reports[(f"{wl} throttle", f"{cap}")] = report
            result.table_rows.append([
                wl, "max spec inflight", str(cap),
                f"{report.avg_latency:,.0f}",
                str(report.result.spec_stats.get("rollbacks", 0)),
            ])
        result.series[f"{wl} avg latency vs speculation cap"] = {
            "throttle": np.asarray(throttle_lat),
        }
    result.notes.append(
        "ratio 0.0 ≈ conservative, 1.0 ≈ aggressive; the throttle sweep "
        "starts at 1 — a cap of 0 would leave committed speculative work "
        "stranded in the ready queue (speculation must be able to run to "
        "ever commit)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Figure 8 — CPU scaling under large communication delays.

"Even with large communication delays, latencies are still reduced
significantly with an increased number of CPUs": with few workers the
encode stage cannot keep pace with arrivals and a backlog builds; adding
CPUs drains it. The socket rate here is tuned so 2 CPUs are borderline
saturated (the paper's premise that slow I/O does *not* make multicore
pointless).
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult
from repro.experiments.runner import RunConfig, run_huffman
from repro.iomodels import SocketModel

__all__ = ["run", "CPU_COUNTS"]

CPU_COUNTS = (2, 4, 8)

#: Inter-arrival tuned near the 2-CPU service rate (count+encode ≈ 460 µs
#: of work per block).
PER_BLOCK_US = 300.0


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    workload: str = "txt",
    cpus: tuple[int, ...] = CPU_COUNTS,
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="fig8",
        title=f"Latency vs element for 2/4/8 CPUs, slow I/O ({workload})",
    )
    panel = f"{workload}, socket {PER_BLOCK_US:.0f} µs/block"
    result.series[panel] = {}
    result.table_header = ["cpus", "avg lat (µs)", "max lat (µs)", "runtime (µs)"]
    for n in cpus:
        report = run_huffman(config=RunConfig(
            workload=workload,
            n_blocks=scale.n_blocks(workload),
            block_size=scale.block_size,
            reduce_ratio=scale.socket_reduce_ratio,
            offset_fanout=scale.socket_offset_fanout,
            io=SocketModel(per_block_us=PER_BLOCK_US, jitter=0.05),
            policy="balanced",
            step=1,
            workers=n,
            seed=seed,
            label=f"fig8/{workload}/{n}cpu",
        ))
        result.series[panel][f"{n} cpu"] = report.latencies
        result.reports[(panel, f"{n} cpu")] = report
        result.table_rows.append([
            str(n),
            f"{report.avg_latency:,.0f}",
            f"{report.result.latencies.max():,.0f}",
            f"{report.completion_time:,.0f}",
        ])
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""Executor micro-benchmark: the same workload on every SRE back-end.

The workload is deliberately hostile to the GIL: ``blocks`` independent
pure-Python histogram tasks (:func:`~repro.huffman.histogram.byte_histogram_py`),
no NumPy anywhere in the hot loop. The threaded executor serialises them;
the process executor ships each task's payload to a worker process and runs
them truly in parallel; the simulated executor runs them single-threaded on
a virtual clock (its wall time is the serial reference).

Used two ways:

* ``python benchmarks/bench_micro.py --executor {sim,threads,procs,all}``
  — the speedup table (``all`` compares threads vs procs);
* ``repro executors`` — the same table from the installed CLI.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.errors import ExperimentError
from repro.huffman.histogram import byte_histogram_py
from repro.sre.registry import make_executor
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["ExecutorTiming", "run_executor_bench", "compare_executors",
           "render_table", "main"]

EXECUTORS = ("sim", "threads", "procs")


def _hist_kernel(data: bytes) -> dict[str, int]:
    counts = byte_histogram_py(data)
    return {"out": sum(i * c for i, c in enumerate(counts)) & 0xFFFFFFFF}


@dataclass
class ExecutorTiming:
    """Wall-clock result of one back-end running the reference workload."""

    executor: str
    wall_s: float
    blocks: int
    block_bytes: int
    workers: int

    @property
    def throughput_mb_s(self) -> float:
        total = self.blocks * self.block_bytes / (1024 * 1024)
        return total / self.wall_s if self.wall_s > 0 else float("inf")


def _make_blocks(blocks: int, block_bytes: int, seed: int) -> list[bytes]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, block_bytes, dtype=np.uint8).tobytes()
            for _ in range(blocks)]


def run_executor_bench(
    executor: str,
    *,
    blocks: int = 32,
    block_kb: int = 256,
    workers: int = 4,
    seed: int = 0,
) -> ExecutorTiming:
    """Run ``blocks`` pure-Python histogram tasks on one back-end."""
    if executor not in EXECUTORS:
        raise ExperimentError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    block_bytes = block_kb * 1024
    data = _make_blocks(blocks, block_bytes, seed)
    runtime = Runtime(track_memory=False)
    checksums: list[int] = []

    t0 = time.perf_counter()
    if executor == "sim":
        ex = make_executor("sim", runtime, platform="x86", workers=workers)
        _add_tasks(runtime, data, checksums)
        ex.run()
    else:
        ex = make_executor(executor, runtime, workers=workers)
        _add_tasks(runtime, data, checksums)
        ex.run(timeout=600.0)
    wall = time.perf_counter() - t0

    if len(checksums) != blocks:
        raise ExperimentError(
            f"{executor}: {len(checksums)}/{blocks} histogram tasks completed"
        )
    return ExecutorTiming(executor, wall, blocks, block_bytes, workers)


def _add_tasks(runtime: Runtime, data: list[bytes], checksums: list[int]) -> None:
    for i, block in enumerate(data):
        task = Task(
            f"pyhist:{i}",
            partial(_hist_kernel, block),
            kind="count",
            cost_hint={"bytes": float(len(block))},
        )
        runtime.add_task(task)
        runtime.connect_sink(task, "out", checksums.append)


def compare_executors(
    executors: tuple[str, ...] = EXECUTORS,
    **kwargs,
) -> list[ExecutorTiming]:
    return [run_executor_bench(name, **kwargs) for name in executors]


def render_table(timings: list[ExecutorTiming]) -> str:
    """Human-readable timing table with the threads-vs-procs speedup line."""
    lines = [
        f"{'executor':<10} {'wall (s)':>10} {'MB/s':>10}",
        "-" * 32,
    ]
    by_name = {t.executor: t for t in timings}
    for t in timings:
        lines.append(
            f"{t.executor:<10} {t.wall_s:>10.3f} {t.throughput_mb_s:>10.1f}"
        )
    if "threads" in by_name and "procs" in by_name:
        speedup = by_name["threads"].wall_s / by_name["procs"].wall_s
        lines.append("-" * 32)
        lines.append(f"procs speedup over threads: {speedup:.2f}x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Pure-Python histogram workload across SRE executors"
    )
    parser.add_argument("--executor", default="all",
                        choices=EXECUTORS + ("all",))
    parser.add_argument("--blocks", type=int, default=32)
    parser.add_argument("--block-kb", type=int, default=256, dest="block_kb")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    names = EXECUTORS if args.executor == "all" else (args.executor,)
    timings = compare_executors(
        names, blocks=args.blocks, block_kb=args.block_kb,
        workers=args.workers, seed=args.seed,
    )
    print(f"{args.blocks} x {args.block_kb} KB pure-Python histogram tasks, "
          f"{args.workers} workers")
    print(render_table(timings))
    return 0

"""Figure 3 — dispatch policies on x86, reading from disk.

Latency per element for TXT/BMP/PDF under non-speculative, balanced,
aggressive and conservative dispatching, plus the run-times panel (3d).

Paper findings this module must reproduce: aggressive wins when no rollbacks
occur (TXT); conservative and balanced are resilient when rollbacks do occur
(PDF); balanced is the best all-rounder; proper speculation cuts TXT runtime
by ~19.5 %.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale
from repro.experiments.figures import FigureResult, policy_sweep

__all__ = ["run"]


def run(scale: ExperimentScale | None = None, seed: int = 0) -> FigureResult:
    result = policy_sweep(
        figure="fig3",
        title="Latency and runtime per dispatch policy, x86 / disk",
        platform="x86",
        scale=scale,
        seed=seed,
    )
    txt_panel = "txt (x86)"
    nonspec = result.reports[(txt_panel, "nonspec")]
    best = min(
        (result.reports[(txt_panel, p)] for p in ("balanced", "aggressive")),
        key=lambda r: r.completion_time,
    )
    speedup = 1.0 - best.completion_time / nonspec.completion_time
    result.notes.append(
        f"TXT runtime speedup of best speculative policy vs non-spec: "
        f"{100 * speedup:.1f}% (paper: ~19.5%)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

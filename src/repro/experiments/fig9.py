"""Figure 9 — the impact of the tolerance margin (1 % / 2 % / 5 %).

Per-element latency on TXT and PDF (x86, balanced dispatch, step 1, verify
every 8) for three tolerance settings.

Paper finding, counter-intuitive: raising tolerance from 1 % to 2 % makes
PDF *worse* — the speculative tree's error crosses 1 % early (cheap, early
rollback and recovery) but crosses 2 % only deep into the run (the failure
is detected late, discarding far more work). At 5 % nothing ever fails:
the first speculation commits, trading a sliver of compression ratio for
the best latency. TXT never rolls back at any margin.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentScale, active_scale
from repro.experiments.figures import FigureResult
from repro.experiments.runner import RunConfig, run_huffman

__all__ = ["run", "TOLERANCES"]

TOLERANCES = (0.01, 0.02, 0.05)


def run(
    scale: ExperimentScale | None = None,
    seed: int = 0,
    workloads: tuple[str, ...] = ("txt", "pdf"),
    tolerances: tuple[float, ...] = TOLERANCES,
) -> FigureResult:
    scale = scale or active_scale()
    result = FigureResult(
        figure="fig9",
        title="Tolerance margins 1% / 2% / 5% (x86 / disk, balanced)",
    )
    result.table_header = ["file", "tolerance", "avg lat (µs)", "rollbacks",
                           "last rollback seen at check #", "ratio", "outcome"]
    for wl in workloads:
        panel = f"{wl} tolerance sweep"
        result.series[panel] = {}
        for tol in tolerances:
            report = run_huffman(config=RunConfig(
                workload=wl,
                n_blocks=scale.n_blocks(wl),
                block_size=scale.block_size,
                reduce_ratio=scale.reduce_ratio,
                offset_fanout=scale.offset_fanout,
                policy="balanced",
                step=1,
                tolerance=tol,
                seed=seed,
                label=f"fig9/{wl}/{tol:.0%}",
            ))
            label = f"{tol:.0%}"
            result.series[panel][label] = report.latencies
            result.reports[(panel, label)] = report
            checks_failed = report.result.spec_stats.get("checks_failed", 0)
            result.table_rows.append([
                wl, label,
                f"{report.avg_latency:,.0f}",
                str(report.result.spec_stats.get("rollbacks", 0)),
                str(int(checks_failed)),
                f"{report.result.compression_ratio:.4f}",
                report.result.outcome,
            ])
    result.notes.append(
        "Expected ordering on PDF: 2% worst (late detection), 1% middle "
        "(early rollback), 5% best (no rollback, slightly worse ratio)."
    )
    return result


def main() -> None:  # pragma: no cover - CLI glue
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()

"""The Huffman encoder benchmark (paper §IV).

A complete, correct Huffman codec plus the streaming pipeline that the paper
evaluates:

* first pass — per-block ``count`` histograms merged by a cascade of
  ``reduce`` tasks into prefix histograms and finally the global histogram;
* the serial ``tree`` build (the Amdahl bottleneck speculation bypasses);
* second pass — the serial ``offset`` chain (variable-length output needs
  each block's bit position) feeding data-parallel ``encode`` tasks;
* the tolerance check comparing compressed size under the speculative vs the
  fresh tree (§IV-B).

Design note: trees always assign a code to *all 256 symbols* (zero
frequencies are clamped to one for the tree build). A speculative tree built
from a prefix would otherwise be unable to encode symbols that first appear
later in the stream; clamping costs a fraction of a percent of compression
and makes every speculative tree total. Recorded in DESIGN.md / EXPERIMENTS.md.
"""

from repro.huffman.histogram import byte_histogram, merge_histograms, zero_histogram
from repro.huffman.tree import HuffmanTree, code_lengths
from repro.huffman.codec import (
    assemble_stream,
    decode_stream,
    encode_block,
    encoded_size_bits,
)
from repro.huffman.offsets import block_bits, group_offsets
from repro.huffman.checkers import compression_size_error
from repro.huffman.container import compress, decompress
from repro.huffman.lengthlimit import limited_code_lengths, limited_tree
from repro.huffman.reference import reference_compress, reference_decompress
from repro.huffman.pipeline import HuffmanConfig, HuffmanPipeline, PipelineResult

__all__ = [
    "byte_histogram",
    "merge_histograms",
    "zero_histogram",
    "HuffmanTree",
    "code_lengths",
    "encode_block",
    "decode_stream",
    "assemble_stream",
    "encoded_size_bits",
    "block_bits",
    "group_offsets",
    "compression_size_error",
    "compress",
    "decompress",
    "limited_code_lengths",
    "limited_tree",
    "reference_compress",
    "reference_decompress",
    "HuffmanConfig",
    "HuffmanPipeline",
    "PipelineResult",
]

"""The Huffman tolerance check (§IV-B).

"Our check task checks if the difference in compression size is within a
certain percentage of the compressed file. It does so by using the current
global histogram to sum the product of the frequency of each character with
the number of bits associated to it by each tree."

The error is *relative to the size under the fresh (candidate) tree* — the
"new compression rate" in the paper — so the same number compares cleanly
against the tolerance margins (1 %, 2 %, 5 %) of Fig. 9.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ToleranceError
from repro.huffman.tree import HuffmanTree

__all__ = ["compression_size_error"]


def compression_size_error(
    predicted: HuffmanTree, candidate: HuffmanTree, hist: np.ndarray
) -> float:
    """Relative compressed-size excess of ``predicted`` vs ``candidate``.

    Both trees are priced on the same reference histogram (the prefix
    histogram current at check time). Returns
    ``|size_pred - size_cand| / size_cand`` — 0.0 means the speculative tree
    compresses exactly as well as a tree built from everything seen so far.
    """
    if predicted is None or candidate is None:
        raise ToleranceError("check requires both a predicted and a candidate tree")
    size_pred = predicted.encoded_bits(hist)
    size_cand = candidate.encoded_bits(hist)
    if size_cand <= 0:
        # Empty reference prefix: nothing to disagree about.
        return 0.0
    return abs(size_pred - size_cand) / size_cand

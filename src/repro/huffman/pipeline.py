"""The streaming Huffman pipeline — speculative and non-speculative.

Orchestrates the paper's Fig. 2 data-flow graphs over the SRE runtime:

* blocks arrive (``feed_block``) → ``count`` tasks;
* complete reduce-groups spawn the running ``reduce`` chain; each reduce is
  flagged as a *speculation base*, so its completion bubbles through the
  SuperTask hierarchy (§III-B) and is offered to the
  :class:`~repro.core.manager.SpeculationManager` as an update;
* the manager builds speculative trees from prefix histograms, launches
  speculative second passes (offset chain → encodes → wait buffer), checks
  them against fresh prefixes under the tolerance margin, and rolls back or
  commits;
* the non-speculative path (or the recompute path after a failed final
  check) runs the same second pass with the true tree, emitting directly.

Everything here is executor-agnostic: the same pipeline runs under the
simulated executor (paper figures) and the threaded executor (live demo).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.frequency import (
    SpeculationInterval,
    VerificationPolicy,
    get_verification,
)
from repro.core.manager import SpeculationManager
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.errors import ExperimentError
from repro.huffman.checkers import compression_size_error
from repro.huffman.codec import assemble_stream, decode_stream
from repro.huffman.histogram import zero_histogram
from repro.huffman.tasks import (
    make_count_task,
    make_encode_task,
    make_offset_task,
    make_reduce_task,
    make_tree_task,
)
from repro.huffman.tree import HuffmanTree
from repro.metrics.latency import LatencyCollector
from repro.sre.runtime import Runtime
from repro.sre.shm import BlockRef, BlockStore
from repro.sre.task import Task

__all__ = ["HuffmanConfig", "HuffmanPipeline", "PipelineResult"]


@dataclass
class HuffmanConfig:
    """Pipeline parameters (paper §V-A "Parametrization").

    Defaults follow the x86 disk configuration: 4 KB blocks, 16:1 reduce
    ratio, 64-wide offset fan-out, verification every 8th reduce, 1 %
    tolerance. The socket configuration drops both ratios to 8:1.
    """

    block_size: int = 4096
    reduce_ratio: int = 16
    offset_fanout: int = 64
    speculative: bool = True
    #: speculation step size (0 = speculate on the first count histogram).
    step: int = 1
    #: "every_k" / "optimistic" / "full", or a VerificationPolicy instance.
    verification: VerificationPolicy | str = "every_k"
    verify_k: int = 8
    tolerance: float = 0.01
    #: build length-limited (package-merge) trees instead of plain Huffman;
    #: bounds decoder table size at a tiny compression cost.
    max_code_length: int | None = None

    def __post_init__(self) -> None:
        if self.block_size < 1 or self.reduce_ratio < 1 or self.offset_fanout < 1:
            raise ExperimentError("block_size, reduce_ratio, offset_fanout must be >= 1")
        if self.step < 0:
            raise ExperimentError("step must be >= 0")
        if not (0.0 <= self.tolerance):
            raise ExperimentError("tolerance must be non-negative")
        if self.max_code_length is not None and not (8 <= self.max_code_length <= 63):
            raise ExperimentError("max_code_length must be in [8, 63]")

    def resolve_verification(self) -> VerificationPolicy:
        if isinstance(self.verification, VerificationPolicy):
            return self.verification
        return get_verification(self.verification, k=self.verify_k)


@dataclass
class PipelineResult:
    """Everything an experiment reports about one run."""

    n_blocks: int
    outcome: str  # "non_speculative" | "commit" | "recompute"
    arrivals: np.ndarray
    completions: np.ndarray
    latencies: np.ndarray
    commit_latencies: np.ndarray
    completion_time: float
    compressed_bits: int
    input_bytes: int
    wasted_encodes: int
    spec_stats: dict[str, float] = field(default_factory=dict)
    runtime_stats: dict[str, float] = field(default_factory=dict)

    @property
    def avg_latency(self) -> float:
        return float(self.latencies.mean())

    @property
    def max_latency(self) -> float:
        return float(self.latencies.max())

    @property
    def compression_ratio(self) -> float:
        """Input size over output size (larger = better compression)."""
        if self.compressed_bits == 0:
            return float("inf")
        return 8.0 * self.input_bytes / self.compressed_bits


class HuffmanPipeline:
    """Drives one Huffman encoding run over a runtime."""

    def __init__(self, runtime: Runtime, config: HuffmanConfig, n_blocks: int,
                 store: BlockStore | None = None) -> None:
        if n_blocks < 1:
            raise ExperimentError("need at least one block")
        self.runtime = runtime
        self.config = config
        #: optional shared-memory transport: blocks, histograms and trees go
        #: into the store once and tasks carry refs (see repro/sre/shm.py).
        self.store = store
        self.n_blocks = n_blocks
        self.n_groups = math.ceil(n_blocks / config.reduce_ratio)

        root = runtime.root.subgroup("huffman")
        self.st_first = root.subgroup("first_pass")
        self.st_second = root.subgroup("second_pass")
        self.st_spec = root.subgroup("speculation")

        self.collector = LatencyCollector()
        self.blocks: dict[int, np.ndarray] = {}
        self.block_hists: dict[int, np.ndarray] = {}
        #: base references: one per input block (released when the block's
        #: encoding commits) and one per block histogram (released when the
        #: store closes — histograms are tiny and shared by every pass).
        self.block_refs: dict[int, BlockRef] = {}
        self.hist_refs: dict[int, BlockRef] = {}
        #: every ref this run ever put (blocks, hists, trees) — the
        #: population :meth:`release_store_refs` drains on a caller-owned
        #: store, where ``BlockStore.close``'s leftover sweep never runs.
        self._all_refs: list[BlockRef] = []
        self._reduce_tasks: dict[int, Task] = {}
        self._reduce_group_have: dict[int, int] = defaultdict(int)
        self._builders: list[_SecondPassBuilder] = []
        self._fed = 0
        self._assembled: dict[int, tuple[int, np.ndarray, int]] = {}
        self._valid_tree: HuffmanTree | None = None
        self._natural_launched = False

        self.barrier: WaitBuffer | None = None
        self.manager: SpeculationManager | None = None
        if config.speculative:
            self.barrier = WaitBuffer(sink=self._commit_sink, events=runtime.events)
            spec = (
                SpeculationSpec.builder("huffman")
                .what(launch=self._launch_speculative,
                      recompute=self._launch_recompute)
                .how(self._make_tree_task,
                     interval=SpeculationInterval(config.step))
                .barrier(self.barrier)
                .validate(compression_size_error,
                          tolerance=RelativeTolerance(config.tolerance),
                          verification=config.resolve_verification())
                .build()
            )
            self.manager = SpeculationManager(runtime, spec)

        # Reduce completions reach us through the SuperTask spec-base
        # notification chain — the paper's flagged-task mechanism (§III-B).
        self.st_first.on_speculation_base(self._on_spec_base)

        # Per-block latency histograms on the run's registry: committed
        # latency (arrival → authoritative store) is the paper's headline
        # metric; observing it at the commit sink keeps the numbers
        # executor-agnostic (µs on whatever clock the run uses).
        self._m_block_latency = runtime.metrics.histogram(
            "block_latency_us",
            "per-block latency µs: arrival → authoritative (committed) store")
        self._m_blocks_committed = runtime.metrics.counter(
            "blocks_committed", "blocks whose encoding became authoritative")

    # ------------------------------------------------------------------
    # input
    # ------------------------------------------------------------------
    def feed_block(self, index: int, data: bytes | np.ndarray) -> None:
        """A data block arrived (called by the I/O model at arrival time)."""
        if not (0 <= index < self.n_blocks):
            raise ExperimentError(f"block index {index} out of range")
        if index in self.blocks:
            raise ExperimentError(f"block {index} fed twice")
        arr = data if isinstance(data, np.ndarray) else np.frombuffer(data, dtype=np.uint8)
        self.blocks[index] = arr
        self._fed += 1
        self.collector.record_arrival(index, self.runtime.now)
        ref = None
        if self.store is not None:
            # The block enters shared memory exactly once, here; every task
            # that touches it from now on carries the ref, not the bytes.
            ref = self.store.put(arr)
            if ref is not None:
                self.block_refs[index] = ref
                self._all_refs.append(ref)
        task = make_count_task(index, arr, ref)
        task.on_complete.append(self._count_done)
        self.runtime.add_task(task, self.st_first)

    def _make_tree_task(self, hist: np.ndarray, name: str) -> Task:
        return make_tree_task(hist, name, self.config.max_code_length)

    # ------------------------------------------------------------------
    # first pass
    # ------------------------------------------------------------------
    def _count_done(self, task: Task, outs: dict[str, Any]) -> None:
        index = task.tags["block"]
        hist = outs["out"]
        self.block_hists[index] = hist
        if self.store is not None:
            href = self.store.put(hist)
            if href is not None:
                self.hist_refs[index] = href
                self._all_refs.append(href)
        # Step size 0: speculate on the very first partial value available —
        # the first block's count histogram, before any reduce completes.
        if (
            self.manager is not None
            and self.config.step == 0
            and index == 0
            and not self.manager.versions
        ):
            self.manager.offer_update(0, hist)
        for builder in list(self._builders):
            builder.on_block_hist(index)
        group = index // self.config.reduce_ratio
        self._reduce_group_have[group] += 1
        if self._reduce_group_have[group] == self._reduce_group_len(group):
            self._make_reduce(group)

    def _reduce_group_len(self, group: int) -> int:
        start = group * self.config.reduce_ratio
        end = min(start + self.config.reduce_ratio, self.n_blocks)
        return end - start

    def _make_reduce(self, group: int) -> None:
        start = group * self.config.reduce_ratio
        end = start + self._reduce_group_len(group)
        task = make_reduce_task(
            group,
            [self.block_hists[i] for i in range(start, end)],
            refs=self._hist_bindings(start, end),
        )
        self._reduce_tasks[group] = task
        self.runtime.add_task(task, self.st_first)
        if group == 0:
            self.runtime.deliver_external(task, "prev", zero_histogram())
        elif group - 1 in self._reduce_tasks:
            self.runtime.connect(self._reduce_tasks[group - 1], "out", task, "prev")
        if group + 1 in self._reduce_tasks:
            self.runtime.connect(task, "out", self._reduce_tasks[group + 1], "prev")

    def _on_spec_base(self, task: Task, outs: dict[str, Any]) -> None:
        group = task.tags.get("reduce_index")
        if group is None:
            return
        prefix_hist = outs["out"]
        is_final = group == self.n_groups - 1
        if self.manager is not None:
            self.manager.offer_update(group + 1, prefix_hist, is_final=is_final)
        elif is_final:
            self._start_natural_tree(prefix_hist)

    # ------------------------------------------------------------------
    # second pass (natural and speculative)
    # ------------------------------------------------------------------
    def _start_natural_tree(self, hist: np.ndarray) -> None:
        task = self._make_tree_task(hist, "tree:natural")
        task.on_complete.append(lambda _t, outs: self._launch_recompute(outs["out"]))
        self.runtime.add_task(task, self.st_second)

    def _launch_recompute(self, tree: HuffmanTree) -> None:
        """Build the authoritative second pass with the true tree."""
        if self._natural_launched:
            raise ExperimentError("natural second pass launched twice")
        self._natural_launched = True
        self._valid_tree = tree
        builder = _SecondPassBuilder(self, tree, version=None)
        self._builders.append(builder)
        builder.bootstrap()

    def _launch_speculative(self, version: SpecVersion) -> None:
        """Speculation manager callback: build a speculative second pass."""
        builder = _SecondPassBuilder(self, version.value, version=version)
        self._builders.append(builder)
        builder.bootstrap()

    def _encode_done(self, version: SpecVersion | None, outs: dict[str, Any]) -> None:
        block = outs["block"]
        now = self.runtime.now
        entry = (outs["offset"], outs["payload"], outs["nbits"])
        if version is None:
            self.collector.record_encode(block, now, None)
            self._commit_sink(block, entry, now)
        else:
            self.collector.record_encode(block, now, version.vid)
            assert self.barrier is not None
            self.barrier.deposit(version.vid, block, entry, now)

    def _hist_bindings(self, start: int, end: int) -> list | None:
        """Per-histogram payload bindings (ref where stored, array where not)."""
        if self.store is None:
            return None
        return [self.hist_refs.get(i, self.block_hists[i]) for i in range(start, end)]

    def _commit_sink(self, block: int, entry: tuple[int, np.ndarray, int], now: float) -> None:
        """A block's encoding became authoritative (the Store node)."""
        if self.store is not None and block in self.block_refs:
            # The block's bytes are no longer needed by any future task:
            # drop the base reference (local views stay valid after the
            # segment unlinks — only the name goes away).
            self.store.release(self.block_refs.pop(block), reason="commit")
        self.collector.record_commit(block, now)
        self._assembled[block] = entry
        self._m_blocks_committed.inc()
        self._m_block_latency.observe(now - self.collector.arrival_time(block))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def valid_versions(self) -> set[int | None]:
        """Speculation versions whose encodes are authoritative."""
        if self.manager is None:
            return {None}
        if self.manager.outcome == "commit":
            committed = [v for v in self.manager.versions if v.committed]
            return {committed[0].vid}
        if self.manager.outcome == "recompute":
            return {None}
        raise ExperimentError("run not finished: no commit/recompute decision yet")

    @property
    def committed_tree(self) -> HuffmanTree:
        """The tree the authoritative output was encoded with."""
        if self.manager is not None and self.manager.outcome == "commit":
            return next(v for v in self.manager.versions if v.committed).value
        if self._valid_tree is None:
            raise ExperimentError("run not finished: no authoritative tree")
        return self._valid_tree

    def outcome(self) -> str:
        if self.manager is None:
            return "non_speculative"
        if self.manager.outcome is None:
            raise ExperimentError("run not finished")
        return self.manager.outcome

    def result(self, completion_time: float | None = None) -> PipelineResult:
        """Collect the run's metrics (after the executor drained)."""
        if self._fed != self.n_blocks:
            raise ExperimentError(
                f"only {self._fed}/{self.n_blocks} blocks were fed"
            )
        valid = self.valid_versions()
        latencies = self.collector.latencies(valid)
        completions = self.collector.completions(valid)
        spec_stats: dict[str, float] = {}
        if self.manager is not None:
            spec_stats = self.manager.stats.as_dict()
        compressed_bits = sum(nbits for (_, _, nbits) in self._assembled.values())
        end = completion_time if completion_time is not None else float(completions.max())
        return PipelineResult(
            n_blocks=self.n_blocks,
            outcome=self.outcome(),
            arrivals=self.collector.arrivals(),
            completions=completions,
            latencies=latencies,
            commit_latencies=self.collector.commit_latencies(),
            completion_time=end,
            compressed_bits=compressed_bits,
            input_bytes=sum(b.size for b in self.blocks.values()),
            wasted_encodes=self.collector.wasted_encodes(valid),
            spec_stats=spec_stats,
            runtime_stats=self.runtime.stats(),
        )

    def assemble(self) -> tuple[np.ndarray, int]:
        """Concatenate the authoritative encodes into one packed stream."""
        if len(self._assembled) != self.n_blocks:
            raise ExperimentError(
                f"assembly has {len(self._assembled)}/{self.n_blocks} blocks"
            )
        pieces = [self._assembled[b] for b in sorted(self._assembled)]
        total_bits = max(off + nbits for (off, _, nbits) in pieces)
        packed = assemble_stream(
            ((off, payload, nbits) for (off, payload, nbits) in pieces), total_bits
        )
        return packed, total_bits

    def verify_roundtrip(self, original: bytes) -> bool:
        """Decode the assembled stream and compare with the original input."""
        packed, total_bits = self.assemble()
        return decode_stream(packed, total_bits, self.committed_tree) == bytes(original)

    def release_store_refs(self) -> None:
        """Release every shared-memory reference this run still holds.

        The one-shot path sweeps leftovers in ``BlockStore.close``; a run
        on a *caller-owned* store (the serve daemon's warm arenas) must
        drain its own refs instead, so the arenas go back to the pool
        empty. Call only at quiescence — once the executor has drained,
        every remaining count on this run's refs belongs to this run
        (including version-held acquires on the same blocks).
        """
        if self.store is None:
            return
        for ref in self._all_refs:
            count = self.store.refcount(ref)
            if count:
                self.store.release(ref, reason="drain", n=count)
        self._all_refs.clear()
        self.block_refs.clear()
        self.hist_refs.clear()


class _SecondPassBuilder:
    """Builds one second pass (offset chain + encodes) for one tree.

    ``version=None`` builds the natural/authoritative pass; otherwise all
    tasks are speculative, registered with the version (rollback footprint)
    and their results pause at the wait buffer.
    """

    def __init__(
        self,
        pipeline: HuffmanPipeline,
        tree: HuffmanTree,
        version: SpecVersion | None,
    ) -> None:
        self.pipeline = pipeline
        self.tree = tree
        self.version = version
        self.label = f"v{version.vid}" if version is not None else "nat"
        # One shared-memory copy of the tree per second pass: 64 encodes
        # reference it by handle; each address space unpickles it once.
        self.tree_ref = None
        if pipeline.store is not None:
            self.tree_ref = pipeline.store.put(tree)
            if self.tree_ref is not None:
                pipeline._all_refs.append(self.tree_ref)
            if self.tree_ref is not None and version is not None:
                # The version owns its tree copy: the ref is dropped with
                # the version's fate (commit or rollback), so a dead
                # speculation never pins the segment.
                version.add_resource(pipeline.store.release_callback(self.tree_ref))
        fanout = pipeline.config.offset_fanout
        self.fanout = fanout
        self.n_enc_groups = math.ceil(pipeline.n_blocks / fanout)
        self._group_have: dict[int, int] = defaultdict(int)
        self._offset_tasks: dict[int, Task] = {}
        self._bootstrapped = False

    @property
    def dead(self) -> bool:
        return self.version is not None and not self.version.active

    def _pin(self, indices, refs: dict) -> None:
        """Acquire an extra reference per referenced block for this version.

        Released through ``SpecVersion.release_resources`` on commit or
        rollback — the refcount trace is how the run proves mis-speculated
        versions never pin shared memory.
        """
        store = self.pipeline.store
        if store is None:
            return
        assert self.version is not None
        for i in indices:
            ref = refs.get(i)
            if ref is not None:
                store.acquire(ref)
                self.version.add_resource(store.release_callback(ref))

    def _group_span(self, group: int) -> tuple[int, int]:
        start = group * self.fanout
        return start, min(start + self.fanout, self.pipeline.n_blocks)

    def bootstrap(self) -> None:
        """Absorb every block histogram that existed before this builder."""
        if self._bootstrapped:
            raise ExperimentError("builder bootstrapped twice")
        self._bootstrapped = True
        for index in sorted(self.pipeline.block_hists):
            self.on_block_hist(index)

    def on_block_hist(self, index: int) -> None:
        """A block's count finished; build its group's offset when complete."""
        if self.dead:
            return
        group = index // self.fanout
        self._group_have[group] += 1
        start, end = self._group_span(group)
        if self._group_have[group] == end - start:
            self._make_offset(group)

    def _make_offset(self, group: int) -> None:
        start, end = self._group_span(group)
        pipeline = self.pipeline
        hists = [pipeline.block_hists[i] for i in range(start, end)]
        task = make_offset_task(
            f"offset:{self.label}:g{group}",
            hists,
            self.tree,
            speculative=self.version is not None,
            hist_refs=pipeline._hist_bindings(start, end),
            tree_ref=self.tree_ref,
        )
        if self.version is not None:
            self.version.register(task)
            self._pin(range(start, end), pipeline.hist_refs)
        task.on_complete.append(lambda _t, outs, g=group: self._offset_done(g, outs))
        self._offset_tasks[group] = task
        st = pipeline.st_spec if self.version is not None else pipeline.st_second
        pipeline.runtime.add_task(task, st)
        if group == 0:
            pipeline.runtime.deliver_external(task, "prev", 0)
        elif group - 1 in self._offset_tasks:
            pipeline.runtime.connect(self._offset_tasks[group - 1], "cum", task, "prev")
        if group + 1 in self._offset_tasks:
            pipeline.runtime.connect(task, "cum", self._offset_tasks[group + 1], "prev")

    def _offset_done(self, group: int, outs: dict[str, Any]) -> None:
        if self.dead:
            return
        offsets = outs["offsets"]
        start, end = self._group_span(group)
        pipeline = self.pipeline
        st = pipeline.st_spec if self.version is not None else pipeline.st_second
        if self.version is not None:
            self._pin(range(start, end), pipeline.block_refs)
        for k, index in enumerate(range(start, end)):
            task = make_encode_task(
                f"encode:{self.label}:{index}",
                index,
                pipeline.blocks[index],
                self.tree,
                int(offsets[k]),
                speculative=self.version is not None,
                ref=pipeline.block_refs.get(index),
                tree_ref=self.tree_ref,
            )
            if self.version is not None:
                self.version.register(task)
            task.on_complete.append(
                lambda _t, e_outs, v=self.version: pipeline._encode_done(v, e_outs)
            )
            pipeline.runtime.add_task(task, st)

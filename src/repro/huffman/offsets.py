"""The offset chain — serialised bit positions for parallel encoding.

Huffman output is variable-length, so a block's position in the output is
known only once every previous block's encoded size is known (§IV-A). The
paper parallelises the second pass by adding an offset phase: per-group
offset tasks consume the group's block histograms, the tree, and the end
offset of the previous group — a cheap serial chain (prefix sum) that then
feeds many encode tasks at once.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CodecError
from repro.huffman.tree import HuffmanTree

__all__ = ["block_bits", "group_offsets"]


def block_bits(hist: np.ndarray, tree: HuffmanTree) -> int:
    """Encoded size of one block (bits), from its histogram alone."""
    return tree.encoded_bits(hist)


def group_offsets(
    hists: Sequence[np.ndarray], tree: HuffmanTree, start: int
) -> tuple[np.ndarray, int]:
    """Bit offsets for a group of consecutive blocks.

    Args:
        hists: per-block histograms, in block order.
        tree: the encoding tree (speculative or final).
        start: end offset of the previous group (0 for the first).

    Returns ``(offsets, end)``: each block's start bit position and the
    group's end position (the next group's ``start``).
    """
    if start < 0:
        raise CodecError(f"negative start offset {start}")
    sizes = np.array([block_bits(h, tree) for h in hists], dtype=np.int64)
    offsets = np.empty(len(hists), dtype=np.int64)
    if len(hists):
        offsets[0] = start
        np.cumsum(sizes[:-1], out=offsets[1:])
        offsets[1:] += start
        end = int(start + sizes.sum())
    else:
        end = start
    return offsets, end

"""Sequential reference Huffman codec — the differential-testing oracle.

A straight-line implementation with no runtime, no blocks, no speculation:
histogram → tree → encode → (decode). Every pipeline configuration, however
exotic its schedule, rollbacks included, must produce a stream that decodes
to the original bytes; and a run committed on the *final* tree must match
this reference bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.huffman.codec import decode_stream, encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree

__all__ = ["reference_compress", "reference_decompress"]


def reference_compress(data: bytes) -> tuple[np.ndarray, int, HuffmanTree]:
    """Compress ``data`` in one shot; returns (packed, nbits, tree)."""
    tree = HuffmanTree.from_histogram(byte_histogram(data))
    packed, nbits = encode_block(data, tree)
    return packed, nbits, tree


def reference_decompress(packed: np.ndarray, nbits: int, tree: HuffmanTree) -> bytes:
    """Inverse of :func:`reference_compress`."""
    return decode_stream(packed, nbits, tree)

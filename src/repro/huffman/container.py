"""A self-contained compressed container format.

The pipelines produce a raw bit stream plus a tree held in memory; a real
compressor must ship the tree with the data. This module defines the small
container the examples and CLI use:

```
magic   4 B   b"RHUF"
version 1 B   0x01
nbits   8 B   big-endian payload length in bits
lengths 256 B canonical code length per byte value
payload ⌈nbits/8⌉ B
```

Canonical codes mean the 256 lengths fully determine the codebook — the
standard trick (DEFLATE does the same). Container round-trip works for any
tree the runtime can commit, including speculative (non-optimal) trees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError
from repro.huffman.codec import decode_stream, encode_block
from repro.huffman.histogram import byte_histogram
from repro.huffman.tree import HuffmanTree

__all__ = ["pack_container", "unpack_container", "compress", "decompress"]

MAGIC = b"RHUF"
VERSION = 1
HEADER_LEN = 4 + 1 + 8 + 256


def pack_container(payload: np.ndarray, nbits: int, tree: HuffmanTree) -> bytes:
    """Assemble a container from an encoded stream and its tree."""
    if nbits < 0:
        raise CodecError("negative bit count")
    need = (nbits + 7) // 8
    if payload.size < need:
        raise CodecError(f"payload holds {payload.size} B, {need} needed")
    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    out += nbits.to_bytes(8, "big")
    out += tree.lengths.tobytes()
    out += payload.tobytes()[:need]
    return bytes(out)


def unpack_container(blob: bytes) -> tuple[np.ndarray, int, HuffmanTree]:
    """Split a container into (payload, nbits, tree); validates the header."""
    if len(blob) < HEADER_LEN:
        raise CodecError("container too short")
    if blob[:4] != MAGIC:
        raise CodecError("bad magic: not a repro-huffman container")
    if blob[4] != VERSION:
        raise CodecError(f"unsupported container version {blob[4]}")
    nbits = int.from_bytes(blob[5:13], "big")
    lengths = np.frombuffer(blob[13:269], dtype=np.uint8)
    tree = HuffmanTree(lengths=lengths.copy())
    payload = np.frombuffer(blob[269:], dtype=np.uint8)
    if payload.size < (nbits + 7) // 8:
        raise CodecError("container truncated: payload shorter than nbits")
    return payload, nbits, tree


def compress(data: bytes, tree: HuffmanTree | None = None) -> bytes:
    """One-shot compress to a self-contained container.

    ``tree`` defaults to the optimal tree for ``data``; passing another
    (e.g. a committed speculative tree) produces a valid, slightly larger
    container.
    """
    if tree is None:
        tree = HuffmanTree.from_histogram(byte_histogram(data))
    payload, nbits = encode_block(data, tree)
    return pack_container(payload, nbits, tree)


def decompress(blob: bytes) -> bytes:
    """Inverse of :func:`compress`."""
    payload, nbits, tree = unpack_container(blob)
    return decode_stream(payload, nbits, tree)

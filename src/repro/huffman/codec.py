"""Bit-level Huffman encoding and decoding.

Encoding is fully vectorised (HPC guide idiom: replace the per-byte Python
loop with a handful of NumPy passes): symbol code words and lengths are
gathered through lookup tables, destination bit positions come from a prefix
sum, and one vectorised pass per code-bit position scatters the bits. The
cost is O(max_code_length) vector operations instead of O(n) Python
iterations.

Decoding is canonical-Huffman table decoding: a flat lookup table indexed by
the next ``PEEK_BITS`` bits resolves short codes in one step; rarer long
codes fall back to per-bit canonical walking. Decoding exists to *verify*
encodes (differential and property tests, experiment self-checks) — it is
not on the benchmark's measured path.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import CodecError
from repro.huffman.histogram import ALPHABET
from repro.huffman.tree import HuffmanTree

__all__ = [
    "encode_block",
    "encoded_size_bits",
    "assemble_stream",
    "decode_stream",
]

#: Width of the fast decode table. Codes no longer than this decode in one
#: table hit; longer codes take the canonical slow path.
PEEK_BITS = 16


def encoded_size_bits(hist: np.ndarray, tree: HuffmanTree) -> int:
    """Exact compressed size (bits) of data with histogram ``hist``."""
    return tree.encoded_bits(hist)


def encode_block(data: bytes | np.ndarray, tree: HuffmanTree) -> tuple[np.ndarray, int]:
    """Encode one block; returns (packed bytes as uint8 array, bit count).

    The packed array is MSB-first (``np.packbits`` convention), padded with
    zero bits to a byte boundary.
    """
    syms = data if isinstance(data, np.ndarray) else np.frombuffer(data, dtype=np.uint8)
    if syms.dtype != np.uint8:
        raise CodecError(f"encode input must be uint8, got {syms.dtype}")
    if syms.size == 0:
        return np.zeros(0, dtype=np.uint8), 0
    lens = tree.lengths[syms].astype(np.int64)
    codes = tree.codes[syms]
    total = int(lens.sum())
    starts = np.zeros(syms.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=starts[1:])
    bits = np.zeros(total, dtype=np.uint8)
    max_len = int(lens.max())
    for b in range(max_len):
        mask = lens > b
        shift = (lens[mask] - 1 - b).astype(np.uint64)
        bits[starts[mask] + b] = ((codes[mask] >> shift) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bits), total


def assemble_stream(
    pieces: Iterable[tuple[int, np.ndarray, int]], total_bits: int
) -> np.ndarray:
    """Place encoded pieces at their bit offsets in one contiguous stream.

    Args:
        pieces: iterables of ``(bit_offset, packed_bytes, nbits)``.
        total_bits: length of the assembled stream in bits.

    Returns the packed stream (uint8, MSB-first). Overlapping or
    out-of-range pieces raise — offsets come from the offset chain and must
    tile the stream exactly.
    """
    stream = np.zeros(total_bits, dtype=np.uint8)
    filled = np.zeros(total_bits, dtype=bool)
    for offset, packed, nbits in pieces:
        if offset < 0 or offset + nbits > total_bits:
            raise CodecError(
                f"piece [{offset}, {offset + nbits}) outside stream of {total_bits} bits"
            )
        if nbits == 0:
            continue
        piece_bits = np.unpackbits(packed)[:nbits]
        if piece_bits.size != nbits:
            raise CodecError(f"piece claims {nbits} bits but has {piece_bits.size}")
        if filled[offset : offset + nbits].any():
            raise CodecError(f"piece at offset {offset} overlaps assembled data")
        stream[offset : offset + nbits] = piece_bits
        filled[offset : offset + nbits] = True
    if not filled.all():
        raise CodecError("assembled stream has gaps")
    return np.packbits(stream)


def _build_decode_tables(tree: HuffmanTree):
    """Canonical decode tables: fast LUT + per-length first-code tables."""
    lengths = tree.lengths.astype(np.int64)
    max_len = int(lengths.max())
    order = np.lexsort((np.arange(ALPHABET), lengths))
    sorted_syms = order
    sorted_lens = lengths[order]
    # first_code[l], first_rank[l]: canonical decode bookkeeping.
    counts = np.bincount(sorted_lens, minlength=max_len + 1)
    first_code = np.zeros(max_len + 2, dtype=np.int64)
    first_rank = np.zeros(max_len + 2, dtype=np.int64)
    code = 0
    rank = 0
    for l in range(1, max_len + 1):
        first_code[l] = code
        first_rank[l] = rank
        code = (code + int(counts[l])) << 1
        rank += int(counts[l])
    # Fast table: for every PEEK_BITS window, the decoded symbol and its
    # length (0 length = code longer than PEEK_BITS, take slow path).
    peek = min(PEEK_BITS, max_len)
    table_syms = np.zeros(1 << peek, dtype=np.uint16)
    table_lens = np.zeros(1 << peek, dtype=np.uint8)
    for sym in range(ALPHABET):
        l = int(lengths[sym])
        if l > peek:
            continue
        prefix = int(tree.codes[sym]) << (peek - l)
        span = 1 << (peek - l)
        table_syms[prefix : prefix + span] = sym
        table_lens[prefix : prefix + span] = l
    return peek, table_syms, table_lens, first_code, first_rank, sorted_syms, counts, max_len


def decode_stream(packed: np.ndarray, nbits: int, tree: HuffmanTree) -> bytes:
    """Decode ``nbits`` of a packed canonical-Huffman stream back to bytes.

    Strategy: vectorise everything position-independent up front — for
    *every* bit position, precompute which symbol a code starting there
    would decode to and how long it is (a ``PEEK_BITS``-wide sliding-window
    table lookup). The remaining sequential part is a tight chain walk
    ``pos -> pos + len[pos]`` (two array reads per symbol). Codes longer
    than the peek window take a per-bit canonical fallback.
    """
    if nbits == 0:
        return b""
    bits = np.unpackbits(packed)
    if bits.size < nbits:
        raise CodecError(f"stream holds {bits.size} bits, {nbits} claimed")
    bits = bits[:nbits]
    (peek, table_syms, table_lens, first_code, first_rank,
     sorted_syms, counts, max_len) = _build_decode_tables(tree)

    # peek_vals[i] = the `peek` bits starting at i (zero-padded at the end).
    padded = np.concatenate([bits, np.zeros(peek, dtype=np.uint8)])
    peek_vals = np.zeros(nbits, dtype=np.uint32)
    for k in range(peek):
        peek_vals |= padded[k : k + nbits].astype(np.uint32) << (peek - 1 - k)
    sym_at = table_syms[peek_vals]
    len_at = table_lens[peek_vals].astype(np.int64)

    out = bytearray()
    append = out.append
    pos = 0
    total = nbits
    while pos < total:
        l = len_at[pos]
        if l > 0:
            if pos + l > total:
                raise CodecError(f"corrupt stream: code at bit {pos} overruns the end")
            append(sym_at[pos])
            pos += l
            continue
        # Slow path: code longer than the peek window — canonical walk.
        code = 0
        l = 0
        found = False
        while pos + l < total and l < max_len:
            code = (code << 1) | int(bits[pos + l])
            l += 1
            if counts[l] and first_code[l] <= code < first_code[l] + int(counts[l]):
                append(int(sorted_syms[first_rank[l] + code - first_code[l]]))
                pos += l
                found = True
                break
        if not found:
            raise CodecError(f"corrupt stream: no code boundary at bit {pos}")
    return bytes(out)

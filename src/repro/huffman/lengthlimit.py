"""Length-limited Huffman codes via the package-merge algorithm.

Unrestricted Huffman codes over skewed histograms can produce codes longer
than the decoder's fast-table width (``codec.PEEK_BITS``), pushing symbols
onto the slow per-bit path. Package-merge (Larmore & Hirschberg 1990)
computes the *optimal* prefix code subject to a maximum length ``L`` in
O(n·L); with ``L = 16`` every code decodes in one table hit.

This is an extension beyond the paper (its encoder never limits lengths);
the runtime accepts either flavour — a length-limited tree is just another
:class:`~repro.huffman.tree.HuffmanTree` value flowing along the speculated
edge.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError
from repro.huffman.histogram import ALPHABET
from repro.huffman.tree import HuffmanTree

__all__ = ["limited_code_lengths", "limited_tree"]


def limited_code_lengths(hist: np.ndarray, max_length: int = 16) -> np.ndarray:
    """Optimal code lengths with every code at most ``max_length`` bits.

    Uses the package-merge ("coin collector") formulation: to shorten a
    symbol's code below length L costs choosing it in the 2^-l denomination
    lists; the n-1 cheapest packages at denomination 1/2 determine lengths.
    All 256 symbols receive codes (zero counts weigh as if scaled, exactly
    like :func:`~repro.huffman.tree.code_lengths`).
    """
    if hist.shape != (ALPHABET,):
        raise CodecError(f"histogram has shape {hist.shape}, expected ({ALPHABET},)")
    if np.any(hist < 0):
        raise CodecError("histogram contains negative counts")
    if not (1 <= max_length <= 63):
        raise CodecError("max_length must be in [1, 63]")
    if (1 << max_length) < ALPHABET:
        raise CodecError(
            f"max_length {max_length} cannot encode {ALPHABET} symbols"
        )
    weights = hist.astype(np.int64) * 256
    weights[weights == 0] = 1

    n = ALPHABET
    # Each item: (weight, frozen symbol multiset as a count vector is too
    # heavy; carry symbol index lists). n·L is small (256·16) so plain
    # Python lists are fine.
    lengths = np.zeros(n, dtype=np.uint8)
    # packages[l] = list of (weight, [symbols]) at denomination 2^-(l)
    prev: list[tuple[int, list[int]]] = []
    for level in range(max_length, 0, -1):
        items = [(int(weights[s]), [s]) for s in range(n)]
        merged = sorted(items + prev, key=lambda t: t[0])
        # package pairs for the next (coarser) denomination
        prev = [
            (merged[i][0] + merged[i + 1][0], merged[i][1] + merged[i + 1][1])
            for i in range(0, len(merged) - 1, 2)
        ]
    # Choose the 2n-2 cheapest half-packages... prev now holds packages of
    # denomination 1/2 after the level-1 pass; take the cheapest n-1.
    chosen = prev[: n - 1]
    for _weight, symbols in chosen:
        for s in symbols:
            lengths[s] += 1
    if np.any(lengths == 0) or int(lengths.max()) > max_length:
        raise CodecError("package-merge produced invalid lengths")  # pragma: no cover
    # Kraft check is enforced by HuffmanTree on construction.
    return lengths


def limited_tree(hist: np.ndarray, max_length: int = 16) -> HuffmanTree:
    """A canonical, total, length-limited tree for ``hist``."""
    return HuffmanTree(lengths=limited_code_lengths(hist, max_length))

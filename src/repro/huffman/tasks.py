"""Task factories for the Huffman pipeline.

Each factory builds a :class:`~repro.sre.task.Task` with the right kind,
pipeline depth, cost hints (consumed by the platform cost models) and a pure
function over its inputs. Values known at creation time (block bytes, the
tree of an already-decided speculation version) are closure-captured; values
whose *timing* matters (the previous reduce/offset in a chain) flow through
ports.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.huffman.codec import encode_block
from repro.huffman.histogram import ALPHABET, byte_histogram, merge_histograms
from repro.huffman.offsets import group_offsets
from repro.huffman.tree import HuffmanTree
from repro.sre.shm import BlockRef
from repro.sre.task import Task

__all__ = [
    "make_count_task",
    "make_reduce_task",
    "make_tree_task",
    "make_offset_task",
    "make_encode_task",
    "DEPTH_COUNT",
    "DEPTH_REDUCE",
    "DEPTH_TREE",
    "DEPTH_OFFSET",
    "DEPTH_ENCODE",
]

# Pipeline depths (deeper dispatches first under the depth-favouring policy).
DEPTH_COUNT = 0
DEPTH_REDUCE = 1
DEPTH_TREE = 2
DEPTH_OFFSET = 3
DEPTH_ENCODE = 4


# ---------------------------------------------------------------------------
# Kernel functions.
#
# Module-level (not closures) so a task's payload — ``functools.partial``
# over one of these plus its data — pickles cleanly and can ship to the
# process back-end's workers. The factories below bind creation-time values
# with ``partial``; values whose *timing* matters still flow through ports.
# ---------------------------------------------------------------------------

def _count_kernel(data: np.ndarray) -> dict[str, np.ndarray]:
    return {"out": byte_histogram(data)}


def _reduce_kernel(hists: list[np.ndarray], prev: np.ndarray) -> dict[str, np.ndarray]:
    return {"out": prev + merge_histograms(hists)}


def _tree_kernel(hist: np.ndarray, max_code_length: int | None) -> dict[str, object]:
    if max_code_length is None:
        return {"out": HuffmanTree.from_histogram(hist)}
    from repro.huffman.lengthlimit import limited_tree
    return {"out": limited_tree(hist, max_code_length)}


def _offset_kernel(hists: list[np.ndarray], tree: HuffmanTree, prev: int) -> dict[str, object]:
    offsets, end = group_offsets(hists, tree, int(prev))
    return {"offsets": offsets, "cum": end}


def _encode_kernel(data: np.ndarray, tree: HuffmanTree, block_id: int,
                   offset: int) -> dict[str, object]:
    payload, nbits = encode_block(data, tree)
    return {
        "payload": payload,
        "nbits": nbits,
        "block": block_id,
        "offset": int(offset),
    }


def make_count_task(block_id: int, data: np.ndarray,
                    ref: BlockRef | None = None) -> Task:
    """First-pass histogram of one input block.

    When ``ref`` is given (shared-memory transport) the payload binds the
    handle instead of the bytes; cost hints still reflect the real size.
    """
    return Task(
        f"count:{block_id}",
        partial(_count_kernel, data if ref is None else ref),
        kind="count",
        depth=DEPTH_COUNT,
        cost_hint={"bytes": float(data.size)},
        tags={"block": block_id},
    )


def make_reduce_task(index: int, group_hists: Sequence[np.ndarray],
                     refs: Sequence[BlockRef] | None = None) -> Task:
    """Running reduction: previous prefix histogram + this group's counts.

    Input port ``prev`` carries the cumulative histogram of all earlier
    groups; the group's own histograms are closure-captured (they exist when
    the task is created — group completion is its creation trigger), or
    passed as shared-memory ``refs`` under the shm transport.
    """
    hists = list(group_hists)
    return Task(
        f"reduce:{index}",
        partial(_reduce_kernel, hists if refs is None else list(refs)),
        inputs=("prev",),
        kind="reduce",
        depth=DEPTH_REDUCE,
        cost_hint={"entries": float(ALPHABET * (len(hists) + 1))},
        tags={"reduce_index": index, "spec_base": True},
    )


def make_tree_task(hist: np.ndarray, name: str,
                   max_code_length: int | None = None) -> Task:
    """Huffman-tree build from a histogram (serial bottleneck / predictor).

    Used three ways: the natural pipeline's final tree, speculative
    predictions from prefix histograms, and check candidates — same kind,
    same cost. ``max_code_length`` switches to the package-merge
    length-limited construction (every code fits the decoder's fast table).
    """
    return Task(
        name,
        partial(_tree_kernel, hist, max_code_length),
        kind="tree",
        depth=DEPTH_TREE,
        cost_hint={"entries": float(ALPHABET)},
    )


def make_offset_task(
    name: str,
    group_hists: Sequence[np.ndarray],
    tree: HuffmanTree,
    *,
    speculative: bool,
    hist_refs: Sequence[BlockRef] | None = None,
    tree_ref: BlockRef | None = None,
) -> Task:
    """Offset-chain link: bit positions for one encode group.

    Port ``prev`` carries the previous group's end offset; outputs the
    per-block ``offsets`` array and the chain continuation ``cum``.
    """
    hists = list(group_hists)
    bound_hists = hists if hist_refs is None else list(hist_refs)
    return Task(
        name,
        partial(_offset_kernel, bound_hists, tree if tree_ref is None else tree_ref),
        inputs=("prev",),
        kind="offset",
        depth=DEPTH_OFFSET,
        speculative=speculative,
        cost_hint={"units": float(len(hists))},
    )


def make_encode_task(
    name: str,
    block_id: int,
    data: np.ndarray,
    tree: HuffmanTree,
    offset: int,
    *,
    speculative: bool,
    ref: BlockRef | None = None,
    tree_ref: BlockRef | None = None,
) -> Task:
    """Second-pass encode of one block at a known bit offset."""
    return Task(
        name,
        partial(_encode_kernel, data if ref is None else ref,
                tree if tree_ref is None else tree_ref, block_id, offset),
        kind="encode",
        depth=DEPTH_ENCODE,
        speculative=speculative,
        cost_hint={"bytes": float(data.size)},
        tags={"block": block_id},
    )

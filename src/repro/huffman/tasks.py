"""Task factories for the Huffman pipeline.

Each factory builds a :class:`~repro.sre.task.Task` with the right kind,
pipeline depth, cost hints (consumed by the platform cost models) and a pure
function over its inputs. Values known at creation time (block bytes, the
tree of an already-decided speculation version) are closure-captured; values
whose *timing* matters (the previous reduce/offset in a chain) flow through
ports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.huffman.codec import encode_block
from repro.huffman.histogram import ALPHABET, byte_histogram, merge_histograms
from repro.huffman.offsets import group_offsets
from repro.huffman.tree import HuffmanTree
from repro.sre.task import Task

__all__ = [
    "make_count_task",
    "make_reduce_task",
    "make_tree_task",
    "make_offset_task",
    "make_encode_task",
    "DEPTH_COUNT",
    "DEPTH_REDUCE",
    "DEPTH_TREE",
    "DEPTH_OFFSET",
    "DEPTH_ENCODE",
]

# Pipeline depths (deeper dispatches first under the depth-favouring policy).
DEPTH_COUNT = 0
DEPTH_REDUCE = 1
DEPTH_TREE = 2
DEPTH_OFFSET = 3
DEPTH_ENCODE = 4


def make_count_task(block_id: int, data: np.ndarray) -> Task:
    """First-pass histogram of one input block."""
    return Task(
        f"count:{block_id}",
        lambda d=data: {"out": byte_histogram(d)},
        kind="count",
        depth=DEPTH_COUNT,
        cost_hint={"bytes": float(data.size)},
        tags={"block": block_id},
    )


def make_reduce_task(index: int, group_hists: Sequence[np.ndarray]) -> Task:
    """Running reduction: previous prefix histogram + this group's counts.

    Input port ``prev`` carries the cumulative histogram of all earlier
    groups; the group's own histograms are closure-captured (they exist when
    the task is created — group completion is its creation trigger).
    """
    hists = list(group_hists)

    def fn(prev: np.ndarray) -> dict[str, np.ndarray]:
        return {"out": prev + merge_histograms(hists)}

    return Task(
        f"reduce:{index}",
        fn,
        inputs=("prev",),
        kind="reduce",
        depth=DEPTH_REDUCE,
        cost_hint={"entries": float(ALPHABET * (len(hists) + 1))},
        tags={"reduce_index": index, "spec_base": True},
    )


def make_tree_task(hist: np.ndarray, name: str,
                   max_code_length: int | None = None) -> Task:
    """Huffman-tree build from a histogram (serial bottleneck / predictor).

    Used three ways: the natural pipeline's final tree, speculative
    predictions from prefix histograms, and check candidates — same kind,
    same cost. ``max_code_length`` switches to the package-merge
    length-limited construction (every code fits the decoder's fast table).
    """
    if max_code_length is None:
        build = lambda h: HuffmanTree.from_histogram(h)
    else:
        from repro.huffman.lengthlimit import limited_tree
        build = lambda h: limited_tree(h, max_code_length)
    return Task(
        name,
        lambda h=hist, b=build: {"out": b(h)},
        kind="tree",
        depth=DEPTH_TREE,
        cost_hint={"entries": float(ALPHABET)},
    )


def make_offset_task(
    name: str,
    group_hists: Sequence[np.ndarray],
    tree: HuffmanTree,
    *,
    speculative: bool,
) -> Task:
    """Offset-chain link: bit positions for one encode group.

    Port ``prev`` carries the previous group's end offset; outputs the
    per-block ``offsets`` array and the chain continuation ``cum``.
    """
    hists = list(group_hists)

    def fn(prev: int) -> dict[str, object]:
        offsets, end = group_offsets(hists, tree, int(prev))
        return {"offsets": offsets, "cum": end}

    return Task(
        name,
        fn,
        inputs=("prev",),
        kind="offset",
        depth=DEPTH_OFFSET,
        speculative=speculative,
        cost_hint={"units": float(len(hists))},
    )


def make_encode_task(
    name: str,
    block_id: int,
    data: np.ndarray,
    tree: HuffmanTree,
    offset: int,
    *,
    speculative: bool,
) -> Task:
    """Second-pass encode of one block at a known bit offset."""

    def fn() -> dict[str, object]:
        payload, nbits = encode_block(data, tree)
        return {
            "payload": payload,
            "nbits": nbits,
            "block": block_id,
            "offset": int(offset),
        }

    return Task(
        name,
        fn,
        kind="encode",
        depth=DEPTH_ENCODE,
        speculative=speculative,
        cost_hint={"bytes": float(data.size)},
        tags={"block": block_id},
    )

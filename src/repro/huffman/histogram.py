"""Byte histograms — the ``count`` and ``reduce`` kernels.

Vectorised per the HPC guides: ``np.bincount`` over a zero-copy byte view
does the counting; merging is array addition (the reduce exploits the
commutativity/associativity the paper calls out in §IV-A).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import CodecError

__all__ = [
    "byte_histogram",
    "byte_histogram_py",
    "merge_histograms",
    "zero_histogram",
    "ALPHABET",
]

#: Number of symbols: one per possible byte value.
ALPHABET = 256


def zero_histogram() -> np.ndarray:
    """A fresh all-zero 256-entry histogram (int64)."""
    return np.zeros(ALPHABET, dtype=np.int64)


def byte_histogram(data: bytes | bytearray | memoryview | np.ndarray) -> np.ndarray:
    """Character-frequency histogram of a data block.

    Accepts any bytes-like or a uint8 array; returns a 256-entry int64
    array. Empty input yields the zero histogram.
    """
    if isinstance(data, np.ndarray):
        if data.dtype != np.uint8:
            raise CodecError(f"histogram input array must be uint8, got {data.dtype}")
        view = data
    else:
        view = np.frombuffer(data, dtype=np.uint8)
    if view.size == 0:
        return zero_histogram()
    return np.bincount(view, minlength=ALPHABET).astype(np.int64)


def byte_histogram_py(data: bytes | bytearray | memoryview) -> list[int]:
    """Pure-Python histogram — the GIL-bound reference kernel.

    Byte-for-byte the same result as :func:`byte_histogram` but computed in
    interpreted bytecode, holding the GIL the whole time. Never the
    production path: it exists so the executor benchmarks can measure what
    each back-end does with work the GIL cannot overlap (threads serialise
    it; processes parallelise it).
    """
    counts = [0] * ALPHABET
    for b in bytes(data):
        counts[b] += 1
    return counts


def merge_histograms(hists: Iterable[np.ndarray]) -> np.ndarray:
    """Sum histograms into one (the ``reduce`` kernel)."""
    total = zero_histogram()
    for h in hists:
        if h.shape != (ALPHABET,):
            raise CodecError(f"histogram has shape {h.shape}, expected ({ALPHABET},)")
        total += h
    return total

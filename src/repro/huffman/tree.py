"""Huffman tree construction (Huffman 1952) and the tree value object.

The tree build is the paper's serial bottleneck: it needs the *global*
histogram, i.e. the whole input must have been counted before it can run —
unless a speculative tree is built from a prefix histogram instead.

We produce *canonical* codes (lengths determine everything), which makes
tree values cheap to compare, serialise and validate. Zero frequencies are
clamped to one so every byte value receives a code; see the package
docstring for why speculation requires total trees. Clamping also bounds
code lengths: with all weights >= 1 the deepest leaf of a Huffman tree over
n symbols and total weight W is O(log_phi W) < 64 for any realistic input,
so codes fit comfortably in uint64.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CodecError
from repro.huffman.histogram import ALPHABET

__all__ = ["code_lengths", "HuffmanTree"]


def code_lengths(hist: np.ndarray) -> np.ndarray:
    """Optimal prefix-code lengths for a 256-entry frequency histogram.

    Classic two-queue-equivalent heap algorithm; deterministic tie-breaking
    (by node creation order) so identical histograms always give identical
    trees. Returns a 256-entry uint8 array of code lengths (all >= 1).
    """
    if hist.shape != (ALPHABET,):
        raise CodecError(f"histogram has shape {hist.shape}, expected ({ALPHABET},)")
    if np.any(hist < 0):
        raise CodecError("histogram contains negative counts")
    # Every symbol gets a code (speculative trees must be total), but naive
    # +1 clamping gives absent symbols a combined mass of up to 256 counts —
    # significant against a small prefix histogram and a source of spurious
    # check errors. Scaling true counts by 256 first leaves the optimal tree
    # over present symbols unchanged while making each absent symbol worth
    # only 1/256th of a count.
    weights = hist.astype(np.int64) * 256
    weights[weights == 0] = 1

    # Heap items: (weight, tiebreak, node_id). Leaves are 0..255; internal
    # nodes get successive ids. parent[] records the merge structure.
    n = ALPHABET
    parent = np.full(2 * n - 1, -1, dtype=np.int64)
    heap: list[tuple[int, int, int]] = [
        (int(weights[s]), s, s) for s in range(n)
    ]
    heapq.heapify(heap)
    next_id = n
    while len(heap) > 1:
        w1, _, a = heapq.heappop(heap)
        w2, _, b = heapq.heappop(heap)
        parent[a] = next_id
        parent[b] = next_id
        heapq.heappush(heap, (w1 + w2, next_id, next_id))
        next_id += 1

    # Depth of each leaf = number of parent hops to the root.
    lengths = np.zeros(n, dtype=np.uint8)
    for s in range(n):
        d = 0
        node = s
        while parent[node] != -1:
            node = parent[node]
            d += 1
        if d == 0 or d > 63:  # pragma: no cover - unreachable with n=256 leaves
            raise CodecError(f"invalid code length {d} for symbol {s}")
        lengths[s] = d
    return lengths


def _canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical code words (uint64) for the given code lengths.

    Symbols are ranked by (length, symbol value); codes are assigned in
    rank order, shifting left when the length increases — the standard
    canonical Huffman construction (as used by DEFLATE).
    """
    order = np.lexsort((np.arange(ALPHABET), lengths))
    codes = np.zeros(ALPHABET, dtype=np.uint64)
    code = 0
    prev_len = int(lengths[order[0]])
    for sym in order:
        length = int(lengths[sym])
        code <<= length - prev_len
        codes[sym] = code
        code += 1
        prev_len = length
    return codes


def _validate_kraft(lengths: np.ndarray) -> None:
    """Code lengths must satisfy Kraft's equality for a full prefix code."""
    kraft = np.sum(2.0 ** -lengths.astype(np.float64))
    if not np.isclose(kraft, 1.0, rtol=0, atol=1e-9):
        raise CodecError(f"code lengths violate Kraft equality (sum={kraft})")


@dataclass(frozen=True)
class HuffmanTree:
    """A complete canonical Huffman code over all 256 byte values.

    This is the *value* that flows along the speculated DFG edge: the
    outcome of a ``tree`` task, whether built from the global histogram or
    speculatively from a prefix.
    """

    lengths: np.ndarray  # (256,) uint8
    codes: np.ndarray = field(default=None)  # (256,) uint64, canonical

    def __post_init__(self) -> None:
        if self.lengths.shape != (ALPHABET,):
            raise CodecError("tree lengths must have 256 entries")
        if np.any(self.lengths < 1) or np.any(self.lengths > 63):
            raise CodecError("code lengths must be in [1, 63]")
        _validate_kraft(self.lengths)
        if self.codes is None:
            object.__setattr__(self, "codes", _canonical_codes(self.lengths))

    @classmethod
    def from_histogram(cls, hist: np.ndarray) -> "HuffmanTree":
        """Build the optimal (canonical, total) tree for a histogram."""
        return cls(lengths=code_lengths(hist))

    @property
    def max_length(self) -> int:
        return int(self.lengths.max())

    def encoded_bits(self, hist: np.ndarray) -> int:
        """Compressed size, in bits, of data with this histogram under this tree."""
        return int(hist.astype(np.int64) @ self.lengths.astype(np.int64))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HuffmanTree):
            return NotImplemented
        return bool(np.array_equal(self.lengths, other.lengths))

    def __hash__(self) -> int:
        return hash(self.lengths.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HuffmanTree max_len={self.max_length}>"

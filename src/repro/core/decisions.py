"""The decision/execution seam: every speculation *decision* is injectable.

The :class:`~repro.core.manager.SpeculationManager` mixes two concerns
that this module pulls apart:

* **execution** — spawning predictors, wiring checks, rolling back,
  committing: mechanical consequences that live in the manager's
  ``_process_*`` / ``_speculate`` / ``_launch_check`` machinery;
* **decisions** — *whether* to speculate at an update, *whether* to
  verify, *whether* a check error is acceptable, *whether* to
  re-speculate after a failure, and *when* each asynchronous callback
  (prediction ready, check verdict) is processed.

A :class:`DecisionSource` owns the second concern. The default
:class:`LiveDecisionSource` delegates every predicate to the run's
:class:`~repro.core.spec.SpeculationSpec` policies (interval /
verification / tolerance) and passes callbacks straight through — live
runs behave exactly as before. The replay subsystem
(:mod:`repro.sre.replay`) substitutes a ``ReplayDirector`` that answers
every predicate from a recorded event log and *re-orders* callback
delivery to match the recorded schedule — deterministic replay without
the manager knowing it is being replayed. A future distributed
coordinator slots into the same seam (ROADMAP item 2).

Delivery hooks receive the manager explicitly so one source can, in
principle, serve several speculation domains (the live source is
stateless); sources that cannot (the replay director) enforce
exclusivity in :meth:`DecisionSource.bind`.

See docs/replay.md for the full seam contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager imports us)
    from repro.core.manager import SpeculationManager
    from repro.core.spec import SpecVersion, SpeculationSpec

__all__ = ["DecisionSource", "LiveDecisionSource"]


class DecisionSource:
    """Answers the speculation protocol's decision points.

    Two families of methods:

    * ``on_*`` **delivery hooks** — called by the manager at each
      asynchronous entry point (update offered, prediction completed,
      check verdict arrived, ...). The default implementations forward
      to the manager's ``_process_*`` immediately; a source may defer,
      re-order or drop deliveries (that is how replay forces the
      recorded schedule). Hooks run on the executor's coordinating
      thread under the runtime lock, so sources need no locking of
      their own.
    * **predicates** — pure decisions consulted from inside the
      ``_process_*`` handlers. They must not mutate manager state.
    """

    # -- lifecycle ------------------------------------------------------
    def bind(self, manager: "SpeculationManager") -> None:
        """Called once by each manager that adopts this source."""

    # -- delivery hooks (default: pass straight through) ----------------
    def on_update(self, manager: "SpeculationManager", index: int, value: Any) -> None:
        manager._process_update(index, value)

    def on_final(self, manager: "SpeculationManager", value: Any) -> None:
        manager._process_final(value)

    def on_prediction_ready(
        self, manager: "SpeculationManager", version: "SpecVersion",
        outputs: dict[str, Any],
    ) -> None:
        manager._process_prediction_ready(version, outputs)

    def on_verdict(
        self, manager: "SpeculationManager", version: "SpecVersion",
        index: int, ref_value: Any, outs: dict[str, Any],
    ) -> None:
        manager._process_verdict(version, index, ref_value, outs)

    def on_final_ready(
        self, manager: "SpeculationManager", ref_value: Any,
        outs: dict[str, Any],
    ) -> None:
        manager._process_final_ready(ref_value, outs)

    def on_final_verdict(
        self, manager: "SpeculationManager", version: "SpecVersion",
        outs: dict[str, Any],
    ) -> None:
        manager._process_final_verdict(version, outs)

    # -- predicates -----------------------------------------------------
    def speculate_at(
        self, manager: "SpeculationManager", index: int, had_rollback: bool
    ) -> bool:
        """Start a new speculation version at this update?"""
        raise NotImplementedError

    def check_at(
        self, manager: "SpeculationManager", version: "SpecVersion", index: int
    ) -> bool:
        """Launch a verification check against the active version here?"""
        raise NotImplementedError

    def accept(
        self, manager: "SpeculationManager", version: "SpecVersion",
        index: int | None, error: float, *, final: bool = False,
    ) -> bool:
        """Is this check error tolerable (check passes)?"""
        raise NotImplementedError

    def respeculate_after_failure(
        self, manager: "SpeculationManager", version: "SpecVersion", index: int
    ) -> bool:
        """After a failed check + rollback, re-speculate immediately?"""
        raise NotImplementedError


class LiveDecisionSource(DecisionSource):
    """The production source: every decision comes from the run's spec.

    This is behaviour-preserving by construction — each predicate is the
    exact expression the manager used inline before the seam existed.
    Stateless with respect to the manager, so a single instance may
    serve several speculation domains.
    """

    def __init__(self, spec: "SpeculationSpec") -> None:
        self.spec = spec

    def speculate_at(
        self, manager: "SpeculationManager", index: int, had_rollback: bool
    ) -> bool:
        return self.spec.interval.is_opportunity(index, had_rollback)

    def check_at(
        self, manager: "SpeculationManager", version: "SpecVersion", index: int
    ) -> bool:
        return self.spec.verification.check_at(index)

    def accept(
        self, manager: "SpeculationManager", version: "SpecVersion",
        index: int | None, error: float, *, final: bool = False,
    ) -> bool:
        return self.spec.tolerance.accepts(error)

    def respeculate_after_failure(
        self, manager: "SpeculationManager", version: "SpecVersion", index: int
    ) -> bool:
        return (self.spec.verification.respeculate_on_failure
                or self.spec.interval.is_opportunity(index, had_rollback=True))

"""The side-effect barrier: wait buffers for speculative results.

Speculative data arriving at a state-modifying boundary (disk, network) is
buffered until the speculation is validated (§II-A, the hexagon node in the
paper's figures). :class:`WaitBuffer` stores results keyed by speculation
version; a commit flushes one version's entries to the real sink in
deterministic key order, a rollback discards them.

After a commit, the committed version's remaining in-flight results flush
straight through as they arrive — speculative tasks that were still queued
or running at commit time simply continue, their outputs now authoritative.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import SpeculationError
from repro.obs.events import EventLog

__all__ = ["WaitBuffer"]

CommitSink = Callable[[Any, Any, float], None]


def _flush_order(keys: Iterable[Any]) -> list[Any]:
    """Total order for commit flushes.

    Keys compare on their own values whenever the key set is mutually
    comparable — integer block ids flush 0, 1, 2, ..., 10, 11 rather than
    the lexicographic 0, 1, 10, 11, 2 a repr-based sort would produce.
    Mixed-type key sets (no natural total order) fall back to grouping by
    type name and ordering within each group — by value where the group is
    self-comparable, by ``repr`` as the last resort — so the flush order
    stays deterministic and comparable subsets keep their own order.
    """
    try:
        return sorted(keys)
    except TypeError:
        pass
    try:
        return sorted(keys, key=lambda k: (type(k).__name__, k))
    except TypeError:
        return sorted(keys, key=lambda k: (type(k).__name__, repr(k)))


class WaitBuffer:
    """Versioned holding area for speculative outputs.

    Args:
        sink: callable ``(key, value, commit_time)`` invoked when an entry
            becomes authoritative (at commit, or on deposit after commit).
        events: optional flight recorder; deposits, flushes and discards
            emit ``buffer_*`` events (causes follow the ambient scope, so
            a rollback's discards chain under its ``destroy_signal``).
    """

    def __init__(self, sink: CommitSink | None = None,
                 events: EventLog | None = None) -> None:
        self._sink = sink
        self._events = events if events is not None else EventLog(enabled=False)
        self._entries: dict[int, dict[Any, tuple[Any, float]]] = {}
        self._committed_version: int | None = None
        self.deposits = 0
        self.flushed = 0
        self.discarded = 0

    # ------------------------------------------------------------------
    @property
    def committed_version(self) -> int | None:
        return self._committed_version

    def pending(self, version: int) -> int:
        """Number of buffered entries for a version."""
        return len(self._entries.get(version, ()))

    def deposit(self, version: int, key: Any, value: Any, now: float) -> None:
        """Hold a speculative result (or flush it if its version committed)."""
        self.deposits += 1
        if version == self._committed_version:
            self._events.emit("buffer_flush", version=version, key=str(key),
                              passthrough=True)
            self._emit(key, value, now)
            return
        self._entries.setdefault(version, {})[key] = (value, now)
        self._events.emit("buffer_deposit", version=version, key=str(key))

    def commit(self, version: int, now: float) -> int:
        """Declare a version valid; flush its entries in key order.

        Returns the number of entries flushed. Only one version may ever
        commit (the paper's single final decision per speculation domain).
        """
        if self._committed_version is not None:
            raise SpeculationError(
                f"version {self._committed_version} already committed"
            )
        self._committed_version = version
        held = self._entries.pop(version, {})
        for key in _flush_order(held):
            value, _deposit_time = held[key]
            self._events.emit("buffer_flush", version=version, key=str(key))
            self._emit(key, value, now)
        return len(held)

    def discard(self, version: int) -> int:
        """Drop a rolled-back version's entries; returns how many."""
        held = self._entries.pop(version, None)
        n = len(held) if held else 0
        self.discarded += n
        for key in (held or ()):
            self._events.emit("buffer_discard", version=version, key=str(key))
        return n

    def _emit(self, key: Any, value: Any, now: float) -> None:
        self.flushed += 1
        if self._sink is not None:
            self._sink(key, value, now)

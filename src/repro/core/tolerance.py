"""Tolerance rules — programmer-defined slack in value prediction.

The paper's central relaxation (§II-A): a prediction need not be exact, only
"accurate enough" for the application. A tolerance rule converts a raw error
measure into an accept/reject verdict. Validators produce a *relative error*
(dimensionless); rules decide whether that error is tolerable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ToleranceError

__all__ = [
    "ToleranceRule",
    "RelativeTolerance",
    "AbsoluteTolerance",
    "ExactTolerance",
    "CallableTolerance",
    "AdaptiveTolerance",
]


class ToleranceRule:
    """Base class: decides whether a measured error is acceptable."""

    def accepts(self, error: float) -> bool:
        raise NotImplementedError

    def __call__(self, error: float) -> bool:
        return self.accepts(error)


@dataclass(frozen=True)
class RelativeTolerance(ToleranceRule):
    """Accept when ``error <= margin`` (error already relative).

    The Huffman benchmark's baseline uses a 1 % margin on the difference in
    compressed size (§V-A).
    """

    margin: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.margin):
            raise ToleranceError(f"margin must be non-negative, got {self.margin}")

    def accepts(self, error: float) -> bool:
        return error <= self.margin


@dataclass(frozen=True)
class AbsoluteTolerance(ToleranceRule):
    """Accept when ``abs(error) <= bound`` for validators reporting absolute error."""

    bound: float

    def __post_init__(self) -> None:
        if self.bound < 0:
            raise ToleranceError(f"bound must be non-negative, got {self.bound}")

    def accepts(self, error: float) -> bool:
        return abs(error) <= self.bound


class ExactTolerance(ToleranceRule):
    """Zero-slack speculation: only a perfect prediction survives.

    Equivalent to classical (non-tolerant) value prediction; used by the
    ablation comparing tolerant against exact speculation.
    """

    def accepts(self, error: float) -> bool:
        return error == 0.0


class CallableTolerance(ToleranceRule):
    """Adapter for a user-supplied ``error -> bool`` predicate."""

    def __init__(self, fn: Callable[[float], bool]):
        self._fn = fn

    def accepts(self, error: float) -> bool:
        return bool(self._fn(error))


class AdaptiveTolerance(ToleranceRule):
    """A margin that tightens as the run progresses.

    The paper's related-work discussion (§VI) criticises accuracy measures
    that "remain fixed at compile-time and do not take into account
    properties of the dataset". This rule addresses the simplest dynamic
    variant: early checks, made against small unrepresentative prefixes,
    are judged leniently; later checks, against near-complete data, are
    judged strictly — the margin decays geometrically per check from
    ``initial`` towards ``floor``.

    Explored as an extension (not in the paper's evaluation); the ablation
    bench compares it against the fixed margins of Fig. 9.
    """

    def __init__(self, initial: float, floor: float, decay: float = 0.7):
        if initial < floor or floor < 0:
            raise ToleranceError("need initial >= floor >= 0")
        if not (0.0 < decay <= 1.0):
            raise ToleranceError("decay must be in (0, 1]")
        self.initial = initial
        self.floor = floor
        self.decay = decay
        self._checks_seen = 0

    @property
    def current_margin(self) -> float:
        return max(self.floor, self.initial * self.decay ** self._checks_seen)

    def accepts(self, error: float) -> bool:
        margin = self.current_margin
        self._checks_seen += 1
        return error <= margin

    def reset(self) -> None:
        """Restart the schedule (for reusing the rule across runs)."""
        self._checks_seen = 0

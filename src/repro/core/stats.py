"""Counters describing one speculation domain's behaviour during a run."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpeculationStats"]


@dataclass
class SpeculationStats:
    """Aggregated speculation behaviour (reported by every experiment)."""

    speculations: int = 0
    checks: int = 0
    checks_passed: int = 0
    checks_failed: int = 0
    rollbacks: int = 0
    commits: int = 0
    recomputes: int = 0
    stale_verdicts: int = 0
    #: error measured by each completed check, in order (for tolerance plots).
    check_errors: list[float] = field(default_factory=list)

    def as_dict(self) -> dict[str, float]:
        out = {
            "speculations": self.speculations,
            "checks": self.checks,
            "checks_passed": self.checks_passed,
            "checks_failed": self.checks_failed,
            "rollbacks": self.rollbacks,
            "commits": self.commits,
            "recomputes": self.recomputes,
            "stale_verdicts": self.stale_verdicts,
        }
        if self.check_errors:
            out["max_check_error"] = max(self.check_errors)
            out["last_check_error"] = self.check_errors[-1]
        return out

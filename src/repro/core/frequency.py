"""Speculation and verification frequency controls (§II-B, §V-B).

Two distinct rates govern speculative execution:

* **speculation frequency** — the *step size*: at which source updates a new
  speculative value is produced. Handled by
  :class:`SpeculationInterval`. Step 0 means "speculate on the very first
  partial value available" (in the Huffman benchmark, the first count
  histogram, before any reduce completes).
* **verification frequency** — at which updates an active speculation is
  re-checked. Three policies from the paper:

  - :class:`EveryK` — the baseline verifies upon every *k*-th update
    (k = 8 in §V-A);
  - :class:`Optimistic` — a single comparison against the final value only;
  - :class:`FullVerification` — verify at every opportunity and restart
    speculation immediately when failure is detected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpeculationError

__all__ = [
    "SpeculationInterval",
    "VerificationPolicy",
    "EveryK",
    "Optimistic",
    "FullVerification",
    "get_verification",
]


@dataclass(frozen=True)
class SpeculationInterval:
    """Step-size rule for when (re-)speculation may start.

    ``step == 0``: the only scheduled opportunity is update 0 (the earliest
    partial value); after a rollback, re-speculation happens at the next
    update. ``step >= 1``: opportunities at updates ``step, 2·step, ...``.
    """

    step: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise SpeculationError(f"step size must be >= 0, got {self.step}")

    def is_opportunity(self, index: int, had_rollback: bool = False) -> bool:
        if self.step == 0:
            return index == 0 or had_rollback
        return index > 0 and index % self.step == 0


class VerificationPolicy:
    """When to verify an active speculation against a fresh update."""

    name = "base"
    #: restart speculation in the same instant a check fails?
    respeculate_on_failure = False

    def check_at(self, index: int) -> bool:
        """Should an intermediate check run at update ``index``?

        The final update always triggers a check regardless of policy.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"


@dataclass(frozen=True, repr=False)
class EveryK(VerificationPolicy):
    """Verify on every ``k``-th update (paper baseline: k = 8)."""

    k: int = 8
    name = "every_k"
    respeculate_on_failure = False

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SpeculationError(f"verification period must be >= 1, got {self.k}")

    def check_at(self, index: int) -> bool:
        return index % self.k == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EveryK k={self.k}>"


class Optimistic(VerificationPolicy):
    """Speculate on the first available value; verify only at the end.

    "Virtually no overhead caused by checking tasks", but when the guess is
    bad the entire speculative effort is discovered wasted only at the final
    comparison (§V-B, Fig. 6).
    """

    name = "optimistic"
    respeculate_on_failure = False

    def check_at(self, index: int) -> bool:
        return False


class FullVerification(VerificationPolicy):
    """Verify at every opportunity; re-start speculation on failure at once."""

    name = "full"
    respeculate_on_failure = True

    def check_at(self, index: int) -> bool:
        return True


def get_verification(name: str, k: int = 8) -> VerificationPolicy:
    """Instantiate a verification policy by its paper name."""
    name = name.lower()
    if name in ("every_k", "baseline", "balanced"):
        return EveryK(k)
    if name == "optimistic":
        return Optimistic()
    if name == "full":
        return FullVerification()
    raise SpeculationError(
        f"unknown verification policy {name!r}; choose every_k/optimistic/full"
    )

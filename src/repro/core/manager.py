"""The speculation manager — drives predict / check / commit / rollback.

The manager consumes a stream of *updates*: successive refinements of the
value being speculated (in the Huffman benchmark, each reduce output is an
update carrying the prefix histogram so far; the last reduce output is the
*final* update carrying the global histogram).

Protocol per update (non-final), mirroring §III-B:

* **No active speculation** and the update index is a speculation
  opportunity (step-size rule) → build a prediction task; when it completes,
  the client's ``launch`` callback constructs the speculative subgraph.
* **Active speculation** and the verification policy fires at this index →
  build a *candidate* prediction from the fresh update plus a check task
  comparing old vs new under the tolerance rule. A passing check changes
  nothing — the candidate "will not trigger anything new and will simply be
  destroyed". A failing check rolls the version back; re-speculation starts
  immediately (full-verification policy, or whenever the index is itself an
  opportunity) reusing the already-computed candidate as the new prediction.

The **final** update always triggers building the true value (the paper's
final tree is needed by the check itself — the serial bottleneck was ever
only the *wait* for complete input, not the build) and a final tolerance
check: pass → commit the wait buffer; fail → roll back and launch the
non-speculative recompute path.
"""

from __future__ import annotations

from typing import Any

from repro.core.decisions import DecisionSource, LiveDecisionSource
from repro.core.rollback import RollbackEngine
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.stats import SpeculationStats
from repro.errors import SpeculationError
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["SpeculationManager"]


class SpeculationManager:
    """Orchestrates one speculation domain over a runtime.

    The manager is a pure *observer/driver*: it owns no tasks and no
    threads — it reacts to update offers (:meth:`offer_update`) and to
    completion hooks of the prediction/check tasks it spawns, always on
    the executor's coordinating thread (under the runtime lock for live
    executors), so no extra synchronisation is needed here.

    Decisions and execution are separated (docs/replay.md): each entry
    point routes through the manager's
    :class:`~repro.core.decisions.DecisionSource` (``self.decisions``),
    which answers every *whether* and controls every *when*. The live
    default reproduces the spec's policies verbatim; the replay director
    substitutes a recorded schedule.

    Accounting is double-entry by design: the per-run
    :class:`~repro.core.stats.SpeculationStats` dataclass (returned in
    every ``PipelineResult.spec_stats``) and the always-on registry
    counters (``spec_speculations`` / ``spec_checks{verdict}`` /
    ``spec_rollbacks`` / ``spec_commits`` / ``spec_recomputes``) are
    incremented at the same sites; the integration suite asserts they
    agree, so exporter output can be trusted to match the figures.
    """

    def __init__(
        self,
        runtime: Runtime,
        spec: SpeculationSpec,
        decisions: DecisionSource | None = None,
    ) -> None:
        self.runtime = runtime
        self.spec = spec
        #: The decision/execution seam (docs/replay.md): every *whether*
        #: (speculate? check? accept? re-speculate?) and every *when*
        #: (callback delivery order) is answered here. Resolution order:
        #: explicit argument, then ``runtime.decisions`` (how the replay
        #: director and the experiment runner inject one without the
        #: pipelines knowing), then the live spec-driven default.
        self.decisions: DecisionSource = (
            decisions
            if decisions is not None
            else getattr(runtime, "decisions", None) or LiveDecisionSource(spec)
        )
        self.decisions.bind(self)
        self.engine = RollbackEngine(runtime, spec.barrier)
        self.stats = SpeculationStats()
        m = runtime.metrics
        self._m_speculations = m.counter(
            "spec_speculations", "speculation versions launched")
        checks = m.counter(
            "spec_checks", "verification checks completed",
            labelnames=("verdict",))
        self._m_check_pass = checks.labels(verdict="pass")
        self._m_check_fail = checks.labels(verdict="fail")
        self._m_stale = m.counter(
            "spec_stale_verdicts", "check verdicts that arrived after "
            "their version was already dead or the run finalized")
        self._m_rollbacks = m.counter(
            "spec_rollbacks", "speculation versions rolled back")
        self._m_commits = m.counter(
            "spec_commits", "speculation versions committed")
        self._m_recomputes = m.counter(
            "spec_recomputes", "failed final checks → non-speculative redo")
        self._m_check_error = m.histogram(
            "spec_check_error", "relative error measured by each check",
            buckets=(1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.02, 0.05, 0.1,
                     0.25, 0.5, 1.0))
        self._m_version_us = m.histogram(
            "spec_version_us",
            "speculation version lifetime µs, birth → commit/rollback",
            labelnames=("outcome",))
        self.versions: list[SpecVersion] = []
        self.active_version: SpecVersion | None = None
        self.final_value: Any = None
        #: "commit" or "recompute" once the final decision is made.
        self.outcome: str | None = None
        self.finalized = False
        self._had_rollback = False
        self._vid = 0
        self._final_seen = False

    # ------------------------------------------------------------------
    # update stream
    # ------------------------------------------------------------------
    def offer_update(self, index: int, value: Any, is_final: bool = False) -> None:
        """Feed one source update (e.g. a reduce output) to the manager.

        Args:
            index: monotone position of the update in the refinement
                stream (reduce 3's prefix histogram has index 4 — the
                count of reduces folded in). Drives both the speculation
                interval (step-size rule) and the verification policy.
            value: the partial value itself (e.g. the prefix histogram).
            is_final: True for the last update, which carries the complete
                value; triggers the final check and the commit/recompute
                decision instead of a speculation opportunity.

        Raises :class:`~repro.errors.SpeculationError` if a final update
        is offered twice, or any update arrives after the final one.
        """
        if is_final:
            if self._final_seen:
                raise SpeculationError("final update offered twice")
            self._final_seen = True
            self.decisions.on_final(self, value)
            return
        if self._final_seen:
            raise SpeculationError("update offered after the final update")
        if self.finalized:  # pragma: no cover - defensive; implies final seen
            return
        self.decisions.on_update(self, index, value)

    def _process_update(self, index: int, value: Any) -> None:
        """Handle one delivered (non-final) update.

        Split from :meth:`offer_update` so a :class:`DecisionSource` can
        defer delivery; a deferred update may legitimately land after
        the run finalized, hence the re-check.
        """
        if self.finalized:
            return
        version = self.active_version
        if version is None or not version.active:
            if self.decisions.speculate_at(self, index, self._had_rollback):
                self._speculate(index, value)
        elif (
            version.value is not None
            and index > version.created_index
            and self.decisions.check_at(self, version, index)
        ):
            self._launch_check(version, index, value)

    # ------------------------------------------------------------------
    # speculation
    # ------------------------------------------------------------------
    def _next_vid(self) -> int:
        self._vid += 1
        return self._vid

    def _speculate(self, index: int, update_value: Any, predicted: Any = None) -> None:
        events = self.runtime.events
        version = SpecVersion(self._next_vid(), index, self.runtime.now)
        self.versions.append(version)
        self.active_version = version
        self.stats.speculations += 1
        self._m_speculations.inc()
        self.runtime.trace.record(
            self.runtime.now, "speculate", f"version:{version.vid}", index=index,
            reused_candidate=predicted is not None,
        )
        if predicted is not None:
            # Re-speculation after a failed check: the candidate value was
            # already computed by the check's candidate task — reuse it. The
            # ambient cause scope (the failed check) makes this the
            # "rebuild" edge of the lineage graph.
            version.value = predicted
            version.launch_seq = events.emit(
                "spec_launch", version=version.vid, index=index, reused=True)
            with events.cause(version.launch_seq):
                self.spec.launch(version)
            return
        version.predict_seq = events.emit(
            "spec_predict", version=version.vid, index=index)
        ptask = self.spec.predictor(update_value, f"{self.spec.name}:predict:v{version.vid}")
        ptask.control = True
        version.prediction_task = version.register(ptask)
        ptask.on_complete.append(
            lambda _task, outs, v=version: self.decisions.on_prediction_ready(
                self, v, outs)
        )
        with events.cause(version.predict_seq):
            self.runtime.add_task(ptask)

    def _process_prediction_ready(
        self, version: SpecVersion, outputs: dict[str, Any]
    ) -> None:
        if not version.active or self.finalized:
            return
        if "out" not in outputs:
            raise SpeculationError(
                f"predictor task for v{version.vid} produced no 'out' port"
            )
        version.value = outputs["out"]
        events = self.runtime.events
        version.launch_seq = events.emit(
            "spec_launch", version=version.vid, cause=version.predict_seq,
            index=version.created_index)
        with events.cause(version.launch_seq):
            self.spec.launch(version)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _launch_check(self, version: SpecVersion, index: int, ref_value: Any) -> None:
        candidate = self.spec.predictor(
            ref_value, f"{self.spec.name}:candidate:u{index}:v{version.vid}"
        )
        candidate.control = True

        def check_fn(candidate: Any, _v=version, _ref=ref_value) -> dict[str, Any]:
            error = self.spec.validator(_v.value, candidate, _ref)
            return {"error": float(error), "candidate": candidate}

        check = Task(
            f"{self.spec.name}:check:u{index}:v{version.vid}",
            check_fn,
            inputs=("candidate",),
            kind="check",
            control=True,
            cost_hint=self.spec.check_cost_hint,
        )
        check.on_complete.append(
            lambda _task, outs, v=version, i=index, r=ref_value:
                self.decisions.on_verdict(self, v, i, r, outs)
        )
        with self.runtime.events.cause(version.launch_seq):
            self.runtime.add_task(candidate)
            self.runtime.add_task(check)
        self.runtime.connect(candidate, "out", check, "candidate")

    def _process_verdict(
        self, version: SpecVersion, index: int, ref_value: Any, outs: dict[str, Any]
    ) -> None:
        error = outs["error"]
        self.stats.checks += 1
        self.stats.check_errors.append(error)
        self._m_check_error.observe(error)
        if version is not self.active_version or not version.active or self.finalized:
            self.stats.stale_verdicts += 1
            self._m_stale.inc()
            return
        events = self.runtime.events
        margin = getattr(self.spec.tolerance, "margin", None)
        if self.decisions.accept(self, version, index, error):
            self.stats.checks_passed += 1
            self._m_check_pass.inc()
            self.runtime.trace.record(
                self.runtime.now, "check_pass", f"version:{version.vid}",
                index=index, error=error,
            )
            events.emit("check_pass", version=version.vid,
                        cause=version.launch_seq, index=index, error=error,
                        tolerance=margin)
            return
        self.stats.checks_failed += 1
        self._m_check_fail.inc()
        self.runtime.trace.record(
            self.runtime.now, "check_fail", f"version:{version.vid}",
            index=index, error=error,
        )
        fail_seq = events.emit(
            "check_fail", version=version.vid, cause=version.launch_seq,
            index=index, error=error, tolerance=margin)
        with events.cause(fail_seq):
            self._rollback(version)
            if self.decisions.respeculate_after_failure(self, version, index):
                self._speculate(index, ref_value, predicted=outs["candidate"])

    def _rollback(self, version: SpecVersion) -> None:
        self.engine.rollback(version)
        self.stats.rollbacks += 1
        self._m_rollbacks.inc()
        self._m_version_us.labels(outcome="rollback").observe(
            self.runtime.now - version.created_at)
        self._had_rollback = True
        if self.active_version is version:
            self.active_version = None

    # ------------------------------------------------------------------
    # final decision
    # ------------------------------------------------------------------
    def _process_final(self, value: Any) -> None:
        ftask = self.spec.predictor(value, f"{self.spec.name}:final")
        ftask.control = True
        ftask.on_complete.append(
            lambda _task, outs, v=value: self.decisions.on_final_ready(
                self, v, outs)
        )
        self.runtime.add_task(ftask)

    def _process_final_ready(self, ref_value: Any, outs: dict[str, Any]) -> None:
        self.final_value = outs.get("out")
        version = self.active_version
        if version is None or not version.active or version.value is None:
            # Nothing validatable in flight: destroy any half-born attempt
            # and take the normal path.
            if version is not None and version.active:
                self._rollback(version)
            self._recompute()
            return

        def final_check_fn(_v=version, _ref=ref_value) -> dict[str, Any]:
            error = self.spec.validator(_v.value, self.final_value, _ref)
            return {"error": float(error)}

        check = Task(
            f"{self.spec.name}:check:final:v{version.vid}",
            final_check_fn,
            kind="check",
            control=True,
            cost_hint=self.spec.check_cost_hint,
        )
        check.on_complete.append(
            lambda _task, c_outs, v=version: self.decisions.on_final_verdict(
                self, v, c_outs)
        )
        self.runtime.add_task(check)

    def _process_final_verdict(self, version: SpecVersion, outs: dict[str, Any]) -> None:
        error = outs["error"]
        self.stats.checks += 1
        self.stats.check_errors.append(error)
        self._m_check_error.observe(error)
        if self.finalized:
            self.stats.stale_verdicts += 1
            self._m_stale.inc()
            return
        events = self.runtime.events
        margin = getattr(self.spec.tolerance, "margin", None)
        if version.active and self.decisions.accept(
                self, version, None, error, final=True):
            self.stats.checks_passed += 1
            self._m_check_pass.inc()
            pass_seq = events.emit(
                "check_pass", version=version.vid, cause=version.launch_seq,
                error=error, tolerance=margin, final=True)
            with events.cause(pass_seq):
                self._commit(version)
            return
        self.stats.checks_failed += 1
        self._m_check_fail.inc()
        fail_seq = events.emit(
            "check_fail", version=version.vid, cause=version.launch_seq,
            error=error, tolerance=margin, final=True)
        with events.cause(fail_seq):
            if version.active:
                self._rollback(version)
            self._recompute()

    def _commit(self, version: SpecVersion) -> None:
        version.committed = True
        self.finalized = True
        self.outcome = "commit"
        events = self.runtime.events
        commit_seq = events.emit("spec_commit", version=version.vid,
                                 lifetime_us=self.runtime.now - version.created_at)
        with events.cause(commit_seq):
            # The version's fate is decided: drop whatever it pinned (e.g.
            # shared-memory block refs acquired for its second-pass tasks).
            version.release_resources("commit")
            self.stats.commits += 1
            self._m_commits.inc()
            self._m_version_us.labels(outcome="commit").observe(
                self.runtime.now - version.created_at)
            if self.spec.barrier is not None:
                self.spec.barrier.commit(version.vid, self.runtime.now)
        self.runtime.trace.record(
            self.runtime.now, "commit", f"version:{version.vid}",
        )

    def _recompute(self) -> None:
        self.finalized = True
        self.outcome = "recompute"
        self.stats.recomputes += 1
        self._m_recomputes.inc()
        self.runtime.trace.record(self.runtime.now, "recompute", self.spec.name)
        events = self.runtime.events
        rec_seq = events.emit("spec_recompute")
        with events.cause(rec_seq):
            self.spec.recompute(self.final_value)

"""The paper's primary contribution: tolerant coarse-grain value speculation.

The programmer describes a speculation with the four details of the paper's
interface (§II-A) collected in a :class:`~repro.core.spec.SpeculationSpec`:

1. **what** to speculate — the value flowing along a DFG edge (here: the
   value produced by an approximate *predictor* and consumed by the
   speculative subgraph the *launch* callback builds);
2. **how** — the predictor factory turning a partial input (e.g. a prefix
   histogram) into a prediction task;
3. **where (not)** — the side-effect barrier: a :class:`~repro.core.wait.WaitBuffer`
   holding speculative results until validation;
4. **how to validate** — a validator measuring prediction error, compared
   against a programmer-chosen *tolerance* margin.

The :class:`~repro.core.manager.SpeculationManager` drives the protocol over
a stream of *updates* (successive refinements of the true value): it decides
when to speculate (speculation frequency / step size), when to verify
(verification policy), and performs commit or rollback through the
:class:`~repro.core.rollback.RollbackEngine`.
"""

from repro.core.decisions import DecisionSource, LiveDecisionSource
from repro.core.frequency import (
    EveryK,
    FullVerification,
    Optimistic,
    VerificationPolicy,
    get_verification,
)
from repro.core.manager import SpeculationManager
from repro.core.rollback import RollbackEngine
from repro.core.spec import SpeculationSpec, SpecVersion
from repro.core.stats import SpeculationStats
from repro.core.tolerance import (
    AbsoluteTolerance,
    AdaptiveTolerance,
    ExactTolerance,
    RelativeTolerance,
    ToleranceRule,
)
from repro.core.wait import WaitBuffer

__all__ = [
    "DecisionSource",
    "LiveDecisionSource",
    "EveryK",
    "FullVerification",
    "Optimistic",
    "VerificationPolicy",
    "get_verification",
    "SpeculationManager",
    "RollbackEngine",
    "SpeculationSpec",
    "SpecVersion",
    "SpeculationStats",
    "ToleranceRule",
    "RelativeTolerance",
    "AdaptiveTolerance",
    "AbsoluteTolerance",
    "ExactTolerance",
    "WaitBuffer",
]

"""Rollback: destroy-signal propagation over a speculation version.

When speculation fails (§III-B): all data produced from the speculation
point onward is discarded; ready tasks are deleted along with their result
memory; launched tasks are abort-flagged and reclaimed with their content
when they complete. Side-effect freedom guarantees the dependence structure
is stable, so exactly the right tasks are destroyed.

The engine starts from the version's registered tasks and propagates through
the DFG's dependents — both mechanisms the paper describes (explicit task
bookkeeping *and* dependence-chain traversal) act together, so dynamically
added consumers of speculative data are destroyed even if the client forgot
to register them.

Every rollback emits one ``destroy_signal`` event and runs its fan-out
(aborts, resource releases, buffer discards) inside that event's cause
scope, so ``repro explain`` can reconstruct the cascade; its cost — tasks
destroyed and wasted occupancy — is double-entered into the
``spec_rollback_cost`` histogram so metrics and the event log agree.
"""

from __future__ import annotations

from repro.core.spec import SpecVersion
from repro.core.wait import WaitBuffer
from repro.errors import RollbackError
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["RollbackEngine"]


class RollbackEngine:
    """Destroys the footprint of a failed speculation version."""

    def __init__(self, runtime: Runtime, barrier: WaitBuffer | None = None) -> None:
        self.runtime = runtime
        self.barrier = barrier
        self.rollbacks = 0
        self.tasks_destroyed = 0
        self.buffer_entries_discarded = 0
        #: occupancy (µs on the executor clock) sunk into tasks that had
        #: started before the destroy signal reached them.
        self.wasted_task_us = 0.0
        cost = runtime.metrics.histogram(
            "spec_rollback_cost",
            "per-rollback cost: measure=tasks (footprint size) and "
            "measure=wasted_us (occupancy sunk into started tasks)",
            labelnames=("measure",),
            buckets=(1, 2, 5, 10, 20, 50, 100, 1e3, 1e4, 1e5, 1e6, 1e7))
        self._m_cost_tasks = cost.labels(measure="tasks")
        self._m_cost_wasted = cost.labels(measure="wasted_us")

    def rollback(self, version: SpecVersion) -> list[Task]:
        """Deactivate ``version`` and destroy its tasks and buffered data.

        Returns the aborted footprint in propagation order. Idempotent per
        version; committing a rolled-back version is impossible because the
        manager checks ``version.active``.
        """
        if version.committed:
            raise RollbackError(f"cannot roll back committed version v{version.vid}")
        if not version.active:
            return []
        version.active = False
        events = self.runtime.events
        destroy_seq = events.emit(
            "destroy_signal", version=version.vid,
            created_index=version.created_index)
        with events.cause(destroy_seq):
            footprint = self.runtime.abort_dependents(version.tasks, include_roots=True)
            # Resources the version pinned (shared-memory block refs, ...) go
            # with the footprint: a mis-speculation must not hold segments.
            version.release_resources("rollback")
            discarded = (self.barrier.discard(version.vid)
                         if self.barrier is not None else 0)
        now = self.runtime.now
        wasted = 0.0
        for task in footprint:
            if task.start_time is not None:
                end = task.finish_time if task.finish_time is not None else now
                wasted += max(0.0, end - task.start_time)
        self.rollbacks += 1
        self.tasks_destroyed += len(footprint)
        self.buffer_entries_discarded += discarded
        self.wasted_task_us += wasted
        self._m_cost_tasks.observe(len(footprint))
        self._m_cost_wasted.observe(wasted)
        events.emit(
            "rollback_done", version=version.vid, cause=destroy_seq,
            tasks_destroyed=len(footprint), buffer_discarded=discarded,
            wasted_us=wasted)
        self.runtime.trace.record(
            self.runtime.now,
            "rollback",
            f"version:{version.vid}",
            tasks_destroyed=len(footprint),
            created_index=version.created_index,
        )
        return footprint

"""Rollback: destroy-signal propagation over a speculation version.

When speculation fails (§III-B): all data produced from the speculation
point onward is discarded; ready tasks are deleted along with their result
memory; launched tasks are abort-flagged and reclaimed with their content
when they complete. Side-effect freedom guarantees the dependence structure
is stable, so exactly the right tasks are destroyed.

The engine starts from the version's registered tasks and propagates through
the DFG's dependents — both mechanisms the paper describes (explicit task
bookkeeping *and* dependence-chain traversal) act together, so dynamically
added consumers of speculative data are destroyed even if the client forgot
to register them.
"""

from __future__ import annotations

from repro.core.spec import SpecVersion
from repro.core.wait import WaitBuffer
from repro.errors import RollbackError
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["RollbackEngine"]


class RollbackEngine:
    """Destroys the footprint of a failed speculation version."""

    def __init__(self, runtime: Runtime, barrier: WaitBuffer | None = None) -> None:
        self.runtime = runtime
        self.barrier = barrier
        self.rollbacks = 0
        self.tasks_destroyed = 0
        self.buffer_entries_discarded = 0

    def rollback(self, version: SpecVersion) -> list[Task]:
        """Deactivate ``version`` and destroy its tasks and buffered data.

        Returns the aborted footprint in propagation order. Idempotent per
        version; committing a rolled-back version is impossible because the
        manager checks ``version.active``.
        """
        if version.committed:
            raise RollbackError(f"cannot roll back committed version v{version.vid}")
        if not version.active:
            return []
        version.active = False
        footprint = self.runtime.abort_dependents(version.tasks, include_roots=True)
        # Resources the version pinned (shared-memory block refs, ...) go
        # with the footprint: a mis-speculation must not hold segments.
        version.release_resources("rollback")
        self.rollbacks += 1
        self.tasks_destroyed += len(footprint)
        if self.barrier is not None:
            self.buffer_entries_discarded += self.barrier.discard(version.vid)
        self.runtime.trace.record(
            self.runtime.now,
            "rollback",
            f"version:{version.vid}",
            tasks_destroyed=len(footprint),
            created_index=version.created_index,
        )
        return footprint

"""The speculation spec (the paper's four-point interface) and versions.

A :class:`SpeculationSpec` is what a programmer hands to the runtime to make
a stream speculative "semi-automatically" (§II-A contribution list). A
:class:`SpecVersion` is one live speculation attempt: a predicted value plus
every task spawned under that prediction, which is exactly the footprint a
rollback must destroy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.frequency import EveryK, SpeculationInterval, VerificationPolicy
from repro.core.tolerance import RelativeTolerance, ToleranceRule
from repro.core.wait import WaitBuffer
from repro.errors import SpeculationError
from repro.sre.task import Task

__all__ = ["SpeculationSpec", "SpecVersion"]

#: predictor(update_value, task_name) -> Task producing the prediction on port "out"
Predictor = Callable[[Any, str], Task]
#: validator(predicted, candidate, reference_update) -> relative error (>= 0)
Validator = Callable[[Any, Any, Any], float]


class SpecVersion:
    """One speculation attempt and its task footprint."""

    def __init__(self, vid: int, created_index: int, created_at: float) -> None:
        self.vid = vid
        #: update index the prediction was based on.
        self.created_index = created_index
        self.created_at = created_at
        #: the predicted value, once the prediction task completes.
        self.value: Any = None
        self.prediction_task: Task | None = None
        #: every task spawned under this version (rollback footprint roots).
        self.tasks: list[Task] = []
        self.active = True
        self.committed = False

    def register(self, task: Task) -> Task:
        """Record a task as belonging to this version (tags it, too)."""
        task.tags["spec_version"] = self.vid
        self.tasks.append(task)
        return task

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "committed" if self.committed else ("active" if self.active else "rolled-back")
        return f"<SpecVersion v{self.vid} from update {self.created_index} {state}>"


@dataclass
class SpeculationSpec:
    """Programmer-provided description of one speculation domain.

    Maps one-to-one onto the paper's interface (§II-A):

    1. *what* — the value produced by ``predictor`` and consumed by the
       subgraph ``launch`` builds;
    2. *how* — ``predictor``: builds the task that turns a partial update
       into a predicted value (e.g. prefix histogram → speculative tree);
    3. *where (not)* — ``barrier``: the wait buffer where speculative
       results pause before side effects;
    4. *how to validate* — ``validator`` + ``tolerance``: measured
       prediction error and the margin that makes it acceptable.

    Plus the management knobs of §II-B: ``interval`` (speculation
    frequency / step size) and ``verification`` (verification frequency),
    and the recovery route ``recompute`` used when the final check fails.
    """

    name: str
    predictor: Predictor
    validator: Validator
    launch: Callable[[SpecVersion], None]
    recompute: Callable[[Any], None]
    barrier: WaitBuffer | None = None
    tolerance: ToleranceRule = field(default_factory=lambda: RelativeTolerance(0.01))
    interval: SpeculationInterval = field(default_factory=lambda: SpeculationInterval(8))
    verification: VerificationPolicy = field(default_factory=lambda: EveryK(8))
    #: cost hints for generated check tasks (see platform cost models).
    check_cost_hint: dict[str, float] = field(default_factory=lambda: {"entries": 256.0})

    def __post_init__(self) -> None:
        if isinstance(self.interval, int):
            self.interval = SpeculationInterval(self.interval)
        if isinstance(self.tolerance, float):
            self.tolerance = RelativeTolerance(self.tolerance)
        if not callable(self.predictor) or not callable(self.validator):
            raise SpeculationError("predictor and validator must be callable")

"""The speculation spec (the paper's four-point interface) and versions.

A :class:`SpeculationSpec` is what a programmer hands to the runtime to make
a stream speculative "semi-automatically" (§II-A contribution list). A
:class:`SpecVersion` is one live speculation attempt: a predicted value plus
every task spawned under that prediction, which is exactly the footprint a
rollback must destroy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.frequency import EveryK, SpeculationInterval, VerificationPolicy
from repro.core.tolerance import RelativeTolerance, ToleranceRule
from repro.core.wait import WaitBuffer
from repro.errors import SpeculationError
from repro.sre.task import Task

__all__ = ["SpeculationSpec", "SpecBuilder", "SpecVersion"]

#: predictor(update_value, task_name) -> Task producing the prediction on port "out"
Predictor = Callable[[Any, str], Task]
#: validator(predicted, candidate, reference_update) -> relative error (>= 0)
Validator = Callable[[Any, Any, Any], float]


class SpecVersion:
    """One speculation attempt and its task footprint."""

    def __init__(self, vid: int, created_index: int, created_at: float) -> None:
        self.vid = vid
        #: update index the prediction was based on.
        self.created_index = created_index
        self.created_at = created_at
        #: the predicted value, once the prediction task completes.
        self.value: Any = None
        self.prediction_task: Task | None = None
        #: every task spawned under this version (rollback footprint roots).
        self.tasks: list[Task] = []
        #: resource-release callbacks (e.g. shared-memory block refs the
        #: version's tasks pinned); invoked exactly once with the outcome
        #: reason on commit or rollback.
        self.resources: list[Callable[[str], None]] = []
        self.active = True
        self.committed = False
        #: event-log anchors (seqs of this version's spec_predict /
        #: spec_launch events) — lineage edges hang off these.
        self.predict_seq: int | None = None
        self.launch_seq: int | None = None

    def register(self, task: Task) -> Task:
        """Record a task as belonging to this version (tags it, too)."""
        task.tags["spec_version"] = self.vid
        self.tasks.append(task)
        return task

    def add_resource(self, release: Callable[[str], None]) -> None:
        """Attach a resource to this version's lifetime.

        ``release(reason)`` is called once when the version's fate is
        decided — ``reason`` is ``"commit"`` or ``"rollback"``. The
        shared-memory transport uses this to drop the block references a
        speculative second pass acquired, so a mis-speculated version can
        never pin segments (see :mod:`repro.sre.shm`).
        """
        self.resources.append(release)

    def release_resources(self, reason: str) -> None:
        """Invoke and clear every attached release callback (idempotent)."""
        callbacks, self.resources = self.resources, []
        for release in callbacks:
            release(reason)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "committed" if self.committed else ("active" if self.active else "rolled-back")
        return f"<SpecVersion v{self.vid} from update {self.created_index} {state}>"


@dataclass
class SpeculationSpec:
    """Programmer-provided description of one speculation domain.

    Maps one-to-one onto the paper's interface (§II-A):

    1. *what* — the value produced by ``predictor`` and consumed by the
       subgraph ``launch`` builds;
    2. *how* — ``predictor``: builds the task that turns a partial update
       into a predicted value (e.g. prefix histogram → speculative tree);
    3. *where (not)* — ``barrier``: the wait buffer where speculative
       results pause before side effects;
    4. *how to validate* — ``validator`` + ``tolerance``: measured
       prediction error and the margin that makes it acceptable.

    Plus the management knobs of §II-B: ``interval`` (speculation
    frequency / step size) and ``verification`` (verification frequency),
    and the recovery route ``recompute`` used when the final check fails.
    """

    name: str
    predictor: Predictor
    validator: Validator
    launch: Callable[[SpecVersion], None]
    recompute: Callable[[Any], None]
    barrier: WaitBuffer | None = None
    tolerance: ToleranceRule = field(default_factory=lambda: RelativeTolerance(0.01))
    interval: SpeculationInterval = field(default_factory=lambda: SpeculationInterval(8))
    verification: VerificationPolicy = field(default_factory=lambda: EveryK(8))
    #: cost hints for generated check tasks (see platform cost models).
    check_cost_hint: dict[str, float] = field(default_factory=lambda: {"entries": 256.0})

    def __post_init__(self) -> None:
        if isinstance(self.interval, int):
            self.interval = SpeculationInterval(self.interval)
        if isinstance(self.tolerance, float):
            self.tolerance = RelativeTolerance(self.tolerance)
        if not callable(self.predictor) or not callable(self.validator):
            raise SpeculationError("predictor and validator must be callable")

    @classmethod
    def builder(cls, name: str) -> "SpecBuilder":
        """Start a fluent :class:`SpecBuilder` for this domain.

        The builder groups the constructor's nine parameters by the
        paper's four interface points::

            spec = (SpeculationSpec.builder("tree")
                    .what(launch=start_second_pass, recompute=recompute)
                    .how(build_tree_task, interval=8)
                    .barrier(wait_buffer)
                    .validate(tree_cost_error, tolerance=0.01,
                              verification=EveryK(8))
                    .build())
        """
        return SpecBuilder(name)


class SpecBuilder:
    """Fluent constructor for :class:`SpeculationSpec`.

    Each method covers one point of the paper's §II-A interface: *what* to
    do with a speculated value (:meth:`what`), *how* to predict it
    (:meth:`how`), *where* results must wait (:meth:`barrier`), and *how to
    validate* the prediction (:meth:`validate`). :meth:`build` checks that
    the mandatory points were supplied and returns the spec — every
    omission is reported in one error, not one at a time.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise SpeculationError("speculation domain needs a name")
        self._name = name
        self._kwargs: dict[str, Any] = {}

    def what(self, *, launch: Callable[[SpecVersion], None],
             recompute: Callable[[Any], None]) -> "SpecBuilder":
        """Point 1 — what runs under a prediction, and the recovery route.

        ``launch(version)`` builds the speculative subgraph consuming the
        predicted value; ``recompute(value)`` rebuilds it non-speculatively
        after a failed final check.
        """
        self._kwargs["launch"] = launch
        self._kwargs["recompute"] = recompute
        return self

    def how(self, predictor: Predictor, *,
            interval: SpeculationInterval | int | None = None) -> "SpecBuilder":
        """Point 2 — how to predict: the predictor task factory, and
        optionally the speculation interval (§II-B frequency knob)."""
        self._kwargs["predictor"] = predictor
        if interval is not None:
            self._kwargs["interval"] = interval
        return self

    def barrier(self, wait_buffer: WaitBuffer | None) -> "SpecBuilder":
        """Point 3 — where speculative results pause before side effects."""
        self._kwargs["barrier"] = wait_buffer
        return self

    def validate(self, validator: Validator, *,
                 tolerance: ToleranceRule | float | None = None,
                 verification: VerificationPolicy | None = None,
                 check_cost_hint: dict[str, float] | None = None) -> "SpecBuilder":
        """Point 4 — how to validate: the error measure, the margin that
        makes it acceptable, and how often to check (§II-B)."""
        self._kwargs["validator"] = validator
        if tolerance is not None:
            self._kwargs["tolerance"] = tolerance
        if verification is not None:
            self._kwargs["verification"] = verification
        if check_cost_hint is not None:
            self._kwargs["check_cost_hint"] = check_cost_hint
        return self

    def build(self) -> SpeculationSpec:
        """Validate completeness and construct the spec."""
        missing = [
            point for point, keys in (
                (".what(launch=..., recompute=...)", ("launch", "recompute")),
                (".how(predictor)", ("predictor",)),
                (".validate(validator)", ("validator",)),
            )
            if any(k not in self._kwargs for k in keys)
        ]
        if missing:
            raise SpeculationError(
                f"speculation domain {self._name!r} is incomplete; "
                f"missing builder calls: {', '.join(missing)}"
            )
        return SpeculationSpec(name=self._name, **self._kwargs)

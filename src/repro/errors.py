"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
applications embedding the runtime can catch a single base class. Subsystems
define narrower classes so tests can assert on precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class SchedulingError(ReproError):
    """Raised when the SRE scheduler is driven into an invalid state."""


class GraphError(ReproError):
    """Raised for malformed data-flow graphs (unknown ports, cycles, ...)."""


class TaskStateError(ReproError):
    """Raised on illegal task life-cycle transitions."""


class TaskExecutionError(ReproError):
    """A task function raised; wraps the original exception with context.

    Attributes:
        task_name: the failing task.
        original: the exception the task function raised.
    """

    def __init__(self, task_name: str, original: BaseException):
        super().__init__(f"task {task_name!r} failed: {original!r}")
        self.task_name = task_name
        self.original = original


class SpeculationError(ReproError):
    """Raised for misconfigured speculation specs or manager misuse."""


class RollbackError(SpeculationError):
    """Raised when a rollback cannot be carried out consistently."""


class ToleranceError(SpeculationError):
    """Raised for invalid tolerance comparator configuration."""


class PlatformError(ReproError):
    """Raised for invalid platform/cost-model configuration."""


class WorkloadError(ReproError):
    """Raised for invalid workload generator parameters."""


class CodecError(ReproError):
    """Raised by the Huffman codec on invalid inputs or corrupt streams."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for unknown or invalid configs."""


class ObservabilityError(ReproError):
    """Raised for metrics/exporter misuse (type clashes, bad snapshots)."""


class EventSchemaError(ObservabilityError):
    """An event log's schema header is missing or from another build.

    Raised by :func:`repro.obs.events.read_event_log` so ``repro
    explain`` / ``repro replay`` reject incompatible logs with one clear
    sentence instead of misreading them.
    """


class ReplayError(ReproError):
    """Raised when a recorded run cannot be replayed at all (no
    ``run_config`` in the header, custom byte workload, ...)."""


class ReplayDivergence(ReplayError):
    """Replay of a recorded schedule diverged from the recording.

    Points at the *first* recorded event seq where live reality and the
    recorded decision disagree — a check error that no longer matches,
    a decision gate that was never reached, a different final outcome or
    output digest. Loud by design: a replay that silently drifts is
    worse than no replay.

    Attributes:
        seq: seq of the first mismatched recorded event (None when the
            mismatch is not tied to one event, e.g. an output digest).
        detail: human-readable description of the mismatch.
    """

    def __init__(self, detail: str, seq: int | None = None) -> None:
        at = f" at recorded seq {seq}" if seq is not None else ""
        super().__init__(f"replay diverged{at}: {detail}")
        self.seq = seq
        self.detail = detail


class TransportError(ReproError):
    """Raised for shared-memory transport misuse (double release, ...)."""


class WorkerLost(ReproError):
    """A worker process physically failed (died or stopped replying).

    Raised internally by the process back-end's supervisor; it carries the
    worker slot and the detected cause so the recovery path can account
    the crash before respawning and re-dispatching. It only escapes the
    executor when recovery itself is impossible.

    Attributes:
        worker: the worker slot id.
        cause: ``"crash"`` (process died) or ``"hang"`` (dispatch deadline
            expired with the process still alive).
        exitcode: the dead process's exit code, when known.
    """

    def __init__(self, worker: int, cause: str,
                 exitcode: int | None = None) -> None:
        detail = f" (exitcode {exitcode})" if exitcode is not None else ""
        super().__init__(f"worker {worker} {cause}{detail}")
        self.worker = worker
        self.cause = cause
        self.exitcode = exitcode


class SegmentGone(TransportError):
    """A shared-memory segment was reclaimed before a reference resolved.

    Workers report this back to the coordinator instead of crashing: the
    segment of a rolled-back version may legitimately disappear while its
    task payload is in flight.
    """

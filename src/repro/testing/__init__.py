"""Test harnesses shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection plan the
process back-end's worker supervisor understands — importable from
production code (``repro run --fault kill@3``) on purpose: chaos that can
only be provoked from a test file never runs in CI smoke jobs.
"""

from repro.testing.faults import Fault, FaultPlan

__all__ = ["Fault", "FaultPlan"]

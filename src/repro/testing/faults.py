"""Deterministic fault injection for the process and dist back-ends.

A :class:`FaultPlan` describes *physical* failures to inject into worker
processes — the failures the :class:`~repro.sre.executor_procs.WorkerSupervisor`
exists to survive. Logical failures (mis-speculation, tolerance misses)
already have a deterministic harness in the speculation knobs; physical
failures need one too, or crash recovery is only ever tested by luck.

The plan is a **pure value**: picklable (it rides to workers inside the
``Process`` args), hashable, JSON-safe via its spec string, and entirely
deterministic — a fault fires at the *Nth batch dispatch* observed by one
worker slot, counted in that worker's own address space, so no wall-clock
or scheduling race decides whether chaos happens.

The plan crosses the wire unchanged: ``repro run --executor dist --fault
kill@3`` ships the spec string to the remote ``repro worker-pool`` at
attach (and ``repro worker-pool --fault ...`` sets a pool-side default),
where it arms on the *remote* workers verbatim — same grammar, same
batch-counted determinism — so every chaos scenario below also exercises
the coordinator's reconnect-with-bumped-incarnation path instead of the
local pipe path.

Spec grammar (``repro run --fault ...``)::

    PLAN  := FAULT ("," FAULT)*
    FAULT := ACTION "@" N [":wW"] [":SECONDS"] ["!"]

    kill@3          SIGKILL worker slot 0 at its 3rd dispatch
    hang@2:w1       worker slot 1 stops replying at its 2nd dispatch
    drop@4          slot 0 swallows its 4th batch (alive, reply never sent)
    delay@1:0.25    slot 0 sleeps 250 ms before its 1st batch (slow worker)
    kill@1!         persistent: fires on *every* incarnation of slot 0 —
                    the payload-kills-worker quarantine scenario

Without ``!`` a fault arms only the slot's first incarnation (process),
so a respawned worker is healthy — the recover-and-finish scenario. With
``!`` every respawn dies the same way, which is what drives the
supervisor's bounded-retry / quarantine / degrade-to-inline ladder.

Actions:

* ``kill``  — ``SIGKILL`` to self: the coordinator sees EOF/a dead
  sentinel, exactly like an OOM kill.
* ``hang``  — stop replying forever (the supervisor's dispatch deadline
  must fire); the worker burns no CPU.
* ``drop``  — swallow one batch and keep serving the pipe. The reply
  stream is now misaligned, which the supervisor treats identically to a
  hang: kill, respawn, re-dispatch.
* ``delay`` — sleep ``SECONDS`` before running the batch, then behave
  normally. Provokes the deadline *without* crossing it when the timeout
  scaling is right — the slow-worker regression case.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.errors import ExperimentError

__all__ = ["Fault", "FaultPlan", "KILL", "HANG", "DROP", "DELAY"]

KILL = "kill"
HANG = "hang"
DROP = "drop"
DELAY = "delay"

_ACTIONS = (KILL, HANG, DROP, DELAY)


@dataclass(frozen=True)
class Fault:
    """One injected failure: ``action`` at worker ``worker``'s
    ``at_dispatch``-th batch (1-based).

    ``persistent`` faults re-arm on every incarnation of the slot;
    one-shot faults fire only in the first process spawned for it.
    ``seconds`` is the ``delay`` duration (ignored by other actions).
    """

    action: str
    at_dispatch: int
    worker: int = 0
    seconds: float = 0.0
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ExperimentError(
                f"unknown fault action {self.action!r}; choose one of "
                f"{', '.join(_ACTIONS)}")
        if self.at_dispatch < 1:
            raise ExperimentError("fault dispatch index is 1-based (>= 1)")
        if self.worker < 0:
            raise ExperimentError("fault worker slot must be >= 0")
        if self.seconds < 0:
            raise ExperimentError("fault seconds must be >= 0")
        if self.action == DELAY and self.seconds == 0:
            raise ExperimentError(
                "delay faults need a duration, e.g. 'delay@1:0.25'")

    def spec(self) -> str:
        """Render back to the spec grammar (parse/spec round-trips)."""
        out = f"{self.action}@{self.at_dispatch}"
        if self.worker:
            out += f":w{self.worker}"
        if self.action == DELAY:
            out += f":{self.seconds:g}"
        if self.persistent:
            out += "!"
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`Fault` entries, threaded coordinator →
    worker through the ``Process`` args (it must stay picklable)."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: "str | FaultPlan | None") -> "FaultPlan | None":
        """Parse a plan spec; passes through ``None`` and ready plans."""
        if spec is None or isinstance(spec, FaultPlan):
            return spec
        faults = []
        for token in str(spec).split(","):
            token = token.strip()
            if token:
                faults.append(_parse_fault(token))
        if not faults:
            raise ExperimentError(f"empty fault spec {spec!r}")
        return cls(tuple(faults))

    def spec(self) -> str:
        return ",".join(f.spec() for f in self.faults)

    def for_worker(self, worker: int, incarnation: int) -> tuple[Fault, ...]:
        """Faults armed for one process: slot ``worker``, spawn number
        ``incarnation`` (0 = the original, 1+ = respawns)."""
        return tuple(
            f for f in self.faults
            if f.worker == worker and (f.persistent or incarnation == 0)
        )


def _parse_fault(token: str) -> Fault:
    persistent = token.endswith("!")
    if persistent:
        token = token[:-1]
    head, _, rest = token.partition(":")
    action, at, at_str = head.partition("@")
    if not at or not at_str:
        raise ExperimentError(
            f"fault {token!r} must look like 'ACTION@N[:wW][:SECONDS]'")
    try:
        at_dispatch = int(at_str)
    except ValueError:
        raise ExperimentError(
            f"fault {token!r}: dispatch index {at_str!r} is not an integer"
        ) from None
    worker = 0
    seconds = 0.0
    for part in filter(None, rest.split(":")):
        if part[0] == "w" and part[1:].isdigit():
            worker = int(part[1:])
            continue
        try:
            seconds = float(part)
        except ValueError:
            raise ExperimentError(
                f"fault {token!r}: {part!r} is neither a worker selector "
                "('w0') nor a duration in seconds") from None
    return Fault(action, at_dispatch, worker=worker, seconds=seconds,
                 persistent=persistent)


class FaultInjector:
    """Worker-process side: applies a slot's armed faults as dispatches go by.

    One injector lives in each worker process; :meth:`on_batch` is called
    once per received batch *before* any payload runs. ``kill`` raises
    SIGKILL against the worker itself; ``hang`` sleeps forever (the
    supervisor will kill the process once the dispatch deadline passes);
    ``delay`` sleeps then lets the batch proceed; ``drop`` returns True to
    tell the worker loop to swallow the batch without replying. Each armed
    fault fires at most once per process.
    """

    def __init__(self, plan: FaultPlan | None, worker: int,
                 incarnation: int) -> None:
        self._armed = list(plan.for_worker(worker, incarnation)) if plan else []
        self._dispatch_no = 0

    def on_batch(self) -> bool:
        """Advance the dispatch counter; returns True when the batch must
        be dropped (no reply). May not return at all (kill/hang)."""
        self._dispatch_no += 1
        fired = [f for f in self._armed if f.at_dispatch == self._dispatch_no]
        if not fired:
            return False
        self._armed = [f for f in self._armed if f not in fired]
        drop = False
        for fault in fired:
            if fault.action == KILL:
                os.kill(os.getpid(), signal.SIGKILL)
            elif fault.action == HANG:
                while True:  # pragma: no cover - killed by the supervisor
                    time.sleep(60.0)
            elif fault.action == DELAY:
                time.sleep(fault.seconds)
            elif fault.action == DROP:
                drop = True
        return drop

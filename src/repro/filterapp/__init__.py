"""The paper's Fig. 1 application: speculating on an iterative filter design.

A program computes FIR filter coefficients by an iterative solver (a serial
chain of refinement steps) and then filters a stream of data blocks with
them — the parallel phase is blocked behind the serial iteration (§II-A).
Value speculation predicts the coefficients from an early iteration and
starts filtering optimistically; a tolerance check compares the predicted
and refined coefficients in frequency-response space, committing the
buffered speculative output or rolling back and re-filtering.

This is the second full application built on :mod:`repro.core` (after the
Huffman benchmark), demonstrating that the speculation framework is
app-agnostic: the same manager, wait buffer and rollback engine drive both.
"""

from repro.filterapp.iterative import FilterDesignProblem, frequency_response
from repro.filterapp.pipeline import FilterConfig, FilterPipeline
from repro.filterapp.runner import run_filter_experiment

__all__ = [
    "FilterDesignProblem",
    "frequency_response",
    "FilterConfig",
    "FilterPipeline",
    "run_filter_experiment",
]

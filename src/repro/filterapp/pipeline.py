"""Streaming filter pipeline with coefficient speculation (Fig. 1).

Graph shape, mirroring the paper's figure:

* a serial chain of ``iterate`` tasks refines the filter coefficients —
  each is flagged as a speculation base, so its completion reaches the
  :class:`~repro.core.manager.SpeculationManager` as an update;
* data blocks arrive concurrently; once coefficients (speculative or final)
  exist, per-block ``filter`` tasks run in parallel (overlap-save across
  block boundaries keeps blocks independent: a block's task needs only its
  own samples plus the tail of the *raw* previous block, which is data, not
  a computed dependency);
* speculative filter outputs pause at the wait buffer; the final iteration
  triggers the tolerance check → commit or re-filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.frequency import SpeculationInterval, VerificationPolicy, get_verification
from repro.core.manager import SpeculationManager
from repro.core.spec import SpecVersion, SpeculationSpec
from repro.core.tolerance import RelativeTolerance
from repro.core.wait import WaitBuffer
from repro.errors import ExperimentError
from repro.filterapp.iterative import FilterDesignProblem
from repro.metrics.latency import LatencyCollector
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["FilterConfig", "FilterPipeline"]


@dataclass
class FilterConfig:
    """Speculation knobs for the filter application."""

    speculative: bool = True
    #: speculate from this iteration onward (the paper's "early stage of the
    #: filter calculation phase triggers early speculative execution").
    step: int = 2
    verification: VerificationPolicy | str = "every_k"
    verify_k: int = 4
    tolerance: float = 0.02

    def resolve_verification(self) -> VerificationPolicy:
        if isinstance(self.verification, VerificationPolicy):
            return self.verification
        return get_verification(self.verification, k=self.verify_k)


def _filter_block(block: np.ndarray, tail: np.ndarray, coeffs: np.ndarray) -> np.ndarray:
    """Overlap-save FIR filtering of one block.

    ``full[j] = sum_k c[k] * ext[j - k]``, and block sample ``m`` sits at
    ``ext[len(tail) + m]``, so the block's outputs are
    ``full[len(tail) : len(tail) + len(block)]``. With ``tail`` holding the
    previous block's last ``taps - 1`` samples this equals filtering the
    whole stream sequentially; block 0 (empty tail) reproduces the zero-
    history transient.
    """
    ext = np.concatenate([tail, block])
    full = np.convolve(ext, coeffs, mode="full")
    return full[len(tail) : len(tail) + len(block)]


class FilterPipeline:
    """Drives one speculative filtering run over a runtime."""

    def __init__(
        self,
        runtime: Runtime,
        problem: FilterDesignProblem,
        config: FilterConfig,
        n_blocks: int,
    ) -> None:
        if n_blocks < 1:
            raise ExperimentError("need at least one block")
        self.runtime = runtime
        self.problem = problem
        self.config = config
        self.n_blocks = n_blocks
        root = runtime.root.subgroup("filter")
        self.st_iter = root.subgroup("iteration")
        self.st_filter = root.subgroup("filtering")
        self.collector = LatencyCollector()
        self.blocks: dict[int, np.ndarray] = {}
        self._outputs: dict[int, np.ndarray] = {}
        self._fed = 0
        self._natural_launched = False
        self._valid_coeffs: np.ndarray | None = None
        self._builders: list[_FilterBuilder] = []

        self.barrier: WaitBuffer | None = None
        self.manager: SpeculationManager | None = None
        if config.speculative:
            self.barrier = WaitBuffer(sink=self._commit_sink, events=runtime.events)
            spec = (
                SpeculationSpec.builder("filter")
                .what(launch=self._launch_speculative,
                      recompute=self._launch_recompute)
                .how(self._make_predict_task,
                     interval=SpeculationInterval(config.step))
                .barrier(self.barrier)
                .validate(FilterDesignProblem.coefficient_error,
                          tolerance=RelativeTolerance(config.tolerance),
                          verification=config.resolve_verification(),
                          check_cost_hint={"entries": float(problem.n_freq)})
                .build()
            )
            self.manager = SpeculationManager(runtime, spec)
        self.st_iter.on_speculation_base(self._on_iteration)
        self._start_iteration_chain()

    # ------------------------------------------------------------------
    # the serial refinement chain
    # ------------------------------------------------------------------
    def _start_iteration_chain(self) -> None:
        prev: Task | None = None
        for k in range(1, self.problem.iterations + 1):
            task = Task(
                f"iterate:{k}",
                lambda coeffs: {"out": self.problem.refine(coeffs)},
                inputs=("coeffs",),
                kind="iterate",
                depth=1,
                cost_hint={"entries": float(self.problem.n_freq * self.problem.n_taps)},
                tags={"spec_base": True, "iteration": k},
            )
            self.runtime.add_task(task, self.st_iter)
            if prev is None:
                self.runtime.deliver_external(
                    task, "coeffs", self.problem.initial_coefficients()
                )
            else:
                self.runtime.connect(prev, "out", task, "coeffs")
            prev = task

    def _on_iteration(self, task: Task, outs: dict[str, Any]) -> None:
        k = task.tags.get("iteration")
        if k is None:
            return
        coeffs = outs["out"]
        is_final = k == self.problem.iterations
        if self.manager is not None:
            self.manager.offer_update(k, coeffs, is_final=is_final)
        elif is_final:
            self._launch_recompute(coeffs)

    def _make_predict_task(self, coeffs: np.ndarray, name: str) -> Task:
        return Task(
            name,
            lambda c=coeffs: {"out": np.array(c, copy=True)},
            kind="predict",
            depth=1,
            cost_hint={"entries": float(self.problem.n_taps)},
        )

    # ------------------------------------------------------------------
    # data input
    # ------------------------------------------------------------------
    def feed_block(self, index: int, samples: np.ndarray) -> None:
        """A block of samples arrived (blocks must arrive in order)."""
        if not (0 <= index < self.n_blocks):
            raise ExperimentError(f"block index {index} out of range")
        if index in self.blocks:
            raise ExperimentError(f"block {index} fed twice")
        if index > 0 and index - 1 not in self.blocks:
            raise ExperimentError("filter blocks must arrive in order")
        samples = np.asarray(samples, dtype=np.float64)
        if index > 0 and len(self.blocks[index - 1]) < self.problem.n_taps - 1:
            raise ExperimentError(
                "blocks must hold at least n_taps - 1 samples for overlap-save"
            )
        self.blocks[index] = samples
        self._fed += 1
        self.collector.record_arrival(index, self.runtime.now)
        for builder in list(self._builders):
            builder.on_block(index)

    # ------------------------------------------------------------------
    # filtering passes
    # ------------------------------------------------------------------
    def _launch_speculative(self, version: SpecVersion) -> None:
        builder = _FilterBuilder(self, version.value, version=version)
        self._builders.append(builder)
        builder.bootstrap()

    def _launch_recompute(self, coeffs: np.ndarray) -> None:
        if self._natural_launched:
            raise ExperimentError("natural filtering launched twice")
        self._natural_launched = True
        self._valid_coeffs = coeffs
        builder = _FilterBuilder(self, coeffs, version=None)
        self._builders.append(builder)
        builder.bootstrap()

    def _filter_done(self, version: SpecVersion | None, outs: dict[str, Any]) -> None:
        block = outs["block"]
        now = self.runtime.now
        if version is None:
            self.collector.record_encode(block, now, None)
            self._commit_sink(block, outs["samples"], now)
        else:
            self.collector.record_encode(block, now, version.vid)
            assert self.barrier is not None
            self.barrier.deposit(version.vid, block, outs["samples"], now)

    def _commit_sink(self, block: int, samples: np.ndarray, now: float) -> None:
        self.collector.record_commit(block, now)
        self._outputs[block] = samples

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def valid_versions(self) -> set[int | None]:
        if self.manager is None:
            return {None}
        if self.manager.outcome == "commit":
            return {next(v.vid for v in self.manager.versions if v.committed)}
        if self.manager.outcome == "recompute":
            return {None}
        raise ExperimentError("run not finished")

    @property
    def committed_coeffs(self) -> np.ndarray:
        if self.manager is not None and self.manager.outcome == "commit":
            return next(v for v in self.manager.versions if v.committed).value
        if self._valid_coeffs is None:
            raise ExperimentError("run not finished")
        return self._valid_coeffs

    def output(self) -> np.ndarray:
        """The committed filtered stream."""
        if len(self._outputs) != self.n_blocks:
            raise ExperimentError(
                f"only {len(self._outputs)}/{self.n_blocks} blocks committed"
            )
        return np.concatenate([self._outputs[i] for i in range(self.n_blocks)])

    def verify_output(self) -> bool:
        """Committed output equals sequentially filtering with the committed
        coefficients."""
        coeffs = self.committed_coeffs
        signal = np.concatenate([self.blocks[i] for i in range(self.n_blocks)])
        full = np.convolve(signal, coeffs, mode="full")[: len(signal)]
        return bool(np.allclose(self.output(), full))

    def result_quality(self) -> float:
        """Response error of the coefficients actually used."""
        return self.problem.response_error(self.committed_coeffs)


class _FilterBuilder:
    """Creates filter tasks for one coefficient vector (one version)."""

    def __init__(self, pipeline: FilterPipeline, coeffs: np.ndarray,
                 version: SpecVersion | None) -> None:
        self.pipeline = pipeline
        self.coeffs = coeffs
        self.version = version
        self.label = f"v{version.vid}" if version is not None else "nat"
        self._made: set[int] = set()
        self._bootstrapped = False

    @property
    def dead(self) -> bool:
        return self.version is not None and not self.version.active

    def bootstrap(self) -> None:
        if self._bootstrapped:
            raise ExperimentError("builder bootstrapped twice")
        self._bootstrapped = True
        for index in sorted(self.pipeline.blocks):
            self.on_block(index)

    def on_block(self, index: int) -> None:
        if self.dead or index in self._made:
            return
        self._made.add(index)
        pipeline = self.pipeline
        block = pipeline.blocks[index]
        n_tail = len(self.coeffs) - 1
        if index == 0:
            tail = np.zeros(0, dtype=np.float64)
        else:
            prev = pipeline.blocks[index - 1]
            tail = prev[-n_tail:] if n_tail else prev[:0]
        task = Task(
            f"filter:{self.label}:{index}",
            lambda b=block, t=tail, c=self.coeffs, i=index: {
                "samples": _filter_block(b, t, c),
                "block": i,
            },
            kind="filter",
            depth=3,
            speculative=self.version is not None,
            cost_hint={"units": float(block.size)},
            tags={"block": index},
        )
        if self.version is not None:
            self.version.register(task)
        task.on_complete.append(
            lambda _t, outs, v=self.version: pipeline._filter_done(v, outs)
        )
        pipeline.runtime.add_task(task, pipeline.st_filter)

"""Iterative FIR filter design — the serial refinement chain of Fig. 1.

The solver designs an ``n_taps``-coefficient FIR low-pass filter by
projected gradient descent on the squared frequency-response error against
an ideal brick-wall target. Each step is cheap; the *chain* is serial — the
exact shape value speculation exploits: early iterates are already close to
the final coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError

__all__ = ["FilterDesignProblem", "frequency_response"]


def frequency_response(coeffs: np.ndarray, n_points: int = 256) -> np.ndarray:
    """Magnitude response of an FIR filter on ``n_points`` frequencies."""
    return np.abs(np.fft.rfft(coeffs, n=2 * n_points))[:n_points]


@dataclass
class FilterDesignProblem:
    """Gradient-descent design of a low-pass FIR filter.

    Attributes:
        n_taps: filter length.
        cutoff: normalised cutoff frequency in (0, 0.5).
        iterations: total refinement steps (the serial bottleneck's length).
        learning_rate: gradient step size.
    """

    n_taps: int = 33
    cutoff: float = 0.2
    iterations: int = 24
    learning_rate: float = 0.25
    n_freq: int = 128
    _target: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if not (0.0 < self.cutoff < 0.5):
            raise ExperimentError("cutoff must be in (0, 0.5)")
        if self.n_taps < 3 or self.iterations < 1:
            raise ExperimentError("need n_taps >= 3 and iterations >= 1")
        freqs = np.linspace(0.0, 0.5, self.n_freq)
        self._target = (freqs <= self.cutoff).astype(np.float64)

    @property
    def target(self) -> np.ndarray:
        return self._target

    def initial_coefficients(self) -> np.ndarray:
        """Crude starting point: a boxcar (moving average)."""
        return np.full(self.n_taps, 1.0 / self.n_taps)

    def refine(self, coeffs: np.ndarray) -> np.ndarray:
        """One gradient step on the squared response error.

        The response is linear in the coefficients, so the gradient is a
        plain least-squares residual back-projection.
        """
        n = self.n_freq
        taps = np.arange(self.n_taps)
        freqs = np.linspace(0.0, 0.5, n)
        # Real design matrix: response(f) = sum_k c_k cos(2*pi*f*(k - mid))
        mid = (self.n_taps - 1) / 2.0
        design = np.cos(2.0 * np.pi * np.outer(freqs, taps - mid))
        residual = design @ coeffs - self._target
        grad = design.T @ residual / n
        return coeffs - self.learning_rate * grad

    def response_error(self, coeffs: np.ndarray) -> float:
        """Relative L2 error of the response against the ideal target."""
        n = self.n_freq
        taps = np.arange(self.n_taps)
        freqs = np.linspace(0.0, 0.5, n)
        mid = (self.n_taps - 1) / 2.0
        design = np.cos(2.0 * np.pi * np.outer(freqs, taps - mid))
        resp = design @ coeffs
        return float(np.linalg.norm(resp - self._target) / np.linalg.norm(self._target))

    def solve(self) -> list[np.ndarray]:
        """All iterates, ``iterations + 1`` entries including the start."""
        coeffs = self.initial_coefficients()
        out = [coeffs]
        for _ in range(self.iterations):
            coeffs = self.refine(coeffs)
            out.append(coeffs)
        return out

    @staticmethod
    def coefficient_error(predicted: np.ndarray, candidate: np.ndarray,
                          _reference=None) -> float:
        """Validator: relative response-space distance between two iterates.

        Used as the speculation spec's validator — the programmer-defined
        comparison criterion of §II-A point (4).
        """
        a = frequency_response(predicted)
        b = frequency_response(candidate)
        denom = float(np.linalg.norm(b))
        if denom == 0.0:
            return 0.0
        return float(np.linalg.norm(a - b) / denom)

"""One-call runner for the filter application experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.filterapp.iterative import FilterDesignProblem
from repro.filterapp.pipeline import FilterConfig, FilterPipeline
from repro.iomodels import ArrivalModel, DiskModel
from repro.platforms import Platform, get_platform
from repro.sim.rng import make_rng
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

__all__ = ["FilterRunReport", "run_filter_experiment"]


@dataclass
class FilterRunReport:
    """Metrics from one speculative-filtering run."""

    outcome: str
    avg_latency: float
    completion_time: float
    latencies: np.ndarray
    arrivals: np.ndarray
    response_error: float
    rollbacks: int
    speculations: int
    output_ok: bool


def run_filter_experiment(
    *,
    n_blocks: int = 64,
    block_samples: int = 4096,
    iterations: int = 24,
    speculative: bool = True,
    step: int = 2,
    verification: str = "every_k",
    verify_k: int = 4,
    tolerance: float = 0.02,
    policy: str = "balanced",
    platform: str | Platform = "x86",
    workers: int | None = None,
    io: ArrivalModel | None = None,
    seed: int = 0,
) -> FilterRunReport:
    """Run the Fig. 1 filtering application on the simulated executor.

    The input stream is band-limited noise plus an out-of-band tone, so the
    designed low-pass filter has real work to do; correctness is checked by
    re-filtering sequentially with the committed coefficients.
    """
    rng = make_rng(seed)
    problem = FilterDesignProblem(iterations=iterations)
    config = FilterConfig(
        speculative=speculative, step=step, verification=verification,
        verify_k=verify_k, tolerance=tolerance,
    )
    plat = get_platform(platform) if isinstance(platform, str) else platform
    io_model = io if io is not None else DiskModel(per_block_us=40.0)

    n = n_blocks * block_samples
    t = np.arange(n)
    signal = (
        np.sin(2 * np.pi * 0.05 * t)          # in-band tone
        + 0.7 * np.sin(2 * np.pi * 0.37 * t)  # out-of-band tone
        + 0.3 * rng.standard_normal(n)
    )
    blocks = signal.reshape(n_blocks, block_samples)

    runtime = Runtime()
    executor = SimulatedExecutor(runtime, plat, policy=policy, workers=workers)
    pipeline = FilterPipeline(runtime, problem, config, n_blocks)
    arrivals = io_model.arrival_times(n_blocks, rng)
    for index, when in enumerate(arrivals):
        executor.sim.schedule_at(
            float(when), lambda i=index: pipeline.feed_block(i, blocks[i])
        )
    end = executor.run()

    valid = pipeline.valid_versions()
    latencies = pipeline.collector.latencies(valid)
    stats = pipeline.manager.stats if pipeline.manager else None
    ok = pipeline.verify_output()
    if not ok:
        raise ExperimentError("filter output failed verification")
    return FilterRunReport(
        outcome=("non_speculative" if pipeline.manager is None
                 else pipeline.manager.outcome),
        avg_latency=float(latencies.mean()),
        completion_time=float(end),
        latencies=latencies,
        arrivals=pipeline.collector.arrivals(),
        response_error=pipeline.result_quality(),
        rollbacks=stats.rollbacks if stats else 0,
        speculations=stats.speculations if stats else 0,
        output_ok=ok,
    )

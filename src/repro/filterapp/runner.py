"""One-call runner for the filter application experiments.

Registered as the ``"filter"`` job kind (see
:mod:`repro.experiments.jobs`): takes the unified
:class:`~repro.experiments.config.RunConfig` and returns the unified
:class:`~repro.experiments.jobs.RunReport`. Filter-specific scalars
(``response_error``, ``output_ok``, ``rollbacks``, ``speculations``)
ride in ``report.extras``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ExperimentError
from repro.experiments.config import RunConfig
from repro.experiments.jobs import AppResult, JobResources, RunReport, register_job
from repro.filterapp.iterative import FilterDesignProblem
from repro.filterapp.pipeline import FilterConfig, FilterPipeline
from repro.iomodels import ArrivalModel, DiskModel, SocketModel
from repro.obs.anomaly import scan_run
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.platforms import get_platform
from repro.sim.rng import make_rng
from repro.sim.trace import TraceRecorder
from repro.sre.executor_sim import SimulatedExecutor
from repro.sre.runtime import Runtime

__all__ = ["run_filter_experiment"]


def _resolve_io(io) -> ArrivalModel:
    if isinstance(io, ArrivalModel):
        return io
    name = str(io).lower()
    if name == "disk":
        return DiskModel(per_block_us=40.0)
    if name == "socket":
        return SocketModel()
    raise ExperimentError(
        f"unknown io model {io!r} for the filter app; choose 'disk' or "
        "'socket' (io='live' streams bytes — huffman only)")


def run_filter_experiment(
    config: RunConfig,
    *,
    metrics: MetricsRegistry | None = None,
    decisions: object | None = None,
    resources: JobResources | None = None,
) -> RunReport:
    """Run the Fig. 1 filtering application on the simulated executor.

    The input stream is band-limited noise plus an out-of-band tone, so the
    designed low-pass filter has real work to do; correctness is checked by
    re-filtering sequentially with the committed coefficients. Use
    ``RunConfig.for_app("filter", ...)`` to get the app's conventional
    geometry defaults.
    """
    if not isinstance(config, RunConfig):
        raise ExperimentError(
            f"config must be a RunConfig, got {type(config).__name__} — "
            "bare keywords are no longer accepted")
    cfg = config
    if cfg.app != "filter":
        raise ExperimentError(
            f"run_filter_experiment got config.app={cfg.app!r}; dispatch "
            "other apps through repro.experiments.jobs.run_job")
    if cfg.executor != "sim":
        raise ExperimentError(
            "the filter job runs on the simulated executor only (its task "
            "closures are not picklable); use executor='sim'")
    n_blocks = cfg.n_blocks if cfg.n_blocks is not None else 64
    rng = make_rng(cfg.seed)
    problem = FilterDesignProblem(iterations=cfg.iterations)
    fconfig = FilterConfig(
        speculative=cfg.speculative, step=cfg.step,
        verification=cfg.verification, verify_k=cfg.verify_k,
        tolerance=cfg.tolerance,
    )
    plat = get_platform(cfg.platform) if isinstance(cfg.platform, str) else cfg.platform
    io_model = _resolve_io(cfg.io)

    n = n_blocks * cfg.block_samples
    t = np.arange(n)
    signal = (
        np.sin(2 * np.pi * 0.05 * t)          # in-band tone
        + 0.7 * np.sin(2 * np.pi * 0.37 * t)  # out-of-band tone
        + 0.3 * rng.standard_normal(n)
    )
    blocks = signal.reshape(n_blocks, cfg.block_samples)

    registry = metrics if metrics is not None else MetricsRegistry()
    events = EventLog(capacity=cfg.events_capacity, path=cfg.events_out,
                      enabled=cfg.events,
                      meta={"app": "filter", "run_config": cfg.to_dict()})
    if resources is not None and resources.trace is not None:
        # Served job: every event of this run joins the submit's trace.
        events.set_trace_context(resources.trace)
    runtime = Runtime(
        trace=TraceRecorder(enabled=cfg.trace),
        metrics=registry,
        events=events,
        depth_first=cfg.depth_first,
        control_first=cfg.control_first,
        decisions=decisions,
    )
    try:
        executor = SimulatedExecutor(runtime, plat, policy=cfg.policy,
                                     workers=cfg.workers)
        pipeline = FilterPipeline(runtime, problem, fconfig, n_blocks)
        arrivals = io_model.arrival_times(n_blocks, rng)
        for index, when in enumerate(arrivals):
            executor.sim.schedule_at(
                float(when), lambda i=index: pipeline.feed_block(i, blocks[i])
            )
        end = executor.run()

        valid = pipeline.valid_versions()
        latencies = pipeline.collector.latencies(valid)
        stats = pipeline.manager.stats if pipeline.manager else None
        ok = pipeline.verify_output()
        if not ok:
            raise ExperimentError("filter output failed verification")
        output_sha = hashlib.sha256(pipeline.output().tobytes()).hexdigest()
        run_warnings = scan_run(events, registry)
        if cfg.events:
            events.emit(
                "run_result",
                outcome=("non_speculative" if pipeline.manager is None
                         else pipeline.manager.outcome),
                output_sha256=output_sha,
                roundtrip_ok=ok,
            )
    finally:
        events.close()

    outcome = ("non_speculative" if pipeline.manager is None
               else pipeline.manager.outcome)
    run_label = cfg.label or (
        f"filter/{plat.name}/{cfg.policy}"
        + ("" if cfg.speculative else "/nonspec"))
    return RunReport(
        label=run_label,
        result=AppResult(
            outcome=outcome,
            latencies=latencies,
            arrivals=pipeline.collector.arrivals(),
            completion_time=float(end),
        ),
        summary=None,
        utilisation=executor.utilisation(),
        roundtrip_ok=ok,
        config=fconfig,
        platform_name=plat.name,
        policy=cfg.policy,
        workers=cfg.workers if cfg.workers is not None else plat.default_workers,
        app="filter",
        trace=runtime.trace if cfg.trace else None,
        metrics=registry,
        run_config=cfg,
        events=events if cfg.events else None,
        warnings=run_warnings,
        output_sha256=output_sha,
        extras={
            "response_error": pipeline.result_quality(),
            "rollbacks": stats.rollbacks if stats else 0,
            "speculations": stats.speculations if stats else 0,
            "output_ok": ok,
        },
    )


register_job("filter", run_filter_experiment)

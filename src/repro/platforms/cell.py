"""Cell Broadband Engine platform model.

Differences from x86 that matter to the paper's results (§III-A, §V-B):

* **Local stores, not caches** — every task's inputs are DMA-transferred to
  the SPE before it can start; :meth:`transfer_time` models that latency.
* **Multiple buffering** — the runtime overlays four tasks' worth of
  transfers per local store, i.e. the dispatcher assigns work up to four
  tasks ahead per worker (``prefetch_depth=4``). This is the mechanism
  behind the paper's Cell-specific finding: the deep dispatch queue always
  holds some non-speculative task, so the *conservative* policy almost never
  speculates and performs poorly (Fig. 4).
* **32 KB task memory cap** — forcing the 16:1 reduce and offset ratios the
  paper uses on Cell.
* SPE scalar task code runs somewhat slower than the Opteron cores for this
  byte-granular workload; modelled as a uniform speed factor.
"""

from __future__ import annotations

from repro.platforms.base import Platform
from repro.platforms.costmodel import KindCost
from repro.platforms.localstore import LocalStore
from repro.platforms.x86 import X86_COSTS
from repro.sre.task import Task

__all__ = ["CellPlatform"]


class CellPlatform(Platform):
    """Cell BE blade model (16 workers, 4-deep multiple buffering)."""

    #: DMA setup latency per transfer (µs).
    DMA_BASE_US = 2.0
    #: DMA per-byte cost (µs/B) — ~25.6 GB/s EIB shared across units gives
    #: an effective per-task rate in this order of magnitude.
    DMA_PER_BYTE_US = 0.002

    def __init__(self, *, workers: int = 16, speed: float = 1.4, slots: int = 4) -> None:
        store = LocalStore(capacity=256 * 1024, slots=slots)
        cost_model = X86_COSTS.with_speed(speed)
        # Byte-granular histogramming is disproportionately slow on the SPU:
        # there are no scalar byte loads/stores, so per-byte table increments
        # serialise through shuffle/rotate sequences. The first pass is
        # therefore a far larger share of the run than on x86 — which is
        # what lets multiple buffering keep conservative workers saturated
        # with natural (count) work and starve speculation (Fig. 4).
        cost_model.kinds["count"] = KindCost(base=5.0, per_byte=0.03)
        super().__init__(
            name="cell",
            cost_model=cost_model,
            default_workers=workers,
            prefetch_depth=slots,
            max_task_bytes=store.max_task_bytes,
        )
        self.local_store = store

    def transfer_time(self, task: Task) -> float:
        nbytes = task.cost_hint.get("bytes", 0.0)
        return self.DMA_BASE_US + self.DMA_PER_BYTE_US * nbytes

"""Platform interface consumed by the simulated executor."""

from __future__ import annotations

from repro.errors import PlatformError
from repro.platforms.costmodel import CostModel
from repro.sre.task import Task

__all__ = ["Platform"]


class Platform:
    """Execution platform model.

    Attributes:
        name: platform identifier.
        cost_model: per-kind service-time model.
        default_workers: worker-thread count the paper used (16 on both).
        prefetch_depth: tasks buffered per worker. 1 means dispatch happens
            only when a worker goes idle (x86); the Cell overlays four
            tasks' worth of transfers per local store (§III-A), so its
            dispatcher assigns work several tasks ahead.
        max_task_bytes: task memory cap (None = unlimited). The Cell's
            multiple buffering limits task memory to 32 KB; pipeline
            configurations validate their block sizes against this.
    """

    def __init__(
        self,
        name: str,
        cost_model: CostModel,
        *,
        default_workers: int = 16,
        prefetch_depth: int = 1,
        max_task_bytes: int | None = None,
    ) -> None:
        if prefetch_depth < 1:
            raise PlatformError("prefetch_depth must be >= 1")
        if default_workers < 1:
            raise PlatformError("default_workers must be >= 1")
        self.name = name
        self.cost_model = cost_model
        self.default_workers = default_workers
        self.prefetch_depth = prefetch_depth
        self.max_task_bytes = max_task_bytes

    def service_time(self, task: Task) -> float:
        """Computation time of ``task`` on one worker, in µs."""
        return self.cost_model.service_time(task)

    def transfer_time(self, task: Task) -> float:
        """Input-transfer (DMA) latency before ``task`` may start, in µs.

        Zero on shared-memory platforms; the Cell overrides this.
        """
        return 0.0

    def validate_task(self, task: Task) -> None:
        """Reject tasks whose working set exceeds the platform's cap."""
        if self.max_task_bytes is not None:
            nbytes = task.cost_hint.get("bytes", 0)
            if nbytes > self.max_task_bytes:
                raise PlatformError(
                    f"task {task.name!r} needs {nbytes} B but {self.name} "
                    f"limits task memory to {self.max_task_bytes} B"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Platform {self.name} workers={self.default_workers} depth={self.prefetch_depth}>"

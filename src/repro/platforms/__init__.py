"""Platform models — analytic cost models standing in for real hardware.

The paper evaluates on an 8×quad-core Opteron x86 system and a Cell BE
blade. We cannot run on those (nor would wall-clock Python timings transfer),
so each platform is an analytic model: per-task-kind service times, data
transfer (DMA) latency, and the dispatch structure that matters to the
paper's findings — the Cell's 4-deep multiple buffering and 32 KB task
memory cap (§III-A). See DESIGN.md §2 for the substitution rationale.
"""

from repro.platforms.base import Platform
from repro.platforms.costmodel import CostModel, KindCost
from repro.platforms.localstore import LocalStore
from repro.platforms.x86 import X86Platform
from repro.platforms.cell import CellPlatform

__all__ = [
    "Platform",
    "CostModel",
    "KindCost",
    "LocalStore",
    "X86Platform",
    "CellPlatform",
    "get_platform",
]


def get_platform(name: str, **overrides) -> Platform:
    """Instantiate a platform by name (``"x86"`` or ``"cell"``)."""
    name = name.lower()
    if name == "x86":
        return X86Platform(**overrides)
    if name == "cell":
        return CellPlatform(**overrides)
    from repro.errors import PlatformError

    raise PlatformError(f"unknown platform {name!r}; choose 'x86' or 'cell'")

"""Cell SPE local-store model.

Each Cell synergistic processing element owns a 256 KB software-managed
local store rather than a cache (§III-A). The runtime technique of multiple
buffering overlays several tasks' worth of transfers per store; with four
slots, each task's working set is limited to 32 KB.

:class:`LocalStore` is a small allocator used by the Cell platform and its
tests to *validate* that a task mix actually fits — it does not move bytes
(the simulation carries real data in host memory), it enforces the paper's
capacity discipline.
"""

from __future__ import annotations

from repro.errors import PlatformError

__all__ = ["LocalStore"]


class LocalStore:
    """A fixed-capacity slot allocator for one SPE.

    Args:
        capacity: total bytes (256 KB on the Cell BE).
        slots: multiple-buffering depth; each slot may hold one task's
            working set of at most ``capacity // (slots * 2)`` bytes — half
            the slot budget is reserved for code+stack+output, matching the
            paper's 32 KB task-memory figure for a 256 KB store with four
            task buffers.
    """

    def __init__(self, capacity: int = 256 * 1024, slots: int = 4) -> None:
        if capacity <= 0 or slots <= 0:
            raise PlatformError("local store capacity and slots must be positive")
        self.capacity = capacity
        self.slots = slots
        self.max_task_bytes = capacity // (slots * 2)
        self._held: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self._held.values())

    @property
    def free_slots(self) -> int:
        return self.slots - len(self._held)

    def reserve(self, owner: str, nbytes: int) -> None:
        """Claim a slot for a task's working set.

        Raises:
            PlatformError: when the task exceeds the per-task cap or no
                slot is free — both conditions are configuration errors in
                the pipeline, not recoverable runtime states.
        """
        if nbytes > self.max_task_bytes:
            raise PlatformError(
                f"task {owner!r}: {nbytes} B exceeds per-task cap "
                f"{self.max_task_bytes} B"
            )
        if owner in self._held:
            raise PlatformError(f"task {owner!r} already holds a slot")
        if self.free_slots == 0:
            raise PlatformError("no free local-store slot")
        self._held[owner] = nbytes

    def release(self, owner: str) -> None:
        """Free a task's slot."""
        if owner not in self._held:
            raise PlatformError(f"task {owner!r} holds no slot")
        del self._held[owner]

"""x86 shared-memory CMP platform model.

Models the paper's 8×Quad-Core Opteron 8356 testbed: one polling worker
thread per CPU, shared memory (no transfer latency), dispatch when a worker
goes idle (prefetch depth 1). The cost table is calibrated so a
1024-block × 4 KB run lands in the paper's tens-of-milliseconds regime with
encode dominating — Huffman's parallel second pass is the bulk of the work
and the serial tree build is the bottleneck the paper speculates past.
"""

from __future__ import annotations

from repro.platforms.base import Platform
from repro.platforms.costmodel import CostModel, KindCost

__all__ = ["X86Platform", "X86_COSTS"]

#: Calibrated per-kind costs (µs). See EXPERIMENTS.md "Calibration".
X86_COSTS = CostModel(
    kinds={
        # First pass: histogram of a data block (~38 µs / 4 KB block).
        "count": KindCost(base=5.0, per_byte=0.008),
        # Histogram merge; entries = 256 × (fan-in + 1).
        "reduce": KindCost(base=4.0, per_entry=0.004),
        # Serial Huffman-tree build over the 256-entry histogram.
        "tree": KindCost(base=40.0, per_entry=0.2),
        # Offset chain link; units = encode fan-out it feeds.
        "offset": KindCost(base=3.0, per_unit=0.5),
        # Second pass: variable-length encode (~420 µs / 4 KB block).
        "encode": KindCost(base=10.0, per_byte=0.1),
        # Tolerance check: 256 multiply-accumulates ("simple, very quick").
        "check": KindCost(base=4.0, per_entry=0.004),
        # Graph plumbing.
        "source": KindCost(base=0.5),
        "store": KindCost(base=1.0),
        "wait": KindCost(base=0.5),
        # Filter application (Fig. 1): serial refinement steps, parallel
        # per-block FIR filtering, cheap coefficient hand-off.
        "iterate": KindCost(base=120.0, per_entry=0.01),
        "filter": KindCost(base=10.0, per_unit=0.1),
        "predict": KindCost(base=15.0),
        # k-means application: nearest-centroid assignment per block.
        "assign": KindCost(base=10.0, per_unit=0.12),
    },
    default=KindCost(base=10.0),
)


class X86Platform(Platform):
    """The Opteron CMP model (16 worker threads by default, as in §V-A)."""

    def __init__(self, *, workers: int = 16, speed: float = 1.0) -> None:
        super().__init__(
            name="x86",
            cost_model=X86_COSTS.with_speed(speed),
            default_workers=workers,
            prefetch_depth=1,
            max_task_bytes=None,
        )

"""Linear per-kind cost models.

Each task kind has an affine cost in its cost hints:

    service = (base + per_byte·bytes + per_entry·entries + per_unit·units) · speed

Hints are set by the application when it creates tasks (e.g. a ``count``
task carries ``{"bytes": 4096}``; a ``reduce`` carries
``{"entries": 256 * fan_in}``). The constants are *calibrated to reproduce
the paper's curve shapes and magnitudes*, not measured on the original
hardware — see EXPERIMENTS.md for the calibration notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import PlatformError
from repro.sre.task import Task

__all__ = ["KindCost", "CostModel"]


@dataclass(frozen=True)
class KindCost:
    """Affine cost coefficients for one task kind (times in µs)."""

    base: float = 0.0
    per_byte: float = 0.0
    per_entry: float = 0.0
    per_unit: float = 0.0

    def evaluate(self, hints: Mapping[str, float]) -> float:
        return (
            self.base
            + self.per_byte * hints.get("bytes", 0.0)
            + self.per_entry * hints.get("entries", 0.0)
            + self.per_unit * hints.get("units", 0.0)
        )


@dataclass
class CostModel:
    """A per-kind cost table with a global speed multiplier.

    Unknown kinds fall back to ``default`` — deliberately non-raising so
    user-defined task kinds work out of the box, but tests pin the known
    kinds so regressions in hint wiring are caught.
    """

    kinds: dict[str, KindCost] = field(default_factory=dict)
    default: KindCost = field(default_factory=lambda: KindCost(base=10.0))
    speed: float = 1.0

    def service_time(self, task: Task) -> float:
        cost = self.kinds.get(task.kind, self.default)
        value = cost.evaluate(task.cost_hint) * self.speed
        if value < 0:
            raise PlatformError(
                f"negative service time for task {task.name!r} ({value})"
            )
        return value

    def with_speed(self, speed: float) -> "CostModel":
        """A copy of this model scaled by ``speed`` (>1 = slower)."""
        return CostModel(kinds=dict(self.kinds), default=self.default, speed=speed)

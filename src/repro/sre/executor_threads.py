"""Threaded executor — the SRE on real OS threads and wall-clock time.

One polling worker per thread, exactly as the paper's x86 back-end runs one
polling thread per CPU (§III-A). The runtime structure (graph, queues,
policies, speculation, rollback) is identical to the simulated executor;
only the clock and the dispatch loop differ.

Honesty note (see DESIGN.md §2): CPython's GIL serialises pure-Python task
bodies, so wall-clock speedups here understate what the paper measured on
real hardware. NumPy kernels release the GIL, so histogram/encode tasks see
some genuine overlap. The threaded executor exists to demonstrate that the
runtime is a real runtime — the latency *figures* are reproduced on the
simulated executor.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.errors import SchedulingError
from repro.sre.policies import DispatchPolicy, get_policy
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor:
    """Runs a :class:`~repro.sre.runtime.Runtime` on a thread pool.

    Usage::

        ex = ThreadedExecutor(runtime, workers=4, policy="balanced")
        ex.start()
        ...deliver external inputs (possibly over time)...
        ex.close_input()
        ex.wait_idle()
        ex.shutdown()

    or simply ``ex.run()`` when all inputs are already delivered.
    """

    #: Poll interval for the worker wait loop (seconds). The paper's workers
    #: poll for assigned tasks; we wait on a condition with a timeout so
    #: shutdown is prompt even if a notify is missed.
    POLL_S = 0.02

    def __init__(
        self,
        runtime: Runtime,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int = 4,
    ) -> None:
        if workers < 1:
            raise SchedulingError("need at least one worker")
        self.runtime = runtime
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.policy.reset()
        self.n_workers = workers
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._stop = False
        self._inflight = 0
        self._input_open = True
        self._started = False
        self._t0 = time.perf_counter()
        runtime.set_clock(self._clock)
        runtime.add_ready_listener(self._on_ready)

    # ------------------------------------------------------------------
    # clock: wall time in µs since executor construction
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads."""
        if self._started:
            raise SchedulingError("executor already started")
        self._started = True
        for i in range(self.n_workers):
            t = threading.Thread(target=self._worker_loop, name=f"sre-worker-{i}", daemon=True)
            self._threads.append(t)
            t.start()

    def deliver(self, task: Task, port: str, value: Any) -> None:
        """Thread-safe external input injection."""
        with self._cond:
            self.runtime.deliver_external(task, port, value)

    def submit(self, fn, *args, **kwargs):
        """Run a runtime-mutating callable under the executor lock."""
        with self._cond:
            return fn(*args, **kwargs)

    def close_input(self) -> None:
        """Declare that no further external inputs will arrive."""
        with self._cond:
            self._input_open = False
            self._cond.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until input is closed and all work has drained.

        Returns False on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                idle = (
                    not self._input_open
                    and self._inflight == 0
                    and not self.runtime.natural_queue
                    and not self.runtime.speculative_queue
                )
                if idle:
                    return True
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(self.POLL_S if remaining is None else min(self.POLL_S, remaining))

    def shutdown(self) -> None:
        """Stop and join the workers."""
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for t in self._threads:
            t.join()
        self._threads.clear()

    def run(self, timeout: float | None = None) -> float:
        """Convenience: start, close input, drain, shut down.

        Returns the wall-clock finish time (µs on the executor clock).
        """
        self.start()
        self.close_input()
        ok = self.wait_idle(timeout=timeout)
        self.shutdown()
        if not ok:
            raise SchedulingError(f"executor did not drain within {timeout}s")
        return self.now

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    def _on_ready(self, task: Task) -> None:
        # May be called with or without the lock held (the RLock makes the
        # re-acquisition free when a worker triggered the readiness).
        with self._cond:
            self._cond.notify_all()

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                task = None
                while not self._stop:
                    task = self.policy.select(
                        self.runtime.natural_queue, self.runtime.speculative_queue
                    )
                    if task is not None:
                        break
                    self._cond.wait(self.POLL_S)
                if self._stop and task is None:
                    return
                self.runtime.begin_task(task)
                self.policy.notify_started(task)
                self._inflight += 1
            # Compute outside the lock so NumPy kernels overlap.
            if task.abort_requested:
                outputs: dict[str, Any] = {}
            else:
                outputs = task.run()
            with self._cond:
                self.runtime.finish_task(task, outputs, precomputed=True)
                self.policy.notify_finished(task)
                self._inflight -= 1
                self._cond.notify_all()

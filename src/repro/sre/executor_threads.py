"""Threaded executor — the SRE on real OS threads and wall-clock time.

One polling worker per thread, exactly as the paper's x86 back-end runs one
polling thread per CPU (§III-A). The runtime structure (graph, queues,
policies, speculation, rollback) is identical to the simulated executor;
only the clock and the dispatch loop differ.

Honesty note (see DESIGN.md §2): CPython's GIL serialises pure-Python task
bodies, so wall-clock speedups here understate what the paper measured on
real hardware. NumPy kernels release the GIL, so histogram/encode tasks see
some genuine overlap; for pure-Python kernels use
:class:`~repro.sre.executor_procs.ProcessExecutor`, which ships task bodies
to a process pool and escapes the GIL entirely. The threaded executor
exists to demonstrate that the runtime is a real runtime — the latency
*figures* are reproduced on the simulated executor.
"""

from __future__ import annotations

from typing import Any

from repro.sre.executor_base import LiveExecutor
from repro.sre.task import Task

__all__ = ["ThreadedExecutor"]


class ThreadedExecutor(LiveExecutor):
    """Runs a :class:`~repro.sre.runtime.Runtime` on a thread pool.

    All lifecycle (start / deliver / close_input / wait_idle / shutdown,
    or the one-shot ``run()``) lives in :class:`LiveExecutor`; this class
    only says *where* a task body runs: inline on the dispatching worker
    thread, inside this process.
    """

    def _execute(self, wid: int, task: Task) -> dict[str, Any]:
        return task.run()


from repro.sre.registry import register_executor  # noqa: E402

register_executor("threads", ThreadedExecutor)

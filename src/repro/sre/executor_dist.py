"""Distributed executor: the process back-end's coordinator, with its
worker pool on the far side of a TCP connection.

:class:`DistExecutor` *is* :class:`~repro.sre.executor_procs.ProcessExecutor`
— same batching, work-stealing, retry/quarantine and streaming-reply
machinery — constructed with an injected supervisor whose seats live in a
remote ``repro worker-pool`` daemon (:mod:`repro.sre.worker_pool`).
:class:`RemotePool` duck-types the ``WorkerSupervisor`` seam
(``send``/``recv_reply``/``note_lost``/``respawn``/``abort_flags``/...)
over :mod:`repro.serve.wire` length-prefixed JSON frames, so the
coordinator cannot tell pipes from sockets.

What changes at the seam:

* **Transport** — payload frames ride base64 in ``batch`` frames; the
  streamed one-reply-per-payload protocol is preserved verbatim
  (``seq``/``status``/``payload_b64``), so per-payload deadlines and
  head-of-line behaviour match the local back-end.
* **shm** — shared memory cannot cross hosts, so the
  :class:`~repro.sre.shm.BlockRef` seam is re-keyed through a chunked
  block push: before a batch ships, every referenced segment is
  materialised on the pool (attached natively when the pool shares the
  coordinator's host — still zero-copy — or created and filled through
  ``chunk`` ops otherwise), after which the refs resolve remotely exactly
  as they do locally.
* **Crash/hang recovery** — the supervisor's respawn state machine
  generalises to *reconnect with a bumped incarnation*: one seat
  connection carries exactly one worker incarnation, any
  :class:`~repro.errors.WorkerLost` in either direction poisons the
  connection, and ``respawn`` opens a fresh one (the pool recycles the
  seat's worker if it held in-flight state). Stale frames die with the
  old socket, which is what keeps reply sequences unambiguous.
* **Abort flags** — a write to ``abort_flags[wid]`` becomes a control-op
  round trip on value *transitions*; the raise path is timed into the
  ``dist_abort_rtt_us`` histogram (the cross-host cost of tolerant
  speculation's destroy signal).
* **Pool loss** — a heartbeat thread probes the control connection; if
  the pool dies wholesale every seat degrades and the run completes
  coordinator-inline, same contract as a seat exhausting its respawn
  budget.

See ``docs/distributed.md`` for the wire protocol and a worked
post-mortem of a killed remote worker.
"""

from __future__ import annotations

import pickle
import socket
import threading
import time
from typing import Any

from repro.errors import SchedulingError, SegmentGone, TransportError, WorkerLost
from repro.obs.metrics import MetricsRegistry
from repro.serve.wire import (TRACEPARENT_KEY, decode_blob, encode_blob,
                              recv_frame, send_frame)
from repro.sre import shm
from repro.sre.executor_procs import (DEFAULT_BATCH_BYTES, DEFAULT_BATCH_MAX,
                                      DEFAULT_DISPATCH_TIMEOUT_S,
                                      DEFAULT_HARVEST_TIMEOUT_S,
                                      DEFAULT_PAYLOAD_BUDGET, ProcessExecutor)
from repro.sre.registry import register_executor
from repro.sre.runtime import Runtime
from repro.sre.task import PAYLOAD_PROTOCOL
from repro.testing.faults import FaultPlan

__all__ = ["RemotePool", "DistExecutor"]

#: abort relays are small fixed-size control ops — µs-scale on loopback,
#: ms-scale across real links; buckets cover both regimes.
_ABORT_RTT_BUCKETS = (50.0, 100.0, 200.0, 500.0, 1e3, 2e3, 5e3,
                      1e4, 5e4, 1e5, 1e6)


def _close(sock: socket.socket | None) -> None:
    if sock is None:
        return
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:  # pragma: no cover - defensive
        pass


class _RemoteAbortFlags:
    """``abort_flags`` shim: looks like the supervisor's shared byte
    array, but a write that *changes* a seat's value relays it to the
    pool as an ``abort`` control op (reads stay local — the coordinator
    is the only writer, so its shadow copy is authoritative)."""

    def __init__(self, pool: "RemotePool") -> None:
        self._pool = pool
        self._values = [0] * pool.n_workers

    def __getitem__(self, wid: int) -> int:
        return self._values[wid]

    def __setitem__(self, wid: int, value: int) -> None:
        value = 1 if value else 0
        if self._values[wid] == value:
            return  # no transition: nothing to relay
        self._values[wid] = value
        self._pool._send_abort(wid, value)

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values = [0] * len(self._values)


class _Seat:
    """Coordinator-side per-seat connection state. Each seat is driven by
    exactly one coordinator thread (ProcessExecutor's per-seat dispatch
    loop), so no lock is needed beyond the pool-wide ones."""

    __slots__ = ("wid", "sock", "sent", "recvd", "incarnation",
                 "respawns", "degraded")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.sock: socket.socket | None = None
        self.sent = 0   # the reply stream restarts with each incarnation
        self.recvd = 0
        self.incarnation = 0
        self.respawns = 0
        self.degraded = False


class RemotePool:
    """A remote ``repro worker-pool`` session, speaking the
    ``WorkerSupervisor`` interface.

    Args:
        address: ``"host:port"`` of a running pool daemon.
        workers: seats to attach (bounded by the pool's ``max_workers``).
        runtime: the job runtime — crash/respawn events and dist metrics
            land here, and the pool's own snapshot merges in at detach.
        fault_plan: chaos plan shipped to the pool at attach and armed on
            the *remote* workers (``None`` defers to the pool's default).
        dispatch_timeout_s: per-payload reply deadline, enforced on the
            pool side (where hangs are detected) — the coordinator waits
            ``net_margin_s`` longer so the pool's ``lost`` relay wins the
            race against the coordinator's own timeout.
        max_respawns: reconnect budget per seat before it degrades.
        heartbeat_s: control-connection probe interval (0 disables).
        connect_timeout_s: TCP connect/handshake deadline.
        chunk_bytes: block-push granularity for cross-host segments.
    """

    def __init__(
        self,
        address: str,
        *,
        workers: int = 4,
        runtime: Runtime,
        fault_plan: FaultPlan | str | None = None,
        dispatch_timeout_s: float = DEFAULT_DISPATCH_TIMEOUT_S,
        max_respawns: int = 3,
        harvest_timeout_s: float = DEFAULT_HARVEST_TIMEOUT_S,
        heartbeat_s: float = 5.0,
        connect_timeout_s: float = 10.0,
        net_margin_s: float = 2.0,
        chunk_bytes: int = 1 << 20,
    ) -> None:
        host, sep, port = address.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise SchedulingError(
                f"pool address must be 'host:port', got {address!r}")
        self.address = address
        self._host, self._port = host, int(port)
        self.n_workers = workers
        self.fault_plan = FaultPlan.parse(fault_plan)
        self.dispatch_timeout_s = dispatch_timeout_s
        self.max_respawns = max_respawns
        self.harvest_timeout_s = harvest_timeout_s
        self.heartbeat_s = heartbeat_s
        self.connect_timeout_s = connect_timeout_s
        self.net_margin_s = net_margin_s
        self.chunk_bytes = chunk_bytes
        self.runtime = runtime
        self.session: str | None = None
        self.abort_flags = _RemoteAbortFlags(self)
        self._seats = [_Seat(w) for w in range(workers)]
        self._ctl: socket.socket | None = None
        self._ctl_lock = threading.RLock()
        #: pool-wide loss flag: set when the control connection dies
        #: (heartbeat failure, abort-relay failure, detach error). Seats
        #: refuse to reconnect past it and degrade instead.
        self._lost = False
        #: segment name -> True if the pool *created* a copy (chunks must
        #: be pushed for its blocks), False if it attached natively.
        self._pushed_segments: dict[str, bool] = {}
        self._pushed_blocks: set[tuple[str, int]] = set()
        self._push_lock = threading.Lock()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        self._stopped = False
        self._bind_runtime(runtime)

    # ------------------------------------------------------------------
    # runtime binding (metrics live in whatever runtime drives the job)
    # ------------------------------------------------------------------
    def _bind_runtime(self, runtime: Runtime) -> None:
        self.runtime = runtime
        m: MetricsRegistry = runtime.metrics
        self._m_abort_rtt = m.histogram(
            "dist_abort_rtt_us",
            "round-trip of one cross-host abort-flag raise, microseconds",
            buckets=_ABORT_RTT_BUCKETS)
        self._m_heartbeats = m.counter(
            "dist_heartbeats", "pool heartbeat probes", labelnames=("outcome",))
        self._m_seat_lost = m.counter(
            "dist_seat_lost", "seat connections poisoned by a worker loss",
            labelnames=("cause",))
        self._m_reconnects = m.counter(
            "dist_seat_reconnects",
            "seat reconnects with a bumped incarnation (remote respawns)")
        self._m_degraded = m.gauge(
            "dist_seats_degraded",
            "seats fallen back to coordinator-inline execution")
        self._m_batches = m.counter(
            "dist_batches_sent", "batch frames shipped to the pool")
        self._m_replies = m.counter(
            "dist_replies", "streamed per-payload replies received")
        self._m_blocks_pushed = m.counter(
            "dist_blocks_pushed",
            "shared-memory blocks pushed to the pool over the wire")
        self._m_push_bytes = m.counter(
            "dist_block_push_bytes", "bytes of pushed block chunks")
        self._m_segments = m.counter(
            "dist_segments_materialized",
            "segments materialised on the pool",
            labelnames=("mode",))  # native (same-host attach) | copy

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Attach: control connection + one seat connection per worker."""
        ctl = socket.create_connection((self._host, self._port),
                                       timeout=self.connect_timeout_s)
        self._ctl = ctl
        plan = self.fault_plan
        send_frame(ctl, {
            "op": "attach", "workers": self.n_workers,
            "fault": plan.spec() if plan is not None else None,
            "dispatch_timeout_s": self.dispatch_timeout_s,
        })
        reply = recv_frame(ctl)
        if reply is None or not reply.get("ok"):
            err = (reply or {}).get("error", "pool closed the connection")
            _close(ctl)
            self._ctl = None
            raise SchedulingError(
                f"worker pool at {self.address} refused attach: {err}")
        self.session = reply["session"]
        self.runtime.events.emit(
            "remote_pool_attach", pool=self.address, session=self.session,
            workers=self.n_workers, pool_pid=reply.get("pid"))
        for seat in self._seats:
            self._connect_seat(seat)
            if seat.degraded:
                self._degrade(seat, "attach refused")
        if self.heartbeat_s > 0:
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop, name="dist-heartbeat",
                daemon=True)
            self._hb_thread.start()

    def _connect_seat(self, seat: _Seat) -> None:
        sock = socket.create_connection((self._host, self._port),
                                        timeout=self.connect_timeout_s)
        send_frame(sock, {"op": "seat", "session": self.session,
                          "wid": seat.wid,
                          "incarnation": seat.incarnation})
        reply = recv_frame(sock)
        if reply is None:
            _close(sock)
            raise TransportError("pool closed the seat handshake")
        if not reply.get("ok"):
            _close(sock)
            seat.degraded = True  # pool-side seat is out of respawns
            return
        sock.settimeout(None)  # recv_reply applies per-call deadlines
        seat.sock = sock
        seat.sent = 0
        seat.recvd = 0

    def start(self) -> None:
        self.connect()

    def stop(self) -> None:
        self.detach()

    def detach(self) -> None:
        """Tear the session down and fold the pool's metrics/events home."""
        if self._stopped:
            return
        self._stopped = True
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(timeout=self.heartbeat_s + 5.0)
        snapshot = None
        with self._ctl_lock:
            if self._ctl is not None and not self._lost:
                try:
                    # Generous deadline: detach stops every remote worker
                    # and runs the final flush harvest before replying.
                    reply = self._ctl_call(
                        {"op": "detach"},
                        timeout_s=60.0 + self.harvest_timeout_s
                        * self.n_workers)
                    if reply.get("ok") and reply.get("snapshot_b64"):
                        snapshot = pickle.loads(
                            decode_blob(reply["snapshot_b64"]))
                except (TransportError, OSError, pickle.PickleError):
                    self._lost = True
            _close(self._ctl)
            self._ctl = None
        for seat in self._seats:
            _close(seat.sock)
            seat.sock = None
        if snapshot is not None:
            self.runtime.metrics.merge_snapshot(snapshot["metrics"])
            self.runtime.events.merge_remote(self.address,
                                             snapshot["events"])
        self.runtime.events.emit(
            "remote_pool_detach", pool=self.address, session=self.session,
            snapshot=snapshot is not None)

    def rebind(self, runtime: Runtime) -> None:
        """Re-point accounting at a new job's runtime (warm-pool parity)."""
        self._bind_runtime(runtime)
        self.abort_flags.clear()

    def harvest(self) -> None:
        """No-op: remote worker intervals come home in the detach
        snapshot; there is no mid-run flush channel."""

    # -- introspection parity ------------------------------------------
    def alive(self, wid: int) -> bool:
        return not self._seats[wid].degraded

    def pids(self) -> list[int | None]:
        return [None] * self.n_workers  # processes live on the pool host

    def process(self, wid: int) -> None:
        return None

    # ------------------------------------------------------------------
    # dispatch seam
    # ------------------------------------------------------------------
    def send(self, wid: int, frames: list[bytes]) -> None:
        """Ship one batch frame to seat ``wid``'s connection.

        Mirrors ``WorkerSupervisor.send``: raises ``WorkerLost``
        (``"degraded"``/``"crash"``) and stamps the batch with the active
        trace context so pool-side worker events join the job's trace.
        """
        seat = self._seats[wid]
        if self._lost and not seat.degraded:
            self._degrade(seat, "pool lost")
        if seat.degraded or seat.sock is None:
            raise WorkerLost(wid, "degraded")
        try:
            self._push_payload_blocks(frames)
        except (TransportError, OSError):
            raise WorkerLost(wid, "crash") from None
        ctx = self.runtime.events.trace_context
        try:
            send_frame(seat.sock, {
                "op": "batch", "n": len(frames),
                "frames": [encode_blob(f) for f in frames],
                TRACEPARENT_KEY:
                    ctx.to_traceparent() if ctx is not None else None,
            })
        except (TransportError, OSError):
            raise WorkerLost(wid, "crash") from None
        seat.sent += len(frames)
        self._m_batches.inc()

    def recv_reply(self, wid: int, timeout_s: float) -> tuple[str, Any]:
        """Await exactly one streamed per-payload reply from seat ``wid``.

        The pool enforces ``timeout_s`` against the worker and relays the
        loss; the coordinator waits ``net_margin_s`` longer so the relay
        (which names the true cause: crash vs hang vs protocol) wins the
        race. A socket-level timeout here therefore means the *pool side*
        went quiet — surfaced as a hang.
        """
        seat = self._seats[wid]
        if seat.degraded or seat.sock is None:
            raise WorkerLost(wid, "degraded")
        seat.sock.settimeout(timeout_s + self.net_margin_s)
        try:
            reply = recv_frame(seat.sock)
        except TimeoutError:  # before OSError: socket.timeout subclasses it
            raise WorkerLost(wid, "hang") from None
        except TransportError:
            raise WorkerLost(wid, "protocol") from None
        except OSError:
            raise WorkerLost(wid, "crash") from None
        if reply is None:
            raise WorkerLost(wid, "crash")
        if "lost" in reply:
            # The pool detected the loss first and already respawned (or
            # degraded) its local worker; our reconnect syncs with it.
            raise WorkerLost(wid, str(reply["lost"]),
                             exitcode=reply.get("exitcode"))
        seq = reply.get("seq")
        if seq != seat.recvd + 1 or seq > seat.sent:
            raise WorkerLost(wid, "protocol")
        seat.recvd = seq
        self._m_replies.inc()
        try:
            payload = pickle.loads(decode_blob(reply["payload_b64"]))
        except Exception:  # noqa: BLE001 - undecodable reply == protocol loss
            raise WorkerLost(wid, "protocol") from None
        return str(reply.get("status")), payload

    # ------------------------------------------------------------------
    # failure handling: one incarnation per connection
    # ------------------------------------------------------------------
    def note_lost(self, wid: int, lost: WorkerLost,
                  inflight: list[str]) -> int:
        """Account a loss and poison the seat connection.

        Closing the socket is the remote analogue of "guarantees the
        process is dead": whatever the old incarnation still had in
        flight can never reach the reply stream again.
        """
        seat = self._seats[wid]
        _close(seat.sock)
        seat.sock = None
        self._m_seat_lost.labels(cause=lost.cause).inc()
        return self.runtime.events.emit(
            "worker_crash", worker=wid, reason=lost.cause,
            exitcode=lost.exitcode, incarnation=seat.incarnation,
            inflight=len(inflight), tasks=inflight[:8] or None,
            pool=self.address)

    def respawn(self, wid: int) -> bool:
        """Reconnect seat ``wid`` with a bumped incarnation.

        The pool recycles its local worker if the dead connection left
        in-flight state behind, so a successful reconnect always lands on
        a clean reply stream. Returns False (and degrades the seat to
        coordinator-inline execution) when the budget is exhausted, the
        pool is lost, or the pool refuses the seat.
        """
        seat = self._seats[wid]
        if seat.degraded:
            return False
        if seat.respawns >= self.max_respawns:
            self._degrade(seat, "respawn budget exhausted")
            return False
        if self._lost:
            self._degrade(seat, "pool lost")
            return False
        seat.respawns += 1
        seat.incarnation += 1
        try:
            self._connect_seat(seat)
        except (TransportError, OSError):
            self._degrade(seat, "reconnect failed")
            return False
        if seat.degraded or seat.sock is None:
            self._degrade(seat, "pool refused seat")
            return False
        self._m_reconnects.inc()
        self.runtime.events.emit(
            "worker_respawn", worker=wid, incarnation=seat.incarnation,
            respawns=seat.respawns, pool=self.address)
        return True

    def _degrade(self, seat: _Seat, why: str) -> None:
        if seat.degraded and seat.sock is None:
            return
        seat.degraded = True
        _close(seat.sock)
        seat.sock = None
        self._m_degraded.inc()
        self.runtime.events.emit("worker_degraded", worker=seat.wid,
                                 reason=why, pool=self.address)

    def _mark_lost(self, why: str) -> None:
        if self._lost:
            return
        self._lost = True
        self.runtime.events.emit("remote_pool_lost", pool=self.address,
                                 session=self.session, reason=why)

    # ------------------------------------------------------------------
    # control channel: heartbeat + abort relay
    # ------------------------------------------------------------------
    def _ctl_call(self, obj: dict, timeout_s: float) -> dict:
        """One control-op round trip. Caller holds ``_ctl_lock``."""
        if self._ctl is None:
            raise TransportError("control connection is closed")
        self._ctl.settimeout(timeout_s)
        send_frame(self._ctl, obj)
        reply = recv_frame(self._ctl)
        if reply is None:
            raise TransportError("pool closed the control connection")
        return reply

    def _send_abort(self, wid: int, value: int) -> None:
        """Relay one abort-flag transition to the pool (cross-host
        destroy propagation). Raises are timed into ``dist_abort_rtt_us``;
        a failed relay marks the pool lost (the flag would otherwise be
        silently ignored and a doomed task would run to completion)."""
        with self._ctl_lock:
            if self._ctl is None or self._lost or self._stopped:
                return
            t0 = time.perf_counter()
            try:
                self._ctl_call({"op": "abort", "wid": wid, "value": value},
                               timeout_s=self.connect_timeout_s)
            except (TransportError, OSError):
                self._mark_lost("abort relay failed")
                return
            if value:
                self._m_abort_rtt.observe(
                    (time.perf_counter() - t0) * 1e6)

    def _heartbeat_loop(self) -> None:
        while not self._hb_stop.wait(timeout=self.heartbeat_s):
            with self._ctl_lock:
                if self._stopped or self._lost or self._ctl is None:
                    return
                try:
                    self._ctl_call({"op": "heartbeat"},
                                   timeout_s=self.connect_timeout_s)
                except (TransportError, OSError):
                    self._m_heartbeats.labels(outcome="lost").inc()
                    self._mark_lost("heartbeat failed")
                    return
            self._m_heartbeats.labels(outcome="ok").inc()

    # ------------------------------------------------------------------
    # block push: the BlockRef seam, re-keyed over the wire
    # ------------------------------------------------------------------
    def _push_payload_blocks(self, frames: list[bytes]) -> None:
        """Materialise every segment/block the batch references on the
        pool before the batch ships, so its refs resolve remotely.

        Same-host pools attach the segment natively (zero bytes moved);
        cross-host pools get a created copy filled by ``chunk`` ops. A
        segment that vanishes mid-push is skipped — the worker's own
        ``segment-gone`` path reruns those payloads inline, exactly as it
        does for a locally-released segment.
        """
        for frame in frames:
            if b"BlockRef" not in frame:
                continue  # cheap negative: no pickled refs inside
            try:
                obj = pickle.loads(frame)
            except Exception:  # noqa: BLE001 - worker will report it
                continue
            for ref in shm.iter_refs(obj):
                self._push_block(ref)

    def _push_block(self, ref: "shm.BlockRef") -> None:
        with self._push_lock:
            if ref.key in self._pushed_blocks:
                return
            created = self._pushed_segments.get(ref.segment)
            if created is None:
                created = self._push_segment(ref.segment)
                if created is None:
                    self._pushed_blocks.add(ref.key)  # gone: worker reruns
                    return
            if not created:  # native same-host attach: nothing to move
                self._pushed_blocks.add(ref.key)
                return
            try:
                data = shm.read_block(ref.segment, ref.offset, ref.length)
            except SegmentGone:
                self._pushed_blocks.add(ref.key)
                return
            for off in range(0, len(data), self.chunk_bytes):
                chunk = data[off:off + self.chunk_bytes]
                with self._ctl_lock:
                    if self._ctl is None or self._lost:
                        return
                    try:
                        self._ctl_call(
                            {"op": "chunk", "segment": ref.segment,
                             "offset": ref.offset + off,
                             "data_b64": encode_blob(chunk)},
                            timeout_s=self.connect_timeout_s)
                    except (TransportError, OSError):
                        self._mark_lost("block push failed")
                        return
                self._m_push_bytes.inc(len(chunk))
            self._m_blocks_pushed.inc()
            self._pushed_blocks.add(ref.key)

    def _push_segment(self, name: str) -> bool | None:
        """Materialise ``name`` on the pool; True=copy, False=native
        attach, None=segment already gone locally."""
        try:
            size = shm.segment_size(name)
        except SegmentGone:
            return None
        with self._ctl_lock:
            if self._ctl is None or self._lost:
                raise TransportError("pool lost")
            reply = self._ctl_call({"op": "segment", "name": name,
                                    "size": size},
                                   timeout_s=self.connect_timeout_s)
        if not reply.get("ok"):
            raise TransportError(
                f"pool refused segment {name!r}: {reply.get('error')}")
        created = bool(reply.get("created"))
        self._pushed_segments[name] = created
        self._m_segments.labels(mode="copy" if created else "native").inc()
        return created


class DistExecutor(ProcessExecutor):
    """The ``"dist"`` back-end: ProcessExecutor over a :class:`RemotePool`.

    Args:
        pool: ``"host:port"`` of a running ``repro worker-pool``.
        fault_plan: shipped to the pool at attach and armed on the remote
            workers — :mod:`repro.testing.faults` maps onto sockets
            verbatim (drop/delay/hang/kill all exercise the reconnect
            path instead of the pipe path).
        heartbeat_s: pool liveness probe interval.
        Everything else: identical to :class:`ProcessExecutor` — same
        policies, batching, stealing, retry/quarantine semantics.
    """

    def __init__(
        self,
        runtime: Runtime,
        *,
        pool: str,
        policy: Any = "conservative",
        workers: int = 4,
        payload_budget: int = DEFAULT_PAYLOAD_BUDGET,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        steal: bool = True,
        dispatch_timeout_s: float = DEFAULT_DISPATCH_TIMEOUT_S,
        max_task_retries: int = 2,
        retry_backoff_s: float = 0.05,
        max_worker_respawns: int = 3,
        harvest_timeout_s: float = DEFAULT_HARVEST_TIMEOUT_S,
        fault_plan: FaultPlan | str | None = None,
        store: "shm.BlockStore | None" = None,
        heartbeat_s: float = 5.0,
    ) -> None:
        remote = RemotePool(
            pool, workers=workers, runtime=runtime, fault_plan=fault_plan,
            dispatch_timeout_s=dispatch_timeout_s,
            max_respawns=max_worker_respawns,
            harvest_timeout_s=harvest_timeout_s, heartbeat_s=heartbeat_s)
        super().__init__(
            runtime, policy=policy, workers=workers,
            payload_budget=payload_budget, batch_max=batch_max,
            batch_bytes=batch_bytes, steal=steal,
            dispatch_timeout_s=dispatch_timeout_s,
            max_task_retries=max_task_retries,
            retry_backoff_s=retry_backoff_s,
            max_worker_respawns=max_worker_respawns,
            harvest_timeout_s=harvest_timeout_s,
            store=store, supervisor=remote)
        self.pool = remote

    def _start_backend(self) -> None:
        self.pool.connect()

    def _stop_backend(self) -> None:
        self.pool.detach()


register_executor("dist", DistExecutor)

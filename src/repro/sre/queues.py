"""Ready queues with the paper's dispatch ordering.

Within one class of work (speculative or natural), the SRE dispatches by
priority: control tasks (value predicting and verification) come first no
matter where they sit in the pipeline, then deeper pipeline stages, with
FCFS breaking ties (paper §III-A). The queue is a lazy-deletion heap so
rollback can remove aborted tasks in O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

from repro.sre.task import Task, TaskState

__all__ = ["ReadyQueue"]


class ReadyQueue:
    """Priority queue over READY tasks.

    Ordering key: control tasks first, then greater depth, then earlier
    enqueue (FCFS). ``depth_first=False`` degrades to pure FCFS — kept for
    the scheduling ablation (DESIGN.md §5).
    """

    def __init__(self, depth_first: bool = True, control_first: bool = True) -> None:
        self.depth_first = depth_first
        #: False strips predict/verify tasks of their priority boost — the
        #: ablation for the paper's "highest priority, no matter where they
        #: are located in the pipeline" design decision.
        self.control_first = control_first
        self._heap: list[tuple[tuple[int, int, int], Task]] = []
        self._enq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def _key(self, task: Task) -> tuple[int, int, int]:
        seq = next(self._enq)
        control = 0 if (task.control and self.control_first) else 1
        if not self.depth_first:
            return (control, 0, seq)
        return (control, -task.depth, seq)

    def push(self, task: Task) -> None:
        heapq.heappush(self._heap, (self._key(task), task))
        task.in_ready_queue = True
        self._live += 1

    def discard_aborted(self, task: Task) -> None:
        """Account for a task aborted while queued (lazy removal).

        No-op if the task already left the queue: a READY task can be
        popped and parked (a worker's DMA staging queue) before it starts,
        and an abort in that window must not decrement the live count a
        second time — that drove ``len()`` negative.
        """
        if task.in_ready_queue:
            task.in_ready_queue = False
            self._live -= 1

    def _skim(self) -> None:
        while self._heap and self._heap[0][1].state is not TaskState.READY:
            heapq.heappop(self._heap)

    def peek(self) -> Task | None:
        """Next dispatchable task without removing it."""
        self._skim()
        return self._heap[0][1] if self._heap else None

    def pop(self) -> Task | None:
        """Remove and return the next dispatchable task (None if empty)."""
        self._skim()
        if not self._heap:
            return None
        _, task = heapq.heappop(self._heap)
        task.in_ready_queue = False
        self._live -= 1
        return task

    def snapshot(self) -> Iterator[Task]:
        """Live tasks in arbitrary order (diagnostics only)."""
        return (t for _, t in self._heap if t.state is TaskState.READY)

"""Advisory side-effect detection for task functions.

The paper (§II-A): "A compiler can also assist in analyzing tasks to detect
potential side-effects, recommending they should not run speculatively."
Python has no compiler pass to hook, but its bytecode is inspectable: this
module walks a task function's code objects (including nested closures) and
flags operations that can leak effects out of the task — global stores,
mutation of closed-over state, attribute/subscript stores on non-local
objects, and calls to well-known impure builtins (I/O, randomness).

The analysis is *advisory and conservative*: it can neither prove purity
(arbitrary calls may do anything) nor track data flow precisely. Findings
are ranked ``definite`` (certainly an effect outside the task) and
``possible`` (mutation whose target may be task-local). The helper
:func:`recommend` turns a report into the paper's recommendation: may this
task run speculatively without an undo routine?
"""

from __future__ import annotations

import dis
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sre.task import Task

__all__ = ["SideEffectFinding", "SideEffectReport", "analyze_side_effects", "recommend"]

#: Builtin / stdlib names whose call is a definite effect.
IMPURE_CALLS = frozenset({
    "print", "open", "input", "exec", "eval",
    "write", "writelines", "flush", "send", "sendall", "recv",
    "remove", "unlink", "mkdir", "rmdir", "rename",
    "seed", "shuffle",
})

#: Opcodes that definitely write state outside the frame.
_DEFINITE_OPS = {"STORE_GLOBAL", "DELETE_GLOBAL", "STORE_DEREF", "DELETE_DEREF"}
#: Opcodes that *may* mutate shared state (no data-flow tracking).
_POSSIBLE_OPS = {"STORE_ATTR", "STORE_SUBSCR", "DELETE_ATTR", "DELETE_SUBSCR"}
#: In-place operators feeding a STORE_* are covered by the store itself.


@dataclass(frozen=True)
class SideEffectFinding:
    """One suspicious operation in a task function."""

    severity: str  # "definite" | "possible"
    operation: str
    detail: str
    line: int | None


@dataclass
class SideEffectReport:
    """Outcome of analysing one callable."""

    target: str
    findings: list[SideEffectFinding] = field(default_factory=list)
    #: analysis could not inspect the callable (C function, builtin, ...).
    opaque: bool = False

    @property
    def definite(self) -> list[SideEffectFinding]:
        return [f for f in self.findings if f.severity == "definite"]

    @property
    def possible(self) -> list[SideEffectFinding]:
        return [f for f in self.findings if f.severity == "possible"]

    @property
    def clean(self) -> bool:
        """No findings at all, and the code was actually inspectable."""
        return not self.findings and not self.opaque


def _walk_code(code, findings: list[SideEffectFinding]) -> None:
    last_line = None
    for instr in dis.get_instructions(code):
        if instr.starts_line is not None:
            last_line = instr.starts_line
        name = instr.opname
        if name in _DEFINITE_OPS:
            findings.append(SideEffectFinding(
                "definite", name, f"writes non-local name {instr.argval!r}", last_line,
            ))
        elif name in _POSSIBLE_OPS:
            findings.append(SideEffectFinding(
                "possible", name, f"mutates {instr.argval!r} (target may be shared)",
                last_line,
            ))
        elif name in ("LOAD_GLOBAL", "LOAD_NAME", "LOAD_METHOD", "LOAD_ATTR"):
            target = instr.argval
            if isinstance(target, str) and target in IMPURE_CALLS:
                findings.append(SideEffectFinding(
                    "definite", name, f"references impure callable {target!r}",
                    last_line,
                ))
    for const in code.co_consts:
        if hasattr(const, "co_code"):  # nested function / comprehension
            _walk_code(const, findings)


def analyze_side_effects(fn: Callable[..., Any] | None) -> SideEffectReport:
    """Inspect a callable's bytecode for potential side effects."""
    if fn is None:
        return SideEffectReport(target="<none>")
    name = getattr(fn, "__qualname__", repr(fn))
    code = getattr(fn, "__code__", None)
    if code is None:
        # functools.partial, bound methods, C functions...
        inner = getattr(fn, "func", None) or getattr(fn, "__func__", None)
        if inner is not None:
            report = analyze_side_effects(inner)
            return SideEffectReport(target=name, findings=report.findings,
                                    opaque=report.opaque)
        return SideEffectReport(target=name, opaque=True)
    findings: list[SideEffectFinding] = []
    _walk_code(code, findings)
    return SideEffectReport(target=name, findings=findings)


def recommend(task: Task) -> tuple[bool, SideEffectReport]:
    """The paper's compiler recommendation for one task.

    Returns ``(may_speculate, report)``: True when the task either analyses
    clean or carries an undo routine; False means it should be kept on the
    non-speculative path (or given an undo).
    """
    report = analyze_side_effects(task.fn)
    if task.undo is not None:
        return True, report
    may = report.clean or (not report.definite and not report.opaque)
    return may, report

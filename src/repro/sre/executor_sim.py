"""Simulated executor — the SRE dispatch loop on virtual time.

Workers are modelled explicitly. On platforms with ``prefetch_depth == 1``
(x86), a task is taken from the ready queues only when a worker goes idle.
With deeper prefetch (Cell multiple buffering), the dispatcher assigns tasks
to per-worker local queues ahead of time; an assigned task may start only
after its DMA transfer completes (``platform.transfer_time``), overlapping
transfer with the worker's current computation — the paper's overlay of
communication with computation (§III-A).

Task *functions run for real* on real data; only their duration is taken
from the platform cost model. Every scheduling decision is therefore driven
by genuine values (histograms, trees, check verdicts) while time stays
deterministic.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SchedulingError
from repro.platforms.base import Platform
from repro.sim.kernel import Simulator
from repro.sre.policies import DispatchPolicy, get_policy
from repro.sre.runtime import Runtime
from repro.sre.task import Task, TaskState

__all__ = ["SimulatedExecutor"]


class _Worker:
    """One worker thread / SPE in the model."""

    __slots__ = ("wid", "current", "queue", "busy_time", "wake_event")

    def __init__(self, wid: int) -> None:
        self.wid = wid
        self.current: Task | None = None
        # (task, dma_ready_time) pairs awaiting this worker.
        self.queue: deque[tuple[Task, float]] = deque()
        self.busy_time = 0.0
        self.wake_event = None  # pending start event handle, if any

    def load(self) -> int:
        """Occupied slots (running + locally queued)."""
        return (1 if self.current is not None else 0) + len(self.queue)


class SimulatedExecutor:
    """Runs a :class:`~repro.sre.runtime.Runtime` on a DES clock."""

    def __init__(
        self,
        runtime: Runtime,
        platform: Platform,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int | None = None,
        sim: Simulator | None = None,
    ) -> None:
        self.runtime = runtime
        self.platform = platform
        self.policy = get_policy(policy) if isinstance(policy, str) else policy
        self.policy.reset()
        n = workers if workers is not None else platform.default_workers
        if n < 1:
            raise SchedulingError("need at least one worker")
        self.sim = sim if sim is not None else Simulator()
        self.workers = [_Worker(i) for i in range(n)]
        runtime.set_clock(lambda: self.sim.now)
        runtime.add_ready_listener(self._on_ready)
        self._started = False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _on_ready(self, task: Task) -> None:
        self.platform.validate_task(task)
        self._dispatch()

    def _free_worker(self) -> _Worker | None:
        """Worker with spare prefetch capacity (least loaded, lowest id)."""
        depth = self.platform.prefetch_depth
        best: _Worker | None = None
        for w in self.workers:
            load = w.load()
            if load >= depth:
                continue
            if best is None or load < best.load():
                best = w
        return best

    def _dispatch(self) -> None:
        """Assign ready tasks to workers with capacity, per the policy."""
        while True:
            worker = self._free_worker()
            if worker is None:
                return
            task = self.policy.select(
                self.runtime.natural_queue, self.runtime.speculative_queue
            )
            if task is None:
                return
            dma_ready = self.sim.now + self.platform.transfer_time(task)
            worker.queue.append((task, dma_ready))
            self._try_start(worker)

    def _try_start(self, worker: _Worker) -> None:
        """Start the next locally-queued task on an idle worker, if its DMA is done."""
        if worker.current is not None:
            return
        while worker.queue:
            task, dma_ready = worker.queue[0]
            if task.state is not TaskState.READY:
                # Aborted while waiting in the local queue: drop the slot.
                worker.queue.popleft()
                continue
            if dma_ready > self.sim.now:
                if worker.wake_event is None:
                    def _wake(w=worker):
                        w.wake_event = None
                        self._try_start(w)
                        self._dispatch()
                    worker.wake_event = self.sim.schedule_at(dma_ready, _wake)
                return
            worker.queue.popleft()
            self._start(worker, task)
            return

    def _start(self, worker: _Worker, task: Task) -> None:
        worker.current = task
        self.runtime.begin_task(task, worker=worker.wid)
        self.policy.notify_started(task)
        service = self.platform.service_time(task)
        worker.busy_time += service
        self.sim.schedule(service, lambda: self._complete(worker, task))

    def _complete(self, worker: _Worker, task: Task) -> None:
        self.runtime.finish_task(task, worker=worker.wid)
        self.policy.notify_finished(task)
        worker.current = None
        self._try_start(worker)
        self._dispatch()

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run the simulation to quiescence (or a time/event bound).

        Returns the simulated finish time. Quiescence means the event queue
        drained: no arrivals pending, no task running, nothing ready.
        """
        self._dispatch()
        end = self.sim.run(until=until, max_events=max_events)
        return end

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def utilisation(self) -> float:
        """Mean fraction of elapsed time workers spent computing."""
        if self.sim.now <= 0:
            return 0.0
        total = sum(w.busy_time for w in self.workers)
        return total / (self.sim.now * len(self.workers))


def _make_sim_executor(runtime: Runtime, *, platform="x86", **opts) -> SimulatedExecutor:
    """Registry factory: accept a platform *name* as well as an instance."""
    if isinstance(platform, str):
        from repro.platforms import get_platform

        platform = get_platform(platform)
    return SimulatedExecutor(runtime, platform, **opts)


from repro.sre.registry import register_executor  # noqa: E402

register_executor("sim", _make_sim_executor)

"""Tasks — the coarse-grain unit of computation.

A :class:`Task` declares named input ports, a pure function over them, and
metadata the scheduler and cost models consume (kind, pipeline depth,
speculative/control flags, cost hints). Ports follow dataflow
single-assignment: each port receives exactly one value, and a task instance
runs exactly once. Re-execution after rollback therefore always means *new*
task instances — exactly the paper's model, where mis-speculation destroys
the dependent chain and the recompute path spawns fresh tasks.
"""

from __future__ import annotations

import enum
import itertools
import pickle
from typing import Any, Callable, Iterable, Mapping

from repro.errors import TaskStateError
from repro.sre import shm

__all__ = ["Task", "TaskState", "PAYLOAD_PROTOCOL"]

_task_seq = itertools.count()

#: Pickle protocol for task payloads shipped across address spaces.
PAYLOAD_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _normalise_outputs(result: Any) -> dict[str, Any]:
    """Normalise a task function's return value to an output-port mapping."""
    if result is None:
        return {}
    if isinstance(result, dict):
        return result
    return {"out": result}


class TaskState(enum.Enum):
    """Task life cycle.

    ``CREATED`` → (added to a runtime) ``BLOCKED`` → (all inputs present)
    ``READY`` → (dispatched) ``RUNNING`` → ``DONE``. Any pre-terminal state
    may transition to ``ABORTED`` when a rollback destroys the task; a
    RUNNING task is merely *flagged* and reaped by its executor on
    completion, since launched work cannot be recalled (paper §III-B).
    """

    CREATED = "created"
    BLOCKED = "blocked"
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    ABORTED = "aborted"


_PRE_RUN_STATES = (TaskState.CREATED, TaskState.BLOCKED, TaskState.READY)


class Task:
    """A side-effect-free unit of computation with named input ports.

    Args:
        name: unique human-readable identifier (``kind:detail`` by convention).
        fn: callable invoked with one keyword argument per input port; returns
            either a mapping of output-port name to value, or a single value
            (exposed as port ``"out"``), or ``None`` (no outputs).
        inputs: input port names. A task with no inputs is a source and
            becomes READY as soon as it is added to a runtime.
        kind: cost-model category (``"count"``, ``"reduce"``, ``"encode"``...).
        depth: pipeline depth; the scheduler favours deeper tasks.
        speculative: True for tasks operating on speculated data.
        control: True for predict/verify/check tasks, which the scheduler
            always dispatches first regardless of depth (paper §III-A).
        side_effect_free: tasks with side effects must never be speculative —
            *unless* they provide an ``undo`` routine (the paper's §II
            extension: "our framework can be extended to support
            user-defined rollback routines, to enable more tasks to execute
            speculatively").
        undo: compensation callback invoked (with the task) when a
            side-effecting task that already ran is destroyed by a rollback.
        cost_hint: free-form numbers for the platform cost model (e.g.
            ``{"bytes": 4096}``).
        tags: free-form labels (speculation version, block id, ...).
    """

    __slots__ = (
        "name",
        "fn",
        "undo",
        "kind",
        "depth",
        "speculative",
        "control",
        "side_effect_free",
        "cost_hint",
        "tags",
        "seq",
        "state",
        "in_ready_queue",
        "abort_requested",
        "inputs",
        "_pending",
        "outputs",
        "on_complete",
        "on_abort",
        "supertask",
        "ready_time",
        "start_time",
        "finish_time",
        "abort_cause",
        "_payload_blob",
    )

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any] | None,
        inputs: Iterable[str] = (),
        *,
        kind: str = "task",
        depth: int = 0,
        speculative: bool = False,
        control: bool = False,
        side_effect_free: bool = True,
        undo: Callable[["Task"], None] | None = None,
        cost_hint: Mapping[str, float] | None = None,
        tags: Mapping[str, Any] | None = None,
    ) -> None:
        if speculative and not side_effect_free and undo is None:
            raise TaskStateError(
                f"task {name!r}: tasks with side effects may only run "
                "speculatively if they provide an undo routine"
            )
        self.name = name
        self.fn = fn
        self.undo = undo
        self.kind = kind
        self.depth = depth
        self.speculative = speculative
        self.control = control
        self.side_effect_free = side_effect_free
        self.cost_hint = dict(cost_hint or {})
        self.tags = dict(tags or {})
        self.seq = next(_task_seq)
        self.state = TaskState.CREATED
        #: maintained by ReadyQueue: True only while the task sits in a
        #: ready queue. Distinguishes "READY and queued" from "READY but
        #: already popped" (e.g. parked in a worker's DMA queue), so abort
        #: accounting never decrements a queue the task has left.
        self.in_ready_queue = False
        self.abort_requested = False
        self.inputs: dict[str, Any] = {}
        self._pending = set(inputs)
        if len(self._pending) != len(tuple(inputs)):
            raise TaskStateError(f"task {name!r}: duplicate input port names")
        self.outputs: dict[str, Any] | None = None
        self.on_complete: list[Callable[["Task", dict[str, Any]], None]] = []
        self.on_abort: list[Callable[["Task"], None]] = []
        self.supertask = None  # set by SuperTask.adopt
        self.ready_time: float | None = None
        self.start_time: float | None = None
        self.finish_time: float | None = None
        #: event seq of the destroy signal that flagged this task while it
        #: was RUNNING; the reap path stamps it as the abort event's cause.
        self.abort_cause: int | None = None
        self._payload_blob: bytes | None = None

    # ------------------------------------------------------------------
    # input delivery
    # ------------------------------------------------------------------
    @property
    def missing_inputs(self) -> frozenset[str]:
        """Ports still waiting for a value."""
        return frozenset(self._pending)

    def deliver(self, port: str, value: Any) -> bool:
        """Deliver a value to an input port.

        Returns True when this delivery completed the input set (the task is
        now eligible for the ready queue). Raises on unknown ports, double
        delivery, or delivery after launch.
        """
        if self.state not in (TaskState.CREATED, TaskState.BLOCKED):
            raise TaskStateError(
                f"task {self.name!r}: cannot deliver to port {port!r} in state {self.state}"
            )
        if port in self.inputs:
            raise TaskStateError(f"task {self.name!r}: port {port!r} already assigned")
        if port not in self._pending:
            raise TaskStateError(f"task {self.name!r}: unknown input port {port!r}")
        self._pending.discard(port)
        self.inputs[port] = value
        return not self._pending

    @property
    def is_ready_to_schedule(self) -> bool:
        """All inputs present and not yet launched."""
        return not self._pending and self.state in (TaskState.CREATED, TaskState.BLOCKED)

    # ------------------------------------------------------------------
    # life cycle (driven by the runtime/executor)
    # ------------------------------------------------------------------
    def _transition(self, target: TaskState, allowed: tuple[TaskState, ...]) -> None:
        if self.state not in allowed:
            raise TaskStateError(
                f"task {self.name!r}: illegal transition {self.state} -> {target}"
            )
        self.state = target

    def mark_blocked(self) -> None:
        self._transition(TaskState.BLOCKED, (TaskState.CREATED,))

    def mark_ready(self, now: float) -> None:
        self._transition(TaskState.READY, (TaskState.CREATED, TaskState.BLOCKED))
        self.ready_time = now

    def mark_running(self, now: float) -> None:
        self._transition(TaskState.RUNNING, (TaskState.READY,))
        self.start_time = now

    def mark_done(self, now: float) -> None:
        self._transition(TaskState.DONE, (TaskState.RUNNING,))
        self.finish_time = now

    def mark_aborted(self) -> None:
        """Terminal abort for a task that has not finished running."""
        self._transition(TaskState.ABORTED, _PRE_RUN_STATES + (TaskState.RUNNING,))

    def request_abort(self) -> bool:
        """Flag the task for abortion.

        Returns True if the task can be reaped immediately (it was not
        running); a RUNNING task is only flagged — its executor discards the
        results on completion, mirroring the paper's abort-flag mechanism.
        """
        self.abort_requested = True
        if self.state in _PRE_RUN_STATES:
            self.mark_aborted()
            return True
        return False

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        """Execute the task function and normalise its outputs.

        The executor is responsible for state transitions and routing; this
        method only computes.
        """
        if self._pending:
            raise TaskStateError(
                f"task {self.name!r}: run with missing inputs {sorted(self._pending)}"
            )
        if self.fn is None:
            return {}
        # Shared-memory refs in the payload (block transport) resolve to
        # their data in *this* address space; a ref-free payload passes
        # through untouched (swap_in returns the original objects).
        fn, inputs = shm.swap_in((self.fn, self.inputs))
        return _normalise_outputs(fn(**inputs))

    # ------------------------------------------------------------------
    # remote execution (process back-end)
    # ------------------------------------------------------------------
    def serialize_payload(self) -> bytes:
        """Pickle ``(fn, inputs)`` — everything another address space needs
        to execute this task body.

        The runtime half of the task (state, hooks, supertask, tags) never
        crosses the boundary; only the pure function and its argument values
        do, exactly as the Cell back-end DMAs a kernel's working set into an
        SPE local store.

        The blob is cached: dispatch paths measure the footprint and then
        ship the same bytes without pickling twice. The cache is safe
        because ports are single-assignment and delivery after launch
        raises — once serialization is possible the inputs are frozen.

        Raises:
            TaskStateError: the payload cannot cross a process boundary
                (closures, lambdas, open handles, ...). Executors treat this
                as "run it on the coordinator instead".
        """
        if self._payload_blob is not None:
            return self._payload_blob
        try:
            blob = pickle.dumps((self.fn, self.inputs), protocol=PAYLOAD_PROTOCOL)
        except Exception as exc:
            raise TaskStateError(
                f"task {self.name!r}: payload is not picklable ({exc!r})"
            ) from exc
        self._payload_blob = blob
        return blob

    def drop_payload_cache(self) -> None:
        """Free the cached payload blob (called after the bytes shipped)."""
        self._payload_blob = None

    def serialized_footprint(self) -> int:
        """Bytes this task's payload occupies on the wire to a worker."""
        return len(self.serialize_payload())

    def referenced_bytes(self) -> int:
        """Bytes of shared-memory blocks this task's payload references."""
        return shm.referenced_bytes((self.fn, self.inputs))

    def payload_footprint(self) -> int:
        """Total working-set bytes a worker needs for this task.

        Wire bytes (the cached pickled payload) *plus* the bytes of every
        shared-memory block the payload references: with
        :class:`~repro.sre.shm.BlockRef` handles in play the wire carries
        only ~150 B per block, but the worker still maps the block itself,
        so the budget — the spirit of the Cell's 32 KB local-store cap
        (:class:`~repro.platforms.localstore.LocalStore`) — must count the
        referenced data, not the handle.
        """
        return self.serialized_footprint() + self.referenced_bytes()

    @staticmethod
    def run_payload(blob: bytes) -> dict[str, Any]:
        """Execute a payload produced by :meth:`serialize_payload`.

        Runs in the worker process; shared-memory refs are swapped back
        into data (attaching segments lazily) before the call. Returns
        normalised outputs. Raises :class:`~repro.errors.SegmentGone` if
        a referenced segment was reclaimed before the swap.
        """
        fn, inputs = shm.swap_in(pickle.loads(blob))
        if fn is None:
            return {}
        return _normalise_outputs(fn(**inputs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spec = " spec" if self.speculative else ""
        return f"<Task {self.name} {self.kind} d{self.depth} {self.state.value}{spec}>"

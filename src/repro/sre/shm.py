"""Zero-copy shared-memory block transport for the process back-end.

The paper's Cell back-end wins by keeping 4 KB blocks in SPE local stores
and DMA-staging them ahead of execution; the pipe transport instead
re-pickles every ``(fn, inputs)`` payload per task, so one input block's
bytes cross the coordinator→worker pipe once per kernel that touches it.
This module removes the copies:

* :class:`BlockStore` (coordinator side) places each block — input data,
  histograms, committed kernel outputs above ``min_bytes`` — into a named
  ``multiprocessing.shared_memory`` segment **exactly once**, packing many
  blocks per segment with a bump allocator;
* :class:`BlockRef` is the handle that pickles as ``(segment, offset,
  length, ...)`` instead of the bytes themselves — a few hundred bytes on
  the wire regardless of block size;
* :func:`swap_in` transparently resolves refs back into NumPy views (or
  unpickled objects) inside whichever address space runs the task; worker
  processes attach each segment lazily, once, and keep the mapping.

Reclamation is refcounted. Every ref handed out carries counted
references: the pipeline holds a *base* reference per block until the
block's encoding commits, and each speculation version additionally holds
references for the tasks it spawned — released through
``SpecVersion.release_resources`` on commit *and* on rollback, so a
mis-speculated version cannot pin memory. When every block in a sealed
segment reaches zero references the segment is unlinked. The coordinator
keeps its own mapping open until :meth:`BlockStore.close` (existing views
stay valid after an unlink; only the *name* disappears), so a worker that
loses the race — attaches after the unlink — fails with
:class:`~repro.errors.SegmentGone` and the coordinator re-runs the task
inline or reaps it, never corrupting data.

Instrumented on the run's registry: ``shm_segments`` /
``shm_bytes_resident`` gauges, ``shm_blocks_stored`` and
``shm_refs_released{reason=commit|rollback|close}`` counters (the
payload-bytes-avoided counter lives with the process executor, which is
the layer that knows what would otherwise have crossed the pipe).
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.errors import SegmentGone, TransportError

__all__ = [
    "BlockRef",
    "BlockStore",
    "SegmentGone",
    "attached_segments",
    "detach_all",
    "iter_refs",
    "materialize_segment",
    "read_block",
    "referenced_bytes",
    "release_segment",
    "resolve",
    "segment_size",
    "swap_in",
    "write_block",
]

#: Pickle protocol for objects stored as pickled segments.
_PROTOCOL = pickle.HIGHEST_PROTOCOL

_store_seq = itertools.count()
_segment_seq = itertools.count()


class BlockRef:
    """A picklable handle to one block inside a shared-memory segment.

    ``kind`` selects the resolution: ``"ndarray"`` refs resolve to a
    read-only NumPy view straight into the segment (zero copy);
    ``"pickle"`` refs resolve by unpickling the stored bytes (cached per
    location, so a tree referenced by 64 encode tasks deserialises once
    per address space).
    """

    __slots__ = ("segment", "offset", "length", "kind", "dtype", "shape")

    def __init__(self, segment: str, offset: int, length: int,
                 kind: str = "ndarray", dtype: str = "uint8",
                 shape: tuple[int, ...] = ()) -> None:
        self.segment = segment
        self.offset = offset
        self.length = length
        self.kind = kind
        self.dtype = dtype
        self.shape = tuple(shape)

    def __reduce__(self):
        return (BlockRef, (self.segment, self.offset, self.length,
                           self.kind, self.dtype, self.shape))

    @property
    def key(self) -> tuple[str, int]:
        """Identity of the stored block: ``(segment, offset)``."""
        return (self.segment, self.offset)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BlockRef)
                and self.key == other.key and self.length == other.length)

    def __hash__(self) -> int:
        return hash((self.segment, self.offset, self.length))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BlockRef {self.segment}+{self.offset} "
                f"{self.length}B {self.kind}>")


# ---------------------------------------------------------------------------
# Per-process segment cache.
#
# One mapping per segment per address space, however many refs point into
# it. The coordinator's BlockStore registers segments here at creation, so
# resolving locally (threads / sim / inline fallback) never re-attaches;
# worker processes attach lazily on first resolve.
# ---------------------------------------------------------------------------

_cache_lock = threading.Lock()
_segments: dict[str, shared_memory.SharedMemory] = {}
_attached: set[str] = set()  # names this process attached (vs created)
_objects: dict[tuple[str, int], Any] = {}  # resolved "pickle"-kind blocks
#: Unmapped-but-unclosable mappings (live views exported). Kept referenced
#: so SharedMemory.__del__ never runs against exported pointers.
_zombies: list[shared_memory.SharedMemory] = []


def _segment_for(name: str) -> shared_memory.SharedMemory:
    with _cache_lock:
        seg = _segments.get(name)
        if seg is not None:
            return seg
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise SegmentGone(
            f"shared-memory segment {name!r} is gone (reclaimed after "
            "commit/rollback before this reference resolved)"
        ) from None
    with _cache_lock:
        # Lost a race with another resolver: keep the first mapping.
        existing = _segments.get(name)
        if existing is not None:
            seg.close()
            return existing
        _segments[name] = seg
        _attached.add(name)
    return seg


def resolve(ref: BlockRef) -> Any:
    """Materialise a :class:`BlockRef` in the calling address space.

    Raises :class:`~repro.errors.SegmentGone` when the segment no longer
    exists (it was reclaimed — only possible for refs of dead versions).
    """
    if ref.kind == "pickle":
        with _cache_lock:
            obj = _objects.get(ref.key)
        if obj is not None:
            return obj
    seg = _segment_for(ref.segment)
    raw = seg.buf[ref.offset:ref.offset + ref.length]
    if ref.kind == "pickle":
        obj = pickle.loads(bytes(raw))
        with _cache_lock:
            _objects[ref.key] = obj
        return obj
    view = np.frombuffer(seg.buf, dtype=np.dtype(ref.dtype),
                         count=int(np.prod(ref.shape)) if ref.shape else
                         ref.length // np.dtype(ref.dtype).itemsize,
                         offset=ref.offset)
    if ref.shape:
        view = view.reshape(ref.shape)
    view.flags.writeable = False  # kernels must treat shared inputs as const
    return view


def attached_segments() -> tuple[str, ...]:
    """Names of segments this process attached to (not created)."""
    with _cache_lock:
        return tuple(sorted(_attached))


def detach_all() -> int:
    """Close every segment mapping this process *attached* (worker-side).

    Returns the number of mappings closed. Mappings with live exported
    NumPy views cannot be closed (``BufferError``) and are skipped — the
    OS reclaims them with the process.
    """
    closed = 0
    with _cache_lock:
        names = list(_attached)
        for name in names:
            seg = _segments.get(name)
            if seg is None:
                _attached.discard(name)
                continue
            try:
                seg.close()
            except BufferError:  # pragma: no cover - live views exported
                continue
            closed += 1
            _segments.pop(name, None)
            _attached.discard(name)
        _objects.clear()
    return closed


# ---------------------------------------------------------------------------
# Remote materialisation: the dist back-end's chunked-stream transport
# lands block bytes here, keyed through the same (segment, offset)
# vocabulary BlockRef already speaks — a remote worker then resolves an
# unmodified BlockRef against the materialised copy.
# ---------------------------------------------------------------------------


def segment_size(name: str) -> int:
    """Byte size of a segment known to this process (the push header)."""
    with _cache_lock:
        seg = _segments.get(name)
    if seg is None:
        raise SegmentGone(f"segment {name!r} is not mapped in this process")
    return seg.size


def materialize_segment(name: str, size: int) -> bool:
    """Ensure segment ``name`` exists in this address space.

    Attach when the name already resolves (the pool shares the
    coordinator's host — zero-copy fast path); otherwise create it with
    ``size`` bytes so pushed block chunks have somewhere to land.
    Returns True when the segment was created here — the caller owns
    unlinking it (see :func:`release_segment`).
    """
    with _cache_lock:
        if name in _segments:
            return False
    try:
        _segment_for(name)
        return False
    except SegmentGone:
        pass
    seg = shared_memory.SharedMemory(name=name, create=True, size=size)
    with _cache_lock:
        existing = _segments.get(name)
        if existing is not None:  # pragma: no cover - creation race
            seg.close()
            seg.unlink()
            return False
        _segments[name] = seg
    return True


def read_block(segment: str, offset: int, length: int) -> bytes:
    """Raw bytes of one block — what the coordinator pushes for a ref."""
    seg = _segment_for(segment)
    if offset < 0 or offset + length > seg.size:
        raise SegmentGone(
            f"block [{offset}, {offset + length}) outside segment "
            f"{segment!r} ({seg.size} B)")
    return bytes(seg.buf[offset:offset + length])


def write_block(segment: str, offset: int, data: bytes) -> None:
    """Copy one pushed chunk into a materialised segment at ``offset``."""
    seg = _segment_for(segment)
    if offset < 0 or offset + len(data) > seg.size:
        raise SegmentGone(
            f"chunk [{offset}, {offset + len(data)}) outside segment "
            f"{segment!r} ({seg.size} B)")
    seg.buf[offset:offset + len(data)] = data


def release_segment(name: str, *, unlink: bool = False) -> None:
    """Drop this process's mapping of ``name``; optionally unlink it.

    The dist pool calls this at session teardown for every segment it
    materialised (``unlink=True`` for created copies, False for same-host
    attachments). Unknown names are tolerated no-ops.
    """
    with _cache_lock:
        seg = _segments.pop(name, None)
        was_attached = name in _attached
        _attached.discard(name)
        for key in [k for k in _objects if k[0] == name]:
            del _objects[key]
    if seg is None:
        return
    try:
        seg.close()
    except BufferError:  # pragma: no cover - live views exported
        _zombies.append(seg)
        return
    if unlink:
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    elif was_attached:
        # CPython < 3.13 registers attached segments with the resource
        # tracker as if this process owned them; drop the bogus claim so
        # the owner's unlink doesn't trigger a leak warning at our exit.
        try:
            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker already gone
            pass


# ---------------------------------------------------------------------------
# Payload walking: find / swap refs in (fn, inputs) structures.
# ---------------------------------------------------------------------------

def iter_refs(obj: Any) -> Iterator[BlockRef]:
    """Yield every :class:`BlockRef` reachable in a payload structure.

    Walks the same shapes tasks are built from: dict / list / tuple
    containers and ``functools.partial`` argument chains.
    """
    if isinstance(obj, BlockRef):
        yield obj
    elif isinstance(obj, dict):
        for v in obj.values():
            yield from iter_refs(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            yield from iter_refs(v)
    elif hasattr(obj, "func") and hasattr(obj, "args") and hasattr(obj, "keywords"):
        yield from iter_refs(obj.args)
        yield from iter_refs(obj.keywords or {})


def referenced_bytes(obj: Any) -> int:
    """Total bytes of shared-memory data a payload structure references.

    This is what the process back-end's budget check must count: the
    pickled handle is a few hundred bytes however big the block is.
    """
    return sum(ref.length for ref in iter_refs(obj))


def swap_in(obj: Any) -> Any:
    """Replace every :class:`BlockRef` in a payload structure with its data.

    Returns the original object untouched (no rebuild) when it contains no
    refs; containers and partials are rebuilt only along ref-carrying
    paths. Raises :class:`~repro.errors.SegmentGone` when a segment has
    been reclaimed.
    """
    if isinstance(obj, BlockRef):
        return resolve(obj)
    if isinstance(obj, dict):
        out, changed = {}, False
        for k, v in obj.items():
            nv = swap_in(v)
            changed = changed or nv is not v
            out[k] = nv
        return out if changed else obj
    if isinstance(obj, (list, tuple)):
        swapped = [swap_in(v) for v in obj]
        if all(nv is v for nv, v in zip(swapped, obj)):
            return obj
        return type(obj)(swapped) if isinstance(obj, tuple) else swapped
    if hasattr(obj, "func") and hasattr(obj, "args") and hasattr(obj, "keywords"):
        args = tuple(swap_in(a) for a in obj.args)
        kw = {k: swap_in(v) for k, v in (obj.keywords or {}).items()}
        if all(na is a for na, a in zip(args, obj.args)) and all(
            kw[k] is v for k, v in (obj.keywords or {}).items()
        ):
            return obj
        from functools import partial
        return partial(obj.func, *args, **kw)
    return obj


# ---------------------------------------------------------------------------
# The coordinator-side store.
# ---------------------------------------------------------------------------

class _Segment:
    """One shared-memory arena: bump-allocated, refcount-reclaimed."""

    __slots__ = ("shm", "capacity", "used", "sealed", "live_blocks", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.capacity = shm.size
        self.used = 0
        self.sealed = False
        self.live_blocks = 0
        self.unlinked = False


class BlockStore:
    """Coordinator-side arena of shared-memory blocks with refcounts.

    Args:
        metrics: a :class:`~repro.obs.metrics.MetricsRegistry` to record
            ``shm_*`` instruments on (optional).
        min_bytes: objects smaller than this are not worth a segment slot;
            :meth:`put` returns ``None`` for them and the caller ships the
            value inline as before.
        segment_bytes: arena capacity. Blocks larger than this get a
            dedicated segment of exactly their size.

    Thread-safety: all mutation happens under one lock; the runtime calls
    in from the coordinator threads only.
    """

    def __init__(self, *, metrics: Any | None = None,
                 events: Any | None = None,
                 min_bytes: int = 1024,
                 segment_bytes: int = 1 << 20) -> None:
        if segment_bytes < 1 or min_bytes < 0:
            raise TransportError("segment_bytes must be >= 1, min_bytes >= 0")
        self.min_bytes = min_bytes
        self.segment_bytes = segment_bytes
        self._lock = threading.Lock()
        self._prefix = f"repro-{os.getpid()}-{next(_store_seq)}"
        self._segs: dict[str, _Segment] = {}
        self._open: _Segment | None = None  # current bump-allocation arena
        self._refcounts: dict[tuple[str, int], int] = {}
        self._ref_meta: dict[tuple[str, int], BlockRef] = {}
        #: Blocks force-released by crash recovery (quarantined payloads).
        #: The version machinery still holds logical references to them and
        #: will release/acquire later as its cleanup runs its course; those
        #: calls become tolerated no-ops instead of double-release errors.
        self._forfeited: set[tuple[str, int]] = set()
        self._closed = False
        #: optional flight recorder (see repro.obs.events): ref releases
        #: emit ``shm_release`` events whose ambient cause scope ties them
        #: into rollback / commit cascades.
        self._events = events
        self.bytes_stored = 0
        self.segments_created = 0
        self.segments_reclaimed = 0
        if metrics is not None:
            self._g_segments = metrics.gauge(
                "shm_segments", "shared-memory segments currently existing")
            self._g_resident = metrics.gauge(
                "shm_bytes_resident", "bytes held in live shared-memory segments")
            self._c_blocks = metrics.counter(
                "shm_blocks_stored", "blocks placed into shared memory")
            self._c_released = metrics.counter(
                "shm_refs_released",
                "shared-memory block references released",
                labelnames=("reason",))
            self._c_bytes_released = metrics.counter(
                "shm_bytes_released",
                "bytes of pinned shared-memory blocks whose references "
                "were released (block length × refs dropped)",
                labelnames=("reason",))
        else:
            self._g_segments = self._g_resident = self._c_blocks = None
            self._c_released = None
            self._c_bytes_released = None

    # -- allocation ----------------------------------------------------
    def _new_segment(self, capacity: int) -> _Segment:
        name = f"{self._prefix}-{next(_segment_seq)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=capacity)
        seg = _Segment(shm)
        self._segs[shm.name] = seg
        # Register in the process-local cache so local resolve is free.
        with _cache_lock:
            _segments[shm.name] = shm
        self.segments_created += 1
        if self._g_segments is not None:
            self._g_segments.inc()
            self._g_resident.inc(capacity)
        return seg

    def _alloc(self, nbytes: int) -> tuple[_Segment, int]:
        if nbytes > self.segment_bytes:
            seg = self._new_segment(nbytes)
            seg.sealed = True  # dedicated segment: nothing else fits
            seg.used = nbytes
            return seg, 0
        seg = self._open
        if seg is None or seg.capacity - seg.used < nbytes:
            if seg is not None:
                seg.sealed = True
                self._maybe_reclaim(seg)
            seg = self._open = self._new_segment(self.segment_bytes)
        offset = seg.used
        seg.used += nbytes
        return seg, offset

    # -- public API ----------------------------------------------------
    def put(self, value: Any, *, refs: int = 1) -> BlockRef | None:
        """Place a value into shared memory once; returns its ref (or
        ``None`` when the value is below ``min_bytes`` — ship it inline).

        ``refs`` is the initial reference count the caller now owns.
        NumPy arrays are stored raw (resolve = zero-copy view); anything
        else is stored pickled (resolve = cached unpickle).
        """
        if self._closed:
            raise TransportError("BlockStore is closed")
        if refs < 1:
            raise TransportError("initial refs must be >= 1")
        if isinstance(value, np.ndarray):
            arr = np.ascontiguousarray(value)
            raw = arr.view(np.uint8).reshape(-1).data
            kind, dtype, shape = "ndarray", arr.dtype.str, arr.shape
        else:
            raw = pickle.dumps(value, protocol=_PROTOCOL)
            kind, dtype, shape = "pickle", "uint8", ()
        nbytes = len(raw)
        if nbytes < self.min_bytes:
            return None
        with self._lock:
            seg, offset = self._alloc(nbytes)
            seg.shm.buf[offset:offset + nbytes] = raw
            seg.live_blocks += 1
            ref = BlockRef(seg.shm.name, offset, nbytes, kind, dtype, shape)
            self._refcounts[ref.key] = refs
            self._ref_meta[ref.key] = ref
            self.bytes_stored += nbytes
        if kind == "pickle":
            with _cache_lock:
                _objects[ref.key] = value  # prime the local resolve cache
        if self._c_blocks is not None:
            self._c_blocks.inc()
        return ref

    def acquire(self, ref: BlockRef, n: int = 1) -> BlockRef:
        """Take ``n`` additional references on a stored block."""
        with self._lock:
            if ref.key not in self._refcounts:
                if ref.key in self._forfeited:
                    return ref  # crash-forfeited: late acquires are no-ops
                raise TransportError(f"acquire on unknown/reclaimed block {ref!r}")
            self._refcounts[ref.key] += n
        return ref

    def release(self, ref: BlockRef, *, reason: str = "commit", n: int = 1) -> None:
        """Drop ``n`` references; reclaims the segment at zero.

        ``reason`` feeds the ``shm_refs_released{reason=...}`` counter —
        ``"commit"`` for the authoritative path, ``"rollback"`` for
        mis-speculated versions, ``"close"`` for end-of-run sweeps.
        """
        with self._lock:
            count = self._refcounts.get(ref.key)
            if count is None:
                if ref.key in self._forfeited:
                    return  # crash-forfeited: late releases are no-ops
                raise TransportError(
                    f"release of unreferenced block {ref!r} (double release?)")
            if count < n:
                raise TransportError(
                    f"release({n}) exceeds refcount {count} for {ref!r}")
            count -= n
            freed = False
            if count:
                self._refcounts[ref.key] = count
            else:
                del self._refcounts[ref.key]
                del self._ref_meta[ref.key]
                seg = self._segs[ref.segment]
                seg.live_blocks -= 1
                self._maybe_reclaim(seg)
                freed = True
        if self._c_released is not None:
            self._c_released.labels(reason=reason).inc(n)
            self._c_bytes_released.labels(reason=reason).inc(ref.length * n)
        if self._events is not None:
            self._events.emit("shm_release", reason=reason, refs=n,
                              nbytes=ref.length * n, segment=ref.segment,
                              freed=freed or None)

    def release_crashed(self, refs: "Iterable[BlockRef]") -> int:
        """Force-release every outstanding reference on ``refs``.

        Crash-recovery path: a quarantined task's payload pinned these
        blocks for a worker that will never run it, so the pins can never
        be paid back through the normal commit/rollback releases. All
        outstanding references are dropped at once (reclaiming segments
        whose last block this was) and the keys are marked *forfeited*:
        the version machinery's own later ``release``/``acquire`` calls on
        them become tolerated no-ops instead of double-release errors.

        Returns the number of references dropped. Accounted under
        ``shm_refs_released{reason="crash"}`` / ``shm_bytes_released`` and
        one ``shm_release`` event per block (``reason="crash"``), emitted
        under whatever cause scope the caller holds — the crash event, so
        the flight recorder ties the reclamation into the cascade.
        """
        dropped: list[tuple[BlockRef, int]] = []
        with self._lock:
            for ref in refs:
                count = self._refcounts.pop(ref.key, 0)
                if not count:
                    continue
                del self._ref_meta[ref.key]
                self._forfeited.add(ref.key)
                seg = self._segs[ref.segment]
                seg.live_blocks -= 1
                self._maybe_reclaim(seg)
                dropped.append((ref, count))
        total = 0
        for ref, count in dropped:
            total += count
            if self._c_released is not None:
                self._c_released.labels(reason="crash").inc(count)
                self._c_bytes_released.labels(reason="crash").inc(
                    ref.length * count)
            if self._events is not None:
                self._events.emit("shm_release", reason="crash", refs=count,
                                  nbytes=ref.length * count,
                                  segment=ref.segment, freed=True)
        return total

    def refcount(self, ref: BlockRef) -> int:
        """Current reference count (0 once fully released)."""
        with self._lock:
            return self._refcounts.get(ref.key, 0)

    @property
    def live_refs(self) -> int:
        """Total outstanding references across all blocks."""
        with self._lock:
            return sum(self._refcounts.values())

    @property
    def live_segments(self) -> int:
        """Segments not yet unlinked."""
        with self._lock:
            return sum(1 for s in self._segs.values() if not s.unlinked)

    def _maybe_reclaim(self, seg: _Segment) -> None:
        # Caller holds self._lock. Unlink removes the *name*: our own
        # mapping (and any worker's existing mapping) stays valid; only a
        # late attach fails, which the executor handles via SegmentGone.
        if seg.unlinked or not seg.sealed or seg.live_blocks > 0:
            return
        try:
            seg.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - lost an unlink race
            pass
        seg.unlinked = True
        self.segments_reclaimed += 1
        if self._g_segments is not None:
            self._g_segments.dec()
            self._g_resident.dec(seg.capacity)

    def close(self, *, reason: str = "close") -> None:
        """Release every outstanding ref, unlink and unmap everything.

        Idempotent. After close the store cannot allocate; local views
        created earlier stay valid until the arrays are garbage collected
        (the OS frees the pages when the last mapping goes).
        """
        if self._closed:
            return
        self._closed = True
        with self._lock:
            leftovers = list(self._ref_meta.values())
        for ref in leftovers:
            count = self.refcount(ref)
            if count:
                self.release(ref, reason=reason, n=count)
        with self._lock:
            if self._open is not None:
                self._open.sealed = True
                self._maybe_reclaim(self._open)
                self._open = None
            for seg in self._segs.values():
                if not seg.unlinked:  # pragma: no cover - defensive
                    try:
                        seg.shm.unlink()
                    except FileNotFoundError:
                        pass
                    seg.unlinked = True
                    self.segments_reclaimed += 1
                    if self._g_segments is not None:
                        self._g_segments.dec()
                        self._g_resident.dec(seg.capacity)
                with _cache_lock:
                    _segments.pop(seg.shm.name, None)
                    _objects_keys = [k for k in _objects
                                     if k[0] == seg.shm.name]
                    for k in _objects_keys:
                        del _objects[k]
                try:
                    seg.shm.close()
                except BufferError:
                    # Live NumPy views still point into the mapping (e.g.
                    # the pipeline's result arrays). The mapping lives on
                    # until they are collected; the name is already gone.
                    # Keep the object referenced so its __del__ (which
                    # would re-raise the BufferError as stderr noise) does
                    # not fire while views are alive.
                    _zombies.append(seg.shm)
            self._segs.clear()

    def __enter__(self) -> "BlockStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def release_callback(self, ref: BlockRef) -> Callable[[str], None]:
        """A ``release_resources``-shaped callback releasing one ref."""
        def _release(reason: str) -> None:
            self.release(ref, reason=reason)
        return _release

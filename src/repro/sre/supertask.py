"""SuperTasks — hierarchical routers over child tasks.

Contrary to classic streaming models, the SRE defines a hierarchy of node
SuperTasks whose purpose is to direct the flow of data between child Tasks
and SuperTasks (paper §III-A). In this implementation SuperTasks carry the
*observation* role that speculation relies on: when a child completes, its
parent SuperTask is notified, and tasks flagged as speculation bases cause
the SuperTask to both advance normal execution and alert any speculation
subscribers (paper §III-B).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import GraphError
from repro.sre.task import Task

__all__ = ["SuperTask"]

ChildCompleteHook = Callable[[Task, dict[str, Any]], None]


class SuperTask:
    """A named grouping node in the task hierarchy.

    SuperTasks never execute; they organise children (tasks or nested
    SuperTasks), provide hierarchical names, and fan out completion
    notifications — including the speculation-base notifications that drive
    the :class:`~repro.core.manager.SpeculationManager`.
    """

    def __init__(self, name: str, parent: "SuperTask | None" = None) -> None:
        self.name = name
        self.parent = parent
        self._children_tasks: dict[str, Task] = {}
        self._children_super: dict[str, "SuperTask"] = {}
        self._hooks: list[ChildCompleteHook] = []
        self._spec_base_hooks: list[ChildCompleteHook] = []
        if parent is not None:
            parent._children_super[name] = self

    # ------------------------------------------------------------------
    # hierarchy
    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """Fully qualified name, e.g. ``huffman/first_pass``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def adopt(self, task: Task) -> Task:
        """Make ``task`` a child of this SuperTask."""
        if task.supertask is not None:
            raise GraphError(f"task {task.name!r} already has a SuperTask")
        if task.name in self._children_tasks:
            raise GraphError(f"SuperTask {self.name!r}: duplicate child {task.name!r}")
        task.supertask = self
        self._children_tasks[task.name] = task
        return task

    def iter_tasks(self, recursive: bool = True) -> Iterator[Task]:
        """All child tasks, optionally including nested SuperTasks'."""
        yield from self._children_tasks.values()
        if recursive:
            for sub in self._children_super.values():
                yield from sub.iter_tasks(recursive=True)

    def subgroup(self, name: str) -> "SuperTask":
        """Create (or fetch) a nested SuperTask."""
        existing = self._children_super.get(name)
        if existing is not None:
            return existing
        return SuperTask(name, parent=self)

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------
    def on_child_complete(self, hook: ChildCompleteHook) -> None:
        """Subscribe to completions of any (recursive) child."""
        self._hooks.append(hook)

    def on_speculation_base(self, hook: ChildCompleteHook) -> None:
        """Subscribe to completions of children flagged ``spec_base``.

        A task is flagged as a basis for speculation by setting
        ``task.tags["spec_base"] = True`` — the runtime then notifies the
        SuperTask chain, which both advances normal execution (ordinary
        routing already happened) and triggers speculative work here.
        """
        self._spec_base_hooks.append(hook)

    def notify_child_complete(self, task: Task, outputs: dict[str, Any]) -> None:
        """Called by the runtime when a (recursive) child finishes."""
        for hook in list(self._hooks):
            hook(task, outputs)
        if task.tags.get("spec_base"):
            for hook in list(self._spec_base_hooks):
                hook(task, outputs)
        if self.parent is not None:
            self.parent.notify_child_complete(task, outputs)

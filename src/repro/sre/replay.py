"""Deterministic replay & time-travel debugging from the flight recorder.

A recorded ``*.events.jsonl`` log (docs/flight-recorder.md) is a causally
closed record of every *decision* the speculation protocol took: where it
speculated, which checks it launched, every verdict with its measured
error, every rollback and the final commit/recompute call. This module
closes the loop (ROADMAP item 4): it parses that log back into a
:class:`DecisionSchedule` and re-executes the run **forcing** the
recorded schedule through the decision/execution seam
(:class:`~repro.core.decisions.DecisionSource`), so any production
anomaly or chaos-test failure becomes a reproducible artifact.

Three layers:

* :func:`extract_schedule` — events → ordered decision *gates*
  (``predict`` / ``launch`` / ``respec`` / ``verdict`` /
  ``final_verdict``), the exact sequence of nondeterministic points the
  recorded run passed through.
* :class:`ReplayDirector` — a :class:`DecisionSource` that answers every
  predicate from the recorded gate at the cursor and *re-orders*
  asynchronous callback delivery (updates, prediction completions, check
  verdicts) to match the recording, parking early arrivals until the
  cursor reaches their gate. Divergence — a check error that no longer
  matches, a gate that is never reached, a different outcome or output
  digest — raises :class:`~repro.errors.ReplayDivergence` naming the
  first mismatched recorded event seq.
* :func:`replay_path` — the ``repro replay`` entry point: faithful
  replay, or (with ``force`` overrides) a **counterfactual** run of the
  recorded input under a different policy, with
  :class:`CascadeSummary`/:func:`render_diff` quantifying the cascade
  delta (rollbacks, wasted µs, shm churn).

Why forcing the decisions is sufficient for byte-identical output: task
*data* is deterministic (same workload bytes, same seeded RNG), update
values are pure functions of the input blocks, and the commit stream is
ordered by the WaitBuffer's deterministic flush. The only
nondeterminism on live executors is the *interleaving* of completion
callbacks against the update stream — exactly what the director pins.
See docs/replay.md for the full model and its limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any

from repro.core.decisions import DecisionSource
from repro.errors import ExperimentError, ReplayDivergence, ReplayError
from repro.obs.events import read_event_log

__all__ = [
    "DECISION_KINDS",
    "Gate",
    "DecisionSchedule",
    "extract_schedule",
    "decision_signature",
    "ReplayDirector",
    "CascadeSummary",
    "render_diff",
    "config_from_header",
    "ReplayResult",
    "replay_path",
]

#: Event kinds that constitute the *decision schedule* of a run. Replay
#: asserts event-for-event equality over these; consequence events
#: (task_spawn, rollback_done footprint sizes, shm_release, ...) are
#: timing-dependent on live executors and deliberately excluded.
DECISION_KINDS = frozenset({
    "spec_predict", "spec_launch", "check_pass", "check_fail",
    "destroy_signal", "spec_commit", "spec_recompute",
})


@dataclass(frozen=True)
class Gate:
    """One recorded nondeterministic decision point, in schedule order.

    ``pos`` is the gate's position in the schedule (the director's
    cursor compares against it); ``seq`` is the recorded event seq
    (what divergence errors point at).
    """

    kind: str  # predict | launch | respec | verdict | final_verdict
    seq: int
    pos: int
    version: int | None
    index: int | None = None
    outcome: str | None = None  # "pass" / "fail" for verdict gates
    error: float | None = None


@dataclass
class DecisionSchedule:
    """The ordered decision gates of one recorded run, plus its verdicts."""

    gates: list[Gate] = field(default_factory=list)
    #: "commit" or "recompute" (None when the recording never finalized).
    outcome: str | None = None
    commit_version: int | None = None
    #: the recorded ``run_result`` event, when present: outcome,
    #: compressed_bits, output_sha256 — the byte-identity oracle.
    run_result: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self.gates)


def extract_schedule(events: list[dict[str, Any]]) -> DecisionSchedule:
    """Parse recorded events into the causally-ordered decision schedule.

    Worker-merged events (``clock == "worker"``) never carry decision
    kinds but are skipped defensively; everything else is consumed in
    recorded seq order, which *is* the order the coordinator took the
    decisions (all decisions happen under the runtime lock).
    """
    sched = DecisionSchedule()
    gates = sched.gates
    for e in events:
        if e.get("clock") == "worker":
            continue
        kind = e.get("kind")
        if kind not in DECISION_KINDS:
            if kind == "run_result":
                sched.run_result = e
                if e.get("outcome"):
                    sched.outcome = e["outcome"]
            continue
        seq = int(e.get("seq", 0))
        vid = e.get("version")
        index = e.get("index")
        if kind == "spec_predict":
            gates.append(Gate("predict", seq, len(gates), vid, index))
        elif kind == "spec_launch":
            gkind = "respec" if e.get("reused") else "launch"
            gates.append(Gate(gkind, seq, len(gates), vid, index))
        elif kind in ("check_pass", "check_fail"):
            gkind = "final_verdict" if e.get("final") else "verdict"
            gates.append(Gate(
                gkind, seq, len(gates), vid, index,
                outcome="pass" if kind == "check_pass" else "fail",
                error=e.get("error"),
            ))
        elif kind == "spec_commit":
            sched.outcome = "commit"
            sched.commit_version = vid
        elif kind == "spec_recompute":
            sched.outcome = "recompute"
        # destroy_signal is a *consequence* of a failed verdict — it is
        # part of the equality signature but gates nothing by itself.
    return sched


def decision_signature(
    events: list[dict[str, Any]],
) -> list[tuple[Any, ...]]:
    """Order-sensitive signature of a run's decision events.

    Two runs with equal signatures took the same speculation decisions
    in the same order — the property replay tests assert. Timestamps,
    seqs and footprint sizes are excluded (timing-dependent); kinds,
    version ids, update indices and pass/fail verdicts are not.
    """
    sig: list[tuple[Any, ...]] = []
    for e in events:
        if e.get("clock") == "worker" or e.get("kind") not in DECISION_KINDS:
            continue
        sig.append((
            e["kind"], e.get("version"), e.get("index"),
            bool(e.get("final")), bool(e.get("reused")),
        ))
    return sig


class _Parked:
    """A deferred callback delivery (identity-compared, never __eq__)."""

    __slots__ = ("kind", "args")

    def __init__(self, kind: str, args: tuple) -> None:
        self.kind = kind
        self.args = args


class ReplayDirector(DecisionSource):
    """Forces a recorded :class:`DecisionSchedule` onto a live run.

    Sits on the decision/execution seam: the manager's entry points
    hand every asynchronous callback to the director, which delivers it
    only when the schedule cursor reaches the matching gate (early
    arrivals park; each consumed gate re-pumps the parking lot), and
    answers every predicate (speculate? check? accept? re-speculate?)
    from the recorded gate rather than the live policy.

    Safety properties (argued in docs/replay.md):

    * *silent* updates — ones with no recorded gate — are always safe
      to deliver immediately: every forced predicate returns False for
      them;
    * a recorded-stale callback (one that produced no event) is parked
      until its version is dead or the run finalized, then delivered
      into the manager's stale no-op path;
    * forcing never wedges the executor — a mismatch is *recorded* (the
      first one wins) and the run drains; :meth:`finish` raises after,
      so divergence is loud without deadlocking a live worker pool.
    """

    def __init__(self, schedule: DecisionSchedule) -> None:
        self.schedule = schedule
        self.gates = schedule.gates
        #: cursor: gates[:pos] are consumed, gates[pos] is next expected.
        self.pos = 0
        self.divergence: ReplayDivergence | None = None
        self._manager = None
        self._parked: list[_Parked] = []
        self._pumping = False
        self._verdict_gate: Gate | None = None
        self._predict_gate: dict[int, Gate] = {}
        self._launch_gate: dict[int, Gate] = {}
        self._check_by_index: dict[int, Gate] = {}
        self._final_gate: Gate | None = None
        for g in self.gates:
            if g.kind == "predict":
                self._predict_gate[g.index] = g
            elif g.kind == "launch":
                self._launch_gate[g.version] = g
            elif g.kind == "verdict":
                self._check_by_index[g.index] = g
            elif g.kind == "final_verdict":
                self._final_gate = g
        self._final_pos = (
            self._final_gate.pos if self._final_gate is not None
            else len(self.gates)
        )

    # -- lifecycle ------------------------------------------------------
    def bind(self, manager) -> None:
        if self._manager is not None and self._manager is not manager:
            raise ReplayError(
                "a ReplayDirector drives exactly one speculation domain; "
                "multi-domain replay is not supported"
            )
        self._manager = manager

    # -- divergence bookkeeping ----------------------------------------
    def _note(self, detail: str, seq: int | None) -> None:
        if self.divergence is None:
            self.divergence = ReplayDivergence(detail, seq)

    def first_unconsumed_seq(self) -> int | None:
        return self.gates[self.pos].seq if self.pos < len(self.gates) else None

    @property
    def pending(self) -> int:
        """Callbacks still parked (nonzero at the end means divergence)."""
        return len(self._parked)

    def finish(self) -> None:
        """Assert the whole recorded schedule was consumed; raise if not."""
        if self.divergence is not None:
            raise self.divergence
        if self.pos < len(self.gates):
            g = self.gates[self.pos]
            raise ReplayDivergence(
                f"recorded decision '{g.kind}' (version {g.version}, "
                f"index {g.index}) was never reached — "
                f"{len(self.gates) - self.pos} of {len(self.gates)} gates "
                f"unconsumed, {len(self._parked)} callback(s) undelivered",
                g.seq,
            )
        if self._parked:
            kinds = ", ".join(sorted({p.kind for p in self._parked}))
            raise ReplayDivergence(
                f"{len(self._parked)} callback(s) undelivered at end of "
                f"replay ({kinds}) — the run produced work the recording "
                "never saw"
            )

    # -- gate mechanics -------------------------------------------------
    def _consume(self, gate: Gate) -> None:
        assert self.gates[self.pos] is gate
        self.pos += 1

    def _deliverable(self, p: _Parked) -> bool:
        m = self._manager
        if p.kind == "update":
            index = p.args[0]
            g = self._predict_gate.get(index)
            if g is not None:
                return self.pos == g.pos
            c = self._check_by_index.get(index)
            if c is not None:
                v = m.active_version
                return (
                    v is not None and v.active and v.vid == c.version
                    and v.value is not None and self.pos <= c.pos
                )
            return True  # silent: no recorded decision at this index
        if p.kind == "prediction":
            version = p.args[0]
            g = self._launch_gate.get(version.vid)
            if g is None:  # never launched in the recording → stale path
                return (not version.active) or m.finalized
            return self.pos == g.pos
        if p.kind == "verdict":
            version, index = p.args[0], p.args[1]
            g = self._check_by_index.get(index)
            if g is None or g.version != version.vid:
                # no recorded counterpart → wait for the stale no-op path
                return (
                    version is not m.active_version or not version.active
                    or m.finalized
                )
            return self.pos == g.pos
        if p.kind == "final_ready":
            return self.pos == self._final_pos
        if p.kind == "final_verdict":
            g = self._final_gate
            return g is None or self.pos == g.pos
        raise AssertionError(p.kind)  # pragma: no cover

    def _deliver(self, p: _Parked) -> None:
        m = self._manager
        if p.kind == "update":
            m._process_update(*p.args)
        elif p.kind == "prediction":
            version = p.args[0]
            g = self._launch_gate.get(version.vid)
            if g is not None and self.pos == g.pos:
                self._consume(g)
            m._process_prediction_ready(*p.args)
        elif p.kind == "verdict":
            version, index = p.args[0], p.args[1]
            g = self._check_by_index.get(index)
            if g is not None and g.version == version.vid \
                    and self.pos == g.pos:
                self._consume(g)
                self._verdict_gate = g
            try:
                m._process_verdict(*p.args)
            finally:
                self._verdict_gate = None
        elif p.kind == "final_ready":
            m._process_final_ready(*p.args)
        elif p.kind == "final_verdict":
            g = self._final_gate
            if g is not None and self.pos == g.pos:
                self._consume(g)
                self._verdict_gate = g
            try:
                m._process_final_verdict(*p.args)
            finally:
                self._verdict_gate = None

    def _offer(self, p: _Parked) -> None:
        if self._deliverable(p):
            self._deliver(p)
            self._pump()
        else:
            self._parked.append(p)

    def _pump(self) -> None:
        """Deliver every parked callback that became deliverable.

        Loops to a fixed point: consuming a gate (or mutating manager
        state) can unlock further parked items. Reentrancy-guarded —
        deliveries run manager code that routes back through this
        director.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            progress = True
            while progress:
                progress = False
                for p in list(self._parked):
                    if p not in self._parked:  # identity check (__eq__ unset)
                        continue
                    if self._deliverable(p):
                        self._parked.remove(p)
                        self._deliver(p)
                        progress = True
        finally:
            self._pumping = False

    # -- delivery hooks -------------------------------------------------
    def on_update(self, manager, index: int, value: Any) -> None:
        self._offer(_Parked("update", (index, value)))

    def on_final(self, manager, value: Any) -> None:
        # The final predictor only *computes* the true value — the
        # decision point is the final verdict, gated via on_final_ready.
        manager._process_final(value)
        self._pump()

    def on_prediction_ready(self, manager, version, outputs) -> None:
        self._offer(_Parked("prediction", (version, outputs)))

    def on_verdict(self, manager, version, index, ref_value, outs) -> None:
        self._offer(_Parked("verdict", (version, index, ref_value, outs)))

    def on_final_ready(self, manager, ref_value, outs) -> None:
        self._offer(_Parked("final_ready", (ref_value, outs)))

    def on_final_verdict(self, manager, version, outs) -> None:
        self._offer(_Parked("final_verdict", (version, outs)))

    # -- forced predicates ----------------------------------------------
    def speculate_at(self, manager, index: int, had_rollback: bool) -> bool:
        g = self.gates[self.pos] if self.pos < len(self.gates) else None
        if g is None or g.kind != "predict" or g.index != index:
            return False
        expected = manager._vid + 1
        if g.version != expected:
            self._note(
                f"recorded speculation is v{g.version} but replay would "
                f"allocate v{expected}", g.seq)
        self._consume(g)
        return True

    def check_at(self, manager, version, index: int) -> bool:
        g = self._check_by_index.get(index)
        return g is not None and g.version == version.vid

    def accept(self, manager, version, index, error: float,
               *, final: bool = False) -> bool:
        g = self._verdict_gate
        if g is None:
            # A verdict with no recorded gate reached the live (non-stale)
            # path — only possible after an earlier mismatch.
            self._note(
                f"check verdict on v{version.vid} (index {index}) has no "
                "recorded counterpart", None)
            return True
        if g.error is not None and not math.isclose(
                error, g.error, rel_tol=1e-6, abs_tol=1e-9):
            self._note(
                f"check on v{version.vid} measured error {error!r}, "
                f"recording says {g.error!r} — input or code drifted",
                g.seq)
        return g.outcome == "pass"

    def respeculate_after_failure(self, manager, version, index: int) -> bool:
        g = self.gates[self.pos] if self.pos < len(self.gates) else None
        if g is None or g.kind != "respec" or g.index != index:
            return False
        expected = manager._vid + 1
        if g.version != expected:
            self._note(
                f"recorded re-speculation is v{g.version} but replay would "
                f"allocate v{expected}", g.seq)
        self._consume(g)
        return True


# ----------------------------------------------------------------------
# cascade accounting & counterfactual diffs


@dataclass
class CascadeSummary:
    """What a run's mis-speculation cascades cost, from its event log.

    The unit `repro replay --diff` compares between the recorded run and
    a counterfactual one (same input, different policy).
    """

    speculations: int = 0
    checks_passed: int = 0
    checks_failed: int = 0
    rollbacks: int = 0
    tasks_destroyed: int = 0
    buffer_discarded: int = 0
    wasted_us: float = 0.0
    shm_rollback_bytes: int = 0
    worker_crashes: int = 0
    task_retries: int = 0
    steals: int = 0
    commits: int = 0
    recomputes: int = 0
    outcome: str | None = None
    compressed_bits: int | None = None
    output_sha256: str | None = None

    @classmethod
    def from_events(cls, events: list[dict[str, Any]]) -> "CascadeSummary":
        s = cls()
        for e in events:
            kind = e.get("kind")
            if kind == "spec_predict":
                s.speculations += 1
            elif kind == "spec_launch" and e.get("reused"):
                s.speculations += 1  # re-speculation: no predict event
            elif kind == "check_pass":
                s.checks_passed += 1
            elif kind == "check_fail":
                s.checks_failed += 1
            elif kind == "destroy_signal":
                s.rollbacks += 1
            elif kind == "rollback_done":
                s.tasks_destroyed += int(e.get("tasks_destroyed", 0))
                s.buffer_discarded += int(e.get("buffer_discarded", 0))
                s.wasted_us += float(e.get("wasted_us", 0.0))
            elif kind == "shm_release" and e.get("reason") == "rollback":
                s.shm_rollback_bytes += int(e.get("nbytes", 0))
            elif kind == "worker_crash":
                s.worker_crashes += 1
            elif kind == "task_retry":
                s.task_retries += 1
            elif kind == "task_steal":
                s.steals += 1
            elif kind == "spec_commit":
                s.commits += 1
                s.outcome = s.outcome or "commit"
            elif kind == "spec_recompute":
                s.recomputes += 1
                s.outcome = s.outcome or "recompute"
            elif kind == "run_result":
                if e.get("outcome"):
                    s.outcome = e["outcome"]
                s.compressed_bits = e.get("compressed_bits")
                s.output_sha256 = e.get("output_sha256")
        return s


def render_diff(
    a: CascadeSummary, b: CascadeSummary,
    labels: tuple[str, str] = ("recorded", "counterfactual"),
) -> str:
    """Two-column cascade comparison with a delta column (b - a)."""
    rows: list[tuple[str, Any, Any]] = []
    for f in fields(CascadeSummary):
        rows.append((f.name.replace("_", " "),
                     getattr(a, f.name), getattr(b, f.name)))
    name_w = max(len(r[0]) for r in rows)

    def _fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.0f}"
        if v is None:
            return "-"
        text = str(v)
        return text[:12] + "…" if len(text) > 16 else text

    col_w = max(len(labels[0]), len(labels[1]),
                *(max(len(_fmt(va)), len(_fmt(vb))) for _, va, vb in rows))
    lines = [f"{'':{name_w}}  {labels[0]:>{col_w}}  {labels[1]:>{col_w}}  "
             f"{'delta':>10}"]
    for name, va, vb in rows:
        delta = ""
        if isinstance(va, (int, float)) and isinstance(vb, (int, float)) \
                and not isinstance(va, bool):
            d = vb - va
            delta = f"{d:+.0f}" if d else "0"
        elif va != vb:
            delta = "≠"
        lines.append(f"{name:{name_w}}  {_fmt(va):>{col_w}}  "
                     f"{_fmt(vb):>{col_w}}  {delta:>10}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# run reconstruction & entry points


def config_from_header(
    header: dict[str, Any] | None,
    *,
    events_out: str | None = None,
    overrides: dict[str, Any] | None = None,
):
    """Rebuild the recorded run's RunConfig from the log header.

    The header's ``meta.run_config`` (stamped by the experiment runner)
    is the full parameterisation; replay re-runs it with side outputs
    redirected (no trace, no metrics file, events to ``events_out`` or
    the in-memory ring only) and any counterfactual ``overrides``
    applied last. Raw-bytes workloads degrade to ``"custom"`` in the
    stamp and cannot be regenerated — a clear :class:`ReplayError`.
    """
    from repro.experiments.config import RunConfig

    meta = (header or {}).get("meta") or {}
    rc = meta.get("run_config")
    if not isinstance(rc, dict):
        raise ReplayError(
            "event log header carries no run_config — only logs recorded "
            "by `repro run --events-out` (or run_huffman with events_out) "
            "are replayable"
        )
    if rc.get("workload") == "custom":
        raise ReplayError(
            "recorded run used a raw-bytes workload; the input cannot be "
            "regenerated from the log — replay named workloads instead"
        )
    clean = dict(rc)
    clean.update(trace=False, metrics_out=None, events=True,
                 events_out=events_out)
    for key, value in (overrides or {}).items():
        if value is not None:
            clean[key] = value
    return RunConfig.from_kwargs(**clean)


@dataclass
class ReplayResult:
    """Everything one ``repro replay`` invocation produced."""

    header: dict[str, Any]
    schedule: DecisionSchedule
    report: Any  # RunReport
    #: True when force-overrides made this a counterfactual run (the
    #: recorded schedule was NOT forced — live decisions under the new
    #: policy).
    counterfactual: bool
    recorded: CascadeSummary
    replayed: CascadeSummary
    #: decision-signature equality recorded vs. replayed; None for
    #: counterfactual runs (inequality is the point there).
    schedule_match: bool | None


def replay_path(
    path: str,
    *,
    force: dict[str, Any] | None = None,
    events_out: str | None = None,
) -> ReplayResult:
    """Replay (or counterfactually re-run) a recorded event log.

    Faithful mode (no ``force``): re-executes under a
    :class:`ReplayDirector` and verifies the run end-to-end — schedule
    consumed, decision signatures equal, same outcome, same output
    sha256 — raising :class:`~repro.errors.ReplayDivergence` on the
    first mismatch. Counterfactual mode (any non-None ``force`` value,
    e.g. ``{"policy": "aggressive"}``): re-runs the recorded input under
    live decisions with the overrides applied; compare cascades via
    ``result.recorded`` / ``result.replayed`` (:func:`render_diff`).
    """
    from repro.experiments.runner import run_huffman

    header, events = read_event_log(path)
    schedule = extract_schedule(events)
    recorded = CascadeSummary.from_events(events)
    overrides = {k: v for k, v in (force or {}).items() if v is not None}
    cfg = config_from_header(header, events_out=events_out,
                             overrides=overrides)

    if overrides:
        report = run_huffman(config=cfg)
        replayed = CascadeSummary.from_events(_events_of(report))
        return ReplayResult(header, schedule, report, True,
                            recorded, replayed, None)

    director = ReplayDirector(schedule)
    try:
        report = run_huffman(config=cfg, decisions=director)
    except ExperimentError as exc:
        # A wedged schedule surfaces as an unfinished pipeline; convert
        # to the divergence that actually caused it.
        if director.divergence is not None:
            raise director.divergence from exc
        if director.first_unconsumed_seq() is not None or director.pending:
            raise ReplayDivergence(
                f"run failed before the recorded schedule completed: {exc}",
                director.first_unconsumed_seq()) from exc
        raise
    director.finish()

    replayed_events = _events_of(report)
    replayed = CascadeSummary.from_events(replayed_events)
    rr = schedule.run_result or {}
    recorded_sha = rr.get("output_sha256")
    replayed_sha = getattr(report, "output_sha256", None)
    if recorded_sha and replayed_sha and recorded_sha != replayed_sha:
        raise ReplayDivergence(
            f"output sha256 {replayed_sha[:12]}… != recorded "
            f"{recorded_sha[:12]}… (decision schedule matched — data or "
            "codec drifted)", rr.get("seq"))
    if schedule.outcome and replayed.outcome \
            and schedule.outcome != replayed.outcome:
        raise ReplayDivergence(
            f"outcome {replayed.outcome!r} != recorded "
            f"{schedule.outcome!r}", rr.get("seq"))

    rec_sig = decision_signature(events)
    rep_sig = decision_signature(replayed_events)
    match = rec_sig == rep_sig
    if not match:
        seq = _first_mismatch_seq(events, rec_sig, rep_sig)
        raise ReplayDivergence(
            f"decision schedules differ ({len(rec_sig)} recorded vs "
            f"{len(rep_sig)} replayed decision events)", seq)
    return ReplayResult(header, schedule, report, False,
                        recorded, replayed, match)


def _events_of(report: Any) -> list[dict[str, Any]]:
    log = getattr(report, "events", None)
    return log.events() if log is not None else []


def _first_mismatch_seq(
    events: list[dict[str, Any]],
    rec_sig: list[tuple[Any, ...]],
    rep_sig: list[tuple[Any, ...]],
) -> int | None:
    decision_seqs = [
        e.get("seq") for e in events
        if e.get("kind") in DECISION_KINDS and e.get("clock") != "worker"
    ]
    for i, rec in enumerate(rec_sig):
        if i >= len(rep_sig) or rep_sig[i] != rec:
            return decision_seqs[i] if i < len(decision_seqs) else None
    return None

"""The runtime core shared by both executors.

:class:`Runtime` owns the dynamic DFG, the split ready queues, memory
accounting, the trace and the always-on metrics registry
(:mod:`repro.obs`). It implements everything except *when* tasks run:
executors call :meth:`begin_task` / :meth:`finish_task` around execution and
read ready tasks through the dispatch policy.

Key behaviours:

* **Dynamic graph** — tasks/edges may be added at any time, including from
  completion hooks; connecting a consumer to an already-finished producer
  delivers the buffered value immediately (the DFG is a snapshot of dynamic
  execution, §II-A).
* **Abort flags** — aborting a READY task removes it from its queue;
  aborting a RUNNING task only flags it, and the executor discards its
  results on completion (§III-B).
* **Side-effect discipline** — only side-effect-free tasks may be
  speculative; enforced at task creation and at connect time for sinks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import TaskExecutionError, TaskStateError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder
from repro.sre.graph import DFG
from repro.sre.memory import MemoryLedger, sizeof_value
from repro.sre.queues import ReadyQueue
from repro.sre.supertask import SuperTask
from repro.sre.task import Task, TaskState

__all__ = ["Runtime"]


class Runtime:
    """Graph + scheduling state for one streaming program execution."""

    def __init__(
        self,
        *,
        trace: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
        events: EventLog | None = None,
        depth_first: bool = True,
        control_first: bool = True,
        track_memory: bool = True,
        decisions: object | None = None,
    ) -> None:
        self.graph = DFG()
        #: Optional :class:`~repro.core.decisions.DecisionSource` adopted
        #: by any SpeculationManager built over this runtime (the seam
        #: the replay director injects through — docs/replay.md). The
        #: runtime itself never consults it; typed loosely because sre/
        #: must not depend on core/.
        self.decisions = decisions
        self.trace = trace if trace is not None else TraceRecorder(enabled=False)
        #: Always-on counter surface (see docs/observability.md). Traces can
        #: be disabled wholesale for big sweeps; these counters are cheap
        #: enough to stay on, so long runs always have final accounting.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Structured event log with causal IDs (docs/flight-recorder.md).
        self.events = events if events is not None else EventLog()
        self._init_metrics()
        self.memory = MemoryLedger() if track_memory else None
        self.natural_queue = ReadyQueue(depth_first=depth_first, control_first=control_first)
        self.speculative_queue = ReadyQueue(depth_first=depth_first, control_first=control_first)
        self.root = SuperTask("root")
        self._clock: Callable[[], float] = lambda: 0.0
        self._ready_listeners: list[Callable[[Task], None]] = []
        self._complete_listeners: list[Callable[[Task, dict[str, Any]], None]] = []
        self._abort_listeners: list[Callable[[Task], None]] = []
        self._abort_flag_listeners: list[Callable[[Task], None]] = []
        self.tasks_completed = 0
        self.tasks_aborted = 0
        self.speculative_completed = 0
        self.speculative_aborted = 0

    def _init_metrics(self) -> None:
        """Create (or re-attach to) this runtime's instruments.

        Children for the speculative/non-speculative split are pre-bound so
        the per-task hot path costs two dict operations, no label lookup.
        """
        m = self.metrics
        self._m_ready = m.counter(
            "sre_tasks_ready", "tasks that entered a ready queue")
        completed = m.counter(
            "sre_tasks_completed", "tasks finished with usable outputs",
            labelnames=("speculative",))
        aborted = m.counter(
            "sre_tasks_aborted", "tasks destroyed by abort/rollback",
            labelnames=("speculative",))
        self._m_completed = {True: completed.labels(speculative="yes"),
                             False: completed.labels(speculative="no")}
        self._m_aborted = {True: aborted.labels(speculative="yes"),
                           False: aborted.labels(speculative="no")}
        self._m_failures = m.counter(
            "sre_task_failures", "task bodies that raised an exception")
        depth = m.gauge("sre_ready_depth", "ready-queue length",
                        labelnames=("queue",))
        self._m_depth_nat = depth.labels(queue="natural")
        self._m_depth_spec = depth.labels(queue="speculative")
        self._m_task_us = m.histogram(
            "sre_task_us",
            "task occupancy start→done in µs on the executor clock "
            "(virtual for sim, wall for threads/procs)",
            labelnames=("kind",))

    def _note_queue_depth(self) -> None:
        self._m_depth_nat.set(len(self.natural_queue))
        self._m_depth_spec.set(len(self.speculative_queue))

    # ------------------------------------------------------------------
    # wiring to an executor
    # ------------------------------------------------------------------
    def set_clock(self, clock: Callable[[], float]) -> None:
        """Install the executor's time source (simulated or wall-clock).

        The event log follows the same clock so event timestamps and
        latency histograms share a time base.
        """
        self._clock = clock
        self.events.set_clock(clock)

    @property
    def now(self) -> float:
        return self._clock()

    def add_ready_listener(self, fn: Callable[[Task], None]) -> None:
        """Executor hook: called whenever a task enters a ready queue."""
        self._ready_listeners.append(fn)

    def add_complete_listener(self, fn: Callable[[Task, dict[str, Any]], None]) -> None:
        """Observer hook: called after a task's outputs have been routed."""
        self._complete_listeners.append(fn)

    def add_abort_listener(self, fn: Callable[[Task], None]) -> None:
        """Observer hook: called when a task is aborted (any state)."""
        self._abort_listeners.append(fn)

    def add_abort_flag_listener(self, fn: Callable[[Task], None]) -> None:
        """Executor hook: called when a RUNNING task is *flagged* for abort.

        The task itself is only reaped later, at completion — but an
        executor whose workers live in another address space needs to relay
        the destroy signal immediately so the worker can observe it
        (paper §III-B's abort-flag mechanism, carried across processes).
        """
        self._abort_flag_listeners.append(fn)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task, supertask: SuperTask | None = None) -> Task:
        """Register a task; it becomes READY immediately if it has no inputs."""
        self.graph.add_task(task)
        (supertask or self.root).adopt(task)
        self.events.emit("task_spawn", task=task.name,
                         version=task.tags.get("spec_version"),
                         task_kind=task.kind,
                         speculative=task.speculative or None)
        if task.is_ready_to_schedule:
            self._make_ready(task)
        elif task.state is TaskState.CREATED:
            task.mark_blocked()
        return task

    def connect(self, src: Task, src_port: str, dst: Task, dst_port: str) -> None:
        """Add a dataflow edge; delivers retroactively if ``src`` already ran."""
        self.graph.connect(src, src_port, dst, dst_port)
        if src.state is TaskState.DONE and src.outputs is not None:
            if src_port in src.outputs:
                self._deliver(dst, dst_port, src.outputs[src_port])

    def connect_sink(self, src: Task, src_port: str, fn: Callable[[Any], None]) -> None:
        """Route an output to a callback at the graph boundary."""
        self.graph.connect_sink(src, src_port, fn)
        if src.state is TaskState.DONE and src.outputs is not None:
            if src_port in src.outputs:
                fn(src.outputs[src_port])

    def deliver_external(self, task: Task, port: str, value: Any) -> None:
        """Inject a value from outside the graph (I/O arrival)."""
        self._deliver(task, port, value)

    # ------------------------------------------------------------------
    # readiness
    # ------------------------------------------------------------------
    def _deliver(self, task: Task, port: str, value: Any) -> None:
        if task.state in (TaskState.ABORTED, TaskState.DONE, TaskState.RUNNING):
            # Data racing against a rollback or late wiring: drop silently —
            # the replacement task (if any) gets its own edges.
            if task.state is TaskState.ABORTED:
                return
            raise TaskStateError(
                f"delivery to task {task.name!r} in state {task.state}"
            )
        if task.deliver(port, value):
            self._make_ready(task)

    def _make_ready(self, task: Task) -> None:
        task.mark_ready(self.now)
        queue = self.speculative_queue if task.speculative else self.natural_queue
        queue.push(task)
        self._m_ready.inc()
        self._note_queue_depth()
        self.trace.record(self.now, "task_ready", task.name, task_kind=task.kind,
                          speculative=task.speculative)
        self.events.emit("task_ready", task=task.name,
                         version=task.tags.get("spec_version"))
        for fn in list(self._ready_listeners):
            fn(task)

    # ------------------------------------------------------------------
    # execution protocol (called by executors)
    # ------------------------------------------------------------------
    def begin_task(self, task: Task, *, worker: int | None = None) -> None:
        """Transition a dispatched task to RUNNING.

        Args:
            task: the task an executor took from a ready queue.
            worker: id of the worker slot that will run it, when the
                executor knows (recorded in the trace so per-worker Gantt
                views work identically for sim and live runs).
        """
        task.mark_running(self.now)
        self._note_queue_depth()
        detail: dict[str, Any] = {"task_kind": task.kind,
                                  "speculative": task.speculative}
        if worker is not None:
            detail["worker"] = worker
        self.trace.record(self.now, "task_start", task.name, **detail)
        self.events.emit("task_dispatch", task=task.name,
                         version=task.tags.get("spec_version"), worker=worker)

    def finish_task(
        self,
        task: Task,
        outputs: dict[str, Any] | None = None,
        *,
        precomputed: bool = False,
        worker: int | None = None,
    ) -> dict[str, Any] | None:
        """Complete a RUNNING task: execute, route, notify.

        If the task was abort-flagged while running, its results are
        discarded (by default the function is not even executed — its output
        could never be observed) and the task ends ABORTED. Returns the
        routed outputs, or None when aborted.

        The threaded executor computes task functions outside the runtime
        lock and passes the result via ``outputs`` with ``precomputed=True``;
        the simulated executor lets this method execute the function.
        ``worker`` (optional) tags the trace record with the worker slot
        that ran the task, mirroring :meth:`begin_task`.
        """
        if task.abort_requested:
            if precomputed and task.undo is not None and not task.side_effect_free:
                # The threaded executor already ran the function (outside
                # the lock); its side effects must be compensated.
                task.undo(task)
                self.trace.record(self.now, "undo", task.name, task_kind=task.kind)
            task.mark_done(self.now)  # normal end of occupancy...
            task.state = TaskState.ABORTED  # ...but reaped with its content
            self.tasks_aborted += 1
            if task.speculative:
                self.speculative_aborted += 1
            self._m_aborted[task.speculative].inc()
            self.trace.record(self.now, "task_abort", task.name, task_kind=task.kind,
                              speculative=task.speculative, while_running=True)
            ran_us = (task.finish_time - task.start_time
                      if task.start_time is not None and task.finish_time is not None
                      else None)
            self.events.emit("task_abort", task=task.name,
                             version=task.tags.get("spec_version"),
                             cause=task.abort_cause, while_running=True,
                             ran_us=ran_us)
            for fn in list(self._abort_listeners):
                fn(task)
            return None
        if not precomputed:
            try:
                outputs = task.run()
            except Exception as exc:
                # A failing task poisons its whole dependence cone; surface a
                # contextualised error instead of a bare traceback from deep
                # inside an executor event. The task and its dependents are
                # aborted first so the runtime stays consistent for
                # inspection.
                task.mark_done(self.now)
                task.state = TaskState.ABORTED
                self.tasks_aborted += 1
                self._m_aborted[task.speculative].inc()
                self._m_failures.inc()
                self.trace.record(self.now, "task_failed", task.name,
                                  task_kind=task.kind, error=repr(exc))
                failed_seq = self.events.emit(
                    "task_failed", task=task.name,
                    version=task.tags.get("spec_version"), error=repr(exc))
                with self.events.cause(failed_seq):
                    self.abort_dependents([task], include_roots=False)
                raise TaskExecutionError(task.name, exc) from exc
        elif outputs is None:
            outputs = {}
        task.outputs = outputs
        task.mark_done(self.now)
        self.tasks_completed += 1
        if task.speculative:
            self.speculative_completed += 1
        self._m_completed[task.speculative].inc()
        if task.start_time is not None and task.finish_time is not None:
            self._m_task_us.labels(kind=task.kind).observe(
                task.finish_time - task.start_time)
        if self.memory is not None:
            self.memory.allocate(task.name, sizeof_value(outputs), task.speculative)
        detail = {"task_kind": task.kind, "speculative": task.speculative}
        if worker is not None:
            detail["worker"] = worker
        self.trace.record(self.now, "task_done", task.name, **detail)
        self.events.emit("task_done", task=task.name,
                         version=task.tags.get("spec_version"), worker=worker,
                         dur_us=(task.finish_time - task.start_time
                                 if task.start_time is not None else None))
        self._route_outputs(task, outputs)
        if task.supertask is not None:
            task.supertask.notify_child_complete(task, outputs)
        for hook in list(task.on_complete):
            hook(task, outputs)
        for fn in list(self._complete_listeners):
            fn(task, outputs)
        return outputs

    def _route_outputs(self, task: Task, outputs: dict[str, Any]) -> None:
        for edge in self.graph.out_edges(task):
            if edge.src_port in outputs:
                self._deliver(edge.dst, edge.dst_port, outputs[edge.src_port])
        for (port, value) in outputs.items():
            for sink in self.graph.sinks_for(task, port):
                sink(value)

    # ------------------------------------------------------------------
    # aborts (rollback support)
    # ------------------------------------------------------------------
    def abort_task(self, task: Task) -> None:
        """Abort one task, whatever its state (idempotent).

        READY tasks leave their queue; RUNNING tasks are flagged; DONE
        tasks have their results' memory accounting discarded.
        """
        if task.state is TaskState.ABORTED:
            return
        if task.state is TaskState.DONE:
            if task.undo is not None and not task.side_effect_free:
                # User-defined rollback routine (§II extension): compensate
                # the side effects the completed task already performed.
                task.undo(task)
                self.trace.record(self.now, "undo", task.name, task_kind=task.kind)
            if self.memory is not None:
                self.memory.discard(task.name)
            task.state = TaskState.ABORTED
            self.tasks_aborted += 1
            if task.speculative:
                self.speculative_aborted += 1
            self._m_aborted[task.speculative].inc()
            self.trace.record(self.now, "task_abort", task.name, task_kind=task.kind,
                              speculative=task.speculative, after_done=True)
            self.events.emit("task_abort", task=task.name,
                             version=task.tags.get("spec_version"),
                             after_done=True,
                             ran_us=(task.finish_time - task.start_time
                                     if task.start_time is not None
                                     and task.finish_time is not None
                                     else None))
            for fn in list(self._abort_listeners):
                fn(task)
            return
        was_ready = task.state is TaskState.READY
        reaped = task.request_abort()
        if reaped:
            if was_ready:
                queue = self.speculative_queue if task.speculative else self.natural_queue
                queue.discard_aborted(task)
                self._note_queue_depth()
            self.tasks_aborted += 1
            if task.speculative:
                self.speculative_aborted += 1
            self._m_aborted[task.speculative].inc()
            self.trace.record(self.now, "task_abort", task.name, task_kind=task.kind,
                              speculative=task.speculative)
            self.events.emit("task_abort", task=task.name,
                             version=task.tags.get("spec_version"),
                             was_ready=was_ready or None)
            for fn in list(self._abort_listeners):
                fn(task)
            return
        # RUNNING: flagged only; finish_task finalises the abort — remember
        # who ordered the destruction so the eventual task_abort event still
        # points at its destroy signal. Relay the flag to executors whose
        # workers cannot see coordinator memory.
        task.abort_cause = self.events.current_cause()
        self.events.emit("task_abort_flag", task=task.name,
                         version=task.tags.get("spec_version"))
        for fn in list(self._abort_flag_listeners):
            fn(task)

    def abort_dependents(self, roots: Iterable[Task], include_roots: bool = True) -> list[Task]:
        """Propagate a destroy signal down the dependence chain (§III-B).

        Returns the tasks that were aborted (or flagged), in BFS order.
        """
        footprint = self.graph.dependents(roots, include_roots=include_roots)
        for task in footprint:
            self.abort_task(task)
        return footprint

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ready_counts(self) -> tuple[int, int]:
        """(natural, speculative) ready-queue lengths."""
        return (len(self.natural_queue), len(self.speculative_queue))

    def pending_tasks(self) -> list[Task]:
        """Tasks not yet in a terminal state (diagnostics)."""
        return [
            t for t in self.graph.tasks()
            if t.state not in (TaskState.DONE, TaskState.ABORTED)
        ]

    def stats(self) -> dict[str, int]:
        """Execution counters for reports."""
        out = {
            "tasks_completed": self.tasks_completed,
            "tasks_aborted": self.tasks_aborted,
            "speculative_completed": self.speculative_completed,
            "speculative_aborted": self.speculative_aborted,
            "graph_size": len(self.graph),
        }
        if self.memory is not None:
            out.update(self.memory.summary())
        return out

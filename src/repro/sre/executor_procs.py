"""Process-pool executor — the SRE across address spaces, outside the GIL.

The third back-end (after the simulated and threaded executors). Every
runtime decision — graph, queues, dispatch policy, speculation, rollback —
stays on the coordinator, exactly as on the other two back-ends; only task
*bodies* are shipped, as pickled ``(fn, inputs)`` payloads, to a pool of
worker processes. Pure-Python kernels therefore run truly in parallel:
one coordinator thread per worker blocks on its worker's pipe while the
worker computes, so the coordinator spends its time in I/O waits, not
bytecode.

This mirrors the paper's Cell back-end more closely than threads ever
could: a control processor runs the runtime, compute elements in separate
address spaces run kernels, and working sets cross the boundary explicitly
(with a per-task footprint budget in the spirit of the 32 KB local-store
cap — see :class:`~repro.platforms.localstore.LocalStore`).

Two transport refinements keep the pipe off the critical path:

* **shared-memory refs** — payloads built over a
  :class:`~repro.sre.shm.BlockStore` carry
  :class:`~repro.sre.shm.BlockRef` handles instead of block bytes; workers
  attach each segment lazily, once, and resolve refs zero-copy. The budget
  check counts the *referenced* bytes (``Task.payload_footprint``), not
  the handle bytes, and ``procs_payload_bytes_avoided`` accounts what
  stayed off the wire.
* **batching** — when the ready queues hold more work than there are idle
  workers, small payloads ride along in one pipe message (one header +
  payload frames, one reply list), amortising syscalls and wakeups across
  kernels. Batching never starves parallelism: extras are taken only
  while every idle worker still has a task left in the queues.

Three classes of task never leave the coordinator:

* **control tasks** (predict / verify / check) — tiny and latency-critical,
  they run inline, as the Cell PPE runs control code;
* **unpicklable payloads** (closures over coordinator state) — run inline
  rather than failing, so pipelines mixing shippable kernels with
  closure-based glue work unmodified;
* tasks whose payload footprint exceeds the budget — these *fail*
  (configuration error), matching the local-store discipline.

Abort flags cross the process boundary through a shared byte array: when a
RUNNING task is flagged, the coordinator raises its worker's flag; a worker
observes the flag before starting a received payload and skips execution.
Work the worker has already started cannot be recalled — the coordinator
reaps its result on completion, the paper's destroy-signal protocol
(§III-B) verbatim. A skipped batch member that was *not* itself aborted
(innocent bystander of a raised flag), or one whose shared segment
disappeared under a racing rollback (``SegmentGone``), is re-run inline on
the coordinator — the authoritative mapping there outlives the unlink.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from typing import Any

import threading

from repro.errors import PlatformError, SchedulingError, SegmentGone, TaskStateError
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.sre import shm
from repro.sre.executor_base import LiveExecutor
from repro.sre.policies import DispatchPolicy
from repro.sre.registry import register_executor
from repro.sre.runtime import Runtime
from repro.sre.task import PAYLOAD_PROTOCOL, Task

__all__ = ["ProcessExecutor", "DEFAULT_PAYLOAD_BUDGET", "DEFAULT_BATCH_MAX",
           "DEFAULT_BATCH_BYTES"]

#: Default per-task payload-footprint cap (bytes): wire bytes plus bytes of
#: every shared-memory block the payload references. Far roomier than the
#: Cell's 32 KB local-store slots — pipes and mmaps don't mind — but the
#: discipline is the same: a task that drags megabytes of captured state to
#: a worker is a pipeline bug, and it should fail loudly at dispatch.
DEFAULT_PAYLOAD_BUDGET = 8 * 1024 * 1024

#: Most tasks a coordinator thread ships in one pipe message.
DEFAULT_BATCH_MAX = 8

#: Only payloads at or below this wire size are batched; bigger ones ship
#: alone so a long transfer never delays unrelated small kernels.
DEFAULT_BATCH_BYTES = 64 * 1024

#: Worker wire protocol: reply status tags and the stop sentinel. One
#: request is a pickled frame count followed by that many payload frames;
#: the reply is one pickled list of ``(status, payload)`` pairs, aligned
#: with the request frames.
_OK = "ok"
_ERR = "error"
_SKIPPED = "abort-skipped"
_GONE = "segment-gone"
_METRICS = "metrics"
_STOP = b"\x00__sre_stop__"


def _process_main(conn, abort_flags, wid: int) -> None:
    """Worker-process loop: receive payload batches, observe abort flags,
    reply once per batch.

    Module-level so it imports cleanly under any multiprocessing start
    method. The worker owns no runtime state — it is a pure payload engine.
    Shared-memory segments referenced by payloads are attached lazily (the
    first ref into a segment pays the map; every later ref is a pointer),
    and detached when the stop sentinel arrives.

    Each worker keeps its own :class:`~repro.obs.metrics.MetricsRegistry`
    (payload counts, errors, abort skips, body wall time, attached
    segments) and its own :class:`~repro.obs.events.EventLog` (one
    ``worker_exec`` event per payload); on the stop sentinel it sends both
    back up the pipe as a final ``(_METRICS, {"metrics": ..., "events":
    ...})`` reply — the coordinator folds the snapshot into the run's
    registry and reconciles the events into the run's log with fresh
    coordinator seqs (cross-process aggregation over the existing wire,
    no extra channel).
    """
    metrics = MetricsRegistry()
    events = EventLog(run_id=f"w{wid}")
    w = str(wid)
    m_tasks = metrics.counter(
        "procs_worker_tasks", "payloads executed in worker processes",
        labelnames=("worker",)).labels(worker=w)
    m_errors = metrics.counter(
        "procs_worker_errors", "payloads that raised in worker processes",
        labelnames=("worker",)).labels(worker=w)
    m_skips = metrics.counter(
        "procs_worker_abort_skips",
        "payloads skipped because the destroy signal landed first",
        labelnames=("worker",)).labels(worker=w)
    m_gone = metrics.counter(
        "procs_worker_segment_gone",
        "payloads bounced because a shared segment was already reclaimed",
        labelnames=("worker",)).labels(worker=w)
    m_body_us = metrics.histogram(
        "procs_worker_body_us", "payload body wall time in worker (µs)",
        labelnames=("worker",)).labels(worker=w)
    m_attached = metrics.gauge(
        "procs_worker_shm_attached",
        "shared-memory segments a worker had attached at shutdown",
        labelnames=("worker",)).labels(worker=w)
    while True:
        try:
            head = conn.recv_bytes()
        except (EOFError, OSError):
            return
        if head == _STOP:
            m_attached.set(len(shm.attached_segments()))
            try:
                conn.send((_METRICS, {"metrics": metrics.snapshot(),
                                      "events": events.events()}))
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                pass
            shm.detach_all()
            return
        try:
            n = pickle.loads(head)
            blobs = [conn.recv_bytes() for _ in range(n)]
        except (EOFError, OSError):
            return
        replies: list[tuple[str, Any]] = []
        for blob in blobs:
            if abort_flags[wid]:
                # Destroy signal observed before launch: skip the body.
                # The coordinator re-runs any batch member that was not
                # actually aborted, so over-skipping is always safe.
                m_skips.inc()
                events.emit("worker_exec", status="abort-skipped",
                            wire_bytes=len(blob))
                replies.append((_SKIPPED, None))
                continue
            t0 = time.perf_counter()
            try:
                outputs = Task.run_payload(blob)
            except SegmentGone as exc:
                m_gone.inc()
                events.emit("worker_exec", status="segment-gone",
                            wire_bytes=len(blob))
                replies.append((_GONE, str(exc)))
                continue
            except BaseException:
                m_errors.inc()
                events.emit("worker_exec", status="error",
                            wire_bytes=len(blob))
                replies.append((_ERR, traceback.format_exc()))
                continue
            dur_us = (time.perf_counter() - t0) * 1e6
            m_tasks.inc()
            m_body_us.observe(dur_us)
            events.emit("worker_exec", status="ok", dur_us=dur_us,
                        wire_bytes=len(blob))
            replies.append((_OK, outputs))
        try:
            conn.send(replies)
        except Exception:
            # Some output refused to pickle: degrade only the offending
            # replies to errors, keep the rest of the batch intact.
            safe: list[tuple[str, Any]] = []
            for status, payload in replies:
                if status == _OK:
                    try:
                        pickle.dumps(payload, protocol=PAYLOAD_PROTOCOL)
                    except Exception as exc:
                        status, payload = _ERR, (
                            "task outputs could not cross the process "
                            f"boundary: {exc!r}")
                safe.append((status, payload))
            conn.send(safe)


class _WorkerCrash(RuntimeError):
    """A worker process reported a payload failure (carries its traceback)."""


class ProcessExecutor(LiveExecutor):
    """Runs a :class:`~repro.sre.runtime.Runtime` on a process pool.

    Args:
        runtime: the runtime to drive.
        policy: dispatch policy (same vocabulary as every executor).
        workers: worker processes (and paired coordinator threads).
        payload_budget: per-task payload-footprint cap in bytes (wire
            bytes + referenced shared-memory bytes).
        batch_max: most tasks shipped in one pipe message (1 disables
            batching).
        batch_bytes: only payloads at or below this wire size are batched.
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, inherits imports) where available.
    """

    def __init__(
        self,
        runtime: Runtime,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int = 4,
        payload_budget: int = DEFAULT_PAYLOAD_BUDGET,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        start_method: str | None = None,
    ) -> None:
        super().__init__(runtime, policy=policy, workers=workers)
        if payload_budget < 1:
            raise SchedulingError("payload_budget must be positive")
        if batch_max < 1:
            raise SchedulingError("batch_max must be >= 1")
        self.payload_budget = payload_budget
        self.batch_max = batch_max
        self.batch_bytes = batch_bytes
        if start_method is not None:
            self._ctx = multiprocessing.get_context(start_method)
        else:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._ctx = multiprocessing.get_context()
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._conns: list[Any] = []
        self._abort_flags = None
        #: all tasks currently in flight on each worker (a batch is a list).
        self._current: list[list[Task]] = [[] for _ in range(workers)]
        #: Introspection counters (coordinator-lock protected). Mirrored as
        #: registry metrics (procs_tasks_shipped / _inline / payload_bytes)
        #: so exporters see them without touching executor internals.
        self.tasks_shipped = 0
        self.tasks_inline = 0
        self.payload_bytes = 0
        self.payload_bytes_avoided = 0
        self.batches = 0
        m = runtime.metrics
        self._m_shipped = m.counter(
            "procs_tasks_shipped", "task payloads shipped to worker processes")
        self._m_inline = m.counter(
            "procs_tasks_inline",
            "tasks run inline on the coordinator (control/unpicklable)")
        self._m_payload_bytes = m.counter(
            "procs_payload_bytes", "serialized payload bytes sent to workers")
        self._m_bytes_avoided = m.counter(
            "procs_payload_bytes_avoided",
            "bytes that stayed in shared memory instead of crossing the pipe")
        self._m_batches = m.counter(
            "procs_batches", "pipe messages carrying more than one payload")
        self._m_batched = m.counter(
            "procs_batched_tasks", "payloads that rode along in a batch")
        self._m_reruns = m.counter(
            "procs_inline_reruns",
            "worker-skipped payloads re-run inline on the coordinator")
        #: Budget-pressure pair for the anomaly detectors: configured cap
        #: vs the largest footprint actually shipped.
        m.gauge("procs_payload_budget_bytes",
                "configured per-task payload-footprint cap").set(payload_budget)
        self._m_max_footprint = m.gauge(
            "procs_payload_max_footprint_bytes",
            "largest payload footprint (wire + referenced shm bytes) seen")
        self._max_footprint = 0
        self._footprint_lock = threading.Lock()
        runtime.add_abort_flag_listener(self._on_abort_flagged)

    # ------------------------------------------------------------------
    # substrate lifecycle
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        # The shared-memory resource tracker must exist *before* workers
        # fork: a worker that attaches a segment registers it with its
        # inherited tracker. If the tracker only starts after the fork,
        # each worker spawns a private one, and a private tracker unlinks
        # every registered segment when its worker exits — yanking live
        # segments out from under the coordinator.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        self._abort_flags = self._ctx.Array("b", self.n_workers, lock=False)
        for wid in range(self.n_workers):
            parent, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_process_main,
                args=(child, self._abort_flags, wid),
                name=f"sre-proc-{wid}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def _stop_backend(self) -> None:
        """Stop workers, harvesting each one's metrics and events first.

        By the time this runs the coordinator threads have joined, so the
        pipes are quiet: the only traffic left is our stop sentinel and the
        worker's final ``(_METRICS, {"metrics": ..., "events": ...})``
        reply — the snapshot is folded into ``runtime.metrics`` and the
        worker's event batch is reconciled into ``runtime.events`` with
        fresh coordinator seqs (cross-process aggregation).
        """
        for conn in self._conns:
            try:
                conn.send_bytes(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for wid, conn in enumerate(self._conns):
            try:
                if conn.poll(2.0):
                    status, payload = conn.recv()
                    if status == _METRICS and payload:
                        self.runtime.metrics.merge_snapshot(payload["metrics"])
                        self.runtime.events.merge_worker(
                            wid, payload["events"])
            except (EOFError, OSError):  # pragma: no cover - worker died
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._procs.clear()
        self._conns.clear()

    # ------------------------------------------------------------------
    # abort-flag relay (coordinator -> worker address space)
    # ------------------------------------------------------------------
    def _on_abort_flagged(self, task: Task) -> None:
        # Runs under the executor lock (all runtime mutation does), so
        # _current is consistent; the flag write itself is a raw byte store
        # the worker polls without any lock.
        if self._abort_flags is None:
            return
        for wid, current in enumerate(self._current):
            if task in current:
                self._abort_flags[wid] = 1

    def _note_dispatch(self, wid: int, task: Task) -> None:
        current = self._current[wid]
        current.append(task)
        if self._abort_flags is not None and not any(
            t.abort_requested for t in current
        ):
            # Reset only when no in-flight batch member is flagged — a
            # destroy signal raised for an earlier member must survive
            # later members joining the batch.
            self._abort_flags[wid] = 0

    def _note_complete(self, wid: int, task: Task) -> None:
        current = self._current[wid]
        try:
            current.remove(task)
        except ValueError:  # pragma: no cover - defensive
            pass
        if self._abort_flags is not None and not any(
            t.abort_requested for t in current
        ):
            self._abort_flags[wid] = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _serialize_or_none(self, task: Task) -> bytes | None:
        if task.control:
            return None
        try:
            return task.serialize_payload()
        except TaskStateError:
            return None  # closure-captured payload: coordinator runs it

    def _check_budget(self, task: Task, blob: bytes) -> None:
        footprint = len(blob) + task.referenced_bytes()
        with self._footprint_lock:
            if footprint > self._max_footprint:
                self._max_footprint = footprint
                self._m_max_footprint.set(footprint)
        if footprint > self.payload_budget:
            raise PlatformError(
                f"task {task.name!r}: payload footprint {footprint} B "
                f"({len(blob)} B wire + referenced shared blocks) exceeds "
                f"the process back-end budget {self.payload_budget} B "
                "(cf. the Cell local-store per-task cap)"
            )

    def _run_inline(self, task: Task) -> dict[str, Any]:
        with self._cond:
            self.tasks_inline += 1
        self._m_inline.inc()
        return task.run()

    def _take_extras(
        self, wid: int
    ) -> tuple[list[tuple[Task, bytes]], list[Task], list[tuple[Task, PlatformError]]]:
        """Pop extra ready tasks to ride along in this worker's batch.

        Called under the lock. Extras are taken only while the ready
        queues hold more tasks than there are idle workers — batching
        amortises pipe traffic without ever serialising work an idle
        worker could overlap. Control/unpicklable extras are returned for
        inline execution (they were already accounted as dispatched);
        budget violators are returned as failures.
        """
        shippable: list[tuple[Task, bytes]] = []
        inline: list[Task] = []
        failed: list[tuple[Task, PlatformError]] = []
        while len(shippable) + 1 < self.batch_max:
            nat = self.runtime.natural_queue
            spec = self.runtime.speculative_queue
            idle = self.n_workers - self._inflight
            if len(nat) + len(spec) <= idle:
                break
            extra = self.policy.select(nat, spec)
            if extra is None:
                break
            self._begin_dispatch(wid, extra)
            blob = None if extra.abort_requested else self._serialize_or_none(extra)
            if blob is None:
                inline.append(extra)
                continue
            if len(blob) > self.batch_bytes:
                # Too big to ride along; run it inline rather than delaying
                # the batch (it was already popped and accounted).
                inline.append(extra)
                continue
            try:
                self._check_budget(extra, blob)
            except PlatformError as exc:
                failed.append((extra, exc))
                continue
            shippable.append((extra, blob))
        return shippable, inline, failed

    def _finish_inline_extra(self, wid: int, extra: Task) -> None:
        failure: BaseException | None = None
        outputs: dict[str, Any] = {}
        t0 = self._clock()
        if not extra.abort_requested:
            with self._cond:
                self.tasks_inline += 1
            self._m_inline.inc()
            try:
                outputs = extra.run()
            except Exception as exc:
                failure = exc
        self._finish_dispatch(wid, extra, outputs, failure,
                              wall_us=self._clock() - t0)

    def _rerun_or_reap(self, task: Task) -> tuple[dict[str, Any], BaseException | None]:
        """Resolve a ``_SKIPPED``/``_GONE`` reply for one batch member.

        An actually-aborted task is reaped (empty outputs + its abort
        flag); an innocent bystander is re-run inline — the coordinator's
        segment mappings outlive any unlink, so ``SegmentGone`` cannot
        recur here.
        """
        if task.abort_requested:
            return {}, None
        self._m_reruns.inc()
        try:
            return task.run(), None
        except Exception as exc:
            return {}, exc

    def _execute(self, wid: int, task: Task) -> dict[str, Any]:
        """Run one task: ship its payload (plus ready small extras) to
        worker ``wid``, or run inline.

        Control tasks and closure-captured payloads run on the coordinator
        (see the module docstring); everything else is serialized, checked
        against ``payload_budget`` (wire + referenced shared bytes), sent
        down worker ``wid``'s pipe — batched with extra small ready
        payloads when the queues are deeper than the idle-worker count —
        and the reply awaited: the coordinator thread blocks in an I/O
        wait, not in bytecode, which is what lets pure-Python kernels
        overlap. Raises :class:`~repro.errors.PlatformError` on budget
        violation and re-raises worker-side failures as
        :class:`_WorkerCrash`.
        """
        blob = self._serialize_or_none(task)
        if blob is None:
            return self._run_inline(task)
        self._check_budget(task, blob)
        extras: list[tuple[Task, bytes]] = []
        inline_extras: list[Task] = []
        failed_extras: list[tuple[Task, PlatformError]] = []
        if self.batch_max > 1 and len(blob) <= self.batch_bytes:
            with self._cond:
                extras, inline_extras, failed_extras = self._take_extras(wid)

        frames = [blob] + [b for (_t, b) in extras]
        shipped = [task] + [t for (t, _b) in extras]
        conn = self._conns[wid]
        conn.send_bytes(pickle.dumps(len(frames), protocol=PAYLOAD_PROTOCOL))
        for frame in frames:
            conn.send_bytes(frame)
        wire = sum(len(f) for f in frames)
        avoided = sum(t.referenced_bytes() for t in shipped)
        with self._cond:
            self.tasks_shipped += len(frames)
            self.payload_bytes += wire
            self.payload_bytes_avoided += avoided
            if len(frames) > 1:
                self.batches += 1
        self._m_shipped.inc(len(frames))
        self._m_payload_bytes.inc(wire)
        if avoided:
            self._m_bytes_avoided.inc(avoided)
        if len(frames) > 1:
            self._m_batches.inc()
            self._m_batched.inc(len(extras))
        for t in shipped:
            t.drop_payload_cache()

        # While the worker chews on the batch, the coordinator handles the
        # extras that could not ship and the budget violators.
        for extra, exc in failed_extras:
            self._finish_dispatch(wid, extra, {}, exc)
        for extra in inline_extras:
            self._finish_inline_extra(wid, extra)

        t0 = self._clock()
        replies = conn.recv()
        batch_wall = self._clock() - t0
        for (extra, _b), (status, payload) in zip(extras, replies[1:]):
            outputs: dict[str, Any] = {}
            failure: BaseException | None = None
            if status == _OK:
                outputs = payload
            elif status == _ERR:
                failure = _WorkerCrash(payload)
            else:  # _SKIPPED / _GONE
                outputs, failure = self._rerun_or_reap(extra)
            self._finish_dispatch(wid, extra, outputs, failure,
                                  wall_us=batch_wall)

        status, payload = replies[0]
        if status == _ERR:
            raise _WorkerCrash(payload)
        if status in (_SKIPPED, _GONE):
            outputs, failure = self._rerun_or_reap(task)
            if failure is not None:
                raise failure
            return outputs
        return payload


register_executor("procs", ProcessExecutor)

"""Process-pool executor — the SRE across address spaces, outside the GIL.

The third back-end (after the simulated and threaded executors). Every
runtime decision — graph, queues, dispatch policy, speculation, rollback —
stays on the coordinator, exactly as on the other two back-ends; only task
*bodies* are shipped, as pickled ``(fn, inputs)`` payloads, to a pool of
worker processes. Pure-Python kernels therefore run truly in parallel:
one coordinator thread per worker blocks on its worker's pipe while the
worker computes, so the coordinator spends its time in I/O waits, not
bytecode.

This mirrors the paper's Cell back-end more closely than threads ever
could: a control processor runs the runtime, compute elements in separate
address spaces run kernels, and working sets cross the boundary explicitly
(with a per-task footprint budget in the spirit of the 32 KB local-store
cap — see :class:`~repro.platforms.localstore.LocalStore`).

Three classes of task never leave the coordinator:

* **control tasks** (predict / verify / check) — tiny and latency-critical,
  they run inline, as the Cell PPE runs control code;
* **unpicklable payloads** (closures over coordinator state) — run inline
  rather than failing, so pipelines mixing shippable kernels with
  closure-based glue work unmodified;
* tasks whose serialized footprint exceeds the payload budget — these
  *fail* (configuration error), matching the local-store discipline.

Abort flags cross the process boundary through a shared byte array: when a
RUNNING task is flagged, the coordinator raises its worker's flag; a worker
observes the flag before starting a received payload and skips execution.
Work the worker has already started cannot be recalled — the coordinator
reaps its result on completion, the paper's destroy-signal protocol
(§III-B) verbatim.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any

from repro.errors import PlatformError, SchedulingError, TaskStateError
from repro.obs.metrics import MetricsRegistry
from repro.sre.executor_base import LiveExecutor
from repro.sre.policies import DispatchPolicy
from repro.sre.runtime import Runtime
from repro.sre.task import Task

__all__ = ["ProcessExecutor", "DEFAULT_PAYLOAD_BUDGET"]

#: Default per-task serialized-footprint cap (bytes). Far roomier than the
#: Cell's 32 KB local-store slots — pipes don't mind — but the discipline is
#: the same: a task that drags megabytes of captured state to a worker is a
#: pipeline bug, and it should fail loudly at dispatch, not slowly at run.
DEFAULT_PAYLOAD_BUDGET = 8 * 1024 * 1024

#: Worker wire protocol: reply status tags and the stop sentinel.
_OK = "ok"
_ERR = "error"
_SKIPPED = "abort-skipped"
_METRICS = "metrics"
_STOP = b"\x00__sre_stop__"


def _process_main(conn, abort_flags, wid: int) -> None:
    """Worker-process loop: receive payloads, observe abort flags, reply.

    Module-level so it imports cleanly under any multiprocessing start
    method. The worker owns no runtime state — it is a pure payload engine.

    Each worker keeps its own :class:`~repro.obs.metrics.MetricsRegistry`
    (payload counts, errors, abort skips, body wall time); on the stop
    sentinel it sends the registry snapshot back up the pipe as a final
    ``(_METRICS, snapshot)`` reply, and the coordinator folds it into the
    run's registry — cross-process aggregation over the existing wire,
    no extra channel.
    """
    metrics = MetricsRegistry()
    w = str(wid)
    m_tasks = metrics.counter(
        "procs_worker_tasks", "payloads executed in worker processes",
        labelnames=("worker",)).labels(worker=w)
    m_errors = metrics.counter(
        "procs_worker_errors", "payloads that raised in worker processes",
        labelnames=("worker",)).labels(worker=w)
    m_skips = metrics.counter(
        "procs_worker_abort_skips",
        "payloads skipped because the destroy signal landed first",
        labelnames=("worker",)).labels(worker=w)
    m_body_us = metrics.histogram(
        "procs_worker_body_us", "payload body wall time in worker (µs)",
        labelnames=("worker",)).labels(worker=w)
    while True:
        try:
            blob = conn.recv_bytes()
        except (EOFError, OSError):
            return
        if blob == _STOP:
            try:
                conn.send((_METRICS, metrics.snapshot()))
            except (BrokenPipeError, OSError):  # pragma: no cover - defensive
                pass
            return
        if abort_flags[wid]:
            # Destroy signal observed before launch: skip the body entirely.
            m_skips.inc()
            conn.send((_SKIPPED, None))
            continue
        t0 = time.perf_counter()
        try:
            outputs = Task.run_payload(blob)
        except BaseException:
            m_errors.inc()
            conn.send((_ERR, traceback.format_exc()))
            continue
        m_tasks.inc()
        m_body_us.observe((time.perf_counter() - t0) * 1e6)
        try:
            conn.send((_OK, outputs))
        except Exception as exc:
            conn.send((_ERR, f"task outputs could not cross the process "
                             f"boundary: {exc!r}"))


class _WorkerCrash(RuntimeError):
    """A worker process reported a payload failure (carries its traceback)."""


class ProcessExecutor(LiveExecutor):
    """Runs a :class:`~repro.sre.runtime.Runtime` on a process pool.

    Args:
        runtime: the runtime to drive.
        policy: dispatch policy (same vocabulary as every executor).
        workers: worker processes (and paired coordinator threads).
        payload_budget: per-task serialized-footprint cap in bytes.
        start_method: multiprocessing start method; default prefers
            ``fork`` (cheap, inherits imports) where available.
    """

    def __init__(
        self,
        runtime: Runtime,
        *,
        policy: DispatchPolicy | str = "conservative",
        workers: int = 4,
        payload_budget: int = DEFAULT_PAYLOAD_BUDGET,
        start_method: str | None = None,
    ) -> None:
        super().__init__(runtime, policy=policy, workers=workers)
        if payload_budget < 1:
            raise SchedulingError("payload_budget must be positive")
        self.payload_budget = payload_budget
        if start_method is not None:
            self._ctx = multiprocessing.get_context(start_method)
        else:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                self._ctx = multiprocessing.get_context()
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._conns: list[Any] = []
        self._abort_flags = None
        self._current: list[Task | None] = [None] * workers
        #: Introspection counters (coordinator-lock protected). Mirrored as
        #: registry metrics (procs_tasks_shipped / _inline / payload_bytes)
        #: so exporters see them without touching executor internals.
        self.tasks_shipped = 0
        self.tasks_inline = 0
        self.payload_bytes = 0
        m = runtime.metrics
        self._m_shipped = m.counter(
            "procs_tasks_shipped", "task payloads shipped to worker processes")
        self._m_inline = m.counter(
            "procs_tasks_inline",
            "tasks run inline on the coordinator (control/unpicklable)")
        self._m_payload_bytes = m.counter(
            "procs_payload_bytes", "serialized payload bytes sent to workers")
        runtime.add_abort_flag_listener(self._on_abort_flagged)

    # ------------------------------------------------------------------
    # substrate lifecycle
    # ------------------------------------------------------------------
    def _start_backend(self) -> None:
        self._abort_flags = self._ctx.Array("b", self.n_workers, lock=False)
        for wid in range(self.n_workers):
            parent, child = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_process_main,
                args=(child, self._abort_flags, wid),
                name=f"sre-proc-{wid}",
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    def _stop_backend(self) -> None:
        """Stop workers, harvesting each one's metrics snapshot first.

        By the time this runs the coordinator threads have joined, so the
        pipes are quiet: the only traffic left is our stop sentinel and the
        worker's final ``(_METRICS, snapshot)`` reply, which is folded into
        ``runtime.metrics`` (cross-process aggregation).
        """
        for conn in self._conns:
            try:
                conn.send_bytes(_STOP)
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(2.0):
                    status, payload = conn.recv()
                    if status == _METRICS and payload:
                        self.runtime.metrics.merge_snapshot(payload)
            except (EOFError, OSError):  # pragma: no cover - worker died
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            conn.close()
        self._procs.clear()
        self._conns.clear()

    # ------------------------------------------------------------------
    # abort-flag relay (coordinator -> worker address space)
    # ------------------------------------------------------------------
    def _on_abort_flagged(self, task: Task) -> None:
        # Runs under the executor lock (all runtime mutation does), so
        # _current is consistent; the flag write itself is a raw byte store
        # the worker polls without any lock.
        if self._abort_flags is None:
            return
        for wid, current in enumerate(self._current):
            if current is task:
                self._abort_flags[wid] = 1

    def _note_dispatch(self, wid: int, task: Task) -> None:
        self._current[wid] = task
        if self._abort_flags is not None:
            self._abort_flags[wid] = 0

    def _note_complete(self, wid: int, task: Task) -> None:
        self._current[wid] = None
        if self._abort_flags is not None:
            self._abort_flags[wid] = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, wid: int, task: Task) -> dict[str, Any]:
        """Run one task: ship its payload to worker ``wid``, or run inline.

        Control tasks and closure-captured payloads run on the coordinator
        (see the module docstring); everything else is serialized, checked
        against ``payload_budget``, sent down worker ``wid``'s pipe, and
        the reply awaited — the coordinator thread blocks in an I/O wait,
        not in bytecode, which is what lets pure-Python kernels overlap.
        Raises :class:`~repro.errors.PlatformError` on budget violation and
        re-raises worker-side failures as :class:`_WorkerCrash`.
        """
        blob: bytes | None = None
        if not task.control:
            try:
                blob = task.serialize_payload()
            except TaskStateError:
                blob = None  # closure-captured payload: coordinator runs it
        if blob is None:
            with self._cond:
                self.tasks_inline += 1
            self._m_inline.inc()
            return task.run()
        if len(blob) > self.payload_budget:
            raise PlatformError(
                f"task {task.name!r}: serialized payload {len(blob)} B exceeds "
                f"the process back-end budget {self.payload_budget} B "
                "(cf. the Cell local-store per-task cap)"
            )
        conn = self._conns[wid]
        conn.send_bytes(blob)
        with self._cond:
            self.tasks_shipped += 1
            self.payload_bytes += len(blob)
        self._m_shipped.inc()
        self._m_payload_bytes.inc(len(blob))
        status, payload = conn.recv()
        if status == _SKIPPED:
            # Worker observed the destroy signal; nothing ran. finish_task
            # reaps the task via its abort flag.
            return {}
        if status == _ERR:
            raise _WorkerCrash(payload)
        return payload
